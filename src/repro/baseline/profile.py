"""Arithmetic workload accounting per EMVS stage.

Sec. 2.1 of the paper observes that event back-projection (``P``) and
volumetric ray-counting (``R``) account for over 80 % of total EMVS
runtime, and Sec. 2.2 that the four per-event sub-tasks (``P(Z0)``,
``P(Z0->Zi)``, ``G``, ``V``) take over 90 % of the ``P + R`` time — the
observations that motivate the hardware partition.  This module derives
those fractions from first principles: it counts the arithmetic operations
of every stage as a function of stream statistics (events, frames, planes),
weights memory read-modify-writes with a cost factor, and reports the
runtime distribution implied by the counts.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Relative cost of a random-access DSI read-modify-write vs. one ALU op
#: on a CPU (cache-missing load + store dominate the vote).  A factor of 6
#: reproduces the published P(Z0) : (P(Z0->Zi)&R) runtime ratio.
RMW_COST_FACTOR = 6.0


@dataclass(frozen=True)
class StageOps:
    """Weighted operation count of one stage."""

    name: str
    alu_ops: float
    rmw_ops: float = 0.0

    @property
    def weighted(self) -> float:
        return self.alu_ops + RMW_COST_FACTOR * self.rmw_ops


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-stage work for one stream configuration.

    Parameters
    ----------
    n_events:
        Events processed.
    n_frames:
        Aggregated event frames.
    n_planes:
        DSI depth planes ``Nz``.
    n_keyframes:
        Key-frame (reference-view) changes.
    sensor_pixels:
        Pixels per sensor, for the detection-stage cost.
    distorted:
        Whether per-event undistortion runs.
    """

    n_events: int
    n_frames: int
    n_planes: int
    n_keyframes: int = 1
    sensor_pixels: int = 240 * 180
    distorted: bool = True

    # ------------------------------------------------------------------
    def stages(self) -> list[StageOps]:
        """Operation counts for every stage of Fig. 2."""
        e, f, nz, k = self.n_events, self.n_frames, self.n_planes, self.n_keyframes
        px = self.sensor_pixels
        undistort = 30.0 * e if self.distorted else 0.0
        return [
            # Aggregation: timestamp compare + buffer write per event.
            StageOps("A", alu_ops=2.0 * e + undistort),
            # Homography: ~200 flops of 3x3 compose/invert, once per frame.
            StageOps("H", alu_ops=200.0 * f),
            # phi: 3 coefficients x ~6 flops per plane, once per frame.
            StageOps("phi", alu_ops=18.0 * nz * f),
            # Canonical back-projection: 9 mul + 6 add + 2 div (~4 ops each).
            StageOps("P_Z0", alu_ops=23.0 * e),
            # Proportional back-projection: 2 MACs (4 ops) per event-plane.
            StageOps("P_Zi", alu_ops=4.0 * e * nz),
            # Generate votes: round + 2 bounds checks per event-plane.
            StageOps("G", alu_ops=3.0 * e * nz),
            # Vote voxels: one DSI read-modify-write per event-plane.
            StageOps("V", alu_ops=1.0 * e * nz, rmw_ops=1.0 * e * nz),
            # Detection: argmax over Nz + filtering, per pixel per keyframe.
            StageOps("D", alu_ops=(nz + 25.0) * px * k),
            # Map update: ray scale + transform per detected point (~5 % px).
            StageOps("M", alu_ops=20.0 * 0.05 * px * k),
        ]

    # ------------------------------------------------------------------
    def total_weighted(self) -> float:
        return sum(s.weighted for s in self.stages())

    def fraction(self, names: tuple[str, ...]) -> float:
        """Weighted-runtime fraction of the given stages."""
        total = self.total_weighted()
        part = sum(s.weighted for s in self.stages() if s.name in names)
        return part / total

    def p_and_r_fraction(self) -> float:
        """Fraction of runtime in back-projection + ray-counting (>80 %)."""
        return self.fraction(("H", "phi", "P_Z0", "P_Zi", "G", "V"))

    def hot_subtask_fraction(self) -> float:
        """Fraction of ``P + R`` time in the four per-event sub-tasks (>90 %)."""
        hot = self.fraction(("P_Z0", "P_Zi", "G", "V"))
        return hot / self.p_and_r_fraction()


def stage_breakdown(profile: WorkloadProfile) -> dict[str, float]:
    """Stage -> weighted-runtime fraction, for reporting."""
    total = profile.total_weighted()
    return {s.name: s.weighted / total for s in profile.stages()}
