"""CPU baseline: the Intel i5-7300HQ reference Eventor is compared against.

:mod:`repro.baseline.cpu_model` provides an operation-count timing model
calibrated to the paper's published per-task runtimes (Table 3);
:mod:`repro.baseline.profile` counts per-stage arithmetic work to reproduce
the Sec. 2.1 runtime-breakdown claims.
"""

from repro.baseline.cpu_model import CPUSpec, CPUTimingModel, I5_7300HQ
from repro.baseline.profile import WorkloadProfile, stage_breakdown

__all__ = [
    "CPUSpec",
    "CPUTimingModel",
    "I5_7300HQ",
    "WorkloadProfile",
    "stage_breakdown",
]
