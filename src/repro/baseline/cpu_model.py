"""Operation-count timing model of the CPU baseline.

The paper's Table 3 benchmarks single-thread EMVS on an Intel i5-7300HQ
(4C/4T Kaby Lake, 2.5 GHz base / 3.5 GHz single-core turbo, 45 W TDP) and
reports, per 1024-event frame:

====================  =========
Task                  Runtime
====================  =========
``P(Z0)``             22.40 us
``P(Z0->Zi) & R``     559.55 us
frame total           581.95 us
event rate            1.76 Mev/s
====================  =========

The model decomposes these into per-event and per-(event, plane) cycle
costs.  With the turbo clock and ``Nz = 128`` depth planes the published
numbers calibrate to ~76.6 cycles per canonical back-projection (3x3
homography MACs, two divisions, distortion lookup, bookkeeping) and ~15.0
cycles per plane-vote (two scalar MACs, rounding, bounds check and a
cache-unfriendly read-modify-write into the ~12 MB DSI) — both plausible
for scalar x86 with DRAM-bound voting, which is the paper's point: the
workload is memory-access dominated, not compute dominated.

CPU execution is sequential, so key frames cost the same as normal frames
(no pipeline overlap exists to lose) — exactly what Table 3 shows.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Depth-plane count used for calibration (matches the hardware model).
CALIBRATION_N_PLANES = 128
#: Frame size used throughout the paper.
CALIBRATION_FRAME_SIZE = 1024
#: Published per-task runtimes (seconds per 1024-event frame).
PAPER_T_CANONICAL = 22.40e-6
PAPER_T_PROPORTIONAL_VOTE = 559.55e-6


@dataclass(frozen=True)
class CPUSpec:
    """Processor datasheet facts used by the model."""

    name: str
    base_clock_hz: float
    turbo_clock_hz: float
    n_cores: int
    tdp_watts: float


I5_7300HQ = CPUSpec(
    name="Intel i5-7300HQ",
    base_clock_hz=2.5e9,
    turbo_clock_hz=3.5e9,
    n_cores=4,
    tdp_watts=45.0,
)


@dataclass(frozen=True)
class CPUTimingModel:
    """Per-frame EMVS runtime on a CPU.

    Attributes
    ----------
    spec:
        Processor description (clock, TDP).
    cycles_canonical_per_event:
        Cycles for one canonical back-projection ``P(Z0)``.
    cycles_vote_per_plane_event:
        Cycles for one proportional back-projection + DSI vote.
    n_planes:
        Depth-plane count ``Nz``.
    """

    spec: CPUSpec = I5_7300HQ
    cycles_canonical_per_event: float = 76.6
    cycles_vote_per_plane_event: float = 14.95
    n_planes: int = CALIBRATION_N_PLANES

    # ------------------------------------------------------------------
    @staticmethod
    def calibrated(
        spec: CPUSpec = I5_7300HQ, n_planes: int = CALIBRATION_N_PLANES
    ) -> "CPUTimingModel":
        """Model whose constants exactly reproduce the published Table 3."""
        clock = spec.turbo_clock_hz
        per_event = PAPER_T_CANONICAL * clock / CALIBRATION_FRAME_SIZE
        per_vote = (
            PAPER_T_PROPORTIONAL_VOTE
            * clock
            / (CALIBRATION_FRAME_SIZE * CALIBRATION_N_PLANES)
        )
        # Voting cost scales with the *calibration* plane count; keep the
        # per-vote cycles fixed so other Nz configurations extrapolate.
        return CPUTimingModel(
            spec=spec,
            cycles_canonical_per_event=per_event,
            cycles_vote_per_plane_event=per_vote,
            n_planes=n_planes,
        )

    # ------------------------------------------------------------------
    @property
    def clock_hz(self) -> float:
        return self.spec.turbo_clock_hz

    def time_canonical(self, n_events: int) -> float:
        """Seconds for ``P(Z0)`` over ``n_events``."""
        return n_events * self.cycles_canonical_per_event / self.clock_hz

    def time_proportional_and_vote(self, n_events: int) -> float:
        """Seconds for ``P(Z0->Zi) & R`` over ``n_events``."""
        return (
            n_events
            * self.n_planes
            * self.cycles_vote_per_plane_event
            / self.clock_hz
        )

    def time_frame(self, frame_size: int = CALIBRATION_FRAME_SIZE) -> float:
        """Seconds per event frame (sequential: canonical + vote).

        Key frames cost the same as normal frames on the CPU — there is no
        inter-module pipeline whose overlap a key frame could break.
        """
        return self.time_canonical(frame_size) + self.time_proportional_and_vote(
            frame_size
        )

    def event_rate(self, frame_size: int = CALIBRATION_FRAME_SIZE) -> float:
        """Sustained events/second."""
        return frame_size / self.time_frame(frame_size)

    @property
    def power_watts(self) -> float:
        """Package power while running the workload (TDP, as the paper uses)."""
        return self.spec.tdp_watts

    def energy_per_event(self, frame_size: int = CALIBRATION_FRAME_SIZE) -> float:
        """Joules per processed event."""
        return self.power_watts / self.event_rate(frame_size)

    def events_per_joule(self, frame_size: int = CALIBRATION_FRAME_SIZE) -> float:
        return self.event_rate(frame_size) / self.power_watts

    # ------------------------------------------------------------------
    # Multi-core extrapolation
    # ------------------------------------------------------------------
    def parallel_event_rate(
        self,
        n_threads: int,
        frame_size: int = CALIBRATION_FRAME_SIZE,
        efficiency: float = 0.92,
    ) -> float:
        """Multi-threaded throughput estimate.

        Event back-projection is embarrassingly parallel over events, but
        the shared DSI makes voting contend on memory; the published
        reference scales 1.2 -> 4.7 Mev/s over four cores (~98 % parallel
        efficiency per Amdahl).  ``efficiency`` is the per-added-core
        retention factor; the default brackets the published scaling.
        """
        if n_threads < 1 or n_threads > self.spec.n_cores:
            raise ValueError(
                f"n_threads must be in [1, {self.spec.n_cores}] for {self.spec.name}"
            )
        if not 0 < efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        base = self.event_rate(frame_size)
        speedup = sum(efficiency**k for k in range(n_threads))
        return base * speedup
