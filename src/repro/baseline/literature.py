"""Published EMVS implementations the paper positions itself against.

Sec. 1 of the paper cites three software baselines:

* Rebecq et al., IJCV 2018 [7] — the EMVS space-sweep reference, 1.2 Mev/s
  on one x86 core and 4.7 Mev/s on four cores;
* Kim et al., ECCV 2016 [8] — three probabilistic filters, GPU-bound,
  "cannot process high event rate input (up to 1 Mev/s)";
* Gallego et al., CVPR 2018 [9] — contrast maximization on a desktop CPU,
  no published throughput.

This module records those figures (with the power envelopes of their
platforms) so the efficiency landscape of the paper's introduction can be
regenerated next to Eventor's 1.86 Mev/s at 1.86 W.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PublishedSystem:
    """One literature data point.

    ``events_per_second`` of None means the source published no number
    (reported as such, never invented).  ``power_watts`` is the platform's
    typical board/package envelope used for events-per-joule estimates.
    """

    name: str
    reference: str
    platform: str
    events_per_second: float | None
    power_watts: float | None
    notes: str = ""

    @property
    def events_per_joule(self) -> float | None:
        if self.events_per_second is None or self.power_watts is None:
            return None
        return self.events_per_second / self.power_watts


EMVS_1CORE = PublishedSystem(
    name="EMVS (1 core)",
    reference="Rebecq et al., IJCV 2018 [7]",
    platform="Intel x86 CPU, single core",
    events_per_second=1.2e6,
    power_watts=45.0,
    notes="space-sweep reference implementation",
)

EMVS_4CORE = PublishedSystem(
    name="EMVS (4 cores)",
    reference="Rebecq et al., IJCV 2018 [7]",
    platform="Intel x86 CPU, four cores",
    events_per_second=4.7e6,
    power_watts=65.0,
    notes="near-linear scaling over 4 cores; desktop power envelope",
)

KIM_FILTERS = PublishedSystem(
    name="Three-filter pipeline",
    reference="Kim et al., ECCV 2016 [8]",
    platform="desktop GPU",
    events_per_second=1.0e6,
    power_watts=180.0,
    notes="paper: cannot sustain inputs above ~1 Mev/s; GPU board power",
)

GALLEGO_CM = PublishedSystem(
    name="Contrast maximization",
    reference="Gallego et al., CVPR 2018 [9]",
    platform="desktop CPU",
    events_per_second=None,
    power_watts=None,
    notes="no quantitative throughput published",
)

EVENTOR = PublishedSystem(
    name="Eventor",
    reference="this paper (DAC 2022)",
    platform="Zynq XC7Z020 @ 130 MHz",
    events_per_second=1.86e6,
    power_watts=1.86,
    notes="normal-frame steady state",
)

#: The landscape of Sec. 1, in citation order with Eventor last.
LANDSCAPE = (EMVS_1CORE, EMVS_4CORE, KIM_FILTERS, GALLEGO_CM, EVENTOR)


def efficiency_ranking() -> list[PublishedSystem]:
    """Systems with known throughput+power, best events/joule first."""
    known = [s for s in LANDSCAPE if s.events_per_joule is not None]
    return sorted(known, key=lambda s: -s.events_per_joule)
