"""Eventor's hardware-friendly reformulated pipeline (Fig. 3 right).

Differences from the original dataflow, exactly as Sec. 2.2 prescribes:

* **Rescheduling** — distortion correction runs per event *before*
  aggregation (streaming), and the proportional back-projection
  coefficients φ are pre-computed per frame before ``P(Z0)`` starts;
* **Approximate computing** — nearest voting replaces bilinear voting;
* **Hybrid quantization** — all signals follow the Table 1 formats and the
  DSI stores saturating 16-bit integer scores.

The functional output of this class is bit-exact with the
:mod:`repro.hardware` accelerator model running the same configuration —
enforced *structurally*: both are the same
:class:`~repro.core.engine.ReconstructionEngine` dataflow with a different
execution backend plugged in.
"""

from __future__ import annotations

from repro.core.config import EMVSConfig
from repro.core.engine import ExecutionBackend, ReconstructionEngine
from repro.core.results import EMVSResult
from repro.core.policy import CorrectionScheduling, DataflowPolicy
from repro.core.voting import VotingMethod
from repro.events.containers import EventArray
from repro.fixedpoint.quantize import EVENTOR_SCHEMA, QuantizationSchema
from repro.geometry.camera import PinholeCamera
from repro.geometry.distortion import NoDistortion
from repro.geometry.trajectory import Trajectory


class ReformulatedPipeline:
    """Hardware-friendly EMVS (the algorithm Eventor executes).

    Parameters
    ----------
    camera, config, depth_range, voting, schema:
        As for :class:`~repro.core.pipeline.EMVSPipeline`; the defaults
        select Eventor's reformulation (nearest voting, Table 1 formats).
    backend:
        Execution backend name (see :data:`repro.core.engine.BACKENDS`).
    """

    name = "eventor-reformulated"

    def __init__(
        self,
        camera: PinholeCamera,
        config: EMVSConfig | None = None,
        depth_range: tuple[float, float] = (0.5, 5.0),
        voting: VotingMethod = VotingMethod.NEAREST,
        schema: QuantizationSchema = EVENTOR_SCHEMA,
        backend: str | ExecutionBackend = "numpy-reference",
    ):
        self.camera = camera
        self.config = config or EMVSConfig()
        self.depth_range = depth_range
        self.voting = voting
        self.schema = schema
        self.backend = backend
        self.policy = DataflowPolicy(
            correction=CorrectionScheduling.PER_EVENT,
            voting=voting,
            schema=schema,
            integer_scores=schema.enabled,
            name=self.name,
        )

    # ------------------------------------------------------------------
    def correct_stream(self, events: EventArray) -> EventArray:
        """Streaming per-event distortion correction (before aggregation).

        Applying the correction event-by-event lets the hardware overlap it
        with ingest; numerically it equals the per-frame batch correction,
        so the reformulation's accuracy impact comes only from voting and
        quantization.  (Kept as a public helper; the engine applies the
        same correction internally when running this pipeline's policy.)
        """
        if isinstance(self.camera.distortion, NoDistortion):
            return events
        corrected = self.camera.undistort_pixels(events.xy)
        return events.with_coordinates(corrected)

    def run(self, events: EventArray, trajectory: Trajectory) -> EMVSResult:
        """Reconstruct from a full event stream with known trajectory."""
        engine = ReconstructionEngine(
            self.camera,
            trajectory,
            self.config,
            self.depth_range,
            policy=self.policy,
            backend=self.backend,
        )
        return engine.run(events)
