"""Eventor's hardware-friendly reformulated pipeline (Fig. 3 right).

Differences from the original dataflow, exactly as Sec. 2.2 prescribes:

* **Rescheduling** — distortion correction runs per event *before*
  aggregation (streaming), and the proportional back-projection
  coefficients φ are pre-computed per frame before ``P(Z0)`` starts;
* **Approximate computing** — nearest voting replaces bilinear voting;
* **Hybrid quantization** — all signals follow the Table 1 formats and the
  DSI stores saturating 16-bit integer scores.

The functional output of this class is bit-exact with the
:mod:`repro.hardware` accelerator model running the same configuration
(asserted by the integration tests), which is what makes the hardware
model's accuracy claims transferable.
"""

from __future__ import annotations

import time

from repro.core.config import EMVSConfig
from repro.core.keyframes import KeyframeSelector
from repro.core.mapper import EMVSMapper, EMVSResult, KeyframeReconstruction
from repro.core.pointcloud import PointCloud
from repro.core.voting import VotingMethod
from repro.events.containers import EventArray
from repro.events.packetizer import aggregate_frames
from repro.fixedpoint.quantize import EVENTOR_SCHEMA, QuantizationSchema
from repro.geometry.camera import PinholeCamera
from repro.geometry.distortion import NoDistortion
from repro.geometry.trajectory import Trajectory


class ReformulatedPipeline:
    """Hardware-friendly EMVS (the algorithm Eventor executes)."""

    name = "eventor-reformulated"

    def __init__(
        self,
        camera: PinholeCamera,
        config: EMVSConfig | None = None,
        depth_range: tuple[float, float] = (0.5, 5.0),
        voting: VotingMethod = VotingMethod.NEAREST,
        schema: QuantizationSchema = EVENTOR_SCHEMA,
    ):
        self.camera = camera
        self.config = config or EMVSConfig()
        self.depth_range = depth_range
        self.voting = voting
        self.schema = schema

    # ------------------------------------------------------------------
    def correct_stream(self, events: EventArray) -> EventArray:
        """Streaming per-event distortion correction (before aggregation).

        Applying the correction event-by-event lets the hardware overlap it
        with ingest; numerically it equals the per-frame batch correction,
        so the reformulation's accuracy impact comes only from voting and
        quantization.
        """
        if isinstance(self.camera.distortion, NoDistortion):
            return events
        corrected = self.camera.undistort_pixels(events.xy)
        return events.with_coordinates(corrected)

    def run(self, events: EventArray, trajectory: Trajectory) -> EMVSResult:
        """Reconstruct from a full event stream with known trajectory."""
        mapper = EMVSMapper(
            self.camera,
            self.config,
            self.depth_range,
            schema=self.schema,
            voting=self.voting,
            integer_scores=self.schema.enabled,
        )
        selector = KeyframeSelector(self.config.keyframe_distance)

        t0 = time.perf_counter()
        events = self.correct_stream(events)
        frames = aggregate_frames(events, trajectory, self.config.frame_size)
        mapper.profile.add_time("A", time.perf_counter() - t0)

        keyframes: list[KeyframeReconstruction] = []
        cloud = PointCloud()
        for frame in frames:
            if selector.is_new_keyframe(frame.T_wc):
                frame.is_keyframe = True
                reconstruction = mapper.finalize_reference() if mapper.dsi else None
                if reconstruction is not None:
                    keyframes.append(reconstruction)
                    cloud = cloud.merge(mapper.lift_to_cloud(reconstruction))
                mapper.start_reference(frame.T_wc)
            mapper.process_frame(frame)

        reconstruction = mapper.finalize_reference() if mapper.dsi else None
        if reconstruction is not None:
            keyframes.append(reconstruction)
            cloud = cloud.merge(mapper.lift_to_cloud(reconstruction))

        return EMVSResult(keyframes=keyframes, cloud=cloud, profile=mapper.profile)
