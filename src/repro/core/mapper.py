"""EMVS mapper: DSI lifecycle across key reference views.

The mapper owns the current local DSI, back-projects and votes incoming
event frames into it, and on key-frame changes extracts the semi-dense
depth map, lifts it into the global point cloud and re-seats the DSI at the
new reference view (stages ``P``, ``R``, ``D`` and ``M`` of Fig. 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.backprojection import BackProjector
from repro.core.config import EMVSConfig
from repro.core.depthmap import SemiDenseDepthMap
from repro.core.detection import detect_structure
from repro.core.dsi import DSI, depth_planes
from repro.core.pointcloud import PointCloud
from repro.core.voting import VotingMethod, cast_votes_into
from repro.events.packetizer import EventFrame
from repro.fixedpoint.quantize import FLOAT_SCHEMA, QuantizationSchema
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3


@dataclass(frozen=True)
class KeyframeReconstruction:
    """Depth estimate produced at one key reference view."""

    T_w_ref: SE3
    depth_map: SemiDenseDepthMap
    n_events: int
    n_frames: int


@dataclass
class PipelineProfile:
    """Work and wall-clock accounting across a pipeline run.

    ``stage_seconds`` records host time per algorithm stage (keys: ``A``,
    ``P_Z0``, ``P_Zi_R``, ``D``, ``M``); ``votes_cast`` counts DSI updates —
    the quantity the accelerator's throughput is sized by.
    """

    n_events: int = 0
    n_frames: int = 0
    n_keyframes: int = 0
    votes_cast: int = 0
    dropped_events: int = 0
    stage_seconds: dict = field(default_factory=dict)

    def add_time(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())


@dataclass(frozen=True)
class EMVSResult:
    """Output of a pipeline run."""

    keyframes: list[KeyframeReconstruction]
    cloud: PointCloud
    profile: PipelineProfile

    @property
    def n_points(self) -> int:
        return len(self.cloud)


class EMVSMapper:
    """Stateful DSI owner; one instance per pipeline run.

    Parameters
    ----------
    camera:
        Undistorted sensor intrinsics.
    config:
        Shared EMVS parameters.
    depth_range:
        ``(z_min, z_max)`` for the DSI in every reference frame.
    schema:
        Quantization schema for back-projection arithmetic.
    voting:
        Bilinear (reference) or nearest (Eventor) DSI voting.
    integer_scores:
        Store DSI scores as saturating ``uint16`` (Table 1) instead of
        float64.
    """

    def __init__(
        self,
        camera: PinholeCamera,
        config: EMVSConfig,
        depth_range: tuple[float, float],
        schema: QuantizationSchema = FLOAT_SCHEMA,
        voting: VotingMethod = VotingMethod.BILINEAR,
        integer_scores: bool = False,
    ):
        self.camera = camera
        self.config = config
        self.depth_range = depth_range
        self.schema = schema
        self.voting = voting
        self.integer_scores = integer_scores
        self.depths = depth_planes(
            depth_range[0], depth_range[1], config.n_depth_planes, config.depth_sampling
        )
        self.profile = PipelineProfile()
        self._dsi: DSI | None = None
        self._projector: BackProjector | None = None
        self._events_in_reference = 0
        self._frames_in_reference = 0

    # ------------------------------------------------------------------
    @property
    def dsi(self) -> DSI | None:
        return self._dsi

    def start_reference(self, T_w_ref: SE3) -> None:
        """Seat (or re-seat) the DSI at a new key reference view."""
        limit = self.schema.dsi_score.raw_max if self.integer_scores else None
        self._dsi = DSI(
            self.camera,
            T_w_ref,
            self.depths,
            integer_scores=self.integer_scores,
            score_limit=limit,
        )
        self._projector = BackProjector(
            self.camera, T_w_ref, self.depths, schema=self.schema
        )
        self._events_in_reference = 0
        self._frames_in_reference = 0
        self.profile.n_keyframes += 1

    def process_frame(self, frame: EventFrame) -> None:
        """Back-project one event frame and vote it into the DSI."""
        if self._dsi is None or self._projector is None:
            raise RuntimeError("start_reference() must be called before frames")
        xy = frame.events.xy

        t0 = time.perf_counter()
        params = self._projector.frame_parameters(frame.T_wc)
        uv0, valid = self._projector.canonical(params, xy)
        t1 = time.perf_counter()
        u, v = self._projector.proportional(params, uv0)
        u[~valid] = np.nan
        v[~valid] = np.nan
        votes = cast_votes_into(
            self.voting, self._dsi.flat_scores, u, v, self._dsi.shape
        )
        t2 = time.perf_counter()

        self.profile.add_time("P_Z0", t1 - t0)
        self.profile.add_time("P_Zi_R", t2 - t1)
        self.profile.n_events += len(frame)
        self.profile.n_frames += 1
        self.profile.dropped_events += int((~valid).sum())
        self.profile.votes_cast += votes
        self._events_in_reference += len(frame)
        self._frames_in_reference += 1

    def finalize_reference(self) -> KeyframeReconstruction | None:
        """Extract the depth map of the current reference (stage ``D``).

        Returns ``None`` when no events were accumulated (e.g. two key
        frames back to back).
        """
        if self._dsi is None or self._events_in_reference == 0:
            return None
        t0 = time.perf_counter()
        depth_map = detect_structure(self._dsi, self.config.detection)
        self.profile.add_time("D", time.perf_counter() - t0)
        return KeyframeReconstruction(
            T_w_ref=self._dsi.T_w_ref,
            depth_map=depth_map,
            n_events=self._events_in_reference,
            n_frames=self._frames_in_reference,
        )

    def lift_to_cloud(self, reconstruction: KeyframeReconstruction) -> PointCloud:
        """Point-cloud conversion of one key-frame reconstruction."""
        t0 = time.perf_counter()
        cloud = PointCloud.from_depth_map(
            reconstruction.depth_map, self.camera, reconstruction.T_w_ref
        )
        self.profile.add_time("M", time.perf_counter() - t0)
        return cloud
