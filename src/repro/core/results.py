"""Result and accounting types shared by every pipeline and backend.

Historically these lived next to the (since removed) ``EMVSMapper``; the
per-frame hot path it owned is now an
:class:`~repro.core.engine.ExecutionBackend` and the keyframe lifecycle
lives in :class:`~repro.core.engine.ReconstructionEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.depthmap import SemiDenseDepthMap
from repro.core.pointcloud import PointCloud
from repro.geometry.se3 import SE3


@dataclass(frozen=True)
class KeyframeReconstruction:
    """Depth estimate produced at one key reference view."""

    T_w_ref: SE3
    depth_map: SemiDenseDepthMap
    n_events: int
    n_frames: int


@dataclass
class PipelineProfile:
    """Work and wall-clock accounting across a pipeline run.

    ``stage_seconds`` records host time per algorithm stage (keys: ``A``,
    ``P_Z0``, ``P_Zi_R``, ``D``, ``M``); ``votes_cast`` counts DSI updates —
    the quantity the accelerator's throughput is sized by.
    ``dropped_events`` counts events that produced no vote: projection
    misses plus the trailing partial frame dropped at stream end.

    ``jobs_refused`` / ``jobs_dropped`` record the serving layer's
    explicit backpressure outcomes (see :mod:`repro.serve`): jobs a full
    session queue refused at submission, and queued jobs evicted by the
    ``drop-oldest`` overflow policy.  ``chunks_refused`` /
    ``chunks_dropped`` are the same two outcomes at *chunk* granularity,
    applied by streaming sessions whose bounded in-flight buffer filled
    up.  ``segments_retried`` / ``segments_timed_out`` /
    ``jobs_partial`` / ``results_corrupted`` record the reliability
    layer's recovery story: segment attempts re-dispatched by a
    :class:`~repro.serve.retry.RetryPolicy`, attempts abandoned by a
    deadline watchdog, jobs degraded to a ``PARTIAL`` result, and
    payloads the merge-time integrity digest rejected.  These live here
    so a service's aggregate profile carries its admission and recovery
    story next to its work counters, but they are *load-dependent* —
    two runs of the same stream need not agree on them — so they are
    deliberately excluded from :meth:`counters`.
    """

    n_events: int = 0
    n_frames: int = 0
    n_keyframes: int = 0
    votes_cast: int = 0
    dropped_events: int = 0
    jobs_refused: int = 0
    jobs_dropped: int = 0
    chunks_refused: int = 0
    chunks_dropped: int = 0
    segments_retried: int = 0
    segments_timed_out: int = 0
    jobs_partial: int = 0
    results_corrupted: int = 0
    stage_seconds: dict = field(default_factory=dict)

    def add_time(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock seconds into one stage's bucket."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def total_seconds(self) -> float:
        """Summed wall-clock time across all stages."""
        return sum(self.stage_seconds.values())

    def merge(self, other: "PipelineProfile") -> None:
        """Fold another profile into this one (parallel mapping aggregation).

        Counters add; stage times add per stage.  Summed wall-clock times of
        concurrent runs measure total *work*, not elapsed time — elapsed
        time of a parallel run is tracked by its orchestrator.
        """
        self.n_events += other.n_events
        self.n_frames += other.n_frames
        self.n_keyframes += other.n_keyframes
        self.votes_cast += other.votes_cast
        self.dropped_events += other.dropped_events
        self.jobs_refused += other.jobs_refused
        self.jobs_dropped += other.jobs_dropped
        self.chunks_refused += other.chunks_refused
        self.chunks_dropped += other.chunks_dropped
        self.segments_retried += other.segments_retried
        self.segments_timed_out += other.segments_timed_out
        self.jobs_partial += other.jobs_partial
        self.results_corrupted += other.results_corrupted
        for stage, seconds in other.stage_seconds.items():
            self.add_time(stage, seconds)

    def counters(self) -> dict:
        """The deterministic (timing-free) counters as a plain dict.

        Two runs of the same stream must agree on these exactly, whatever
        the backend, batching or worker count — the equality the
        determinism tests pin.
        """
        return {
            "n_events": self.n_events,
            "n_frames": self.n_frames,
            "n_keyframes": self.n_keyframes,
            "votes_cast": self.votes_cast,
            "dropped_events": self.dropped_events,
        }


@dataclass(frozen=True)
class EMVSResult:
    """Output of a pipeline run."""

    keyframes: list[KeyframeReconstruction]
    cloud: PointCloud
    profile: PipelineProfile

    @property
    def n_points(self) -> int:
        """Point count of the merged cloud."""
        return len(self.cloud)
