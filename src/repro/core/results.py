"""Result and accounting types shared by every pipeline and backend.

Historically these lived next to the (since removed) ``EMVSMapper``; the
per-frame hot path it owned is now an
:class:`~repro.core.engine.ExecutionBackend` and the keyframe lifecycle
lives in :class:`~repro.core.engine.ReconstructionEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.depthmap import SemiDenseDepthMap
from repro.core.pointcloud import PointCloud
from repro.geometry.se3 import SE3


@dataclass(frozen=True)
class KeyframeReconstruction:
    """Depth estimate produced at one key reference view."""

    T_w_ref: SE3
    depth_map: SemiDenseDepthMap
    n_events: int
    n_frames: int


@dataclass
class PipelineProfile:
    """Work and wall-clock accounting across a pipeline run.

    ``stage_seconds`` records host time per algorithm stage (keys: ``A``,
    ``P_Z0``, ``P_Zi_R``, ``D``, ``M``); ``votes_cast`` counts DSI updates —
    the quantity the accelerator's throughput is sized by.
    ``dropped_events`` counts events that produced no vote: projection
    misses plus the trailing partial frame dropped at stream end.
    """

    n_events: int = 0
    n_frames: int = 0
    n_keyframes: int = 0
    votes_cast: int = 0
    dropped_events: int = 0
    stage_seconds: dict = field(default_factory=dict)

    def add_time(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())


@dataclass(frozen=True)
class EMVSResult:
    """Output of a pipeline run."""

    keyframes: list[KeyframeReconstruction]
    cloud: PointCloud
    profile: PipelineProfile

    @property
    def n_points(self) -> int:
        return len(self.cloud)
