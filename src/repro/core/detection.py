"""Scene structure detection (stage ``D``).

A 3D point is declared present where the ray-density function has a strong
local maximum.  Following the reference EMVS implementation the detection
runs on the *confidence map* (per-pixel maximum score along depth):

1. dense argmax along depth -> (confidence, depth) per pixel;
2. adaptive Gaussian thresholding: keep pixels whose confidence exceeds the
   Gaussian-blurred local mean by ``offset`` votes (and an absolute floor);
3. median-filter the surviving depth map to suppress isolated outliers.
"""

from __future__ import annotations

import warnings

import numpy as np
from scipy import ndimage

from repro.core.config import DetectionConfig
from repro.core.depthmap import SemiDenseDepthMap
from repro.core.dsi import DSI


def adaptive_threshold_mask(
    confidence: np.ndarray, config: DetectionConfig
) -> np.ndarray:
    """Pixels whose confidence beats the local Gaussian mean by ``offset``.

    Following the reference implementation, the confidence map is first
    normalized to the 0-255 range, so ``offset`` is independent of the
    absolute vote counts (event-rate invariant); an absolute ``min_votes``
    floor still guards against detections in nearly-empty volumes.
    """
    peak = confidence.max()
    if peak <= 0:
        return np.zeros_like(confidence, dtype=bool)
    normalized = confidence * (255.0 / peak)
    local_mean = ndimage.gaussian_filter(normalized, sigma=config.gaussian_sigma)
    return (normalized > local_mean + config.offset) & (
        confidence >= config.min_votes
    )


def median_reject(
    depth: np.ndarray, mask: np.ndarray, config: DetectionConfig
) -> np.ndarray:
    """Reject points that disagree with the local median depth.

    The reference implementation median-filters the masked depth map; here
    the median is computed over detected pixels only (undetected pixels do
    not dilute it, and — unlike a mean — a single outlier cannot drag the
    statistic).  A point survives when it is within 15 % of the local
    median; lone points keep themselves (the window median is the point).
    """
    if config.median_size <= 1:
        return mask
    k = config.median_size // 2
    h, w = depth.shape
    sparse = np.where(mask, depth, np.nan)
    # One preallocated NaN-padded stack of every in-window shift, filled
    # layer by layer in place (the per-shift ``np.full`` copies plus the
    # final ``np.stack`` re-copy would double the allocations).
    stack = np.full((config.median_size**2, h, w), np.nan)
    for i, (dy, dx) in enumerate(
        (dy, dx) for dy in range(-k, k + 1) for dx in range(-k, k + 1)
    ):
        ys_src = slice(max(0, -dy), min(h, h - dy))
        xs_src = slice(max(0, -dx), min(w, w - dx))
        ys_dst = slice(max(0, dy), min(h, h + dy))
        xs_dst = slice(max(0, dx), min(w, w + dx))
        stack[i, ys_dst, xs_dst] = sparse[ys_src, xs_src]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # all-NaN windows
        local_median = np.nanmedian(stack, axis=0)
    good = np.abs(depth - local_median) <= 0.15 * np.abs(local_median)
    return mask & np.where(np.isfinite(local_median), good, True)


def refine_subvoxel(dsi: DSI, indices: np.ndarray) -> np.ndarray:
    """Parabolic sub-plane depth refinement (library extension).

    Fits a parabola through the score triplet around each pixel's maximal
    plane in *inverse depth* (where the planes are uniformly spaced under
    the default sampling) and shifts the estimate by the vertex offset,
    clamped to half a plane spacing.  Boundary planes and degenerate
    (non-concave) triplets fall back to the plane centre.
    """
    scores = dsi.effective_scores().astype(float)
    nz = scores.shape[0]
    inv_depths = 1.0 / dsi.depths

    idx = np.clip(indices, 1, nz - 2)
    s_prev = np.take_along_axis(scores, (idx - 1)[None], axis=0)[0]
    s_mid = np.take_along_axis(scores, idx[None], axis=0)[0]
    s_next = np.take_along_axis(scores, (idx + 1)[None], axis=0)[0]
    denom = s_prev - 2.0 * s_mid + s_next
    with np.errstate(divide="ignore", invalid="ignore"):
        delta = 0.5 * (s_prev - s_next) / denom
    usable = (denom < 0) & np.isfinite(delta) & (indices >= 1) & (indices <= nz - 2)
    delta = np.where(usable, np.clip(delta, -0.5, 0.5), 0.0)

    # Interpolate in inverse depth between neighbouring planes.
    lo = np.clip(idx - 1, 0, nz - 1)
    hi = np.clip(idx + 1, 0, nz - 1)
    step = 0.5 * (inv_depths[hi] - inv_depths[lo])  # per-plane spacing
    inv_refined = inv_depths[indices] + delta * step
    return 1.0 / inv_refined


def detect_structure(dsi: DSI, config: DetectionConfig) -> SemiDenseDepthMap:
    """Extract the semi-dense depth map from a voted DSI."""
    confidence, indices = dsi.argmax_projection()
    depth = dsi.depths[indices]
    if config.subvoxel:
        depth = refine_subvoxel(dsi, indices)
    mask = adaptive_threshold_mask(confidence, config)
    mask = median_reject(depth, mask, config)
    depth_out = np.where(mask, depth, np.nan)
    return SemiDenseDepthMap(depth=depth_out, confidence=confidence, mask=mask)
