"""EMVS core: the paper's target algorithm and its reformulation.

The central abstraction is :class:`repro.core.engine.ReconstructionEngine`
— a single streaming owner of the packetize → undistort → back-project →
vote → detect → lift dataflow, parameterized by a
:class:`repro.core.policy.DataflowPolicy` (correction scheduling, voting,
quantization, score storage, batch scheduling) and an execution backend
from :data:`repro.core.engine.BACKENDS` (``numpy-reference``,
``numpy-fast``, ``numpy-batch``, ``hardware-model``).

:class:`~repro.core.pipeline.EMVSPipeline` (original full-precision EMVS
with bilinear voting, after Rebecq et al., IJCV 2018),
:class:`~repro.core.reformulated.ReformulatedPipeline` (Eventor's
hardware-friendly dataflow) and :class:`~repro.core.online.OnlineEMVS`
(incremental SLAM front-end) are thin facades binding named policies to
the engine.  The batch facades consume a :class:`repro.events.Sequence`-like
bundle of events + trajectory + camera and produce an :class:`EMVSResult`.
"""

from repro.core.config import EMVSConfig, DetectionConfig
from repro.core.dsi import DSI, depth_planes
from repro.core.voting import vote_bilinear, vote_nearest, VotingMethod
from repro.core.backprojection import BackProjector
from repro.core.keyframes import KeyframeSelector
from repro.core.detection import detect_structure
from repro.core.depthmap import SemiDenseDepthMap
from repro.core.pointcloud import PointCloud
from repro.core.results import EMVSResult, KeyframeReconstruction, PipelineProfile
from repro.core.policy import (
    CorrectionScheduling,
    DataflowPolicy,
    ORIGINAL_POLICY,
    POLICIES,
    REFORMULATED_POLICY,
)
from repro.core.engine import (
    BACKENDS,
    EngineSpec,
    ExecutionBackend,
    ReconstructionEngine,
    SegmentPlan,
    StreamSegmentPlanner,
    plan_segments,
    register_backend,
)
from repro.core.mapping import (
    GlobalMap,
    MappingOrchestrator,
    MappingResult,
    SegmentTask,
    default_voxel_size,
    fuse_camera_keyframes,
    fuse_keyframes,
    merge_outcomes,
    run_segment_task,
    segment_tasks,
)
from repro.core.rig import (
    CameraRig,
    RigCamera,
    RigJobHandle,
    RigMappingResult,
    RigOrchestrator,
)
from repro.core.pipeline import EMVSPipeline
from repro.core.reformulated import ReformulatedPipeline
from repro.core.online import OnlineEMVS

__all__ = [
    "EMVSConfig",
    "DetectionConfig",
    "DSI",
    "depth_planes",
    "vote_bilinear",
    "vote_nearest",
    "VotingMethod",
    "BackProjector",
    "KeyframeSelector",
    "detect_structure",
    "SemiDenseDepthMap",
    "PointCloud",
    "EMVSResult",
    "KeyframeReconstruction",
    "PipelineProfile",
    "CorrectionScheduling",
    "DataflowPolicy",
    "ORIGINAL_POLICY",
    "REFORMULATED_POLICY",
    "POLICIES",
    "BACKENDS",
    "EngineSpec",
    "ExecutionBackend",
    "ReconstructionEngine",
    "SegmentPlan",
    "StreamSegmentPlanner",
    "plan_segments",
    "register_backend",
    "GlobalMap",
    "MappingOrchestrator",
    "MappingResult",
    "SegmentTask",
    "default_voxel_size",
    "fuse_camera_keyframes",
    "fuse_keyframes",
    "merge_outcomes",
    "run_segment_task",
    "segment_tasks",
    "CameraRig",
    "RigCamera",
    "RigJobHandle",
    "RigMappingResult",
    "RigOrchestrator",
    "EMVSPipeline",
    "ReformulatedPipeline",
    "OnlineEMVS",
]
