"""EMVS core: the paper's target algorithm and its reformulation.

The public entry points are :class:`repro.core.pipeline.EMVSPipeline`
(original full-precision EMVS with bilinear voting, after Rebecq et al.,
IJCV 2018) and :class:`repro.core.reformulated.ReformulatedPipeline`
(Eventor's hardware-friendly dataflow: streaming distortion correction,
pre-computed proportional coefficients, nearest voting and Table 1
quantization).  Both consume a :class:`repro.events.Sequence`-like bundle of
events + trajectory + camera and produce an :class:`EMVSResult`.
"""

from repro.core.config import EMVSConfig, DetectionConfig
from repro.core.dsi import DSI, depth_planes
from repro.core.voting import vote_bilinear, vote_nearest, VotingMethod
from repro.core.backprojection import BackProjector
from repro.core.keyframes import KeyframeSelector
from repro.core.detection import detect_structure
from repro.core.depthmap import SemiDenseDepthMap
from repro.core.pointcloud import PointCloud
from repro.core.mapper import EMVSMapper, EMVSResult, KeyframeReconstruction
from repro.core.pipeline import EMVSPipeline
from repro.core.reformulated import ReformulatedPipeline
from repro.core.online import OnlineEMVS

__all__ = [
    "EMVSConfig",
    "DetectionConfig",
    "DSI",
    "depth_planes",
    "vote_bilinear",
    "vote_nearest",
    "VotingMethod",
    "BackProjector",
    "KeyframeSelector",
    "detect_structure",
    "SemiDenseDepthMap",
    "PointCloud",
    "EMVSMapper",
    "EMVSResult",
    "KeyframeReconstruction",
    "EMVSPipeline",
    "ReformulatedPipeline",
    "OnlineEMVS",
]
