"""Key-frame selection (stage ``K``).

EMVS reconstructs a *local* DSI per reference view.  A new key frame — and
with it a new reference view and a fresh DSI — is selected when the event
camera has translated farther than a threshold from the previous key
reference view (Sec. 2.1).  The threshold is commonly expressed relative to
the scene depth so that key-frame density tracks parallax.
"""

from __future__ import annotations

from repro.geometry.se3 import SE3


class KeyframeSelector:
    """Distance-threshold key-frame policy.

    Parameters
    ----------
    distance_threshold:
        Translation in metres that triggers a new key frame.  ``None``
        disables re-keying: the first frame stays the only reference.
    """

    def __init__(self, distance_threshold: float | None):
        if distance_threshold is not None and distance_threshold <= 0:
            raise ValueError("distance_threshold must be positive (or None)")
        self.distance_threshold = distance_threshold
        self._reference: SE3 | None = None

    @property
    def reference(self) -> SE3 | None:
        """Pose of the current key reference view (``None`` before the first)."""
        return self._reference

    def reset(self) -> None:
        """Forget the reference; the next pose becomes a key frame."""
        self._reference = None

    def is_new_keyframe(self, T_wc: SE3) -> bool:
        """True when ``T_wc`` should become a new key reference view.

        The first pose observed is always a key frame.
        """
        if self._reference is None:
            self._reference = T_wc
            return True
        if self.distance_threshold is None:
            return False
        if self._reference.distance_to(T_wc) > self.distance_threshold:
            self._reference = T_wc
            return True
        return False

    @staticmethod
    def relative_threshold(mean_depth: float, fraction: float = 0.15) -> float:
        """Threshold as a fraction of the mean scene depth.

        A baseline-to-depth ratio around 0.1-0.2 gives enough parallax for a
        well-conditioned DSI while keeping several frames per key segment.
        """
        if mean_depth <= 0:
            raise ValueError("mean_depth must be positive")
        return fraction * mean_depth
