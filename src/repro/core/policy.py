"""Dataflow policies: what varies between the original and reformulated EMVS.

The Eventor paper (Sec. 2.2) presents *one* algorithm whose execution is
tuned along three axes — correction scheduling, voting approximation and
quantization.  A :class:`DataflowPolicy` captures those axes as data, so a
single :class:`~repro.core.engine.ReconstructionEngine` can execute any
point of the design space and the pipeline classes reduce to named policy
presets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.voting import VotingMethod
from repro.fixedpoint.quantize import (
    EVENTOR_SCHEMA,
    FLOAT_SCHEMA,
    QuantizationSchema,
)


class CorrectionScheduling(enum.Enum):
    """When event distortion correction runs relative to aggregation.

    ``PER_FRAME`` is the original dataflow (aggregate raw events first,
    undistort each frame as a batch); ``PER_EVENT`` is Eventor's
    rescheduled order (streaming correction before aggregation, which the
    hardware overlaps with ingest).  The two are numerically identical —
    the reformulation's accuracy impact comes only from voting and
    quantization.
    """

    PER_FRAME = "per-frame"
    PER_EVENT = "per-event"


@dataclass(frozen=True)
class DataflowPolicy:
    """One point of the Fig. 3 design space.

    Attributes
    ----------
    correction:
        Distortion-correction scheduling (see :class:`CorrectionScheduling`).
    voting:
        DSI voting kernel (bilinear reference or Eventor's nearest).
    schema:
        Quantization schema for the back-projection arithmetic.
    integer_scores:
        Store DSI scores as saturating integers (Table 1) instead of
        float64 — the score-storage axis, kept separate from ``schema``
        because the ablations exercise them independently.
    batch_frames:
        Frames the engine buffers per flush for batching backends
        (``numpy-batch``).  A pure scheduling knob: results are
        bit-identical for any value; larger batches amortize per-frame
        Python dispatch, smaller ones bound buffering latency for
        streaming consumers.  Per-frame backends ignore it.
    name:
        Human-readable label used by the CLI and reports.
    """

    correction: CorrectionScheduling = CorrectionScheduling.PER_EVENT
    voting: VotingMethod = VotingMethod.NEAREST
    schema: QuantizationSchema = EVENTOR_SCHEMA
    integer_scores: bool = True
    batch_frames: int = 16
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.batch_frames < 1:
            raise ValueError("batch_frames must be >= 1")

    def score_limit(self) -> int | None:
        """Saturation bound of the DSI score registers (None = unbounded)."""
        return self.schema.dsi_score.raw_max if self.integer_scores else None


#: The original EMVS dataflow (Fig. 3 left): per-frame correction,
#: bilinear voting, full-precision float arithmetic and scores.
ORIGINAL_POLICY = DataflowPolicy(
    correction=CorrectionScheduling.PER_FRAME,
    voting=VotingMethod.BILINEAR,
    schema=FLOAT_SCHEMA,
    integer_scores=False,
    name="original",
)

#: Eventor's reformulated dataflow (Fig. 3 right): streaming per-event
#: correction, nearest voting, Table 1 quantization, 16-bit DSI scores.
REFORMULATED_POLICY = DataflowPolicy(name="reformulated")

#: Named presets for the CLI.
POLICIES = {
    "original": ORIGINAL_POLICY,
    "reformulated": REFORMULATED_POLICY,
}


def resolve_policy(policy: DataflowPolicy | str) -> DataflowPolicy:
    """Accept a policy instance or one of the :data:`POLICIES` names."""
    if isinstance(policy, DataflowPolicy):
        return policy
    try:
        return POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; known: {sorted(POLICIES)}"
        ) from None
