"""Original EMVS pipeline (Fig. 2 / Fig. 3 left).

Full-precision floating-point arithmetic, bilinear DSI voting, and event
distortion correction applied per *frame* after aggregation — the reference
behaviour Eventor is measured against.

This class is a thin facade: it binds the *original* dataflow policy to a
:class:`~repro.core.engine.ReconstructionEngine` and runs the stream
through it (batch = push-all + finish).
"""

from __future__ import annotations

from repro.core.config import EMVSConfig
from repro.core.engine import ExecutionBackend, ReconstructionEngine
from repro.core.results import EMVSResult
from repro.core.policy import CorrectionScheduling, DataflowPolicy
from repro.core.voting import VotingMethod
from repro.events.containers import EventArray
from repro.fixedpoint.quantize import FLOAT_SCHEMA, QuantizationSchema
from repro.geometry.camera import PinholeCamera
from repro.geometry.trajectory import Trajectory


class EMVSPipeline:
    """Reference EMVS (original dataflow).

    Parameters
    ----------
    camera:
        Sensor calibration (with distortion, if any).
    config:
        Shared EMVS parameters.
    depth_range:
        DSI depth bounds in each reference frame.
    voting:
        DSI voting kernel; bilinear is the original behaviour, nearest is
        exposed for the Fig. 4a ablation.
    schema:
        Quantization schema; full-precision by default, exposed for the
        Fig. 4b ablation.
    backend:
        Execution backend name (see :data:`repro.core.engine.BACKENDS`).
    """

    name = "emvs-original"

    def __init__(
        self,
        camera: PinholeCamera,
        config: EMVSConfig | None = None,
        depth_range: tuple[float, float] = (0.5, 5.0),
        voting: VotingMethod = VotingMethod.BILINEAR,
        schema: QuantizationSchema = FLOAT_SCHEMA,
        backend: str | ExecutionBackend = "numpy-reference",
    ):
        self.camera = camera
        self.config = config or EMVSConfig()
        self.depth_range = depth_range
        self.voting = voting
        self.schema = schema
        self.backend = backend
        self.policy = DataflowPolicy(
            correction=CorrectionScheduling.PER_FRAME,
            voting=voting,
            schema=schema,
            integer_scores=False,
            name=self.name,
        )

    def run(self, events: EventArray, trajectory: Trajectory) -> EMVSResult:
        """Reconstruct from a full event stream with known trajectory."""
        engine = ReconstructionEngine(
            self.camera,
            trajectory,
            self.config,
            self.depth_range,
            policy=self.policy,
            backend=self.backend,
        )
        return engine.run(events)
