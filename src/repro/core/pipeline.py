"""Original EMVS pipeline (Fig. 2 / Fig. 3 left).

Full-precision floating-point arithmetic, bilinear DSI voting, and event
distortion correction applied per *frame* after aggregation — the reference
behaviour Eventor is measured against.
"""

from __future__ import annotations

import time

from repro.core.config import EMVSConfig
from repro.core.keyframes import KeyframeSelector
from repro.core.mapper import EMVSMapper, EMVSResult, KeyframeReconstruction
from repro.core.pointcloud import PointCloud
from repro.core.voting import VotingMethod
from repro.events.containers import EventArray
from repro.events.packetizer import aggregate_frames
from repro.fixedpoint.quantize import FLOAT_SCHEMA, QuantizationSchema
from repro.geometry.camera import PinholeCamera
from repro.geometry.distortion import NoDistortion
from repro.geometry.trajectory import Trajectory


class EMVSPipeline:
    """Reference EMVS (original dataflow).

    Parameters
    ----------
    camera:
        Sensor calibration (with distortion, if any).
    config:
        Shared EMVS parameters.
    depth_range:
        DSI depth bounds in each reference frame.
    voting:
        DSI voting kernel; bilinear is the original behaviour, nearest is
        exposed for the Fig. 4a ablation.
    schema:
        Quantization schema; full-precision by default, exposed for the
        Fig. 4b ablation.
    """

    name = "emvs-original"

    def __init__(
        self,
        camera: PinholeCamera,
        config: EMVSConfig | None = None,
        depth_range: tuple[float, float] = (0.5, 5.0),
        voting: VotingMethod = VotingMethod.BILINEAR,
        schema: QuantizationSchema = FLOAT_SCHEMA,
    ):
        self.camera = camera
        self.config = config or EMVSConfig()
        self.depth_range = depth_range
        self.voting = voting
        self.schema = schema

    # ------------------------------------------------------------------
    def _correct_frame_events(self, frame) -> None:
        """Per-frame distortion correction (original scheduling).

        The original dataflow aggregates raw events first and undistorts
        each aggregated frame as a batch.
        """
        if isinstance(self.camera.distortion, NoDistortion):
            return
        corrected = self.camera.undistort_pixels(frame.events.xy)
        frame.events = frame.events.with_coordinates(corrected)

    def run(self, events: EventArray, trajectory: Trajectory) -> EMVSResult:
        """Reconstruct from a full event stream with known trajectory."""
        mapper = EMVSMapper(
            self.camera,
            self.config,
            self.depth_range,
            schema=self.schema,
            voting=self.voting,
            integer_scores=False,
        )
        selector = KeyframeSelector(self.config.keyframe_distance)

        t0 = time.perf_counter()
        frames = aggregate_frames(events, trajectory, self.config.frame_size)
        mapper.profile.add_time("A", time.perf_counter() - t0)

        keyframes: list[KeyframeReconstruction] = []
        cloud = PointCloud()
        for frame in frames:
            self._correct_frame_events(frame)
            if selector.is_new_keyframe(frame.T_wc):
                frame.is_keyframe = True
                reconstruction = mapper.finalize_reference() if mapper.dsi else None
                if reconstruction is not None:
                    keyframes.append(reconstruction)
                    cloud = cloud.merge(mapper.lift_to_cloud(reconstruction))
                mapper.start_reference(frame.T_wc)
            mapper.process_frame(frame)

        reconstruction = mapper.finalize_reference() if mapper.dsi else None
        if reconstruction is not None:
            keyframes.append(reconstruction)
            cloud = cloud.merge(mapper.lift_to_cloud(reconstruction))

        return EMVSResult(keyframes=keyframes, cloud=cloud, profile=mapper.profile)
