"""Configuration of the EMVS pipelines."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DepthSampling(enum.Enum):
    """How depth-plane positions are distributed in ``[z_min, z_max]``.

    Inverse-depth-uniform sampling (the EMVS default) concentrates planes
    near the camera where a pixel of disparity corresponds to less depth.
    """

    INVERSE = "inverse"
    LINEAR = "linear"


@dataclass(frozen=True)
class DetectionConfig:
    """Scene-structure detection (stage ``D``) parameters.

    Mirrors the adaptive Gaussian thresholding + median filtering of the
    reference EMVS implementation: the confidence map is normalized to
    0-255 and a pixel is kept when it exceeds the local (Gaussian-blurred)
    mean by ``offset`` (so the threshold is event-rate invariant); the
    surviving depth map is median-filtered to reject isolated outliers.
    """

    gaussian_sigma: float = 2.0
    offset: float = 14.0
    median_size: int = 5
    min_votes: float = 2.0
    #: Parabolic sub-voxel refinement of the depth estimate along the DSI
    #: column (an extension beyond the paper; removes the depth-plane
    #: quantization floor).  Off by default to match the published system.
    subvoxel: bool = False

    def __post_init__(self) -> None:
        if self.gaussian_sigma <= 0:
            raise ValueError("gaussian_sigma must be positive")
        if self.median_size % 2 != 1:
            raise ValueError("median_size must be odd")


@dataclass(frozen=True)
class EMVSConfig:
    """Parameters shared by the original and reformulated pipelines.

    Attributes
    ----------
    n_depth_planes:
        Number of DSI slices ``Nz``.
    depth_sampling:
        Plane distribution (inverse-depth uniform by default).
    frame_size:
        Events per aggregated frame (1024 in the paper).
    keyframe_distance:
        Translation (metres) from the current reference view beyond which a
        new key frame is selected and the DSI is re-seated.  ``None``
        disables key-framing (single reference for the whole stream).
    detection:
        Stage ``D`` parameters.
    """

    n_depth_planes: int = 100
    depth_sampling: DepthSampling = DepthSampling.INVERSE
    frame_size: int = 1024
    keyframe_distance: float | None = None
    detection: DetectionConfig = field(default_factory=DetectionConfig)

    def __post_init__(self) -> None:
        if self.n_depth_planes < 2:
            raise ValueError("need at least 2 depth planes")
        if self.frame_size < 1:
            raise ValueError("frame_size must be positive")
        if self.keyframe_distance is not None and self.keyframe_distance <= 0:
            raise ValueError("keyframe_distance must be positive (or None)")
