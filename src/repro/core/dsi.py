"""Disparity Space Image (DSI) — the ray-density volume.

The DSI discretizes the viewing space of a *virtual camera* placed at the
reference viewpoint into ``Nz`` depth slices of ``h x w`` voxels (``w``, ``h``
being the sensor resolution).  Each voxel stores the number of back-projected
viewing rays that pass through it; local maxima of this ray-density function
mark likely scene points.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DepthSampling
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3


def depth_planes(
    z_min: float,
    z_max: float,
    n: int,
    sampling: DepthSampling = DepthSampling.INVERSE,
) -> np.ndarray:
    """Depth-plane positions ``{Z_i}`` in the virtual-camera frame.

    Inverse sampling spaces planes uniformly in ``1/Z`` (the EMVS default:
    equal disparity steps); linear sampling spaces them uniformly in ``Z``.
    """
    if not (0 < z_min < z_max):
        raise ValueError(f"need 0 < z_min < z_max, got [{z_min}, {z_max}]")
    if n < 2:
        raise ValueError("need at least 2 planes")
    if sampling is DepthSampling.INVERSE:
        return 1.0 / np.linspace(1.0 / z_min, 1.0 / z_max, n)
    return np.linspace(z_min, z_max, n)


class DSI:
    """Ray-density volume attached to a reference viewpoint.

    Parameters
    ----------
    camera:
        Sensor intrinsics; the volume is ``camera.height x camera.width``
        per slice.
    T_w_ref:
        Pose of the virtual camera (the reference view).
    depths:
        ``(Nz,)`` slice depths from :func:`depth_planes`.
    integer_scores:
        Integer vote counters (the quantized pipeline) instead of float
        weights (bilinear voting).
    score_limit:
        Saturation bound of the score registers (65535 for the paper's
        16-bit DSI scores).  Because votes are non-negative, clamping the
        running totals at read-out is arithmetically identical to the
        hardware's saturate-on-every-add, so the backing store can stay
        int64 for fast scatter-adds.
    """

    def __init__(
        self,
        camera: PinholeCamera,
        T_w_ref: SE3,
        depths: np.ndarray,
        integer_scores: bool = False,
        score_limit: int | None = None,
    ):
        depths = np.asarray(depths, dtype=float)
        if depths.ndim != 1 or depths.shape[0] < 2:
            raise ValueError("depths must be a 1-D array with >= 2 entries")
        if np.any(np.diff(depths) <= 0):
            raise ValueError("depths must be strictly increasing")
        if score_limit is not None and score_limit <= 0:
            raise ValueError("score_limit must be positive")
        self.camera = camera
        self.T_w_ref = T_w_ref
        self.depths = depths
        self.score_limit = score_limit
        dtype = np.int64 if integer_scores else np.float64
        self.scores = np.zeros(
            (depths.shape[0], camera.height, camera.width), dtype=dtype
        )

    # ------------------------------------------------------------------
    @property
    def n_planes(self) -> int:
        """Number of depth planes ``Nz``."""
        return self.scores.shape[0]

    @property
    def shape(self) -> tuple[int, int, int]:
        """Score-volume shape ``(Nz, H, W)``."""
        return self.scores.shape

    @property
    def n_voxels(self) -> int:
        """Total voxel count ``Nz * H * W``."""
        return int(np.prod(self.scores.shape))

    def memory_bytes(self) -> int:
        """Score-volume storage footprint in bytes."""
        return self.scores.nbytes

    def total_votes(self) -> float:
        """Sum of all scores accumulated in the volume."""
        return float(self.scores.sum())

    def reset(self, T_w_ref: SE3 | None = None) -> None:
        """Zero the volume, optionally re-seating it at a new reference."""
        self.scores[...] = 0
        if T_w_ref is not None:
            self.T_w_ref = T_w_ref

    # ------------------------------------------------------------------
    @property
    def flat_scores(self) -> np.ndarray:
        """Writable flat view for the in-place voting kernels."""
        return self.scores.reshape(-1)

    def accumulate_counts(self, counts: np.ndarray) -> None:
        """Add a per-voxel vote-count volume (already shaped like scores)."""
        if counts.shape != self.scores.shape:
            raise ValueError("vote volume shape mismatch")
        self.scores += counts.astype(self.scores.dtype, copy=False)

    def effective_scores(self) -> np.ndarray:
        """Scores with register saturation applied (see ``score_limit``)."""
        if self.score_limit is None:
            return self.scores
        return np.minimum(self.scores, self.score_limit)

    def max_projection(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-pixel (confidence, depth) of the ray-density maximum.

        Integer (nearest-voting) scores routinely tie across a plateau of
        adjacent depth planes; picking the first maximum would bias every
        such pixel toward the camera by up to the plateau width.  Ties are
        therefore resolved to the *centre* of the maximal plateau — for
        float scores ties are measure-zero, so this is the plain argmax.

        Returns
        -------
        confidence:
            ``(H, W)`` maximum score along depth.
        depth:
            ``(H, W)`` depth of the (tie-centred) maximizing slice.
        """
        confidence, mid = self.argmax_projection()
        return confidence, self.depths[mid]

    def argmax_projection(self) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`max_projection` but returning plane *indices*."""
        scores = self.effective_scores()
        first = np.argmax(scores, axis=0)
        last = scores.shape[0] - 1 - np.argmax(scores[::-1], axis=0)
        confidence = np.take_along_axis(scores, first[None], axis=0)[0]
        # Centre of the maximal run.  When the run is not contiguous this
        # still lands inside the tied span, which is all the detection
        # stage needs.
        mid = (first + last) // 2
        return confidence.astype(float), mid

    def slice_image(self, i: int) -> np.ndarray:
        """Score image of depth plane ``i`` (view)."""
        return self.scores[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DSI(Nz={self.n_planes}, {self.camera.height}x{self.camera.width}, "
            f"z=[{self.depths[0]:.3f}, {self.depths[-1]:.3f}], "
            f"dtype={self.scores.dtype})"
        )
