"""Point clouds and depth-map merging (stage ``M``).

After scene-structure detection at a key reference view the semi-dense
depth map is lifted to a local point cloud and merged into the global map;
the DSI is then re-seated at the new reference view.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.depthmap import SemiDenseDepthMap
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3


class PointCloud:
    """World-frame 3D point set with basic map-maintenance operations."""

    __slots__ = ("points",)

    def __init__(self, points: np.ndarray | None = None):
        if points is None:
            points = np.empty((0, 3), dtype=float)
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must be (N, 3), got {points.shape}")
        self.points = points

    # ------------------------------------------------------------------
    @staticmethod
    def from_depth_map(
        depth_map: SemiDenseDepthMap,
        camera: PinholeCamera,
        T_w_ref: SE3,
    ) -> "PointCloud":
        """Lift a semi-dense depth map at a reference view to world points."""
        pixels = depth_map.pixels()
        if pixels.shape[0] == 0:
            return PointCloud()
        rays = camera.back_project(pixels, undistort=False)
        local = rays * depth_map.depths()[:, None]
        return PointCloud(T_w_ref.transform(local))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.points.shape[0]

    def merge(self, other: "PointCloud") -> "PointCloud":
        """Concatenate two clouds (map updating)."""
        if len(other) == 0:
            return PointCloud(self.points.copy())
        if len(self) == 0:
            return PointCloud(other.points.copy())
        return PointCloud(np.vstack([self.points, other.points]))

    def radius_filter(self, radius: float, min_neighbors: int = 3) -> "PointCloud":
        """Radius-outlier removal (as the reference implementation applies).

        Keeps points with at least ``min_neighbors`` other points within
        ``radius``.
        """
        if len(self) == 0:
            return PointCloud()
        tree = cKDTree(self.points)
        counts = tree.query_ball_point(
            self.points, r=radius, return_length=True
        )
        keep = counts >= (min_neighbors + 1)  # query includes the point itself
        return PointCloud(self.points[keep])

    def voxel_downsample(self, voxel: float) -> "PointCloud":
        """Keep one (averaged) point per occupied voxel."""
        if len(self) == 0:
            return PointCloud()
        if voxel <= 0:
            raise ValueError("voxel size must be positive")
        keys = np.floor(self.points / voxel).astype(np.int64)
        _, inverse = np.unique(keys, axis=0, return_inverse=True)
        sums = np.zeros((inverse.max() + 1, 3))
        np.add.at(sums, inverse, self.points)
        counts = np.bincount(inverse).astype(float)
        return PointCloud(sums / counts[:, None])

    # ------------------------------------------------------------------
    # Analysis helpers (used by the Fig. 7b reconstruction bench)
    # ------------------------------------------------------------------
    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounds ``(min_xyz, max_xyz)`` of the cloud."""
        if len(self) == 0:
            raise ValueError("empty cloud has no bounding box")
        return self.points.min(axis=0), self.points.max(axis=0)

    def centroid(self) -> np.ndarray:
        """Mean point of the cloud."""
        if len(self) == 0:
            raise ValueError("empty cloud has no centroid")
        return self.points.mean(axis=0)

    def plane_fit_residual(self, mask: np.ndarray | None = None) -> float:
        """RMS distance to the least-squares plane through (a subset of) points.

        Small residuals on per-plane clusters show the reconstruction
        recovers planar structure; used to quantify the Fig. 7b qualitative
        result.
        """
        pts = self.points if mask is None else self.points[mask]
        if pts.shape[0] < 3:
            raise ValueError("need at least 3 points for a plane fit")
        centered = pts - pts.mean(axis=0)
        _, s, _ = np.linalg.svd(centered, full_matrices=False)
        return float(s[-1] / np.sqrt(pts.shape[0]))

    def cluster_by_depth(self, edges: np.ndarray) -> list[np.ndarray]:
        """Split points into depth bands along world Z; returns masks."""
        z = self.points[:, 2]
        return [
            (z >= lo) & (z < hi) for lo, hi in zip(edges[:-1], edges[1:])
        ]
