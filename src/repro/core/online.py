"""Online (streaming) EMVS front-end.

The batch pipelines (:class:`EMVSPipeline`, :class:`ReformulatedPipeline`)
consume a complete recording.  A SLAM system instead feeds events and
poses *incrementally*; :class:`OnlineEMVS` provides that interface: push
event chunks as they arrive, receive key-frame reconstructions through a
callback the moment their reference segment closes, and query the live
global map at any time.  It is a thin facade over one long-lived
:class:`~repro.core.engine.ReconstructionEngine` carrying the exact
reformulated dataflow policy, so results match the batch pipeline
event-for-event.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.config import EMVSConfig
from repro.core.engine import ExecutionBackend, ReconstructionEngine
from repro.core.results import KeyframeReconstruction, PipelineProfile
from repro.core.policy import CorrectionScheduling, DataflowPolicy
from repro.core.pointcloud import PointCloud
from repro.core.voting import VotingMethod
from repro.events.containers import EventArray
from repro.fixedpoint.quantize import EVENTOR_SCHEMA, QuantizationSchema
from repro.geometry.camera import PinholeCamera
from repro.geometry.trajectory import Trajectory


class OnlineEMVS:
    """Incremental EMVS mapper with key-frame callbacks.

    Parameters
    ----------
    camera, config, depth_range, schema, voting:
        As for the batch pipelines.
    trajectory:
        Pose source.  (A live system would swap in its tracker here; any
        object with ``sample(t) -> SE3`` works.)
    on_keyframe:
        Called with each finished :class:`KeyframeReconstruction` as soon
        as its reference segment closes.
    backend:
        Execution backend name (see :data:`repro.core.engine.BACKENDS`).
    """

    def __init__(
        self,
        camera: PinholeCamera,
        trajectory: Trajectory,
        config: EMVSConfig | None = None,
        depth_range: tuple[float, float] = (0.5, 5.0),
        schema: QuantizationSchema = EVENTOR_SCHEMA,
        voting: VotingMethod = VotingMethod.NEAREST,
        on_keyframe: Callable[[KeyframeReconstruction], None] | None = None,
        backend: str | ExecutionBackend = "numpy-reference",
    ):
        self.camera = camera
        self.config = config or EMVSConfig()
        self.trajectory = trajectory
        self.on_keyframe = on_keyframe
        self._engine = ReconstructionEngine(
            camera,
            trajectory,
            self.config,
            depth_range,
            policy=DataflowPolicy(
                correction=CorrectionScheduling.PER_EVENT,
                voting=voting,
                schema=schema,
                integer_scores=schema.enabled,
                name="online",
            ),
            backend=backend,
            # Late-bound so reassigning ``self.on_keyframe`` after
            # construction keeps working.
            on_keyframe=self._emit_keyframe,
        )

    # ------------------------------------------------------------------
    def _emit_keyframe(self, reconstruction: KeyframeReconstruction) -> None:
        if self.on_keyframe is not None:
            self.on_keyframe(reconstruction)

    # ------------------------------------------------------------------
    @property
    def engine(self) -> ReconstructionEngine:
        """The underlying streaming engine (shared dataflow owner)."""
        return self._engine

    @property
    def cloud(self) -> PointCloud:
        """Global map merged so far (finished key frames only)."""
        return self._engine.cloud

    @property
    def keyframes(self) -> list[KeyframeReconstruction]:
        """Finished key-frame reconstructions so far (copy)."""
        return self._engine.keyframes

    @property
    def events_pushed(self) -> int:
        """Total events fed through :meth:`push` so far."""
        return self._engine.events_pushed

    @property
    def profile(self) -> PipelineProfile:
        """Work accounting so far (frames, votes, dropped events...)."""
        return self._engine.profile

    # ------------------------------------------------------------------
    def push(self, events: EventArray) -> int:
        """Feed a chunk of (time-ordered) events; returns frames processed.

        Chunks may be of any size; fixed 1024-event frames are cut
        internally, exactly as the hardware ingest does.
        """
        return self._engine.push(events)

    def finish(self) -> PointCloud:
        """Close the current segment and return the final global map.

        The trailing partial frame (fewer than ``frame_size`` events) is
        dropped, as the fixed-size hardware buffers would; its size is
        recorded in ``profile.dropped_events``.
        """
        return self._engine.finish().cloud

    def current_depth_map(self):
        """Detection over the in-progress (unfinished) reference segment.

        Lets a consumer preview depth before the key frame closes; the
        DSI keeps accumulating afterwards.
        """
        return self._engine.preview_depth_map()
