"""Online (streaming) EMVS front-end.

The batch pipelines (:class:`EMVSPipeline`, :class:`ReformulatedPipeline`)
consume a complete recording.  A SLAM system instead feeds events and
poses *incrementally*; :class:`OnlineEMVS` provides that interface: push
event chunks as they arrive, receive key-frame reconstructions through a
callback the moment their reference segment closes, and query the live
global map at any time.  Internally it is the exact reformulated dataflow
(streaming distortion correction, nearest voting, Table 1 quantization),
so results match the batch pipeline event-for-event.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.config import EMVSConfig
from repro.core.keyframes import KeyframeSelector
from repro.core.mapper import EMVSMapper, KeyframeReconstruction
from repro.core.pointcloud import PointCloud
from repro.core.voting import VotingMethod
from repro.events.containers import EventArray
from repro.events.packetizer import Packetizer
from repro.fixedpoint.quantize import EVENTOR_SCHEMA, QuantizationSchema
from repro.geometry.camera import PinholeCamera
from repro.geometry.distortion import NoDistortion
from repro.geometry.trajectory import Trajectory


class OnlineEMVS:
    """Incremental EMVS mapper with key-frame callbacks.

    Parameters
    ----------
    camera, config, depth_range, schema, voting:
        As for the batch pipelines.
    trajectory:
        Pose source.  (A live system would swap in its tracker here; any
        object with ``sample(t) -> SE3`` works.)
    on_keyframe:
        Called with each finished :class:`KeyframeReconstruction` as soon
        as its reference segment closes.
    """

    def __init__(
        self,
        camera: PinholeCamera,
        trajectory: Trajectory,
        config: EMVSConfig | None = None,
        depth_range: tuple[float, float] = (0.5, 5.0),
        schema: QuantizationSchema = EVENTOR_SCHEMA,
        voting: VotingMethod = VotingMethod.NEAREST,
        on_keyframe: Callable[[KeyframeReconstruction], None] | None = None,
    ):
        self.camera = camera
        self.config = config or EMVSConfig()
        self.trajectory = trajectory
        self.on_keyframe = on_keyframe
        self._mapper = EMVSMapper(
            camera,
            self.config,
            depth_range,
            schema=schema,
            voting=voting,
            integer_scores=schema.enabled,
        )
        self._selector = KeyframeSelector(self.config.keyframe_distance)
        self._packetizer = Packetizer(trajectory, self.config.frame_size)
        self._cloud = PointCloud()
        self._keyframes: list[KeyframeReconstruction] = []
        self._events_pushed = 0

    # ------------------------------------------------------------------
    @property
    def cloud(self) -> PointCloud:
        """Global map merged so far (finished key frames only)."""
        return self._cloud

    @property
    def keyframes(self) -> list[KeyframeReconstruction]:
        return list(self._keyframes)

    @property
    def events_pushed(self) -> int:
        return self._events_pushed

    # ------------------------------------------------------------------
    def push(self, events: EventArray) -> int:
        """Feed a chunk of (time-ordered) events; returns frames processed.

        Chunks may be of any size; fixed 1024-event frames are cut
        internally, exactly as the hardware ingest does.
        """
        if len(events) == 0:
            return 0
        if not isinstance(self.camera.distortion, NoDistortion):
            # Streaming per-event correction, before aggregation.
            events = events.with_coordinates(
                self.camera.undistort_pixels(events.xy)
            )
        self._events_pushed += len(events)
        frames = self._packetizer.push(events)
        for frame in frames:
            if self._selector.is_new_keyframe(frame.T_wc):
                frame.is_keyframe = True
                self._finalize_segment()
                self._mapper.start_reference(frame.T_wc)
            self._mapper.process_frame(frame)
        return len(frames)

    def finish(self) -> PointCloud:
        """Close the current segment and return the final global map.

        The trailing partial frame (fewer than ``frame_size`` events) is
        dropped, as the fixed-size hardware buffers would.
        """
        self._finalize_segment()
        return self._cloud

    def current_depth_map(self):
        """Detection over the in-progress (unfinished) reference segment.

        Lets a consumer preview depth before the key frame closes; the
        DSI keeps accumulating afterwards.
        """
        reconstruction = self._mapper.finalize_reference()
        return None if reconstruction is None else reconstruction.depth_map

    # ------------------------------------------------------------------
    def _finalize_segment(self) -> None:
        reconstruction = (
            self._mapper.finalize_reference() if self._mapper.dsi else None
        )
        if reconstruction is None:
            return
        self._keyframes.append(reconstruction)
        self._cloud = self._cloud.merge(
            self._mapper.lift_to_cloud(reconstruction)
        )
        if self.on_keyframe is not None:
            self.on_keyframe(reconstruction)
