"""Event back-projection (stage ``P``).

Implements the two-step decomposition used by both EMVS and Eventor:

1. **Canonical back-projection** ``P(Z0)`` — transfer each event pixel to
   the virtual camera through the canonical plane ``Z = Z0`` using the
   plane-induced homography ``H_Z0`` (computed once per frame).
2. **Proportional back-projection** ``P(Z0 -> Zi)`` — slide the canonical
   image point to every other depth plane with the per-frame affine
   coefficients φ (see :mod:`repro.geometry.homography` for the identity
   and its derivation).

The :class:`BackProjector` bundles the per-frame parameter computation
(sub-tasks ➊ *Compute Homography Matrix* and ➌ *Compute Proportional
Back-Projection Parameters*) with the per-event maps (➋ and ➍), optionally
pushing every quantity through a :class:`~repro.fixedpoint.QuantizationSchema`
— which is exactly what distinguishes the accelerator's arithmetic from the
float reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.quantize import FLOAT_SCHEMA, QuantizationSchema
from repro.geometry.camera import PinholeCamera
from repro.geometry.homography import (
    apply_homography_with_scale,
    apply_homography_with_scale_batch,
    apply_proportional,
    canonical_plane_homography,
    canonical_plane_homography_batch,
    event_camera_center_in_virtual,
    event_camera_centers_in_virtual,
    proportional_coefficients,
    proportional_coefficients_batch,
)
from repro.geometry.se3 import SE3


@dataclass(frozen=True)
class FrameParameters:
    """Per-frame constants for back-projection.

    ``H_Z0`` is the canonical-plane homography; ``phi`` holds the
    ``(Nz, 3)`` proportional coefficients ``(alpha_i, beta_i, gamma_i)``.
    Both are already quantized when the owning projector carries a
    quantization schema.
    """

    H_Z0: np.ndarray
    phi: np.ndarray


@dataclass(frozen=True)
class BatchFrameParameters:
    """Stacked :class:`FrameParameters` of one frame batch.

    ``H_Z0`` is ``(B, 3, 3)`` and ``phi`` is ``(B, Nz, 3)``; slice ``k``
    is bit-identical to the :class:`FrameParameters` the scalar path
    computes for frame ``k``.
    """

    H_Z0: np.ndarray
    phi: np.ndarray

    def __len__(self) -> int:
        return self.H_Z0.shape[0]

    def frame(self, k: int) -> FrameParameters:
        """The scalar parameter set of frame ``k`` (views, no copies)."""
        return FrameParameters(H_Z0=self.H_Z0[k], phi=self.phi[k])


class BackProjector:
    """Back-projects event frames into the DSI of a reference view.

    Parameters
    ----------
    camera:
        Shared intrinsics of the (undistorted) event camera and the
        virtual camera.
    T_w_ref:
        Reference-view pose (where the DSI lives).
    depths:
        DSI depth-plane positions in the reference frame.
    schema:
        Quantization schema; :data:`~repro.fixedpoint.FLOAT_SCHEMA` gives
        the full-precision reference behaviour.
    """

    def __init__(
        self,
        camera: PinholeCamera,
        T_w_ref: SE3,
        depths: np.ndarray,
        schema: QuantizationSchema = FLOAT_SCHEMA,
    ):
        self.camera = camera
        self.T_w_ref = T_w_ref
        self.depths = np.asarray(depths, dtype=float)
        self.schema = schema
        #: Canonical plane: the nearest DSI slice, as in the reference
        #: implementation (any slice works; the nearest keeps H_Z0 well
        #: conditioned for forward motion).
        self.z0 = float(self.depths[0])

    # ------------------------------------------------------------------
    # Per-frame parameter computation (ARM-side tasks in Eventor)
    # ------------------------------------------------------------------
    def frame_parameters(self, T_w_event: SE3) -> FrameParameters:
        """Compute (and quantize) ``H_Z0`` and φ for one event frame."""
        H = canonical_plane_homography(self.T_w_ref, T_w_event, self.camera, self.z0)
        # Scale so the largest |entry| uses the available integer range —
        # homographies are projective (defined up to scale), and the
        # hardware normalizes by the third row anyway.
        H = H / np.abs(H).max()
        c = event_camera_center_in_virtual(self.T_w_ref, T_w_event)
        phi = proportional_coefficients(c, self.z0, self.depths, self.camera)
        return FrameParameters(
            H_Z0=self.schema.quantize_homography(H),
            phi=self.schema.quantize_phi(phi),
        )

    def frame_parameters_batch(
        self, rotations: np.ndarray, translations: np.ndarray
    ) -> BatchFrameParameters:
        """Batched :meth:`frame_parameters` over stacked event poses.

        One ``(B, 3, 3)`` inverse/matmul pass replaces ``B`` Python calls
        through :class:`~repro.geometry.se3.SE3`; every slice is
        bit-identical to the scalar computation (the equality the
        ``numpy-batch`` backend's bit-exactness rests on, pinned by unit
        tests).
        """
        H = canonical_plane_homography_batch(
            self.T_w_ref, rotations, translations, self.camera, self.z0
        )
        H = H / np.abs(H).max(axis=(1, 2), keepdims=True)
        c = event_camera_centers_in_virtual(self.T_w_ref, translations)
        phi = proportional_coefficients_batch(c, self.z0, self.depths, self.camera)
        return BatchFrameParameters(
            H_Z0=self.schema.quantize_homography(H),
            phi=self.schema.quantize_phi(phi),
        )

    # ------------------------------------------------------------------
    # Per-event maps (FPGA-side tasks in Eventor)
    # ------------------------------------------------------------------
    def canonical(
        self, params: FrameParameters, xy: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``P(Z0)``: event pixels -> canonical-plane pixels.

        Returns ``(uv0, valid)``; invalid rows (behind the plane, or not
        representable in the canonical coordinate format) are flagged, not
        silently clamped — the accelerator's projection-miss judgement.
        """
        xy = self.schema.quantize_event_coords(np.asarray(xy, dtype=float))
        uv0, scale = apply_homography_with_scale(params.H_Z0, xy)
        valid = scale > 0  # behind-plane rejection (divider sign flag)
        valid &= ~self.schema.canonical_overflow(uv0[:, 0])
        valid &= ~self.schema.canonical_overflow(uv0[:, 1])
        uv0 = np.where(valid[:, None], uv0, 0.0)
        uv0 = self.schema.quantize_canonical(uv0)
        return uv0, valid

    def canonical_batch(
        self, params: BatchFrameParameters, xy: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`canonical` over a ``(B, N, 2)`` event block.

        Frame ``b``'s pixels go through ``params.H_Z0[b]`` in one stacked
        matmul; validity masking and quantization are elementwise, so the
        ``(B, N, 2)`` / ``(B, N)`` result slices are bit-identical to the
        per-frame path.
        """
        xy = self.schema.quantize_event_coords(np.asarray(xy, dtype=float))
        uv0, scale = apply_homography_with_scale_batch(params.H_Z0, xy)
        valid = scale > 0
        valid &= ~self.schema.canonical_overflow(uv0[..., 0])
        valid &= ~self.schema.canonical_overflow(uv0[..., 1])
        uv0 = np.where(valid[..., None], uv0, 0.0)
        uv0 = self.schema.quantize_canonical(uv0)
        return uv0, valid

    def proportional(
        self,
        params: FrameParameters,
        uv0: np.ndarray,
        out: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``P(Z0 -> Zi)``: canonical pixels -> per-plane pixel coordinates.

        Returns ``(u, v)`` of shape ``(N, Nz)``.  No quantization is applied
        here: under nearest voting the subsequent rounding to integer voxel
        indices *is* the 8-bit plane-coordinate quantization of Table 1.
        ``out`` forwards to :func:`~repro.geometry.homography.apply_proportional`
        for allocation-free execution into scratch buffers.
        """
        return apply_proportional(params.phi, uv0, out=out)

    # ------------------------------------------------------------------
    def project_frame(
        self, T_w_event: SE3, xy: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Full ``P`` for one frame: returns ``(u, v, valid)``.

        ``u``/``v`` are ``(N, Nz)``; rows where ``valid`` is False must not
        vote (their coordinates are zeroed placeholders).
        """
        params = self.frame_parameters(T_w_event)
        uv0, valid = self.canonical(params, xy)
        u, v = self.proportional(params, uv0)
        u[~valid] = np.nan
        v[~valid] = np.nan
        return u, v, valid
