"""Semi-dense depth maps extracted from the DSI."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SemiDenseDepthMap:
    """Depth estimate at the reference viewpoint.

    Attributes
    ----------
    depth:
        ``(H, W)`` float array; ``NaN`` where no structure was detected.
    confidence:
        ``(H, W)`` ray-density score at the chosen depth.
    mask:
        ``(H, W)`` boolean detection mask (True = depth valid).
    """

    depth: np.ndarray
    confidence: np.ndarray
    mask: np.ndarray

    def __post_init__(self) -> None:
        if self.depth.shape != self.mask.shape or self.depth.shape != self.confidence.shape:
            raise ValueError("depth, confidence and mask must share a shape")

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Image shape ``(H, W)`` of the depth map."""
        return self.depth.shape

    @property
    def n_points(self) -> int:
        """Number of pixels with a depth estimate."""
        return int(self.mask.sum())

    @property
    def density(self) -> float:
        """Fraction of pixels carrying a depth estimate."""
        return self.n_points / self.mask.size if self.mask.size else 0.0

    def pixels(self) -> np.ndarray:
        """``(N, 2)`` pixel coordinates (x, y) of the detected points."""
        ys, xs = np.nonzero(self.mask)
        return np.stack([xs, ys], axis=1).astype(float)

    def depths(self) -> np.ndarray:
        """``(N,)`` depth values aligned with :meth:`pixels`."""
        return self.depth[self.mask]

    def confidences(self) -> np.ndarray:
        """``(N,)`` detection confidences aligned with :meth:`pixels`.

        The ray-density score at the chosen depth — the natural per-point
        weight for confidence-weighted map fusion.
        """
        return self.confidence[self.mask]

    def mean_depth(self) -> float:
        """Mean depth over the estimated pixels (NaN when empty)."""
        if self.n_points == 0:
            raise ValueError("empty depth map has no mean depth")
        return float(np.mean(self.depths()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SemiDenseDepthMap({self.shape[1]}x{self.shape[0]}, "
            f"{self.n_points} points, density={self.density:.3%})"
        )
