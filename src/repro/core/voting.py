"""Volumetric ray-counting (stage ``R``): DSI voting kernels.

Two voting schemes, matching Sec. 2.2 of the paper:

* **Bilinear voting** — each back-projected point spreads a unit vote over
  its four nearest voxels on the depth plane, weighted by proximity (like
  bilinear interpolation).  This is the reference EMVS behaviour.
* **Nearest voting** — each point casts a single integral vote into its
  nearest voxel.  Cheaper (one read-modify-write instead of four, integer
  scores) and the scheme Eventor implements; Fig. 4a shows the accuracy
  cost is ~1 % AbsRel.

The kernels accumulate *in place* into the DSI's flat score buffer.  A
frame touches at most ``frame_size * Nz`` voxels (~10^5), far fewer than
the volume (~4*10^6), so scatter-adds into the existing buffer beat
materializing per-frame count volumes by two orders of magnitude.
``np.ufunc.at`` handles the duplicate-index accumulation (and is fast on
NumPy >= 1.25, where it gained a specialized loop).
"""

from __future__ import annotations

import enum

import numpy as np


class VotingMethod(enum.Enum):
    """The two DSI voting schemes of the paper's Fig. 3 comparison."""
    BILINEAR = "bilinear"
    NEAREST = "nearest"


def _plane_index_grid(u: np.ndarray) -> np.ndarray:
    """(N, Nz) array whose entry [k, i] is the plane index i."""
    n, nz = u.shape
    return np.broadcast_to(np.arange(nz, dtype=np.int64)[None, :], (n, nz))


def _scatter_add(flat: np.ndarray, indices: np.ndarray, weights: np.ndarray | None) -> None:
    """``flat[indices] += weights`` with duplicate indices handled correctly."""
    if indices.size == 0:
        return
    if weights is None:
        np.add.at(flat, indices, 1)
    else:
        np.add.at(flat, indices, weights)


def nearest_vote_indices(
    u: np.ndarray,
    v: np.ndarray,
    shape: tuple[int, int, int],
) -> np.ndarray:
    """Flat DSI indices of the nearest-voxel votes (one per hit).

    Rounds half-up (``floor(x + 0.5)``), exactly like the accelerator's
    Nearest Voxel Finder, then bounds-checks the *integer* — keeping the
    software reference bit-compatible with the hardware model.  Non-finite
    coordinates mark projection misses and produce no index.
    """
    nz, h, w = shape
    if u.shape != v.shape or u.shape[1] != nz:
        raise ValueError("coordinate arrays must be (N, Nz) matching the DSI")
    finite = np.isfinite(u) & np.isfinite(v)
    with np.errstate(invalid="ignore"):
        iu = np.floor(np.where(finite, u, -10.0) + 0.5).astype(np.int64)
        iv = np.floor(np.where(finite, v, -10.0) + 0.5).astype(np.int64)
    valid = finite & (iu >= 0) & (iu < w) & (iv >= 0) & (iv < h)

    iz = _plane_index_grid(u)
    return (iz[valid] * h + iv[valid]) * w + iu[valid]


def vote_nearest_into(
    flat: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    shape: tuple[int, int, int],
) -> int:
    """Nearest-voxel voting into a flat ``(Nz*H*W,)`` score buffer.

    Parameters
    ----------
    flat:
        Flattened DSI scores, modified in place.
    u, v:
        ``(N, Nz)`` pixel coordinates of each event on each depth plane
        (non-finite entries mark projection misses and are skipped).
    shape:
        DSI shape ``(Nz, H, W)``.

    Returns
    -------
    Number of votes cast (in-bounds points).
    """
    lin = nearest_vote_indices(u, v, shape)
    _scatter_add(flat, lin, None)
    return int(lin.size)


def _bilinear_terms_core(
    uu: np.ndarray,
    vv: np.ndarray,
    shape: tuple[int, int, int],
    finite: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Corner expansion shared by the masked and miss-free entry points.

    ``uu``/``vv`` must be free of non-finite values (the caller has
    either substituted or filtered them); ``finite`` additionally
    restricts which rows may vote, or is ``None`` when every row may.
    """
    nz, h, w = shape
    if uu.shape != vv.shape or (uu.size and uu.shape[1] != nz):
        raise ValueError("coordinate arrays must be (N, Nz) matching the DSI")
    u0f = np.floor(uu)
    v0f = np.floor(vv)
    fu = uu - u0f
    fv = vv - v0f
    u0 = u0f.astype(np.int64)
    v0 = v0f.astype(np.int64)
    iz = _plane_index_grid(uu)

    voted = np.zeros(uu.shape, dtype=bool)
    indices: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    corners = (
        (u0, v0, (1.0 - fu) * (1.0 - fv)),
        (u0 + 1, v0, fu * (1.0 - fv)),
        (u0, v0 + 1, (1.0 - fu) * fv),
        (u0 + 1, v0 + 1, fu * fv),
    )
    for cu, cv, weight in corners:
        valid = (cu >= 0) & (cu < w) & (cv >= 0) & (cv < h) & (weight > 0)
        if finite is not None:
            valid &= finite
        if not np.any(valid):
            continue
        indices.append((iz[valid] * h + cv[valid]) * w + cu[valid])
        weights.append(weight[valid])
        voted |= valid
    if not indices:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64), 0
    return np.concatenate(indices), np.concatenate(weights), int(voted.sum())


def bilinear_vote_terms(
    u: np.ndarray,
    v: np.ndarray,
    shape: tuple[int, int, int],
) -> tuple[np.ndarray, np.ndarray, int]:
    """Flat indices + weights of the bilinear corner votes.

    Corners are emitted in the fixed (00, 10, 01, 11) order, so applying
    the terms with one in-order scatter-add reproduces the sequential
    per-corner accumulation bit for bit.  Returns ``(indices, weights,
    n_points)`` where ``n_points`` counts points that cast a full or
    partial vote.  Non-finite coordinates mark projection misses and
    produce no terms.
    """
    finite = np.isfinite(u) & np.isfinite(v)
    uu = np.where(finite, u, -10.0)
    vv = np.where(finite, v, -10.0)
    return _bilinear_terms_core(uu, vv, shape, finite)


def bilinear_vote_terms_finite(
    u: np.ndarray,
    v: np.ndarray,
    shape: tuple[int, int, int],
) -> tuple[np.ndarray, np.ndarray, int]:
    """:func:`bilinear_vote_terms` for miss-free coordinate arrays.

    Callers that already dropped the projection-miss rows (so ``u`` and
    ``v`` contain no NaNs) skip the finiteness masking passes;
    bit-identical to the general kernel on finite input.
    """
    return _bilinear_terms_core(u, v, shape, None)


def vote_bilinear_into(
    flat: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    shape: tuple[int, int, int],
) -> int:
    """Bilinear voting into a flat score buffer.

    Each point's unit vote is split over the four surrounding voxels;
    out-of-bounds corners are dropped individually, so a point near the
    image border contributes only its in-bounds share — matching the
    reference implementation.  Returns the number of points that cast a
    (full or partial) vote.
    """
    lin, weights, n_points = bilinear_vote_terms(u, v, shape)
    _scatter_add(flat, lin, weights)
    return n_points


class BatchedNearestVoter:
    """Fused proportional + nearest-vote kernel over whole frame batches.

    The per-frame reference path materializes ``(N, Nz)`` coordinate grids,
    compares every entry against the volume bounds, masks, and scatters —
    roughly twenty array passes per frame, two of them fresh allocations.
    This kernel executes a batch of ``B`` frames of one reference segment
    with three structural changes (all bit-exact; see
    ``tests/unit/test_voting.py``):

    * **no validity mask** — votes accumulate in a *border-padded* count
      volume ``(Nz, H+2, W+2)``.  Rounded coordinates are clipped into the
      one-voxel apron, so out-of-bounds votes land in border cells instead
      of being compared, masked and redirected.  Interior cells receive
      exactly the votes the reference kernel casts; the vote count is
      recovered arithmetically (total scatters minus border hits) instead
      of via per-element ``valid.sum()`` passes.
    * **projection misses by cancellation** — miss rows (already zeroed by
      the canonical stage) vote like any other row, then their (identical,
      gathered) indices are scattered again with weight ``-1``.  Integer
      counts make the cancellation exact and keep the hot loop rectangular.
    * **segment-lifetime scratch** — ``u``/``v`` grids and the batch index
      block are allocated once and rewritten, and the whole batch is
      scattered through a single ``np.add.at`` pass.

    The rounding (half-up via ``floor(x + 0.5)``) and bounds decisions are
    applied to the same float values as :func:`nearest_vote_indices`, so
    counts match the reference voxel for voxel.
    """

    def __init__(self, shape: tuple[int, int, int]):
        nz, h, w = shape
        self.shape = shape
        self._hp, self._wp = h + 2, w + 2
        n_padded = nz * self._hp * self._wp
        self._counts = np.zeros(n_padded, dtype=np.int64)
        # int32 scatter indices halve the memory traffic of the final
        # pass; per-plane indices always fit, but keep the whole-volume
        # miss-cancellation indices in int64 when the volume demands it.
        self._lin_dtype = (
            np.int32 if n_padded < np.iinfo(np.int32).max else np.int64
        )
        self._plane_base = np.arange(nz, dtype=np.int64)[:, None] * (
            self._hp * self._wp
        )
        self._u: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._lin: np.ndarray | None = None
        self._scatters = 0
        self._votes_reported = 0

    # ------------------------------------------------------------------
    def _ensure_scratch(self, batch: int, n: int) -> None:
        nz = self.shape[0]
        # Plane-major scratch: the scatter walks one (cache-sized) padded
        # plane at a time instead of striding across the whole volume.
        if self._u is None or self._u.shape != (nz, n):
            self._u = np.empty((nz, n))
            self._v = np.empty((nz, n))
        if self._lin is None or self._lin.shape[0] < batch or self._lin.shape[1:] != (nz, n):
            self._lin = np.empty((batch, nz, n), dtype=self._lin_dtype)

    def vote_batch(
        self, phi: np.ndarray, uv0: np.ndarray, valid: np.ndarray
    ) -> tuple[int, int]:
        """Back-project and vote a ``(B, N, 2)`` canonical block.

        Parameters
        ----------
        phi:
            ``(B, Nz, 3)`` per-frame proportional coefficients.
        uv0:
            ``(B, N, 2)`` canonical-plane pixels (miss rows zeroed, as the
            canonical stage produces them).
        valid:
            ``(B, N)`` projection-miss mask from the canonical stage.

        Returns
        -------
        ``(votes, misses)`` for the batch — the same totals the per-frame
        reference backend reports.
        """
        nz, h, w = self.shape
        batch, n = uv0.shape[0], uv0.shape[1]
        self._ensure_scratch(batch, n)
        u, v = self._u, self._v
        lin = self._lin[:batch]
        for b in range(batch):
            # u-pipeline: proportional (copy + in-place multiply beats the
            # outer-product ufunc), round half-up, clip into the apron,
            # then fold in the apron shift (exact integer arithmetic —
            # every add after the floor is int + int).
            np.copyto(u, uv0[b, None, :, 0])
            u *= phi[b, :, 0, None]
            u += phi[b, :, 1, None]
            u += 0.5
            np.floor(u, out=u)
            np.clip(u, -1.0, float(w), out=u)
            u += float(self._wp + 1)
            # v-pipeline: same, scaled to rows of the padded plane.
            np.copyto(v, uv0[b, None, :, 1])
            v *= phi[b, :, 0, None]
            v += phi[b, :, 2, None]
            v += 0.5
            np.floor(v, out=v)
            np.clip(v, -1.0, float(h), out=v)
            v *= float(self._wp)
            np.add(u, v, out=lin[b], casting="unsafe")
        # Scatter one padded plane at a time: each np.add.at call reads a
        # (B, N) index block and touches only that plane's count window,
        # which keeps the scatter cache-resident instead of striding over
        # the whole volume per event.
        counts_planes = self._counts.reshape(nz, self._hp * self._wp)
        for i in range(nz):
            np.add.at(counts_planes[i], lin[:, i, :].reshape(-1), 1)
        self._scatters += batch * n * nz
        miss = ~valid
        misses = int(np.count_nonzero(miss))
        if misses:
            # Cancel the miss rows: gather the very indices just scattered
            # (bit-identical by construction) and subtract them again.
            frame_idx, row_idx = np.nonzero(miss)
            cancel = lin[frame_idx, :, row_idx].astype(np.int64) + self._plane_base.T
            np.add.at(self._counts, cancel.reshape(-1), -1)
            self._scatters -= misses * nz
        interior = self._scatters - self._border_hits()
        votes = interior - self._votes_reported
        self._votes_reported = interior
        return votes, misses

    def _border_hits(self) -> int:
        """Net scatters that landed in the apron (cheap: apron cells only)."""
        nz = self.shape[0]
        c3 = self._counts.reshape(nz, self._hp, self._wp)
        return int(
            c3[:, 0, :].sum()
            + c3[:, -1, :].sum()
            + c3[:, 1:-1, 0].sum()
            + c3[:, 1:-1, -1].sum()
        )

    def materialize_into(self, flat: np.ndarray) -> None:
        """Write the interior counts into a flat ``(Nz*H*W,)`` score buffer."""
        nz = self.shape[0]
        c3 = self._counts.reshape(nz, self._hp, self._wp)
        flat.reshape(self.shape)[...] = c3[:, 1:-1, 1:-1]


def vote_nearest(
    u: np.ndarray, v: np.ndarray, shape: tuple[int, int, int]
) -> np.ndarray:
    """Pure variant returning a fresh integer vote-count volume."""
    volume = np.zeros(int(np.prod(shape)), dtype=np.int64)
    vote_nearest_into(volume, u, v, shape)
    return volume.reshape(shape)


def vote_bilinear(
    u: np.ndarray, v: np.ndarray, shape: tuple[int, int, int]
) -> np.ndarray:
    """Pure variant returning a fresh float vote-weight volume."""
    volume = np.zeros(int(np.prod(shape)), dtype=np.float64)
    vote_bilinear_into(volume, u, v, shape)
    return volume.reshape(shape)


def cast_votes_into(
    method: VotingMethod,
    flat: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    shape: tuple[int, int, int],
) -> int:
    """Dispatch on the voting method (in-place)."""
    if method is VotingMethod.BILINEAR:
        return vote_bilinear_into(flat, u, v, shape)
    return vote_nearest_into(flat, u, v, shape)
