"""The streaming reconstruction engine: one dataflow, pluggable substrates.

Every EMVS variant in this repo — the original full-precision pipeline,
Eventor's reformulated dataflow, the online SLAM front-end and the
cycle-accurate accelerator model — executes the same loop::

    packetize -> (undistort) -> back-project -> vote -> detect -> lift

:class:`ReconstructionEngine` owns that loop exactly once.  What *varies*
is factored into two orthogonal parameters:

* a :class:`~repro.core.policy.DataflowPolicy` — the algorithmic knobs
  (correction scheduling, voting method, quantization schema, score
  storage), and
* an :class:`ExecutionBackend` — the execution substrate performing the
  per-frame back-projection + voting and owning the DSI storage.

Backends are selected by name from the :data:`BACKENDS` registry:

``numpy-reference``
    Straightforward per-frame NumPy execution (the seed pipelines'
    exact hot path, one scatter-add per frame).
``numpy-fast``
    Per-frame execution with fused miss masking, dump-voxel nearest
    voting in narrow integer arithmetic and per-segment DSI
    materialization — substantially faster than the reference scatter.
``numpy-batch``
    Segment-batched execution: the engine buffers event frames (see
    ``DataflowPolicy.batch_frames``) and the backend executes each batch
    as a handful of large fused array passes — stacked pose/homography
    parameter computation, one batched canonical projection, and a fused
    proportional+vote kernel scattering the whole batch through a single
    pass (:class:`~repro.core.voting.BatchedNearestVoter`).
``native-batch``
    The ``numpy-batch`` dataflow with the hot stage (φ parameter stack
    and the fused proportional+vote scatter) executed in compiled code
    (:mod:`repro.native`).  Registered only when a kernel provider (C
    extension or numba JIT) loads on this host; see ``repro info``.
``hardware-model``
    Wraps :class:`repro.hardware.EventorSystem`'s PL datapath so
    cycle-accurate runs share this exact front-end — bit-exactness between
    software and hardware paths is enforced structurally, not by parallel
    run loops.

The engine is *streaming* (push chunks, finish to close) and single-use:
the batch pipelines construct a fresh engine per run and call
:meth:`ReconstructionEngine.run` (= push-all + finish).
"""

from __future__ import annotations

import abc
import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.backprojection import BackProjector
from repro.core.config import EMVSConfig
from repro.core.depthmap import SemiDenseDepthMap
from repro.core.detection import detect_structure
from repro.core.dsi import DSI, depth_planes
from repro.core.keyframes import KeyframeSelector
from repro.core.results import EMVSResult, KeyframeReconstruction, PipelineProfile
from repro.core.pointcloud import PointCloud
from repro.core.policy import (
    CorrectionScheduling,
    DataflowPolicy,
    REFORMULATED_POLICY,
    resolve_policy,
)
from repro.core.voting import (
    BatchedNearestVoter,
    VotingMethod,
    bilinear_vote_terms,
    bilinear_vote_terms_finite,
    cast_votes_into,
)
from repro.events.containers import EventArray
from repro.events.packetizer import (
    ChunkBuffer,
    EventFrame,
    Packetizer,
    frame_midtimes,
    n_full_frames,
    segment_slice,
)
from repro.geometry.camera import PinholeCamera
from repro.geometry.distortion import NoDistortion
from repro.geometry.homography import apply_proportional
from repro.geometry.se3 import SE3, stack_poses
from repro.geometry.trajectory import Trajectory


class ExecutionBackend(abc.ABC):
    """Execution substrate for the back-project + vote hot path.

    A backend owns the DSI storage of the current reference segment and
    executes frames into it; the engine owns everything around it
    (packetization, correction, key-framing, detection, map merging).
    Backends are bound to exactly one engine via :meth:`bind` before use.
    """

    #: Registry name (set by subclasses).
    name: str = "?"

    #: When True the engine buffers frames (``DataflowPolicy.batch_frames``
    #: at a time) and delivers them via :meth:`process_batch`, flushing at
    #: segment boundaries, previews and stream end so streaming semantics
    #: are preserved.
    buffers_frames: bool = False

    def bind(self, engine: "ReconstructionEngine") -> None:
        """Attach to the owning engine (grants camera/policy/profile access)."""
        self.engine = engine

    @abc.abstractmethod
    def start_reference(self, T_w_ref: SE3) -> None:
        """Seat (or re-seat) the DSI at a new key reference view."""

    @abc.abstractmethod
    def process_frame(self, frame: EventFrame) -> tuple[int, int]:
        """Back-project and vote one frame; returns ``(votes, misses)``."""

    def process_batch(self, frames: list[EventFrame]) -> tuple[int, int]:
        """Back-project and vote a batch of frames of one segment.

        The default implementation loops over :meth:`process_frame`;
        batching backends override it with fused multi-frame execution.
        Returns the summed ``(votes, misses)`` of the batch.
        """
        votes = misses = 0
        for frame in frames:
            frame_votes, frame_misses = self.process_frame(frame)
            votes += frame_votes
            misses += frame_misses
        return votes, misses

    @abc.abstractmethod
    def read_dsi(self) -> DSI:
        """The voted DSI of the current segment, ready for detection.

        Must be non-destructive: the engine also calls this for depth-map
        previews of unfinished segments.
        """


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------

#: name -> factory(engine) -> ExecutionBackend
BACKENDS: dict[str, Callable[["ReconstructionEngine"], ExecutionBackend]] = {}


def register_backend(name: str):
    """Decorator registering a backend factory under ``name``."""

    def decorator(factory):
        """Register ``factory`` and return it unchanged."""
        BACKENDS[name] = factory
        return factory

    return decorator


def create_backend(
    backend: str | ExecutionBackend, engine: "ReconstructionEngine"
) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance) and bind it."""
    if isinstance(backend, ExecutionBackend):
        instance = backend
    else:
        try:
            factory = BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; known: {sorted(BACKENDS)}"
            ) from None
        instance = factory(engine)
    instance.bind(engine)
    return instance


# ----------------------------------------------------------------------
# NumPy backends
# ----------------------------------------------------------------------
class _NumpyBackendBase(ExecutionBackend):
    """Shared DSI/projector lifecycle of the software backends."""

    def __init__(self, engine: "ReconstructionEngine"):
        self.bind(engine)
        self._dsi: DSI | None = None
        self._projector: BackProjector | None = None

    def start_reference(self, T_w_ref: SE3) -> None:
        """Allocate a fresh DSI and projector at the new reference view."""
        e = self.engine
        self._dsi = DSI(
            e.camera,
            T_w_ref,
            e.depths,
            integer_scores=e.policy.integer_scores,
            score_limit=e.policy.score_limit(),
        )
        self._projector = BackProjector(
            e.camera, T_w_ref, e.depths, schema=e.policy.schema
        )

    def _canonical(self, frame: EventFrame):
        """Stage ``P(Z0)``: per-frame parameters + canonical projection.

        Timed as ``P_Z0`` in the shared profile, exactly like the seed
        mapper split the stages.  Returns ``(params, uv0, valid)``.
        """
        if self._projector is None:
            raise RuntimeError("start_reference() must be called before frames")
        t0 = time.perf_counter()
        params = self._projector.frame_parameters(frame.T_wc)
        uv0, valid = self._projector.canonical(params, frame.events.xy)
        self.engine.profile.add_time("P_Z0", time.perf_counter() - t0)
        return params, uv0, valid

    def read_dsi(self) -> DSI:
        """The segment's DSI (requires an open reference)."""
        if self._dsi is None:
            raise RuntimeError("no reference segment is open")
        return self._dsi


@register_backend("numpy-reference")
class NumpyReferenceBackend(_NumpyBackendBase):
    """Per-frame scatter-add voting — the seed pipelines' exact hot path."""

    name = "numpy-reference"

    def process_frame(self, frame: EventFrame) -> tuple[int, int]:
        """Back-project and scatter one frame, reference-style."""
        params, uv0, valid = self._canonical(frame)
        t0 = time.perf_counter()
        u, v = self._projector.proportional(params, uv0)
        u[~valid] = np.nan
        v[~valid] = np.nan
        votes = cast_votes_into(
            self.engine.policy.voting, self._dsi.flat_scores, u, v, self._dsi.shape
        )
        self.engine.profile.add_time("P_Zi_R", time.perf_counter() - t0)
        return votes, int((~valid).sum())


@register_backend("numpy-fast")
class NumpyFastBackend(_NumpyBackendBase):
    """Fused multi-frame voting, batched per reference segment.

    Three changes versus ``numpy-reference``, all bit-exact:

    * projection-miss rows are dropped *once* per frame, so the voting
      kernels skip the NaN substitution and the per-element finiteness
      passes over the ``(1024, Nz)`` grids;
    * nearest voting uses a *dump voxel*: instead of boolean-compressing
      three index arrays per frame (the dominant cost of the reference
      kernel), out-of-bounds votes are redirected to one spare counter
      slot and the full index grid is scattered — in narrow ``int32``
      arithmetic when the volume permits;
    * nearest votes accumulate in a segment-lifetime count buffer that is
      materialized into the DSI once per key frame, so the DSI image is
      produced per segment instead of rewritten per frame.

    Integer vote counts are order-independent, and the bilinear path
    preserves the reference corner order, so both voting methods
    reproduce ``numpy-reference`` exactly.
    """

    name = "numpy-fast"

    def start_reference(self, T_w_ref: SE3) -> None:
        """Reset the segment count buffer alongside the base DSI state."""
        super().start_reference(T_w_ref)
        self._dirty = False
        if self.engine.policy.voting is VotingMethod.BILINEAR:
            # Bilinear weights scatter straight into the DSI; the count
            # buffer below is nearest-voting machinery only.
            self._counts = None
            return
        nz, h, w = self._dsi.shape
        nvox = nz * h * w
        # int32 index arithmetic halves the memory traffic of the hot
        # loop; fall back to int64 for volumes the narrow type can't span.
        dtype = np.int32 if nvox + 1 < np.iinfo(np.int32).max else np.int64
        self._iz_row = (np.arange(nz, dtype=dtype) * dtype(h * w))[None, :]
        self._counts = np.zeros(nvox + 1, dtype=np.int64)

    def _vote_nearest_fused(self, u: np.ndarray, v: np.ndarray) -> int:
        """Round, bounds-check and scatter in one pass over the grid.

        ``u``/``v`` are miss-free and freshly allocated, so in-place
        mutation is safe.  Identical rounding (half-up) and bounds rules
        as :func:`~repro.core.voting.nearest_vote_indices`; counts are
        integers, so scatter order cannot change the result.
        """
        nz, h, w = self._dsi.shape
        np.add(u, 0.5, out=u)
        np.floor(u, out=u)
        np.add(v, 0.5, out=v)
        np.floor(v, out=v)
        # Float comparison is exact on floored values and avoids relying
        # on out-of-range cast behaviour for the validity decision.
        valid = (u >= 0.0) & (u < w) & (v >= 0.0) & (v < h)
        dtype = self._iz_row.dtype
        with np.errstate(invalid="ignore"):
            iu = u.astype(dtype)
            iv = v.astype(dtype)
        lin = iv * dtype.type(w)
        lin += iu
        lin += self._iz_row
        lin[~valid] = self._counts.size - 1  # the dump voxel
        np.add.at(self._counts, lin.ravel(), 1)
        self._dirty = True
        return int(valid.sum())

    def process_frame(self, frame: EventFrame) -> tuple[int, int]:
        """Back-project one frame and vote through the fused kernels."""
        params, uv0, valid = self._canonical(frame)
        t0 = time.perf_counter()
        misses = int((~valid).sum())
        if misses:
            uv0 = uv0[valid]
        u, v = self._projector.proportional(params, uv0)
        if self.engine.policy.voting is VotingMethod.BILINEAR:
            lin, weights, votes = bilinear_vote_terms_finite(u, v, self._dsi.shape)
            if lin.size:
                np.add.at(self._dsi.flat_scores, lin, weights)
        else:
            votes = self._vote_nearest_fused(u, v)
        self.engine.profile.add_time("P_Zi_R", time.perf_counter() - t0)
        return votes, misses

    def read_dsi(self) -> DSI:
        """Materialize pending nearest-vote counts, then return the DSI."""
        if self._dirty:
            t0 = time.perf_counter()
            flat = super().read_dsi().flat_scores
            flat[...] = self._counts[:-1]
            self.engine.profile.add_time("P_Zi_R", time.perf_counter() - t0)
            self._dirty = False
        return super().read_dsi()


@register_backend("numpy-batch")
class NumpyBatchBackend(_NumpyBackendBase):
    """Segment-batched execution: whole-batch fused passes, zero hot allocs.

    Where ``numpy-fast`` still drives the hot path one 1024-event frame at
    a time from Python, this backend receives the engine's buffered frame
    batches (``DataflowPolicy.batch_frames`` per flush) and executes each
    batch in three fused steps, each bit-identical to the per-frame path:

    1. *batched parameter computation* — event poses are stacked and
       ``H_Z0``/φ come out of one ``(B, 3, 3)`` inverse/matmul pass
       (:meth:`~repro.core.backprojection.BackProjector.frame_parameters_batch`)
       instead of ``B`` Python trips through ``SE3``;
    2. *batched canonical projection* — the ``(B, N, 2)`` event block goes
       through the stacked homographies in a single matmul with one
       validity mask (:meth:`~repro.core.backprojection.BackProjector.canonical_batch`);
    3. *fused proportional + vote* — under nearest voting, a
       :class:`~repro.core.voting.BatchedNearestVoter` writes ``u``/``v``
       into segment-lifetime scratch and scatters the whole batch in one
       pass through a border-padded count volume (no per-element validity
       masking anywhere).  Under bilinear voting the float accumulation
       order is observable, so votes are applied per frame in reference
       order — still fed by the batched stages 1-2 and allocation-free
       proportional scratch.

    Counts accumulate per segment and are materialized into the DSI once
    per key frame (or preview), exactly like ``numpy-fast``.
    """

    name = "numpy-batch"
    buffers_frames = True

    def start_reference(self, T_w_ref: SE3) -> None:
        """Seat the DSI and build the segment-lifetime batch voter."""
        super().start_reference(T_w_ref)
        self._dirty = False
        if self.engine.policy.voting is VotingMethod.NEAREST:
            self._voter = BatchedNearestVoter(self._dsi.shape)
        else:
            self._voter = None
            self._uv_scratch: tuple[np.ndarray, np.ndarray] | None = None

    def process_frame(self, frame: EventFrame) -> tuple[int, int]:
        """Single-frame fallback: a batch of one."""
        return self.process_batch([frame])

    def process_batch(self, frames: list[EventFrame]) -> tuple[int, int]:
        """Execute one buffered frame batch in fused whole-batch passes."""
        if self._projector is None:
            raise RuntimeError("start_reference() must be called before frames")
        sizes = {len(frame) for frame in frames}
        if len(sizes) > 1:
            # Mixed frame sizes cannot stack; fall back to singleton
            # batches (the engine's packetizer only emits fixed sizes, so
            # this path serves direct backend users).
            return super().process_batch(frames)

        t0 = time.perf_counter()
        rotations, translations = stack_poses([frame.T_wc for frame in frames])
        xy = np.stack([frame.events.xy for frame in frames])
        params = self._projector.frame_parameters_batch(rotations, translations)
        uv0, valid = self._projector.canonical_batch(params, xy)
        self.engine.profile.add_time("P_Z0", time.perf_counter() - t0)

        t0 = time.perf_counter()
        if self._voter is not None:
            votes, misses = self._voter.vote_batch(params.phi, uv0, valid)
            self._dirty = True
        else:
            votes, misses = self._vote_bilinear_frames(params, uv0, valid)
        self.engine.profile.add_time("P_Zi_R", time.perf_counter() - t0)
        return votes, misses

    def _vote_bilinear_frames(self, params, uv0, valid) -> tuple[int, int]:
        """Reference-order bilinear voting fed by the batched stages.

        Float corner weights make the accumulation order observable, so
        each frame scatters separately (frame order, reference corner
        order) — bit-identical to ``numpy-reference`` — while the
        proportional map reuses segment-lifetime scratch.
        """
        batch, n = uv0.shape[0], uv0.shape[1]
        nz = self._dsi.shape[0]
        if self._uv_scratch is None or self._uv_scratch[0].shape != (n, nz):
            self._uv_scratch = (np.empty((n, nz)), np.empty((n, nz)))
        votes = 0
        misses = 0
        flat = self._dsi.flat_scores
        for b in range(batch):
            u, v = apply_proportional(params.phi[b], uv0[b], out=self._uv_scratch)
            miss = ~valid[b]
            if miss.any():
                u[miss] = np.nan
                v[miss] = np.nan
                misses += int(miss.sum())
            lin, weights, n_points = bilinear_vote_terms(u, v, self._dsi.shape)
            if lin.size:
                np.add.at(flat, lin, weights)
            votes += n_points
        return votes, misses

    def read_dsi(self) -> DSI:
        """Materialize the batch voter's counts, then return the DSI."""
        if self._dirty:
            t0 = time.perf_counter()
            self._voter.materialize_into(super().read_dsi().flat_scores)
            self.engine.profile.add_time("P_Zi_R", time.perf_counter() - t0)
            self._dirty = False
        return super().read_dsi()


@register_backend("hardware-model")
def _make_hardware_backend(engine: "ReconstructionEngine") -> ExecutionBackend:
    """Cycle-accurate accelerator substrate (lazy import avoids a cycle).

    Builds a fresh :class:`repro.hardware.EventorSystem` sized to the
    engine's configuration and returns its backend adapter; the resulting
    :class:`~repro.hardware.accelerator.HardwareReport` is available as
    ``backend.report()`` after the run.
    """
    from repro.hardware.accelerator import EventorSystem
    from repro.hardware.config import EventorConfig

    # The PL datapath implements exactly one algorithmic point: nearest
    # voting into saturating integer scores.  Reject policies the
    # hardware cannot execute instead of silently diverging from them.
    if engine.policy.voting is not VotingMethod.NEAREST:
        raise ValueError(
            "the hardware-model backend implements nearest voting only; "
            f"policy {engine.policy.name!r} requests {engine.policy.voting}"
        )
    if not engine.policy.integer_scores:
        raise ValueError(
            "the hardware-model backend stores integer DSI scores by design"
        )
    system = EventorSystem(
        engine.camera,
        emvs_config=engine.config,
        depth_range=engine.depth_range,
        hw_config=EventorConfig(
            n_planes=engine.config.n_depth_planes,
            frame_size=engine.config.frame_size,
        ),
        schema=engine.policy.schema,
    )
    return system.make_backend()


# ----------------------------------------------------------------------
# Engine specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineSpec:
    """Everything needed to build a :class:`ReconstructionEngine`, as data.

    One engine run is fully determined by this bundle plus the event
    stream, so anything that constructs *many* engines — the parallel
    :class:`~repro.core.mapping.MappingOrchestrator`'s per-segment
    workers, the :class:`~repro.serve.ReconstructionService`'s job
    sharding and its result-cache keys — passes a spec around instead of
    six loose parameters.  The backend is held by registry *name* (not
    instance) so a spec pickles cleanly into process pools and two specs
    naming the same configuration compare equal.

    ``policy`` may be given as a preset name; it is resolved at
    construction, so a spec always carries the concrete
    :class:`~repro.core.policy.DataflowPolicy`.

    Examples
    --------
    One spec, three consumers — a local engine, a segment plan, and a
    service job::

        from repro.core import EMVSConfig, EngineSpec
        from repro.events.datasets import load_sequence
        from repro.serve import ReconstructionService

        seq = load_sequence("slider_long", quality="fast")
        spec = EngineSpec(
            seq.camera, seq.trajectory,
            EMVSConfig(n_depth_planes=48,
                       keyframe_distance=seq.keyframe_distance),
            depth_range=seq.depth_range, backend="numpy-batch",
        )
        result = spec.build().run(seq.events)      # direct engine run
        plans, dropped = spec.plan(seq.events)     # pose-only segment plan
        with ReconstructionService(workers=1) as svc:
            served = svc.result(svc.submit(seq.events, spec))
        assert served.profile.counters() == result.profile.counters()
    """

    camera: PinholeCamera
    trajectory: Trajectory
    config: EMVSConfig
    depth_range: tuple[float, float] = (0.5, 5.0)
    policy: DataflowPolicy = REFORMULATED_POLICY
    backend: str = "numpy-reference"

    def __post_init__(self) -> None:
        if not isinstance(self.backend, str):
            raise TypeError(
                "EngineSpec holds a backend registry name; engine builders "
                "each construct their own backend instance"
            )
        object.__setattr__(self, "policy", resolve_policy(self.policy))
        object.__setattr__(self, "config", self.config or EMVSConfig())
        object.__setattr__(
            self, "depth_range", tuple(float(z) for z in self.depth_range)
        )

    def build(self, **kwargs) -> "ReconstructionEngine":
        """Construct a fresh engine for this specification."""
        return ReconstructionEngine(
            self.camera,
            self.trajectory,
            self.config,
            depth_range=self.depth_range,
            policy=self.policy,
            backend=self.backend,
            **kwargs,
        )

    def plan(self, events: EventArray) -> tuple[list["SegmentPlan"], int]:
        """Segment plan of ``events`` under this spec (pose-only pass)."""
        return plan_segments(events, self.trajectory, self.config)

    def stream_planner(self) -> "StreamSegmentPlanner":
        """A fresh incremental segment planner for this spec.

        The streaming counterpart of :meth:`plan`: feed event chunks as
        they arrive and harvest closed key-frame segments immediately
        (see :class:`StreamSegmentPlanner`).
        """
        return StreamSegmentPlanner(self.trajectory, self.config)


# ----------------------------------------------------------------------
# Segment planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SegmentPlan:
    """One key-frame segment of a planned stream: frames sharing a reference.

    Frame and event indices are relative to the planned stream; event
    ranges are frame-aligned, so ``events[start_event:end_event]``
    re-packetizes into exactly the segment's frames.
    """

    index: int
    start_frame: int
    end_frame: int
    frame_size: int
    t_ref: float

    @property
    def n_frames(self) -> int:
        """Frame count of the segment."""
        return self.end_frame - self.start_frame

    @property
    def start_event(self) -> int:
        """First event index of the segment (frame-aligned)."""
        return self.start_frame * self.frame_size

    @property
    def end_event(self) -> int:
        """One-past-last event index of the segment (frame-aligned)."""
        return self.end_frame * self.frame_size

    @property
    def n_events(self) -> int:
        """Event count of the segment."""
        return self.end_event - self.start_event

    def slice(self, events: EventArray) -> EventArray:
        """The segment's events out of the planned stream."""
        return segment_slice(events, self.start_frame, self.end_frame, self.frame_size)


def plan_segments(
    events: EventArray,
    trajectory: Trajectory,
    config: EMVSConfig,
) -> tuple[list[SegmentPlan], int]:
    """Pre-compute the key-frame segments a streaming run would produce.

    Key-frame selection depends only on frame poses, frame poses only on
    frame mid-span timestamps, and those only on event timestamps and
    ``frame_size`` — none of which the voting dataflow touches.  So one
    cheap pose-only pass (no back-projection, no DSI) predicts the exact
    segment boundaries of :meth:`ReconstructionEngine.run`, using the same
    scalar pose sampling and the same :class:`KeyframeSelector` arithmetic.
    Per-keyframe segments are embarrassingly parallel; this plan is what a
    :class:`repro.core.mapping.MappingOrchestrator` shards across workers.

    Returns
    -------
    ``(plans, n_dropped)`` — the segment list (empty when the stream has
    no complete frame) and the trailing partial-frame event count the run
    would drop at stream end.
    """
    n_frames = n_full_frames(events, config.frame_size)
    dropped = len(events) - n_frames * config.frame_size
    if n_frames == 0:
        return [], dropped
    midtimes = frame_midtimes(events, config.frame_size)
    selector = KeyframeSelector(config.keyframe_distance)
    starts = [
        i
        for i in range(n_frames)
        if selector.is_new_keyframe(trajectory.sample(float(midtimes[i])))
    ]
    bounds = starts + [n_frames]
    plans = [
        SegmentPlan(
            index=k,
            start_frame=bounds[k],
            end_frame=bounds[k + 1],
            frame_size=config.frame_size,
            t_ref=float(midtimes[bounds[k]]),
        )
        for k in range(len(starts))
    ]
    return plans, dropped


class StreamSegmentPlanner:
    """Incremental :func:`plan_segments`: feed chunks, harvest closed segments.

    Segment planning is a pose-only pass — key-frame boundaries depend
    only on frame mid-span timestamps and scalar ``trajectory.sample``
    poses — so it needs no look-ahead beyond the frame that *crosses* a
    boundary.  This class exploits that to plan a stream while it is
    still flowing: :meth:`push` accepts event chunks of any size and
    returns every key-frame segment whose end became known (the boundary
    frame arrived), each paired with its frame-aligned event slice, and
    :meth:`finish` closes the trailing segment and accounts the dropped
    partial frame.

    Equivalence contract: for any chunking of a stream, the concatenated
    ``push``/``finish`` output equals ``plan_segments(whole_stream, ...)``
    exactly — same :class:`SegmentPlan` values (frame indices are global,
    relative to the whole planned stream), same event slices, same
    dropped-tail count.  The same scalar mid-time arithmetic and the same
    stateful :class:`~repro.core.keyframes.KeyframeSelector` decisions
    guarantee it; ``tests/unit/test_engine.py`` pins it per chunk size.

    One :class:`~repro.serve.StreamingSession` holds one planner; the
    serve layer dispatches each closed segment onto the shared worker
    pool the moment it is returned.

    Examples
    --------
    >>> planner = spec.stream_planner()          # doctest: +SKIP
    >>> for chunk in chunks:                     # doctest: +SKIP
    ...     for plan, events in planner.push(chunk):
    ...         pool.submit(SegmentTask(plan.index, events, spec))
    >>> tail, n_dropped = planner.finish()       # doctest: +SKIP
    """

    def __init__(self, trajectory: Trajectory, config: EMVSConfig):
        self._trajectory = trajectory
        self._frame_size = config.frame_size
        self._selector = KeyframeSelector(config.keyframe_distance)
        self._buffer = ChunkBuffer()
        #: Complete buffered frames whose boundary decision is done.
        self._checked = 0
        #: Global frames already cut into emitted segments.
        self._frames_cut = 0
        self._segments_emitted = 0
        self._open_t_ref: float | None = None
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def next_index(self) -> int:
        """Global index the next emitted segment will carry."""
        return self._segments_emitted

    @property
    def frames_planned(self) -> int:
        """Complete frames observed so far (cut or awaiting a boundary)."""
        return self._frames_cut + self._checked

    @property
    def pending_events(self) -> int:
        """Events buffered but not yet cut into an emitted segment."""
        return len(self._buffer)

    # ------------------------------------------------------------------
    def _frame_midtime(self, local_frame: int) -> float:
        """Mid-span timestamp of a complete buffered frame.

        Scalar evaluation of the exact :func:`frame_midtimes` arithmetic
        (``0.5 * (t_first + t_last)`` in float64) over the buffer's
        copy-free :meth:`~repro.events.packetizer.ChunkBuffer.timestamp`
        probes — no merge per boundary check, so fine-grained chunking
        cannot turn planning quadratic — and bit-identical to the
        one-shot plan's decisions.
        """
        lo = local_frame * self._frame_size
        t_first = self._buffer.timestamp(lo)
        t_last = self._buffer.timestamp(lo + self._frame_size - 1)
        return float(0.5 * (t_first + t_last))

    def _cut(self, n_frames: int) -> tuple[SegmentPlan, EventArray]:
        """Close the open segment at ``n_frames`` buffered frames."""
        plan = SegmentPlan(
            index=self._segments_emitted,
            start_frame=self._frames_cut,
            end_frame=self._frames_cut + n_frames,
            frame_size=self._frame_size,
            t_ref=self._open_t_ref,
        )
        events = self._buffer.split(n_frames * self._frame_size)
        self._segments_emitted += 1
        self._frames_cut += n_frames
        self._checked -= n_frames
        return plan, events

    def push(self, events: EventArray) -> list[tuple[SegmentPlan, EventArray]]:
        """Feed one chunk; returns every segment it closed (often none).

        A segment closes when a later frame crosses the key-frame
        distance threshold — the boundary frame itself opens the next
        segment, exactly as in the streaming engine run the plan
        predicts.
        """
        if self._finished:
            raise RuntimeError("planner already finished; build a new one")
        self._buffer.push(events)
        closed: list[tuple[SegmentPlan, EventArray]] = []
        while True:
            n_full = len(self._buffer) // self._frame_size
            if self._checked >= n_full:
                break
            t_mid = self._frame_midtime(self._checked)
            if self._selector.is_new_keyframe(self._trajectory.sample(t_mid)):
                if self._checked > 0:
                    closed.append(self._cut(self._checked))
                self._open_t_ref = t_mid
            self._checked += 1
        return closed

    def finish(self) -> tuple[list[tuple[SegmentPlan, EventArray]], int]:
        """Close the trailing segment; returns ``(segments, n_dropped)``.

        ``segments`` holds the final open segment (at most one — empty
        when the stream never completed a frame) and ``n_dropped`` the
        trailing partial-frame events, mirroring the second return of
        :func:`plan_segments`.
        """
        if self._finished:
            raise RuntimeError("planner already finished; build a new one")
        self._finished = True
        closed: list[tuple[SegmentPlan, EventArray]] = []
        if self._checked > 0:
            closed.append(self._cut(self._checked))
        return closed, self._buffer.clear()


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ReconstructionEngine:
    """Single streaming owner of the EMVS dataflow.

    Parameters
    ----------
    camera:
        Sensor calibration (with distortion, if any).
    trajectory:
        Pose source; any object with ``sample(t) -> SE3`` works.
    config:
        Shared EMVS parameters.
    depth_range:
        DSI depth bounds in each reference frame.
    policy:
        Algorithmic knobs (see :class:`~repro.core.policy.DataflowPolicy`)
        or a preset name from :data:`repro.core.policy.POLICIES`.
    backend:
        Registry name or a pre-built :class:`ExecutionBackend` instance.
    on_keyframe:
        Called with each finished :class:`KeyframeReconstruction` the
        moment its reference segment closes.

    The engine is single-use: one stream in, one :class:`EMVSResult` out.

    Examples
    --------
    Streaming push/finish (batch ``run`` is push-all + finish)::

        from repro.core import EMVSConfig, ReconstructionEngine
        from repro.events.datasets import load_sequence

        seq = load_sequence("simulation_3planes", quality="fast")
        engine = ReconstructionEngine(
            seq.camera, seq.trajectory,
            EMVSConfig(n_depth_planes=64),
            depth_range=seq.depth_range,
            policy="reformulated",           # or a DataflowPolicy instance
            backend="numpy-batch",
        )
        engine.push(seq.events.time_slice(0.9, 1.0))   # chunk by chunk...
        engine.push(seq.events.time_slice(1.0, 1.1))
        result = engine.finish()                        # EMVSResult
    """

    def __init__(
        self,
        camera: PinholeCamera,
        trajectory: Trajectory,
        config: EMVSConfig | None = None,
        depth_range: tuple[float, float] = (0.5, 5.0),
        policy: DataflowPolicy | str = REFORMULATED_POLICY,
        backend: str | ExecutionBackend = "numpy-reference",
        on_keyframe: Callable[[KeyframeReconstruction], None] | None = None,
    ):
        self.camera = camera
        self.trajectory = trajectory
        self.config = config or EMVSConfig()
        self.depth_range = depth_range
        self.policy = resolve_policy(policy)
        self.on_keyframe = on_keyframe
        self.depths = depth_planes(
            depth_range[0],
            depth_range[1],
            self.config.n_depth_planes,
            self.config.depth_sampling,
        )
        self.profile = PipelineProfile()
        self.backend = create_backend(backend, self)
        self._selector = KeyframeSelector(self.config.keyframe_distance)
        self._packetizer = Packetizer(trajectory, self.config.frame_size)
        self._cloud = PointCloud()
        self._keyframes: list[KeyframeReconstruction] = []
        self._events_pushed = 0
        self._events_in_ref = 0
        self._frames_in_ref = 0
        self._reference_open = False
        self._finished = False
        #: Frames buffered for a batching backend (always within one
        #: reference segment; flushed on keyframe, preview and finish).
        self._pending_frames: list[EventFrame] = []

    # ------------------------------------------------------------------
    @property
    def cloud(self) -> PointCloud:
        """Global map merged so far (finished key frames only)."""
        return self._cloud

    @property
    def keyframes(self) -> list[KeyframeReconstruction]:
        """Finished key-frame reconstructions so far (copy)."""
        return list(self._keyframes)

    @property
    def events_pushed(self) -> int:
        """Total events fed through :meth:`push` so far."""
        return self._events_pushed

    # ------------------------------------------------------------------
    def _correct_events(self, events: EventArray) -> EventArray:
        """Per-event (streaming) distortion correction."""
        if isinstance(self.camera.distortion, NoDistortion):
            return events
        return events.with_coordinates(self.camera.undistort_pixels(events.xy))

    def _correct_frame(self, frame: EventFrame) -> None:
        """Per-frame (batched) distortion correction, original scheduling."""
        if isinstance(self.camera.distortion, NoDistortion):
            return
        corrected = self.camera.undistort_pixels(frame.events.xy)
        frame.events = frame.events.with_coordinates(corrected)

    # ------------------------------------------------------------------
    def push(self, events: EventArray) -> int:
        """Feed a chunk of (time-ordered) events; returns frames processed.

        Chunks may be of any size; fixed ``frame_size`` event frames are
        cut internally, exactly as the hardware ingest does.
        """
        if self._finished:
            raise RuntimeError("engine already finished; build a new one")
        if len(events) == 0:
            return 0
        t0 = time.perf_counter()
        if self.policy.correction is CorrectionScheduling.PER_EVENT:
            events = self._correct_events(events)
        self._events_pushed += len(events)
        frames = self._packetizer.push(events)
        self.profile.add_time("A", time.perf_counter() - t0)
        for frame in frames:
            self._process(frame)
        return len(frames)

    def _process(self, frame: EventFrame) -> None:
        if self.policy.correction is CorrectionScheduling.PER_FRAME:
            self._correct_frame(frame)
        if self._selector.is_new_keyframe(frame.T_wc):
            frame.is_keyframe = True
            self._finalize_segment()
            self.backend.start_reference(frame.T_wc)
            self._reference_open = True
            self.profile.n_keyframes += 1
        if self.backend.buffers_frames:
            self._pending_frames.append(frame)
            if len(self._pending_frames) >= self.policy.batch_frames:
                self._flush_pending_frames()
        else:
            votes, misses = self.backend.process_frame(frame)
            self.profile.votes_cast += votes
            self.profile.dropped_events += misses
        self.profile.n_events += len(frame)
        self.profile.n_frames += 1
        self._events_in_ref += len(frame)
        self._frames_in_ref += 1

    def _flush_pending_frames(self) -> None:
        """Deliver buffered frames to a batching backend.

        Vote/miss accounting lands in the profile at flush time; totals
        match the per-frame backends exactly, they just arrive in batch
        granularity.
        """
        if not self._pending_frames:
            return
        frames, self._pending_frames = self._pending_frames, []
        votes, misses = self.backend.process_batch(frames)
        self.profile.votes_cast += votes
        self.profile.dropped_events += misses

    def finish(self) -> EMVSResult:
        """Close the current segment and return the collected result.

        The trailing partial frame (fewer than ``frame_size`` events) is
        dropped, as the fixed-size hardware buffers would — but its size
        is accounted in ``profile.dropped_events`` instead of being
        discarded silently.
        """
        if not self._finished:
            self.profile.dropped_events += self._packetizer.drop_pending()
            self._finalize_segment()
            self._finished = True
        return EMVSResult(
            keyframes=list(self._keyframes), cloud=self._cloud, profile=self.profile
        )

    def run(self, events: EventArray) -> EMVSResult:
        """Batch convenience: push the whole stream, then finish."""
        self.push(events)
        return self.finish()

    def run_segment(self, events: EventArray) -> list[KeyframeReconstruction]:
        """Process one frame-aligned segment and close it; engine stays open.

        The resumable unit of parallel mapping: push a
        :class:`SegmentPlan`'s slice, force the finalize-lift-merge tail
        (instead of waiting for the next key frame to arrive), and return
        the reconstructions it produced.  The engine remains usable, so one
        engine can replay consecutive segments of a planned stream —
        ``run_segment(plan.slice(events))`` per plan, then :meth:`finish` —
        and produce bit-identical keyframes, cloud and profile counters to
        a single :meth:`run` over the whole stream.

        A fresh engine always keys on a segment's first frame (first pose
        observed), so per-segment workers reconstruct exactly their
        segment; planning guarantees no interior frame re-keys.
        """
        if self._finished:
            raise RuntimeError("engine already finished; build a new one")
        before = len(self._keyframes)
        self.push(events)
        if self._packetizer.pending_count:
            raise ValueError(
                "segment is not frame-aligned: "
                f"{self._packetizer.pending_count} events short of a frame "
                f"(frame_size={self._packetizer.frame_size}); slice segments "
                "with SegmentPlan.slice()/segment_slice()"
            )
        self._finalize_segment()
        return self._keyframes[before:]

    # ------------------------------------------------------------------
    def preview_depth_map(self) -> SemiDenseDepthMap | None:
        """Detection over the in-progress (unfinished) reference segment.

        Lets a consumer preview depth before the key frame closes; the
        DSI keeps accumulating afterwards.
        """
        if not self._reference_open or self._events_in_ref == 0:
            return None
        self._flush_pending_frames()
        dsi = self.backend.read_dsi()
        t0 = time.perf_counter()
        depth_map = detect_structure(dsi, self.config.detection)
        self.profile.add_time("D", time.perf_counter() - t0)
        return depth_map

    def _finalize_segment(self) -> None:
        """The keyframe tail: detect (``D``), lift and merge (``M``).

        This is the single home of the finalize-lift-merge logic that the
        seed repeated across four call sites.
        """
        self._flush_pending_frames()
        if not self._reference_open or self._events_in_ref == 0:
            self._events_in_ref = 0
            self._frames_in_ref = 0
            return
        dsi = self.backend.read_dsi()
        t0 = time.perf_counter()
        depth_map = detect_structure(dsi, self.config.detection)
        self.profile.add_time("D", time.perf_counter() - t0)
        reconstruction = KeyframeReconstruction(
            T_w_ref=dsi.T_w_ref,
            depth_map=depth_map,
            n_events=self._events_in_ref,
            n_frames=self._frames_in_ref,
        )
        self._keyframes.append(reconstruction)
        t0 = time.perf_counter()
        self._cloud = self._cloud.merge(
            PointCloud.from_depth_map(depth_map, self.camera, dsi.T_w_ref)
        )
        self.profile.add_time("M", time.perf_counter() - t0)
        self._events_in_ref = 0
        self._frames_in_ref = 0
        if self.on_keyframe is not None:
            self.on_keyframe(reconstruction)


# Conditional backends live in their own packages and self-register on
# import; a plain import is cycle-safe in both import directions (the
# partially-initialized module object binds fine).  ImportError — e.g. a
# stripped install without the native package — leaves the registry with
# the always-available backends only.
try:
    import repro.native.backend  # noqa: E402,F401
except ImportError:  # pragma: no cover - only on stripped installs
    pass
