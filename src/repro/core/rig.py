"""Multi-camera rig orchestration: stereo / N-camera event fusion.

The paper's title problem is multi-view stereo, and the related work it
builds on fuses *per-camera* monocular depth with cross-camera agreement
("Event-based Stereo Visual Odometry", Zhou et al.; "Multi-Event-Camera
Depth Estimation and Outlier Rejection by Refocused Events Fusion",
Ghosh & Gallego).  That shape maps exactly onto the machinery this repo
already has:

* each rig camera is an ordinary :class:`~repro.core.engine.EngineSpec`
  whose trajectory is the rig body's trajectory composed with the
  camera's mounting extrinsic (``T_w_cam(t) = T_w_rig(t) @ T_rig_cam``,
  see :meth:`~repro.geometry.trajectory.Trajectory.transformed`);
* each camera's stream shards into the same
  :class:`~repro.core.mapping.SegmentTask` unit as monocular mapping —
  segments from different cameras are just more embarrassingly-parallel
  work for one pool (or for the serving layer, where they memoize under
  the very same :func:`~repro.serve.cache.segment_key` entries a
  monocular run of that camera would);
* the per-camera key-frame depth maps — already world-frame, because the
  composed trajectories are — fuse into one
  :class:`~repro.core.mapping.GlobalMap` whose per-voxel distinct-source
  counts drive ``min_cameras`` cross-camera outlier rejection.

Determinism is structural, exactly as for monocular mapping: each
camera's solo :class:`~repro.core.mapping.MappingResult` travels the
same plan → task → merge → fuse path as a
:class:`~repro.core.mapping.MappingOrchestrator` run of that camera, and
rig fusion is an order-fixed reduction over the per-camera key frames in
rig order — so the fused rig map is bit-identical across worker counts
and executors, and bit-identical whether the per-camera work ran on a
local pool or through :class:`~repro.serve.ReconstructionService`.
"""

from __future__ import annotations

import os
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

from repro.core.engine import EngineSpec
from repro.core.mapping import (
    GlobalMap,
    MappingResult,
    SegmentTask,
    default_voxel_size,
    fuse_camera_keyframes,
    fuse_keyframes,
    merge_outcomes,
    run_segment_task,
)
from repro.core.pointcloud import PointCloud
from repro.core.results import PipelineProfile
from repro.events.containers import EventArray
from repro.geometry.se3 import SE3
from repro.geometry.trajectory import Trajectory


@dataclass(frozen=True)
class RigCamera:
    """One camera of a rig: a name, its engine spec, and its extrinsic.

    ``spec.trajectory`` is the camera's *own* world trajectory (the rig
    body's trajectory composed with ``extrinsic = T_rig_cam``); the
    extrinsic is kept alongside for introspection and round-trip tests.
    Frozen and picklable, like :class:`~repro.core.engine.EngineSpec`.
    """

    name: str
    spec: EngineSpec
    extrinsic: SE3

    def __post_init__(self):
        if not self.name:
            raise ValueError("rig camera needs a non-empty name")
        if not isinstance(self.spec, EngineSpec):
            raise TypeError("spec must be an EngineSpec")
        if not isinstance(self.extrinsic, SE3):
            raise TypeError("extrinsic must be an SE3 (T_rig_cam)")


@dataclass(frozen=True)
class CameraRig:
    """A frozen set of named cameras rigidly mounted on one moving body.

    A value object in the :class:`~repro.core.engine.EngineSpec` mold:
    frozen, picklable, and carrying everything a rig reconstruction
    needs.  Build one from a shared body trajectory with
    :meth:`from_trajectory`, or directly from per-camera specs when the
    cameras are heterogeneous (different sensors, backends or depth
    ranges).

    Examples
    --------
    A stereo rig on a slider trajectory::

        from repro.core import CameraRig, RigOrchestrator
        from repro.geometry.se3 import SE3

        rig = CameraRig.from_trajectory(
            camera, trajectory, config,
            extrinsics=[SE3.identity(),
                        SE3(np.eye(3), [0.08, 0.0, 0.0])],
            depth_range=(0.5, 2.0),
        )
        result = RigOrchestrator(rig).run({"cam0": ev0, "cam1": ev1})
    """

    cameras: tuple[RigCamera, ...]

    def __post_init__(self):
        cameras = tuple(self.cameras)
        object.__setattr__(self, "cameras", cameras)
        if not cameras:
            raise ValueError("a rig needs at least one camera")
        names = [cam.name for cam in cameras]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rig camera names: {names}")
        for cam in cameras:
            if not isinstance(cam, RigCamera):
                raise TypeError("cameras must be RigCamera instances")

    # ------------------------------------------------------------------
    @classmethod
    def from_trajectory(
        cls,
        camera,
        trajectory: Trajectory,
        config=None,
        extrinsics: list[SE3] | tuple[SE3, ...] = (),
        *,
        names: list[str] | None = None,
        depth_range: tuple[float, float] = (0.5, 5.0),
        policy="reformulated",
        backend: str = "numpy-batch",
    ) -> "CameraRig":
        """Rig of identical sensors mounted on one body trajectory.

        ``extrinsics[i] = T_rig_cam`` places camera ``i`` relative to
        the body frame; its world trajectory is the body trajectory
        composed with that offset *at the stored poses*
        (:meth:`~repro.geometry.trajectory.Trajectory.transformed`), so
        a camera mounted at ``SE3.identity()`` gets a bit-identical
        trajectory to the body's own.  Default names are ``cam0``,
        ``cam1``, …
        """
        extrinsics = tuple(extrinsics)
        if not extrinsics:
            raise ValueError("need at least one extrinsic")
        if names is None:
            names = [f"cam{i}" for i in range(len(extrinsics))]
        if len(names) != len(extrinsics):
            raise ValueError(
                f"{len(names)} names but {len(extrinsics)} extrinsics"
            )
        cameras = []
        for name, offset in zip(names, extrinsics):
            spec = EngineSpec(
                camera,
                trajectory.transformed(offset),
                config,
                depth_range=depth_range,
                policy=policy,
                backend=backend,
            )
            cameras.append(RigCamera(name=name, spec=spec, extrinsic=offset))
        return cls(cameras=tuple(cameras))

    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """Camera names in rig order."""
        return tuple(cam.name for cam in self.cameras)

    @property
    def n_cameras(self) -> int:
        """Number of cameras in the rig."""
        return len(self.cameras)

    @property
    def depth_range(self) -> tuple[float, float]:
        """Union of the per-camera DSI depth ranges (rig fusion bounds)."""
        return (
            min(cam.spec.depth_range[0] for cam in self.cameras),
            max(cam.spec.depth_range[1] for cam in self.cameras),
        )

    def __len__(self) -> int:
        return len(self.cameras)

    def __iter__(self):
        return iter(self.cameras)

    def camera(self, name: str) -> RigCamera:
        """Look up one camera by name."""
        for cam in self.cameras:
            if cam.name == name:
                return cam
        raise KeyError(f"no rig camera named {name!r}; have {self.names}")


@dataclass(frozen=True)
class RigMappingResult:
    """Output of a rig reconstruction: per-camera results plus the fusion.

    ``per_camera`` holds each camera's complete monocular
    :class:`~repro.core.mapping.MappingResult` — bit-identical to what a
    solo :class:`~repro.core.mapping.MappingOrchestrator` run of that
    camera would produce.  ``global_map`` / ``cloud`` are the
    cross-camera fusion with ``min_cameras`` agreement applied;
    ``profile`` aggregates the per-camera profiles in rig order.
    """

    per_camera: dict[str, MappingResult]
    global_map: GlobalMap
    cloud: PointCloud
    profile: PipelineProfile
    min_observations: int
    min_cameras: int
    workers: int
    wall_seconds: float

    @property
    def n_points(self) -> int:
        """Point count of the rig-fused cloud."""
        return len(self.cloud)

    @property
    def n_cameras(self) -> int:
        """Number of cameras fused."""
        return len(self.per_camera)

    def camera_result(self, name: str) -> MappingResult:
        """One camera's solo mapping result."""
        return self.per_camera[name]


@dataclass(frozen=True)
class RigJobHandle:
    """Tracking handle for a rig job submitted to a reconstruction service.

    One service job id per rig camera, in rig order; :meth:`job_id`
    resolves a camera name.  The fusion step happens at collection time
    (:meth:`RigOrchestrator.collect`) — the service itself only ever
    sees ordinary per-camera jobs.
    """

    rig: CameraRig
    job_ids: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def job_id(self, name: str) -> str:
        """The service job id of one camera's sub-job."""
        for cam_name, job_id in self.job_ids:
            if cam_name == name:
                return job_id
        raise KeyError(f"no sub-job for camera {name!r}")


class RigOrchestrator:
    """Plan, execute and fuse a multi-camera rig reconstruction.

    Each camera's stream is planned independently
    (:meth:`EngineSpec.plan` — a pose-only pass on *its* composed
    trajectory), sharded into camera-tagged
    :class:`~repro.core.mapping.SegmentTask`\\ s, and executed on one
    shared pool; the per-camera key frames then fuse into a single
    :class:`~repro.core.mapping.GlobalMap` with cross-camera agreement
    filtering.

    Parameters
    ----------
    rig:
        The :class:`CameraRig` to reconstruct.
    workers:
        Pool width over the union of all cameras' segments (``None``:
        CPU count capped by the total segment count).  Any width
        produces bit-identical results.
    voxel_size:
        Fusion voxel edge for the rig map.  ``None`` derives
        :func:`~repro.core.mapping.default_voxel_size` from the rig's
        union depth range; per-camera maps always use their own spec's
        default (or this explicit value), keeping each solo result
        bit-identical to a monocular run of that camera.
    min_observations:
        Per-voxel observation support required in the rig-fused cloud
        (as in monocular fusion).
    min_cameras:
        Distinct-camera agreement required per voxel in the rig-fused
        cloud.  ``None`` defaults to ``min(2, n_cameras)`` — stereo
        agreement when the rig has it, monocular passthrough otherwise.
    executor:
        ``"process"``, ``"thread"`` or ``None`` (processes unless some
        camera runs the in-process ``hardware-model`` backend).
    """

    def __init__(
        self,
        rig: CameraRig,
        workers: int | None = None,
        voxel_size: float | None = None,
        min_observations: int = 1,
        min_cameras: int | None = None,
        executor: str | None = None,
    ):
        if not isinstance(rig, CameraRig):
            raise TypeError("rig must be a CameraRig")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for auto)")
        if voxel_size is not None and voxel_size <= 0:
            raise ValueError("voxel_size must be positive (or None for auto)")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if min_cameras is None:
            min_cameras = min(2, rig.n_cameras)
        if not 1 <= min_cameras <= rig.n_cameras:
            raise ValueError(
                f"min_cameras must be in [1, {rig.n_cameras}], got {min_cameras}"
            )
        if executor not in (None, "process", "thread"):
            raise ValueError("executor must be 'process', 'thread' or None")
        self.rig = rig
        self.workers = workers
        self._explicit_voxel = voxel_size
        self.voxel_size = (
            voxel_size
            if voxel_size is not None
            else default_voxel_size(rig.depth_range)
        )
        self.min_observations = int(min_observations)
        self.min_cameras = int(min_cameras)
        self.executor = executor

    # ------------------------------------------------------------------
    def _camera_voxel(self, spec: EngineSpec) -> float:
        # Per-camera maps fuse exactly like a monocular orchestrator run
        # of that camera: explicit rig voxel if one was given, else the
        # camera's own spec-derived default.
        if self._explicit_voxel is not None:
            return self._explicit_voxel
        return default_voxel_size(spec.depth_range)

    def _check_events(self, events_by_camera: Mapping[str, EventArray]) -> None:
        have = set(events_by_camera)
        want = set(self.rig.names)
        if have != want:
            raise ValueError(
                f"events_by_camera keys {sorted(have)} must match rig "
                f"cameras {sorted(want)}"
            )

    def _resolve_workers(self, n_tasks: int) -> int:
        requested = self.workers or os.cpu_count() or 1
        return max(1, min(requested, n_tasks))

    def _make_pool(self, workers: int) -> Executor:
        kind = self.executor or (
            "thread"
            if any(cam.spec.backend == "hardware-model" for cam in self.rig)
            else "process"
        )
        if kind == "thread":
            return ThreadPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(max_workers=workers)

    # ------------------------------------------------------------------
    def run(self, events_by_camera: Mapping[str, EventArray]) -> RigMappingResult:
        """Reconstruct every camera on one shared pool, then fuse.

        ``events_by_camera`` maps each rig camera name to its event
        stream; the key set must match the rig exactly.
        """
        t_wall = time.perf_counter()
        self._check_events(events_by_camera)

        # Plan each camera independently; shard everything into one
        # camera-tagged task list (camera-major, segment order within).
        per_camera_plans: dict[str, tuple] = {}
        tasks: list[SegmentTask] = []
        for cam in self.rig:
            events = events_by_camera[cam.name]
            plans, dropped = cam.spec.plan(events)
            per_camera_plans[cam.name] = (plans, dropped)
            tasks.extend(
                SegmentTask(
                    plan.index, plan.slice(events), cam.spec, camera=cam.name
                )
                for plan in plans
            )

        workers = self._resolve_workers(len(tasks))
        if workers == 1:
            outcomes = [run_segment_task(task) for task in tasks]
        else:
            with self._make_pool(workers) as pool:
                outcomes = list(pool.map(run_segment_task, tasks))

        # pool.map preserves input order, so zipping tasks back onto
        # outcomes attributes each one to its camera deterministically.
        grouped: dict[str, list] = {name: [] for name in self.rig.names}
        for task, outcome in zip(tasks, outcomes):
            grouped[task.camera].append(outcome)

        per_camera: dict[str, MappingResult] = {}
        for cam in self.rig:
            plans, dropped = per_camera_plans[cam.name]
            keyframes, profile = merge_outcomes(grouped[cam.name], dropped)
            voxel = self._camera_voxel(cam.spec)
            global_map = fuse_keyframes(keyframes, cam.spec.camera, voxel)
            per_camera[cam.name] = MappingResult(
                keyframes=keyframes,
                global_map=global_map,
                cloud=global_map.fused_cloud(),
                profile=profile,
                segments=tuple(plans),
                workers=workers,
                wall_seconds=time.perf_counter() - t_wall,
            )
        return self._fused_result(per_camera, workers, t_wall)

    # ------------------------------------------------------------------
    def submit(
        self,
        service,
        events_by_camera: Mapping[str, EventArray],
        *,
        session: str = "default",
    ) -> RigJobHandle:
        """Route the rig through a :class:`~repro.serve.ReconstructionService`.

        A rig job is N ordinary per-camera jobs — each one admitted via
        the unchanged ``service.submit`` and therefore scheduled,
        retried, deadline-watched and *cached* exactly like any other
        job (a rig camera's segments share
        :func:`~repro.serve.cache.segment_key` entries with monocular
        runs of that camera).  Fusion happens locally at
        :meth:`collect`.
        """
        self._check_events(events_by_camera)
        job_ids = tuple(
            (
                cam.name,
                service.submit(
                    events_by_camera[cam.name],
                    cam.spec,
                    session=session,
                    voxel_size=self._explicit_voxel,
                    min_observations=1,
                ),
            )
            for cam in self.rig
        )
        return RigJobHandle(rig=self.rig, job_ids=job_ids)

    def collect(
        self, service, handle: RigJobHandle, timeout: float | None = None
    ) -> RigMappingResult:
        """Block on every per-camera job, then fuse into the rig result.

        The per-camera results come back bit-identical to local
        orchestrator runs (the serve ≡ orchestrator invariant), so the
        collected rig result is bit-identical to :meth:`run` on the same
        events.
        """
        t_wall = time.perf_counter()
        per_camera: dict[str, MappingResult] = {}
        for cam_name, job_id in handle.job_ids:
            per_camera[cam_name] = service.result(job_id, timeout=timeout)
        workers = max(result.workers for result in per_camera.values())
        return self._fused_result(per_camera, workers, t_wall)

    # ------------------------------------------------------------------
    def _fused_result(
        self,
        per_camera: dict[str, MappingResult],
        workers: int,
        t_wall: float,
    ) -> RigMappingResult:
        # Rig-order, order-fixed fusion of the per-camera key frames;
        # identical input key frames => bit-identical fused arrays,
        # however (and wherever) the cameras were computed.
        streams = [
            (cam.spec.camera, per_camera[cam.name].keyframes)
            for cam in self.rig
        ]
        global_map = fuse_camera_keyframes(streams, self.voxel_size)
        profile = PipelineProfile()
        for cam in self.rig:
            profile.merge(per_camera[cam.name].profile)
        return RigMappingResult(
            per_camera=per_camera,
            global_map=global_map,
            cloud=global_map.fused_cloud(
                self.min_observations, self.min_cameras
            ),
            profile=profile,
            min_observations=self.min_observations,
            min_cameras=self.min_cameras,
            workers=workers,
            wall_seconds=time.perf_counter() - t_wall,
        )
