"""Parallel multi-keyframe mapping with fused global maps.

EMVS reconstructs one *local* DSI per key reference view, and the segments
between key frames share nothing — no DSI state, no detection state — so
they are embarrassingly parallel.  This module exploits that:

* :func:`repro.core.engine.plan_segments` predicts the exact key-frame
  segments of a stream from a cheap pose-only pass;
* :class:`MappingOrchestrator` shards the stream along that plan, runs
  each segment's :class:`~repro.core.engine.ReconstructionEngine` on a
  ``concurrent.futures`` worker pool (processes for the numpy backends,
  threads for the in-process hardware model), and
* :class:`GlobalMap` fuses the per-keyframe depth maps into one global
  point map with voxel-hash deduplication and confidence-weighted
  averaging, in the spirit of multi-view event-camera depth fusion
  (Ghosh & Gallego, 2022).

Determinism is a hard invariant, not an aspiration: each segment runs in
its own engine regardless of worker count, results are fused in segment
order, and every fusion reduction is an order-fixed numpy pass — so the
fused map and the aggregate profile counters are bit-identical for 1, 2
or N workers.

The per-segment unit (:class:`SegmentTask` / :func:`run_segment_task`)
and the reduction tail (:func:`merge_outcomes` / :func:`fuse_keyframes`)
are module-level building blocks shared with the serving layer
(:mod:`repro.serve`): a job served by the multi-session
:class:`~repro.serve.ReconstructionService` travels the exact code path
of an orchestrator run, which is why the two are bit-identical by
construction.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.config import EMVSConfig
from repro.core.engine import EngineSpec, SegmentPlan, plan_segments
from repro.core.pointcloud import PointCloud
from repro.core.policy import DataflowPolicy, REFORMULATED_POLICY, resolve_policy
from repro.core.results import KeyframeReconstruction, PipelineProfile
from repro.events.containers import EventArray
from repro.geometry.camera import PinholeCamera
from repro.geometry.trajectory import Trajectory


class GlobalMap:
    """Voxel-hash fused world map with confidence-weighted merging.

    Points are accumulated in insertion order; :meth:`fused_points`
    deduplicates them into one point per occupied voxel, positioned at the
    confidence-weighted mean of the observations that fell into it.  A
    voxel seen by several key frames therefore converges toward its
    best-supported observations instead of duplicating semi-transparent
    shells around the surface — the standard refocused-events fusion move.

    All reductions are order-fixed numpy passes over the concatenated
    observations, so for a given insertion order the fused arrays are
    bit-reproducible (the property parallel mapping's determinism tests
    pin).

    Every insertion optionally carries a ``source`` label — the camera
    index of a multi-camera rig.  The fused map tracks how many
    *distinct* sources observed each voxel, so :meth:`fused_cloud` can
    require cross-camera agreement (``min_cameras``) on top of the
    per-observation support filter (``min_observations``) — the
    refocused-events outlier-rejection move of Ghosh & Gallego (2022)
    generalized to N cameras.  Monocular callers never pass ``source``
    and see exactly the old behaviour (every voxel has one source).
    """

    def __init__(self, voxel_size: float):
        if voxel_size <= 0:
            raise ValueError("voxel_size must be positive")
        self.voxel_size = float(voxel_size)
        self._points: list[np.ndarray] = []
        self._weights: list[np.ndarray] = []
        self._sources: list[np.ndarray] = []
        self._fused: (
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None
        ) = None

    # ------------------------------------------------------------------
    @property
    def n_raw_points(self) -> int:
        """Observations inserted (before voxel deduplication)."""
        return sum(len(p) for p in self._points)

    def insert(
        self,
        points: np.ndarray,
        weights: np.ndarray | None = None,
        source: int = 0,
    ) -> None:
        """Add world-frame observations with positive confidence weights.

        ``source`` labels the observations' origin camera (rig camera
        index); it only matters to the :meth:`fused_camera_counts` /
        ``min_cameras`` agreement filter.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must be (N, 3), got {points.shape}")
        if len(points) == 0:
            return
        if weights is None:
            weights = np.ones(len(points))
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (len(points),):
                raise ValueError("need one weight per point")
            if not np.all(weights > 0):
                raise ValueError("confidence weights must be positive")
        if source < 0:
            raise ValueError("source must be a non-negative camera index")
        self._points.append(points)
        self._weights.append(weights)
        self._sources.append(np.full(len(points), int(source), dtype=np.int64))
        self._fused = None

    def insert_keyframe(
        self,
        reconstruction: KeyframeReconstruction,
        camera: PinholeCamera,
        source: int = 0,
    ) -> None:
        """Lift one key-frame depth map and insert it, confidence-weighted."""
        depth_map = reconstruction.depth_map
        cloud = PointCloud.from_depth_map(depth_map, camera, reconstruction.T_w_ref)
        if len(cloud) == 0:
            return
        # pixels()/depths()/confidences() share the mask's nonzero order,
        # so the lifted points and their weights stay aligned.
        self.insert(
            cloud.points,
            np.asarray(depth_map.confidences(), dtype=float),
            source=source,
        )

    # ------------------------------------------------------------------
    def _fuse(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._fused is None:
            if not self._points:
                self._fused = (
                    np.empty((0, 3)),
                    np.empty(0),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                )
                return self._fused
            points = np.concatenate(self._points)
            weights = np.concatenate(self._weights)
            sources = np.concatenate(self._sources)
            keys = np.floor(points / self.voxel_size).astype(np.int64)
            _, inverse = np.unique(keys, axis=0, return_inverse=True)
            n_vox = int(inverse.max()) + 1
            weight_sum = np.zeros(n_vox)
            np.add.at(weight_sum, inverse, weights)
            centers = np.zeros((n_vox, 3))
            np.add.at(centers, inverse, points * weights[:, None])
            centers /= weight_sum[:, None]
            counts = np.bincount(inverse, minlength=n_vox)
            # Distinct-source support per voxel: unique (voxel, source)
            # pairs, then one count per voxel — an order-fixed pass like
            # everything else here (np.unique sorts).
            pairs = np.unique(
                np.stack([inverse, sources], axis=1), axis=0
            )
            camera_counts = np.bincount(pairs[:, 0], minlength=n_vox)
            self._fused = (centers, weight_sum, counts, camera_counts)
        return self._fused

    @property
    def n_voxels(self) -> int:
        """Occupied voxel count of the fused map."""
        return len(self._fuse()[0])

    def fused_points(self) -> np.ndarray:
        """``(V, 3)`` one confidence-weighted mean point per occupied voxel."""
        return self._fuse()[0]

    def fused_confidences(self) -> np.ndarray:
        """``(V,)`` total confidence accumulated per voxel."""
        return self._fuse()[1]

    def fused_counts(self) -> np.ndarray:
        """``(V,)`` observation count per voxel."""
        return self._fuse()[2]

    def fused_camera_counts(self) -> np.ndarray:
        """``(V,)`` distinct insertion sources (rig cameras) per voxel."""
        return self._fuse()[3]

    def fused_cloud(
        self, min_observations: int = 1, min_cameras: int = 1
    ) -> PointCloud:
        """The fused map as a :class:`PointCloud`.

        ``min_observations > 1`` keeps only voxels supported by several
        observations — cross-view agreement filtering for multi-keyframe
        runs.  ``min_cameras > 1`` additionally requires the voxel to be
        observed by that many *distinct* sources (rig cameras) — the
        cross-camera outlier rejection of multi-camera fusion; it is a
        no-op for monocular maps filtered at ``min_cameras=1``.
        """
        centers, _, counts, camera_counts = self._fuse()
        keep = None
        if min_observations > 1:
            keep = counts >= min_observations
        if min_cameras > 1:
            agree = camera_counts >= min_cameras
            keep = agree if keep is None else (keep & agree)
        if keep is not None:
            centers = centers[keep]
        return PointCloud(centers.copy())


@dataclass(frozen=True)
class MappingResult:
    """Output of a :class:`MappingOrchestrator` run.

    Duck-compatible with :class:`~repro.core.results.EMVSResult` where it
    matters (``keyframes``, ``cloud``, ``profile``, ``n_points``), with
    ``cloud`` holding the *fused* global map.

    ``missing_segments`` is the degradation manifest of the serve
    layer's ``allow_partial`` option: segment indices whose outcomes
    never landed (deadline, exhausted retries).  Empty — a complete
    result — everywhere outside a ``PARTIAL`` serve job; the fused map
    of a partial result covers exactly the completed key frames.
    """

    keyframes: list[KeyframeReconstruction]
    global_map: GlobalMap
    cloud: PointCloud
    profile: PipelineProfile
    segments: tuple[SegmentPlan, ...]
    workers: int
    wall_seconds: float
    missing_segments: tuple[int, ...] = ()

    @property
    def n_points(self) -> int:
        """Point count of the fused cloud."""
        return len(self.cloud)

    @property
    def complete(self) -> bool:
        """Whether every planned segment's outcome is in the result."""
        return not self.missing_segments


# ----------------------------------------------------------------------
# Segment execution — the shared unit of parallel mapping *and* serving
# ----------------------------------------------------------------------
def default_voxel_size(depth_range: tuple[float, float]) -> float:
    """Default fusion voxel edge: 1 % of the mean DSI depth.

    One definition shared by :class:`MappingOrchestrator` and the serving
    layer, so a service job and a direct orchestrator run fuse identically
    by construction.
    """
    return 0.01 * 0.5 * (depth_range[0] + depth_range[1])


@dataclass(frozen=True)
class SegmentTask:
    """One planned segment's worth of work, self-contained and picklable.

    ``index`` orders the outcome back into the stream's segment sequence;
    ``events`` is the frame-aligned slice the plan cut; ``spec`` carries
    the full engine configuration.  Both the parallel orchestrator and the
    reconstruction service shard streams into these, so their per-segment
    execution is the *same code path* — the determinism equivalence
    between the two is structural.

    ``camera`` is an optional provenance tag (the rig camera name a
    multi-camera orchestrator sharded this segment for).  It never enters
    :meth:`content_digest`: the computation is fully determined by
    ``spec`` + ``events``, so a rig camera's segment and the identical
    monocular segment share one cache entry.
    """

    index: int
    events: EventArray
    spec: EngineSpec
    camera: str = ""

    def content_digest(self) -> str:
        """Content-addressed identity of this task's *computation*.

        The key the serving layer's segment cache memoizes outcomes
        under: a hash of the event slice plus every spec field that
        changes the result.  ``index`` is deliberately excluded —
        :func:`run_segment_task` never reads it (the trajectory is
        sampled by absolute event time), so the same slice under the
        same spec computes the same outcome at any position.
        """
        # Runtime import: core must stay importable without serve, but
        # the one canonical key derivation lives with the cache.
        from repro.serve.cache import segment_key

        return segment_key(self.spec, self.events.content_digest())


#: A finished segment: ``(index, keyframes, profile)``.
SegmentOutcome = tuple[int, list[KeyframeReconstruction], PipelineProfile]


def run_segment_task(task: SegmentTask) -> SegmentOutcome:
    """Run one planned segment in a fresh engine (worker entry point).

    Module-level so process pools can pickle it; every argument and return
    value round-trips through pickle losslessly (numpy arrays serialize
    bit-exactly), so process execution cannot perturb the results.
    """
    engine = task.spec.build()
    keyframes = engine.run_segment(task.events)
    return task.index, keyframes, engine.profile


def segment_tasks(
    plans: list[SegmentPlan], events: EventArray, spec: EngineSpec
) -> list[SegmentTask]:
    """Materialize a plan list into self-contained worker tasks."""
    return [SegmentTask(plan.index, plan.slice(events), spec) for plan in plans]


def merge_outcomes(
    outcomes: list[SegmentOutcome], dropped_events: int = 0
) -> tuple[list[KeyframeReconstruction], PipelineProfile]:
    """Deterministic reduction of segment outcomes: segment order, always.

    Outcomes may arrive in any pool-completion order; they are sorted by
    segment index before merging, so keyframe order and the aggregate
    profile are independent of scheduling.  ``dropped_events`` accounts
    the trailing partial frame the plan dropped at stream end.
    """
    outcomes = sorted(outcomes, key=lambda out: out[0])
    profile = PipelineProfile()
    keyframes: list[KeyframeReconstruction] = []
    for _, segment_keyframes, segment_profile in outcomes:
        keyframes.extend(segment_keyframes)
        profile.merge(segment_profile)
    profile.dropped_events += dropped_events
    return keyframes, profile


def fuse_keyframes(
    keyframes: list[KeyframeReconstruction],
    camera: PinholeCamera,
    voxel_size: float,
) -> GlobalMap:
    """Fuse key-frame depth maps into a fresh :class:`GlobalMap` (in order)."""
    global_map = GlobalMap(voxel_size)
    for reconstruction in keyframes:
        global_map.insert_keyframe(reconstruction, camera)
    return global_map


def fuse_camera_keyframes(
    streams: list[tuple[PinholeCamera, list[KeyframeReconstruction]]],
    voxel_size: float,
) -> GlobalMap:
    """Fuse several cameras' key-frame streams into one :class:`GlobalMap`.

    ``streams`` is ordered ``(camera, keyframes)`` pairs — one per rig
    camera; the pair's position is its ``source`` label, so the fused
    map's :meth:`~GlobalMap.fused_camera_counts` records cross-camera
    agreement.  Insertion order is camera-major then keyframe order,
    which fixes the reduction order: the fused arrays are bit-identical
    however the per-camera keyframes were computed (inline, thread or
    process pools, any worker count).
    """
    global_map = GlobalMap(voxel_size)
    for source, (camera, keyframes) in enumerate(streams):
        for reconstruction in keyframes:
            global_map.insert_keyframe(reconstruction, camera, source=source)
    return global_map


class MappingOrchestrator:
    """Shard a stream into key-frame segments and map them in parallel.

    Constructor parameters mirror :class:`ReconstructionEngine`, plus:

    Parameters
    ----------
    workers:
        Worker-pool width.  ``None`` uses the machine's CPU count capped
        by the segment count; ``1`` runs serially (still through the
        segment plan, so results are identical to any parallel width).
    voxel_size:
        :class:`GlobalMap` fusion voxel edge in metres.  Defaults to 1 %
        of the mean DSI depth.
    executor:
        ``"process"``, ``"thread"`` or ``None`` to choose per backend:
        processes for the numpy backends (sidesteps the GIL for the
        vectorized hot path), threads for ``hardware-model`` (the
        cycle-accurate system is cheap-state python that gains nothing
        from pickling across processes).

    The backend must be a registry *name* (workers construct their own
    instances; a bound backend instance cannot be shared across pools).

    Examples
    --------
    Parallel multi-keyframe mapping with a fused global map::

        from repro.core import EMVSConfig, MappingOrchestrator
        from repro.events.datasets import load_sequence

        seq = load_sequence("corridor_sweep", quality="fast")
        orchestrator = MappingOrchestrator(
            seq.camera, seq.trajectory,
            EMVSConfig(n_depth_planes=48,
                       keyframe_distance=seq.keyframe_distance),
            depth_range=seq.depth_range,
            backend="numpy-batch",
            workers=4,                     # fused map identical for any width
        )
        result = orchestrator.run(seq.events)
        result.cloud                       # fused global map (PointCloud)
        result.global_map.fused_cloud(min_observations=2)
    """

    def __init__(
        self,
        camera: PinholeCamera,
        trajectory: Trajectory,
        config: EMVSConfig | None = None,
        depth_range: tuple[float, float] = (0.5, 5.0),
        policy: DataflowPolicy | str = REFORMULATED_POLICY,
        backend: str = "numpy-batch",
        workers: int | None = None,
        voxel_size: float | None = None,
        executor: str | None = None,
    ):
        if not isinstance(backend, str):
            raise TypeError(
                "MappingOrchestrator needs a backend registry name; worker "
                "engines each construct their own backend instance"
            )
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for auto)")
        if voxel_size is not None and voxel_size <= 0:
            raise ValueError("voxel_size must be positive (or None for auto)")
        if executor not in (None, "process", "thread"):
            raise ValueError("executor must be 'process', 'thread' or None")
        self.spec = EngineSpec(
            camera,
            trajectory,
            config or EMVSConfig(),
            depth_range=depth_range,
            policy=resolve_policy(policy),
            backend=backend,
        )
        self.workers = workers
        # Derive the default from the spec-normalized (float) depth range
        # so the serving layer — which only sees the spec — computes the
        # exact same voxel edge and stays bit-identical.
        self.voxel_size = (
            voxel_size
            if voxel_size is not None
            else default_voxel_size(self.spec.depth_range)
        )
        self.executor = executor

    # Constructor-parameter views onto the spec (the public surface
    # predates EngineSpec and stays stable).
    @property
    def camera(self) -> PinholeCamera:
        """Sensor calibration (spec view)."""
        return self.spec.camera

    @property
    def trajectory(self) -> Trajectory:
        """Pose source (spec view)."""
        return self.spec.trajectory

    @property
    def config(self) -> EMVSConfig:
        """Shared EMVS parameters (spec view)."""
        return self.spec.config

    @property
    def depth_range(self) -> tuple[float, float]:
        """DSI depth bounds (spec view)."""
        return self.spec.depth_range

    @property
    def policy(self) -> DataflowPolicy:
        """Resolved dataflow policy (spec view)."""
        return self.spec.policy

    @property
    def backend(self) -> str:
        """Execution-backend registry name (spec view)."""
        return self.spec.backend

    # ------------------------------------------------------------------
    def _resolve_workers(self, n_segments: int) -> int:
        requested = self.workers or os.cpu_count() or 1
        return max(1, min(requested, n_segments))

    def _make_pool(self, workers: int) -> Executor:
        kind = self.executor or (
            "thread" if self.backend == "hardware-model" else "process"
        )
        if kind == "thread":
            return ThreadPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(max_workers=workers)

    def run(self, events: EventArray) -> MappingResult:
        """Plan, execute (possibly in parallel) and fuse one stream."""
        t_wall = time.perf_counter()
        plans, dropped = plan_segments(events, self.trajectory, self.config)
        tasks = segment_tasks(plans, events, self.spec)
        workers = self._resolve_workers(len(plans))
        if workers == 1:
            outcomes = [run_segment_task(task) for task in tasks]
        else:
            with self._make_pool(workers) as pool:
                outcomes = list(pool.map(run_segment_task, tasks))
        # Deterministic fusion: segment order, whatever the pool's
        # completion order was.
        keyframes, profile = merge_outcomes(outcomes, dropped)
        global_map = fuse_keyframes(keyframes, self.camera, self.voxel_size)
        return MappingResult(
            keyframes=keyframes,
            global_map=global_map,
            cloud=global_map.fused_cloud(),
            profile=profile,
            segments=tuple(plans),
            workers=workers,
            wall_seconds=time.perf_counter() - t_wall,
        )
