"""Eventor's hybrid quantization schema (Table 1 of the paper).

==========================  ==========  ===========  ============
Quantized data type         total bits  integer bits decimal bits
==========================  ==========  ===========  ============
``(x_k, y_k)``              16          9            7
``(x_k(Z0), y_k(Z0))``      16          9            7
``(x_k(Zi), y_k(Zi))``      8           8            0
``H_Z0``                    32          11           21
``phi``                     32          11           21
DSI scores                  16          16           0
==========================  ==========  ===========  ============

Event and canonical-plane coordinates are unsigned (9 integer bits cover the
0..511 pixel range of a padded 240x180 sensor); homography and proportional
coefficients are signed with the sign bit counted inside the 11 integer bits.
Concatenating the two 16-bit coordinates of an event yields the 32-bit DRAM
word the DMA transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.qformat import Overflow, QFormat, Rounding

#: ``(x_k, y_k)`` raw/undistorted event coordinates: unsigned Q9.7.
EVENT_COORD_FORMAT = QFormat(16, 7, signed=False)

#: ``(x_k(Z0), y_k(Z0))`` canonical-plane coordinates: unsigned Q9.7.
CANONICAL_COORD_FORMAT = QFormat(16, 7, signed=False)

#: ``(x_k(Zi), y_k(Zi))`` per-plane coordinates: 8-bit integers (nearest
#: voting needs no fractional part).
PLANE_COORD_FORMAT = QFormat(8, 0, signed=False)

#: Homography matrix entries: signed Q11.21 (sign included in the 11).
HOMOGRAPHY_FORMAT = QFormat(32, 21, signed=True)

#: Proportional back-projection coefficients phi: signed Q11.21.
PHI_FORMAT = QFormat(32, 21, signed=True)

#: DSI voxel scores: 16-bit unsigned integers (nearest votes are integral).
DSI_SCORE_FORMAT = QFormat(16, 0, signed=False)


@dataclass(frozen=True)
class QuantizationSchema:
    """Bundle of formats used by one configuration of the pipeline.

    ``enabled=False`` produces the full-precision reference behaviour while
    keeping a uniform interface (used for the Fig. 4b / Fig. 7a ablations).
    """

    enabled: bool = True
    event_coord: QFormat = EVENT_COORD_FORMAT
    canonical_coord: QFormat = CANONICAL_COORD_FORMAT
    plane_coord: QFormat = PLANE_COORD_FORMAT
    homography: QFormat = HOMOGRAPHY_FORMAT
    phi: QFormat = PHI_FORMAT
    dsi_score: QFormat = DSI_SCORE_FORMAT

    # ------------------------------------------------------------------
    def quantize_event_coords(self, xy: np.ndarray) -> np.ndarray:
        if not self.enabled:
            return np.asarray(xy, dtype=float)
        return self.event_coord.quantize(xy)

    def quantize_canonical(self, xy: np.ndarray) -> np.ndarray:
        if not self.enabled:
            return np.asarray(xy, dtype=float)
        return self.canonical_coord.quantize(xy)

    def canonical_overflow(self, xy: np.ndarray) -> np.ndarray:
        """Coordinates the canonical format cannot represent (drop as miss)."""
        if not self.enabled:
            return ~np.isfinite(np.asarray(xy, dtype=float))
        return self.canonical_coord.overflows(xy)

    def quantize_homography(self, H: np.ndarray) -> np.ndarray:
        if not self.enabled:
            return np.asarray(H, dtype=float)
        return self.homography.quantize(H)

    def quantize_phi(self, phi: np.ndarray) -> np.ndarray:
        if not self.enabled:
            return np.asarray(phi, dtype=float)
        return self.phi.quantize(phi)

    # ------------------------------------------------------------------
    def event_word_bits(self) -> int:
        """Bits per event as stored in DRAM (two coordinates concatenated)."""
        return 2 * self.event_coord.total_bits if self.enabled else 64

    def dsi_score_bits(self) -> int:
        return self.dsi_score.total_bits if self.enabled else 32

    def memory_footprint(self, n_events: int, dsi_voxels: int) -> int:
        """Total bytes for event storage + DSI at this schema."""
        event_bytes = n_events * self.event_word_bits() // 8
        dsi_bytes = dsi_voxels * self.dsi_score_bits() // 8
        return event_bytes + dsi_bytes

    def memory_saving_vs_float(self, n_events: int, dsi_voxels: int) -> float:
        """Fractional saving vs. the float32 baseline (paper claims ~50 %)."""
        float_schema = FLOAT_SCHEMA
        mine = self.memory_footprint(n_events, dsi_voxels)
        theirs = (
            n_events * 2 * 32 // 8 + dsi_voxels * 32 // 8
        )  # float32 coords + float32 scores
        del float_schema
        return 1.0 - mine / theirs


#: The schema of the paper (Table 1).
EVENTOR_SCHEMA = QuantizationSchema(enabled=True)

#: Full-precision reference (quantization disabled).
FLOAT_SCHEMA = QuantizationSchema(enabled=False)


# ----------------------------------------------------------------------
# Convenience wrappers used by pipelines and the hardware model
# ----------------------------------------------------------------------
def quantize_events(xy: np.ndarray, schema: QuantizationSchema = EVENTOR_SCHEMA) -> np.ndarray:
    """Quantize raw event coordinates per the schema."""
    return schema.quantize_event_coords(xy)


def quantize_homography(H: np.ndarray, schema: QuantizationSchema = EVENTOR_SCHEMA) -> np.ndarray:
    return schema.quantize_homography(H)


def quantize_phi(phi: np.ndarray, schema: QuantizationSchema = EVENTOR_SCHEMA) -> np.ndarray:
    return schema.quantize_phi(phi)


def pack_event_word(xy_raw: np.ndarray) -> np.ndarray:
    """Concatenate two 16-bit coordinate words into one 32-bit DRAM word.

    ``xy_raw`` holds the *raw* (integer) uQ9.7 payloads, shape ``(N, 2)``.
    The x coordinate occupies the high half-word, matching the AXI packing
    described in Sec. 3.1.
    """
    xy_raw = np.asarray(xy_raw, dtype=np.int64)
    if np.any((xy_raw < 0) | (xy_raw > 0xFFFF)):
        raise ValueError("packed coordinates must be 16-bit unsigned payloads")
    return (xy_raw[:, 0] << 16) | xy_raw[:, 1]


def unpack_event_word(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_event_word`; returns ``(N, 2)`` raw payloads."""
    words = np.asarray(words, dtype=np.int64)
    return np.stack([(words >> 16) & 0xFFFF, words & 0xFFFF], axis=1)
