"""Q-format fixed-point number descriptions.

A :class:`QFormat` describes a binary fixed-point representation by total
word length, fractional bits and signedness.  Following the convention of
the paper's Table 1, the *integer bit count* of a signed format includes the
sign bit (e.g. the homography format "32 bits, 11 integer, 21 decimal" is
``QFormat(32, 21, signed=True)`` with 10 magnitude bits + sign).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class Rounding(enum.Enum):
    """Rounding mode applied when narrowing to a format."""

    NEAREST = "nearest"  # round half away from zero (DSP-style)
    FLOOR = "floor"      # truncation toward minus infinity (drop LSBs)


class Overflow(enum.Enum):
    """Overflow handling when a value exceeds the representable range."""

    SATURATE = "saturate"
    WRAP = "wrap"


@dataclass(frozen=True)
class QFormat:
    """Binary fixed-point format ``Q<int>.<frac>``.

    Attributes
    ----------
    total_bits:
        Word length, including the sign bit for signed formats.
    frac_bits:
        Number of fractional (sub-LSB) bits; the scale is ``2**frac_bits``.
    signed:
        Two's-complement when True, unsigned otherwise.
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 1 or self.total_bits > 63:
            raise ValueError("total_bits must be in [1, 63] (int64 backing store)")
        if self.frac_bits < 0 or self.frac_bits > self.total_bits:
            raise ValueError("frac_bits must be in [0, total_bits]")
        if self.signed and self.total_bits < 2:
            raise ValueError("signed formats need at least 2 bits")

    # ------------------------------------------------------------------
    @property
    def int_bits(self) -> int:
        """Integer bits *excluding* the sign bit."""
        return self.total_bits - self.frac_bits - (1 if self.signed else 0)

    @property
    def scale(self) -> float:
        return float(1 << self.frac_bits)

    @property
    def resolution(self) -> float:
        """Value of one LSB."""
        return 1.0 / self.scale

    @property
    def raw_min(self) -> int:
        return -(1 << (self.total_bits - 1)) if self.signed else 0

    @property
    def raw_max(self) -> int:
        bits = self.total_bits - (1 if self.signed else 0)
        return (1 << bits) - 1

    @property
    def min_value(self) -> float:
        return self.raw_min / self.scale

    @property
    def max_value(self) -> float:
        return self.raw_max / self.scale

    def __str__(self) -> str:
        sign = "s" if self.signed else "u"
        return f"{sign}Q{self.total_bits - self.frac_bits - (1 if self.signed else 0)}.{self.frac_bits}/{self.total_bits}b"

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_raw(
        self,
        values: np.ndarray,
        rounding: Rounding = Rounding.NEAREST,
        overflow: Overflow = Overflow.SATURATE,
    ) -> np.ndarray:
        """Quantize floats to raw integer representation (int64).

        Non-finite inputs saturate to the nearest representable bound (the
        pipeline treats them as projection misses before this point).
        """
        values = np.asarray(values, dtype=float)
        scaled = values * self.scale
        if rounding is Rounding.NEAREST:
            raw = np.where(scaled >= 0, np.floor(scaled + 0.5), np.ceil(scaled - 0.5))
        else:
            raw = np.floor(scaled)
        raw = np.nan_to_num(raw, nan=0.0, posinf=float(self.raw_max), neginf=float(self.raw_min))
        raw = raw.astype(np.int64)
        if overflow is Overflow.SATURATE:
            return np.clip(raw, self.raw_min, self.raw_max)
        span = self.raw_max - self.raw_min + 1
        return (raw - self.raw_min) % span + self.raw_min

    def from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Dequantize raw integers back to float."""
        return np.asarray(raw, dtype=np.int64) / self.scale

    def quantize(
        self,
        values: np.ndarray,
        rounding: Rounding = Rounding.NEAREST,
        overflow: Overflow = Overflow.SATURATE,
    ) -> np.ndarray:
        """Round-trip floats through the format (quantization simulation)."""
        return self.from_raw(self.to_raw(values, rounding, overflow))

    def overflows(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of values outside the representable range.

        Used by the hardware model's projection-miss judgement: saturated
        coordinates must be discarded, not voted at the sensor border.
        """
        values = np.asarray(values, dtype=float)
        return (
            ~np.isfinite(values)
            | (values < self.min_value - 0.5 * self.resolution)
            | (values > self.max_value + 0.5 * self.resolution)
        )

    def quantization_error_bound(self) -> float:
        """Worst-case absolute error of round-to-nearest: half an LSB."""
        return 0.5 * self.resolution
