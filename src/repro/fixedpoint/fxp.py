"""Fixed-point array arithmetic.

:class:`FxpArray` pairs a raw int64 numpy array with a :class:`QFormat` and
implements the bit-growth rules of binary fixed-point arithmetic:

* ``a + b`` aligns binary points and grows one integer bit;
* ``a * b`` adds word lengths and fractional bits;
* :meth:`resize` narrows to a target format with explicit rounding/overflow.

This is what the hardware model uses to execute PE datapaths bit-true: a
product of the paper's uQ9.7 coordinates with sQ11.21 homography terms is a
41-bit sQ20.28 value, well inside the int64 backing store.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.qformat import Overflow, QFormat, Rounding


class FxpArray:
    """Immutable fixed-point array: raw int64 payload + format."""

    __slots__ = ("raw", "fmt")

    def __init__(self, raw: np.ndarray, fmt: QFormat):
        raw = np.asarray(raw, dtype=np.int64)
        if np.any(raw < fmt.raw_min) or np.any(raw > fmt.raw_max):
            raise ValueError(f"raw payload exceeds the range of {fmt}")
        self.raw = raw
        self.raw.setflags(write=False)
        self.fmt = fmt

    # ------------------------------------------------------------------
    @staticmethod
    def from_float(
        values: np.ndarray,
        fmt: QFormat,
        rounding: Rounding = Rounding.NEAREST,
        overflow: Overflow = Overflow.SATURATE,
    ) -> "FxpArray":
        return FxpArray(fmt.to_raw(values, rounding, overflow), fmt)

    def to_float(self) -> np.ndarray:
        return self.fmt.from_raw(self.raw)

    @property
    def shape(self):
        return self.raw.shape

    def __len__(self) -> int:
        return len(self.raw)

    def __getitem__(self, key) -> "FxpArray":
        return FxpArray(np.atleast_1d(self.raw[key]), self.fmt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FxpArray({self.fmt}, shape={self.raw.shape})"

    # ------------------------------------------------------------------
    # Arithmetic with bit growth
    # ------------------------------------------------------------------
    def _aligned(self, other: "FxpArray") -> tuple[np.ndarray, np.ndarray, int]:
        """Align binary points; returns raws at the wider fractional width."""
        frac = max(self.fmt.frac_bits, other.fmt.frac_bits)
        a = self.raw << (frac - self.fmt.frac_bits)
        b = other.raw << (frac - other.fmt.frac_bits)
        return a, b, frac

    def __add__(self, other: "FxpArray") -> "FxpArray":
        a, b, frac = self._aligned(other)
        signed = self.fmt.signed or other.fmt.signed
        int_bits = max(self.fmt.int_bits, other.fmt.int_bits) + 1
        fmt = QFormat(int_bits + frac + (1 if signed else 0), frac, signed)
        return FxpArray(a + b, fmt)

    def __sub__(self, other: "FxpArray") -> "FxpArray":
        a, b, frac = self._aligned(other)
        int_bits = max(self.fmt.int_bits, other.fmt.int_bits) + 1
        fmt = QFormat(int_bits + frac + 1, frac, True)
        return FxpArray(a - b, fmt)

    def __mul__(self, other: "FxpArray") -> "FxpArray":
        frac = self.fmt.frac_bits + other.fmt.frac_bits
        signed = self.fmt.signed or other.fmt.signed
        total = self.fmt.total_bits + other.fmt.total_bits
        if total > 63:
            raise OverflowError(
                f"product of {self.fmt} and {other.fmt} exceeds the int64 store"
            )
        fmt = QFormat(total, frac, signed)
        return FxpArray(self.raw * other.raw, fmt)

    def resize(
        self,
        fmt: QFormat,
        rounding: Rounding = Rounding.NEAREST,
        overflow: Overflow = Overflow.SATURATE,
    ) -> "FxpArray":
        """Narrow (or widen) to ``fmt`` with explicit rounding and overflow."""
        shift = self.fmt.frac_bits - fmt.frac_bits
        if shift <= 0:
            raw = self.raw << (-shift)
        elif rounding is Rounding.NEAREST:
            # Round half away from zero on the dropped bits.
            half = np.int64(1) << np.int64(shift - 1)
            raw = np.where(
                self.raw >= 0,
                (self.raw + half) >> np.int64(shift),
                -((-self.raw + half) >> np.int64(shift)),
            )
        else:
            raw = self.raw >> np.int64(shift)
        if overflow is Overflow.SATURATE:
            raw = np.clip(raw, fmt.raw_min, fmt.raw_max)
        else:
            span = fmt.raw_max - fmt.raw_min + 1
            raw = (raw - fmt.raw_min) % span + fmt.raw_min
        return FxpArray(raw, fmt)

    def overflow_mask(self, fmt: QFormat) -> np.ndarray:
        """Which elements would saturate when resized to ``fmt``."""
        return fmt.overflows(self.to_float())
