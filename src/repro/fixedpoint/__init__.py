"""Fixed-point arithmetic substrate.

Implements the hybrid data quantization of the paper (Table 1): generic
Q-format descriptions (:mod:`repro.fixedpoint.qformat`), quantized array
arithmetic (:mod:`repro.fixedpoint.fxp`), and the concrete per-signal schema
Eventor uses (:mod:`repro.fixedpoint.quantize`).
"""

from repro.fixedpoint.qformat import QFormat, Rounding, Overflow
from repro.fixedpoint.fxp import FxpArray
from repro.fixedpoint.quantize import (
    QuantizationSchema,
    EVENTOR_SCHEMA,
    FLOAT_SCHEMA,
    quantize_events,
    quantize_homography,
    quantize_phi,
)

__all__ = [
    "QFormat",
    "Rounding",
    "Overflow",
    "FxpArray",
    "QuantizationSchema",
    "EVENTOR_SCHEMA",
    "FLOAT_SCHEMA",
    "quantize_events",
    "quantize_homography",
    "quantize_phi",
]
