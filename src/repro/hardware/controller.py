"""FSM controllers for the two computation modules (Sec. 3.1-3.2).

The Canonical and Proportional Projection Controllers are finite-state
machines with an explicit synchronization state: the canonical side may
only swap Buf_I (publishing a frame's canonical coordinates) when the
proportional side has drained the previous bank, and the proportional side
only starts once a bank is published — the handshake that keeps the two
modules pipelined without overrunning each other (Fig. 6).

The models here enforce legal transitions (tests drive illegal ones to
prove the protocol) and log every transition for timeline inspection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CtrlState(enum.Enum):
    IDLE = "idle"
    CONFIG = "config"    # receiving start instruction + parameters from ARM
    LOAD = "load"        # waiting on DMA / input buffer fill
    RUN = "run"          # PE pipeline streaming
    SYNC = "sync"        # double-buffer handshake with the peer module
    DONE = "done"        # frame retired


class FSMError(RuntimeError):
    """Raised on an illegal state transition."""


@dataclass
class Transition:
    cycle: float
    source: CtrlState
    target: CtrlState


@dataclass
class _FSMBase:
    name: str
    state: CtrlState = CtrlState.IDLE
    log: list[Transition] = field(default_factory=list)

    _ALLOWED: dict[CtrlState, tuple[CtrlState, ...]] = field(default_factory=dict, repr=False)

    def _go(self, target: CtrlState, cycle: float) -> None:
        allowed = self._ALLOWED.get(self.state, ())
        if target not in allowed:
            raise FSMError(
                f"{self.name}: illegal transition {self.state.value} -> {target.value}"
            )
        self.log.append(Transition(cycle, self.state, target))
        self.state = target

    def frames_retired(self) -> int:
        return sum(1 for t in self.log if t.target is CtrlState.DONE)


class CanonicalProjectionController(_FSMBase):
    """FSM of the Canonical Projection Module."""

    def __init__(self, name: str = "canonical-ctrl"):
        super().__init__(name=name)
        self._ALLOWED = {
            CtrlState.IDLE: (CtrlState.CONFIG,),
            CtrlState.CONFIG: (CtrlState.LOAD,),
            CtrlState.LOAD: (CtrlState.RUN,),
            CtrlState.RUN: (CtrlState.SYNC,),
            CtrlState.SYNC: (CtrlState.DONE,),
            CtrlState.DONE: (CtrlState.CONFIG, CtrlState.IDLE),
        }

    def configure(self, cycle: float) -> None:
        if self.state is CtrlState.DONE:
            self._go(CtrlState.CONFIG, cycle)
        else:
            self._go(CtrlState.CONFIG, cycle)

    def start_load(self, cycle: float) -> None:
        self._go(CtrlState.LOAD, cycle)

    def start_run(self, cycle: float) -> None:
        self._go(CtrlState.RUN, cycle)

    def request_sync(self, cycle: float) -> None:
        """Enter the Buf_I swap handshake with the proportional side."""
        self._go(CtrlState.SYNC, cycle)

    def complete(self, cycle: float) -> None:
        self._go(CtrlState.DONE, cycle)

    def park(self, cycle: float) -> None:
        self._go(CtrlState.IDLE, cycle)


class ProportionalProjectionController(_FSMBase):
    """FSM of the Proportional Projection Module."""

    def __init__(self, name: str = "proportional-ctrl"):
        super().__init__(name=name)
        self._ALLOWED = {
            CtrlState.IDLE: (CtrlState.CONFIG,),
            CtrlState.CONFIG: (CtrlState.SYNC,),
            CtrlState.SYNC: (CtrlState.RUN,),
            CtrlState.RUN: (CtrlState.DONE,),
            CtrlState.DONE: (CtrlState.SYNC, CtrlState.IDLE),
        }

    def configure(self, cycle: float) -> None:
        self._go(CtrlState.CONFIG, cycle)

    def wait_input(self, cycle: float) -> None:
        """Block until the canonical side publishes a Buf_I bank."""
        self._go(CtrlState.SYNC, cycle)

    def start_run(self, cycle: float) -> None:
        self._go(CtrlState.RUN, cycle)

    def complete(self, cycle: float) -> None:
        self._go(CtrlState.DONE, cycle)

    def park(self, cycle: float) -> None:
        self._go(CtrlState.IDLE, cycle)
