"""Parametric FPGA resource model (Table 2).

Estimates LUT/FF/BRAM/DSP usage per architectural block as a function of
the configuration, so the default prototype reproduces the published
utilization (17 538 LUT / 22 830 FF / 64 KB BRAM on the XC7Z020) and
ablations (more PE_Zi, wider buffers) scale sensibly.

Block cost constants come from typical 7-series synthesis results for the
corresponding structures (pipelined 16x32 multipliers folded into DSPs with
LUT-based alignment/control, a radix-2 pipelined divider, AXI DMA and HP
port adapters) and are calibrated so the default configuration sums to the
published report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import EventorConfig, FPGAPartSpec, ZYNQ_7020


@dataclass(frozen=True)
class BlockCost:
    """Resource cost of one block instance."""

    name: str
    luts: int
    flip_flops: int
    bram_bytes: int = 0
    dsps: int = 0


@dataclass(frozen=True)
class FPGAPart:
    """Wrapper pairing a part spec with utilization arithmetic."""

    spec: FPGAPartSpec = ZYNQ_7020

    def utilization(self, luts: int, ffs: int, bram_bytes: int) -> dict[str, float]:
        return {
            "lut": luts / self.spec.luts,
            "ff": ffs / self.spec.flip_flops,
            "bram": bram_bytes / (self.spec.bram_kbytes * 1024),
        }


class ResourceModel:
    """Composable per-block resource estimates."""

    def __init__(self, config: EventorConfig, part: FPGAPart | None = None):
        self.config = config
        self.part = part or FPGAPart()

    # ------------------------------------------------------------------
    def blocks(self) -> list[BlockCost]:
        cfg = self.config
        frame = cfg.frame_size
        nz = cfg.n_planes

        # Double-buffered BRAM allocations (two banks each, 32-bit words).
        buf_e = 2 * frame * 4                 # packed input events
        buf_i = 2 * frame * 4 * cfg.n_pe_zi   # canonical coords, per PE_Zi
        buf_p = 2 * 3 * nz * 4                # phi coefficients
        buf_v = 2 * 2 * frame * 4 * 2         # vote addresses, two banks x2
        fifo = 5 * 1024                       # DMA / HP port FIFOs

        return [
            BlockCost("PE_Z0 MV-MAC array", luts=2610, flip_flops=3640, dsps=9),
            BlockCost("PE_Z0 normalization divider", luts=2420, flip_flops=3010),
            *[
                BlockCost(
                    f"PE_Zi[{i}] (MACs + voxel finder + addr gen)",
                    luts=1890,
                    flip_flops=2460,
                    dsps=4,
                )
                for i in range(cfg.n_pe_zi)
            ],
            BlockCost("Vote Execute Unit (2x AXI-HP RMW)", luts=1530, flip_flops=2280),
            BlockCost("Data Allocator", luts=840, flip_flops=1110),
            BlockCost("DMA + AXI interface", luts=2740, flip_flops=3560),
            BlockCost("Canonical controller FSM", luts=480, flip_flops=640),
            BlockCost("Proportional controller FSM", luts=480, flip_flops=640),
            BlockCost(
                "Buffers (Buf_E/I/P/V + FIFOs)",
                luts=620,
                flip_flops=850,
                bram_bytes=buf_e + buf_i + buf_p + buf_v + fifo,
            ),
            BlockCost("Top-level interconnect & CDC", luts=2038, flip_flops=2180),
        ]

    # ------------------------------------------------------------------
    def totals(self) -> BlockCost:
        blocks = self.blocks()
        return BlockCost(
            name="total",
            luts=sum(b.luts for b in blocks),
            flip_flops=sum(b.flip_flops for b in blocks),
            bram_bytes=sum(b.bram_bytes for b in blocks),
            dsps=sum(b.dsps for b in blocks),
        )

    def utilization(self) -> dict[str, float]:
        t = self.totals()
        return self.part.utilization(t.luts, t.flip_flops, t.bram_bytes)

    def fits(self) -> bool:
        """Whether the configuration fits the part."""
        return all(v <= 1.0 for v in self.utilization().values())

    def report(self) -> str:
        t = self.totals()
        u = self.utilization()
        lines = [f"Resource estimate on {self.part.spec.name}:"]
        for b in self.blocks():
            lines.append(
                f"  {b.name:<42} {b.luts:>6} LUT {b.flip_flops:>6} FF"
                + (f" {b.bram_bytes // 1024:>4} KB" if b.bram_bytes else "")
            )
        lines.append(
            f"  {'TOTAL':<42} {t.luts:>6} LUT {t.flip_flops:>6} FF "
            f"{t.bram_bytes // 1024:>4} KB"
        )
        lines.append(
            f"  utilization: LUT {u['lut']:.2%}  FF {u['ff']:.2%}  "
            f"BRAM {u['bram']:.2%}"
        )
        return "\n".join(lines)
