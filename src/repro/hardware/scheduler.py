"""Pipelined frame scheduler (Fig. 6).

Builds the execution timeline of the two computation modules:

* **Normal frames** — the Canonical Projection Module starts frame N+1 as
  soon as the Proportional Projection Module has accepted frame N's Buf_I
  bank, so ``P(Z0)`` is fully overlapped and the frame period equals the
  proportional stage time.
* **Key frames** — a key frame re-seats the DSI, so the canonical module
  must wait for the proportional module to finish the *previous* frame
  before it may start; the key frame's period is the serial sum of both
  stages.

The scheduler consumes per-frame :class:`~repro.hardware.timing.FrameTiming`
records and produces a timeline (for Gantt-style rendering and the Fig. 6
bench) plus aggregate statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.timing import FrameTiming


@dataclass(frozen=True)
class TimelineEntry:
    """One module-occupancy interval, in fabric cycles."""

    module: str          # "canonical" | "proportional"
    frame_index: int
    start: float
    end: float
    is_keyframe: bool

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ScheduleResult:
    timeline: list[TimelineEntry]
    total_cycles: float
    canonical_busy: float
    proportional_busy: float

    def frame_period(self, frame_index: int) -> float:
        """Completion-to-completion period of a frame (steady-state rate)."""
        ends = [e.end for e in self.timeline if e.module == "proportional"]
        if frame_index <= 0 or frame_index >= len(ends):
            raise IndexError("need a predecessor frame for a period")
        return ends[frame_index] - ends[frame_index - 1]

    def utilization(self) -> dict[str, float]:
        if self.total_cycles <= 0:
            return {"canonical": 0.0, "proportional": 0.0}
        return {
            "canonical": self.canonical_busy / self.total_cycles,
            "proportional": self.proportional_busy / self.total_cycles,
        }


class FrameScheduler:
    """Builds the Fig. 6 timeline from a stream of frame timings."""

    def __init__(self) -> None:
        self._timeline: list[TimelineEntry] = []
        self._canonical_free = 0.0     # when the canonical module can start
        self._proportional_free = 0.0  # when the proportional module can start
        self._pending_canonical_end = 0.0
        self._frame_index = 0

    # ------------------------------------------------------------------
    def add_frame(self, timing: FrameTiming) -> None:
        """Schedule one frame after all previously added frames."""
        if timing.is_keyframe:
            # The DSI is reset: the canonical module waits for the
            # proportional module to retire the previous frame entirely.
            canonical_start = max(self._canonical_free, self._proportional_free)
        else:
            canonical_start = self._canonical_free
        canonical_end = canonical_start + timing.canonical_cycles
        self._timeline.append(
            TimelineEntry(
                "canonical",
                self._frame_index,
                canonical_start,
                canonical_end,
                timing.is_keyframe,
            )
        )

        prop_start = max(canonical_end, self._proportional_free)
        prop_end = prop_start + timing.proportional_cycles
        self._timeline.append(
            TimelineEntry(
                "proportional",
                self._frame_index,
                prop_start,
                prop_end,
                timing.is_keyframe,
            )
        )

        # Buf_I is double-buffered: the canonical module may begin the next
        # frame once the proportional module has *started* this one (its
        # bank is then free for reloading).
        self._canonical_free = max(canonical_end, prop_start)
        self._proportional_free = prop_end
        self._frame_index += 1

    # ------------------------------------------------------------------
    def result(self) -> ScheduleResult:
        canonical_busy = sum(
            e.duration for e in self._timeline if e.module == "canonical"
        )
        proportional_busy = sum(
            e.duration for e in self._timeline if e.module == "proportional"
        )
        total = max((e.end for e in self._timeline), default=0.0)
        return ScheduleResult(
            timeline=list(self._timeline),
            total_cycles=total,
            canonical_busy=canonical_busy,
            proportional_busy=proportional_busy,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def render_gantt(result: ScheduleResult, clock_hz: float, width: int = 72) -> str:
        """ASCII Gantt chart of the timeline (the Fig. 6 reproduction)."""
        if not result.timeline:
            return "(empty schedule)"
        total = result.total_cycles
        scale = width / total
        rows = {"canonical": [" "] * width, "proportional": [" "] * width}
        for entry in result.timeline:
            a = int(entry.start * scale)
            b = max(a + 1, int(entry.end * scale))
            mark = "K" if entry.is_keyframe else str(entry.frame_index % 10)
            for i in range(a, min(b, width)):
                rows[entry.module][i] = mark
        us = total / clock_hz * 1e6
        lines = [
            f"== Fig. 6 pipeline timeline ({us:.1f} us total) ==",
            "canonical    |" + "".join(rows["canonical"]) + "|",
            "proportional |" + "".join(rows["proportional"]) + "|",
            "(digits = frame index, K = key frame)",
        ]
        return "\n".join(lines)
