"""Eventor accelerator model (Fig. 5 of the paper).

A transaction-level, cycle-approximate model of the Zynq XC7Z020 design:
functional datapaths are *bit-true* (integer fixed-point arithmetic per
Table 1, identical results to :class:`repro.core.ReformulatedPipeline`),
and timing follows the pipelined execution model of Fig. 6 with constants
calibrated to the published Table 3 runtimes.

Top-level entry point: :class:`repro.hardware.accelerator.EventorSystem`.
"""

from repro.hardware.config import EventorConfig, ZYNQ_7020
from repro.hardware.accelerator import EventorSystem, HardwareReport
from repro.hardware.backend import HardwareBackend
from repro.hardware.scheduler import FrameScheduler, TimelineEntry
from repro.hardware.timing import TimingModel, FrameTiming
from repro.hardware.energy import PowerModel
from repro.hardware.resources import ResourceModel, FPGAPart

__all__ = [
    "EventorConfig",
    "ZYNQ_7020",
    "EventorSystem",
    "HardwareReport",
    "HardwareBackend",
    "FrameScheduler",
    "TimelineEntry",
    "TimingModel",
    "FrameTiming",
    "PowerModel",
    "ResourceModel",
    "FPGAPart",
]
