"""External DDR3 DRAM model.

Holds the DSI score volume (the only large data structure: a 240x180x128
DSI of 16-bit scores is ~10.5 MB, far beyond the 4.9 Mb of on-chip BRAM —
the reason the Vote Execute Unit talks to DRAM directly through AXI-HP
ports without ARM intervention).

The model is functional (it owns the score array and applies saturating
read-modify-write votes) and keeps byte-traffic counters from which the
timing model derives bandwidth-related stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DRAMStats:
    bytes_read: int = 0
    bytes_written: int = 0
    vote_rmw_ops: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written


class DRAMModel:
    """1 GB, 32-bit DDR3-1066 external memory with a resident DSI volume."""

    def __init__(self, capacity_bytes: int = 1 << 30, bus_bits: int = 32,
                 clock_hz: float = 533e6):
        self.capacity_bytes = capacity_bytes
        self.bus_bits = bus_bits
        self.clock_hz = clock_hz
        self.stats = DRAMStats()
        self._dsi_scores: np.ndarray | None = None
        self._score_limit = 0xFFFF

    # ------------------------------------------------------------------
    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """DDR transfers on both clock edges."""
        return 2.0 * self.clock_hz * self.bus_bits / 8.0

    # ------------------------------------------------------------------
    # DSI storage
    # ------------------------------------------------------------------
    def allocate_dsi(self, shape: tuple[int, int, int], score_bits: int = 16) -> None:
        """Allocate (and zero) the DSI score volume.

        ``score_bits`` follows the Table 1 quantization (16-bit scores);
        32-bit float mode exists only for ablation studies.
        """
        n_bytes = int(np.prod(shape)) * score_bits // 8
        if n_bytes > self.capacity_bytes:
            raise MemoryError(
                f"DSI of {n_bytes} bytes exceeds DRAM capacity {self.capacity_bytes}"
            )
        self._score_limit = (1 << score_bits) - 1
        # int64 backing with explicit saturation keeps the scatter-add fast
        # while preserving exact 16-bit saturating semantics (votes are
        # non-negative, so clamping at readout equals per-add saturation).
        self._dsi_scores = np.zeros(int(np.prod(shape)), dtype=np.int64)
        self._dsi_shape = shape
        self._dsi_score_bytes = score_bits // 8
        self.stats.bytes_written += n_bytes  # the reset sweep

    @property
    def dsi_allocated(self) -> bool:
        return self._dsi_scores is not None

    def reset_dsi(self) -> None:
        if self._dsi_scores is None:
            raise RuntimeError("DSI not allocated")
        self._dsi_scores[...] = 0
        self.stats.bytes_written += self._dsi_scores.size * self._dsi_score_bytes

    def vote(self, addresses: np.ndarray) -> int:
        """Saturating read-modify-write +1 at the given linear addresses.

        Returns the number of votes applied.  Each vote reads and writes
        one score word (the traffic the AXI-HP ports must sustain).
        """
        if self._dsi_scores is None:
            raise RuntimeError("DSI not allocated")
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size and (
            addresses.min() < 0 or addresses.max() >= self._dsi_scores.size
        ):
            raise IndexError("vote address outside the DSI volume")
        np.add.at(self._dsi_scores, addresses, 1)
        n = int(addresses.size)
        self.stats.vote_rmw_ops += n
        self.stats.bytes_read += n * self._dsi_score_bytes
        self.stats.bytes_written += n * self._dsi_score_bytes
        return n

    def read_dsi(self) -> np.ndarray:
        """Read the full (saturated) DSI volume back to the host (ARM)."""
        if self._dsi_scores is None:
            raise RuntimeError("DSI not allocated")
        self.stats.bytes_read += self._dsi_scores.size * self._dsi_score_bytes
        return np.minimum(self._dsi_scores, self._score_limit).reshape(self._dsi_shape)

    # ------------------------------------------------------------------
    # Generic traffic accounting (event/parameter streams)
    # ------------------------------------------------------------------
    def stream_read(self, n_bytes: int) -> None:
        self.stats.bytes_read += int(n_bytes)

    def stream_write(self, n_bytes: int) -> None:
        self.stats.bytes_written += int(n_bytes)
