"""PE_Z0: the Canonical Projection processing element (Sec. 3.1).

Executes ``P(Z0)`` — one event per cycle (II = 1) through a fully
pipelined datapath:

1. **MV MAC units** — three dot products against the rows of the quantized
   homography ``H_Z0`` (sQ11.21) with the event coordinates (uQ9.7).
   Products are exact 47-bit integers; the three-term sums are exact
   49-bit integers.  No intermediate rounding occurs, exactly as a DSP
   cascade computes them.
2. **Normalization function unit** — divides the x/y accumulators by the
   homogeneous accumulator (a fully pipelined divider, correctly rounded),
   and rounds the quotient into the uQ9.7 canonical-coordinate format.
3. **Projection-miss judgement** — events whose divisor is non-positive
   (mapped from behind the canonical plane) or whose quotient saturates
   the unsigned coordinate format are flagged invalid.

The integer datapath is bit-exact with the double-precision path of
:class:`repro.core.backprojection.BackProjector` because every intermediate
(products < 2^47, sums < 2^49) is exactly representable in a float64 and
both sides use the same correctly-rounded division and final rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import (
    CANONICAL_COORD_FORMAT,
    EVENT_COORD_FORMAT,
    HOMOGRAPHY_FORMAT,
)


@dataclass
class PEZ0Stats:
    events_in: int = 0
    events_valid: int = 0
    frames: int = 0


class PEZ0:
    """Canonical-projection PE.

    Parameters
    ----------
    latency:
        Pipeline depth in cycles (MAC tree + divider + rounding stages).
    event_format, homography_format, output_format:
        Fixed-point formats (Table 1 defaults).
    """

    def __init__(
        self,
        latency: int = 47,
        event_format: QFormat = EVENT_COORD_FORMAT,
        homography_format: QFormat = HOMOGRAPHY_FORMAT,
        output_format: QFormat = CANONICAL_COORD_FORMAT,
    ):
        if latency < 1:
            raise ValueError("pipeline latency must be at least 1 cycle")
        self.latency = latency
        self.event_format = event_format
        self.homography_format = homography_format
        self.output_format = output_format
        self.stats = PEZ0Stats()

    # ------------------------------------------------------------------
    # Functional model (bit-true)
    # ------------------------------------------------------------------
    def process(
        self, h_raw: np.ndarray, xy_raw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project one frame's events onto the canonical plane.

        Parameters
        ----------
        h_raw:
            ``(3, 3)`` raw integer payload of the quantized ``H_Z0``.
        xy_raw:
            ``(N, 2)`` raw integer payloads of the quantized event
            coordinates.

        Returns
        -------
        ``(uv0_raw, valid)``: raw canonical-coordinate payloads (``(N, 2)``
        in the output format; zero where invalid) and the validity mask.
        """
        h_raw = np.asarray(h_raw, dtype=np.int64)
        xy_raw = np.asarray(xy_raw, dtype=np.int64)
        if h_raw.shape != (3, 3):
            raise ValueError("homography payload must be 3x3")
        if xy_raw.ndim != 2 or xy_raw.shape[1] != 2:
            raise ValueError("event payload must be (N, 2)")

        ef = self.event_format.frac_bits
        x = xy_raw[:, 0]
        y = xy_raw[:, 1]
        one = np.int64(1) << ef  # the constant '1' aligned to event frac bits

        # MAC rows: frac bits = event.frac + homography.frac, all exact.
        num_x = h_raw[0, 0] * x + h_raw[0, 1] * y + h_raw[0, 2] * one
        num_y = h_raw[1, 0] * x + h_raw[1, 1] * y + h_raw[1, 2] * one
        den = h_raw[2, 0] * x + h_raw[2, 1] * y + h_raw[2, 2] * one

        valid = den > 0
        # Normalization unit: correctly-rounded division.  Same-format
        # numerator/denominator makes the quotient a pure (dimensionless)
        # pixel value; int64 operands up to 2^49 are exact in float64.
        safe_den = np.where(valid, den, 1)
        quotient_x = num_x / safe_den
        quotient_y = num_y / safe_den

        out = self.output_format
        valid &= ~out.overflows(quotient_x) & ~out.overflows(quotient_y)
        uv0_raw = np.stack(
            [
                out.to_raw(np.where(valid, quotient_x, 0.0)),
                out.to_raw(np.where(valid, quotient_y, 0.0)),
            ],
            axis=1,
        )
        self.stats.events_in += xy_raw.shape[0]
        self.stats.events_valid += int(valid.sum())
        self.stats.frames += 1
        return uv0_raw, valid

    # ------------------------------------------------------------------
    # Timing model
    # ------------------------------------------------------------------
    def cycles(self, n_events: int) -> int:
        """Cycles to stream ``n_events`` through the II=1 pipeline."""
        if n_events <= 0:
            return 0
        return self.latency + n_events
