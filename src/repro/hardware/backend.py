"""Execution-backend adapter: the accelerator as an engine substrate.

:class:`HardwareBackend` plugs :class:`repro.hardware.EventorSystem`'s PL
datapath into :class:`repro.core.engine.ReconstructionEngine`, so the
cycle-accurate model runs behind the *same* front-end (packetization,
streaming correction, key-framing, detection, map merging) as the software
backends.  Bit-exactness between software and hardware paths is therefore
a structural property of the engine, not a promise kept by parallel run
loops.

Besides the functional DSI contents, the adapter accumulates the
:class:`~repro.hardware.accelerator.HardwareReport` (cycles, DRAM traffic,
energy) that :meth:`EventorSystem.run` returns.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.backprojection import BackProjector
from repro.core.dsi import DSI
from repro.core.engine import ExecutionBackend
from repro.events.packetizer import EventFrame
from repro.geometry.se3 import SE3
from repro.hardware.scheduler import FrameScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.accelerator import EventorSystem, HardwareReport


class HardwareBackend(ExecutionBackend):
    """Cycle-accurate accelerator substrate for the reconstruction engine.

    One backend instance drives one run of one :class:`EventorSystem`:
    frames go through the full PL datapath (DMA ingest, PE_Z0, PE_Zi
    array, Vote Execute Unit with DRAM-resident DSI), and the Fig. 6
    schedule plus traffic/energy statistics accumulate into a
    :class:`HardwareReport` retrievable via :meth:`report` afterwards.
    """

    name = "hardware-model"

    def __init__(self, system: "EventorSystem"):
        from repro.hardware.accelerator import HardwareReport

        self.system = system
        self.scheduler = FrameScheduler()
        self._report: HardwareReport = HardwareReport(
            clock_hz=system.hw_config.clock_hz
        )
        self._projector: BackProjector | None = None

    # ------------------------------------------------------------------
    def start_reference(self, T_w_ref: SE3) -> None:
        """Re-seat the DSI in DRAM at a new reference view."""
        sys = self.system
        dsi_shape = (
            sys.hw_config.n_planes,
            sys.camera.height,
            sys.camera.width,
        )
        if not sys.dram.dsi_allocated:
            sys.dram.allocate_dsi(
                dsi_shape, score_bits=sys.schema.dsi_score.total_bits
            )
        else:
            sys.dram.reset_dsi()
        self._report.dsi_reset_seconds += (
            int(np.prod(dsi_shape))
            * sys.schema.dsi_score.total_bits
            / 8
            / sys.dram.peak_bandwidth_bytes_per_s
        )
        self._projector = BackProjector(
            sys.camera, T_w_ref, sys.depths, schema=sys.schema
        )
        self._report.keyframes += 1

    def process_frame(self, frame: EventFrame) -> tuple[int, int]:
        if self._projector is None:
            raise RuntimeError("start_reference() must be called before frames")
        t0 = time.perf_counter()
        votes, misses = self.system.process_frame_on_fpga(
            self._projector, frame, self.scheduler, cycle=self._report.total_cycles
        )
        self.engine.profile.add_time("P_Zi_R", time.perf_counter() - t0)
        self._report.votes += votes
        self._report.events += len(frame)
        self._report.frames += 1
        return votes, misses

    def read_dsi(self) -> DSI:
        """ARM reads the voted DSI back from DRAM for detection."""
        if self._projector is None:
            raise RuntimeError("no reference segment is open")
        return self.system.read_out_dsi(self._projector.T_w_ref)

    # ------------------------------------------------------------------
    def report(self) -> "HardwareReport":
        """The accumulated cycle/energy/traffic report.

        Safe to call mid-stream: every derived quantity is recomputed
        from the current scheduler/DRAM/DMA state, so successive calls
        stay mutually consistent.
        """
        sys = self.system
        r = self._report
        schedule = self.scheduler.result()
        r.schedule = schedule
        r.total_cycles = schedule.total_cycles
        r.power_watts = sys.power.total_watts(sys.hw_config)
        r.dram_bytes = sys.dram.stats.total_bytes
        r.dma_bytes = sys.dma.stats.bytes_moved
        r.task_seconds = sys.timing.task_seconds()
        return r
