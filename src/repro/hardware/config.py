"""Accelerator configuration and the target FPGA part.

Defaults reproduce the prototype of Sec. 4.1: Xilinx Zynq XC7Z020, 130 MHz
fabric clock, 533 MHz DDR3, two PE_Zi, 1024-event frames.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FPGAPartSpec:
    """Device capacities used for utilization percentages."""

    name: str
    luts: int
    flip_flops: int
    bram_kbytes: int
    dsp_slices: int


#: The paper's device.  LUT/FF capacities are the XC7Z020 datasheet values
#: (53 200 LUT, 106 400 FF); the BRAM capacity is the 560 KB figure implied
#: by the paper's own utilization arithmetic (64 KB = 11.43 %).
ZYNQ_7020 = FPGAPartSpec(
    name="Xilinx Zynq XC7Z020",
    luts=53200,
    flip_flops=106400,
    bram_kbytes=560,
    dsp_slices=220,
)


@dataclass(frozen=True)
class EventorConfig:
    """Architecture parameters of the Eventor prototype.

    Attributes
    ----------
    clock_hz:
        PL fabric clock (130 MHz in the prototype).
    ddr_clock_hz:
        DDR3 interface clock (533 MHz).
    frame_size:
        Events per frame (1024; sized from the sensor event rate and the
        on-chip buffer budget).
    n_planes:
        DSI depth planes ``Nz``.  128 with two PE_Zi reproduces the
        published per-frame runtimes (see ``repro.hardware.timing``).
    n_pe_zi:
        Parallel proportional-projection PEs (2 in the prototype).
    n_vote_ports:
        AXI-HP ports of the Vote Execute Unit (2).
    pe_z0_latency:
        Pipeline depth of PE_Z0 (MAC tree + normalization divider), in
        cycles; II = 1.
    pe_zi_latency:
        Pipeline depth of a PE_Zi, in cycles; II = 1 per (event, plane).
    vote_stall_fraction:
        Average extra cycles per vote (fractional) spent on DDR3
        read-modify-write turnaround and refresh — the calibrated value
        0.094 reproduces Table 3's 551.58 us proportional+vote runtime.
    dma_bus_bits:
        AXI data width between DRAM and the input buffers (32-bit).
    dram_bytes:
        External memory capacity (1 GB DDR3).
    """

    clock_hz: float = 130e6
    ddr_clock_hz: float = 533e6
    frame_size: int = 1024
    n_planes: int = 128
    n_pe_zi: int = 2
    n_vote_ports: int = 2
    pe_z0_latency: int = 47
    pe_zi_latency: int = 12
    vote_stall_fraction: float = 0.094
    dma_bus_bits: int = 32
    dram_bytes: int = 1 << 30

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.ddr_clock_hz <= 0:
            raise ValueError("clock rates must be positive")
        if self.frame_size < 1:
            raise ValueError("frame_size must be positive")
        if self.n_pe_zi < 1 or self.n_vote_ports < 1:
            raise ValueError("need at least one PE_Zi and one vote port")
        if self.n_planes % self.n_pe_zi != 0:
            raise ValueError(
                "n_planes must divide evenly across PE_Zi "
                f"(got Nz={self.n_planes}, PEs={self.n_pe_zi})"
            )

    # ------------------------------------------------------------------
    @property
    def planes_per_pe(self) -> int:
        return self.n_planes // self.n_pe_zi

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.clock_hz
