"""Activity-based power/energy model.

The paper measures 1.86 W board power for the Zynq running Eventor versus
45 W for the Intel i5 — a 24x reduction at slightly higher throughput.
This model decomposes the 1.86 W into PS (ARM subsystem), PL static and
per-block dynamic components so configuration changes (PE count, clock)
move the total in the right direction, while the default configuration
reproduces the published figure exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import EventorConfig

#: Reference fabric clock against which dynamic power scales linearly.
_REFERENCE_CLOCK_HZ = 130e6


@dataclass(frozen=True)
class PowerBreakdown:
    """Watts per subsystem."""

    ps_watts: float
    pl_static_watts: float
    pe_z0_watts: float
    pe_zi_watts: float
    vote_unit_watts: float
    bram_misc_watts: float

    @property
    def total_watts(self) -> float:
        return (
            self.ps_watts
            + self.pl_static_watts
            + self.pe_z0_watts
            + self.pe_zi_watts
            + self.vote_unit_watts
            + self.bram_misc_watts
        )


class PowerModel:
    """Eventor power model, calibrated to the published 1.86 W total.

    Component defaults (at 130 MHz, 2x PE_Zi):

    =================  ======  =====================================
    PS (ARM + DDR)     1.32 W  dominated by the hard processor system
    PL static          0.11 W  XC7Z020 leakage
    PE_Z0              0.06 W  MV MACs + divider
    PE_Zi (2x)         0.11 W  scalar MACs + rounding + addressing
    Vote unit + AXI    0.14 W  HP-port traffic and DDR I/O toggling
    BRAM + misc        0.12 W  buffers, controllers, interconnect
    =================  ======  =====================================
    """

    def __init__(
        self,
        ps_watts: float = 1.32,
        pl_static_watts: float = 0.11,
        pe_z0_watts: float = 0.06,
        pe_zi_watts_each: float = 0.055,
        vote_unit_watts: float = 0.14,
        bram_misc_watts: float = 0.12,
    ):
        self.ps_watts = ps_watts
        self.pl_static_watts = pl_static_watts
        self.pe_z0_watts = pe_z0_watts
        self.pe_zi_watts_each = pe_zi_watts_each
        self.vote_unit_watts = vote_unit_watts
        self.bram_misc_watts = bram_misc_watts

    # ------------------------------------------------------------------
    def breakdown(self, config: EventorConfig) -> PowerBreakdown:
        """Power at a given configuration (dynamic parts scale with clock)."""
        scale = config.clock_hz / _REFERENCE_CLOCK_HZ
        return PowerBreakdown(
            ps_watts=self.ps_watts,
            pl_static_watts=self.pl_static_watts,
            pe_z0_watts=self.pe_z0_watts * scale,
            pe_zi_watts=self.pe_zi_watts_each * config.n_pe_zi * scale,
            vote_unit_watts=self.vote_unit_watts * scale,
            bram_misc_watts=self.bram_misc_watts * scale,
        )

    def total_watts(self, config: EventorConfig) -> float:
        return self.breakdown(config).total_watts

    # ------------------------------------------------------------------
    def energy_per_frame(self, config: EventorConfig, frame_seconds: float) -> float:
        """Joules to process one event frame."""
        return self.total_watts(config) * frame_seconds

    def energy_per_event(self, config: EventorConfig, event_rate: float) -> float:
        """Joules per event at a sustained rate."""
        if event_rate <= 0:
            raise ValueError("event rate must be positive")
        return self.total_watts(config) / event_rate

    def efficiency_gain_vs(
        self,
        config: EventorConfig,
        other_power_watts: float,
        own_rate: float,
        other_rate: float,
    ) -> float:
        """Energy-efficiency ratio (events/joule vs. events/joule).

        With near-equal throughput this reduces to the power ratio, which
        is how the paper states its 24x claim.
        """
        own_epj = self.total_watts(config) / own_rate
        other_epj = other_power_watts / other_rate
        return other_epj / own_epj
