"""PE_Zi: the Proportional Projection processing element (Sec. 3.2).

Each PE_Zi owns a contiguous subset of depth planes and executes, per
(event, plane), the three sub-blocks of Fig. 5:

* **Scalar MAC units** — ``u(Zi) = alpha_i * u(Z0) + beta_i`` and
  ``v(Zi) = alpha_i * v(Z0) + gamma_i`` in fixed point: the product of a
  uQ9.7 canonical coordinate with an sQ11.21 coefficient is an exact
  sQ20.28 value; the offset is aligned by a 7-bit shift and added exactly.
* **Nearest Voxel Finder** — rounds the Q.28 results half-up to integer
  voxel indices (the 8-bit plane-coordinate format of Table 1) and flags
  projection misses (outside the ``w x h`` sensor footprint).
* **Vote Address Generator** — converts surviving ``(iu, iv, plane)``
  triples into linear DSI addresses for the Vote Execute Unit.

With ``Nz`` planes split over ``n_pe`` PEs at II = 1, a frame of ``N``
events occupies each PE for ``N * Nz / n_pe`` cycles — the dominant term
of the published 551.58 us per-frame runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import CANONICAL_COORD_FORMAT, PHI_FORMAT


@dataclass
class PEZiStats:
    events_in: int = 0
    votes_generated: int = 0
    projection_misses: int = 0
    frames: int = 0


class PEZi:
    """Proportional-projection PE for a subset of depth planes.

    Parameters
    ----------
    plane_indices:
        Global indices of the depth planes this PE covers.
    sensor_width, sensor_height:
        Voxel-grid footprint per plane (sensor resolution).
    latency:
        Pipeline depth in cycles; II = 1 per (event, plane).
    """

    def __init__(
        self,
        plane_indices: np.ndarray,
        sensor_width: int,
        sensor_height: int,
        latency: int = 12,
        canonical_format: QFormat = CANONICAL_COORD_FORMAT,
        phi_format: QFormat = PHI_FORMAT,
    ):
        self.plane_indices = np.asarray(plane_indices, dtype=np.int64)
        if self.plane_indices.ndim != 1 or self.plane_indices.size == 0:
            raise ValueError("plane_indices must be a non-empty 1-D array")
        self.sensor_width = sensor_width
        self.sensor_height = sensor_height
        self.latency = latency
        self.canonical_format = canonical_format
        self.phi_format = phi_format
        self.stats = PEZiStats()

    # ------------------------------------------------------------------
    @property
    def n_planes(self) -> int:
        return self.plane_indices.size

    # ------------------------------------------------------------------
    # Functional model (bit-true)
    # ------------------------------------------------------------------
    def process(
        self,
        phi_raw: np.ndarray,
        uv0_raw: np.ndarray,
        valid: np.ndarray,
    ) -> np.ndarray:
        """Generate vote addresses for one frame on this PE's planes.

        Parameters
        ----------
        phi_raw:
            ``(Nz, 3)`` raw integer φ payloads for the *global* plane set;
            the PE indexes its own subset.
        uv0_raw:
            ``(N, 2)`` raw canonical-coordinate payloads from PE_Z0.
        valid:
            Per-event validity flags from PE_Z0 (misses occupy pipeline
            slots but must not vote).

        Returns
        -------
        1-D int64 array of linear DSI vote addresses
        (``(plane * H + iv) * W + iu``), in (event-major, plane-minor)
        stream order — the order Buf_V receives them.
        """
        phi_raw = np.asarray(phi_raw, dtype=np.int64)
        uv0_raw = np.asarray(uv0_raw, dtype=np.int64)
        valid = np.asarray(valid, dtype=bool)

        mine = phi_raw[self.plane_indices]
        alpha = mine[:, 0][None, :]  # (1, P)
        beta = mine[:, 1][None, :]
        gamma = mine[:, 2][None, :]
        u0 = uv0_raw[:, 0][:, None]  # (N, 1)
        v0 = uv0_raw[:, 1][:, None]

        cf = self.canonical_format.frac_bits
        pf = self.phi_format.frac_bits
        out_frac = cf + pf  # Q.28 with the Table 1 formats

        # Scalar MACs: exact integer products and aligned offset adds.
        u_q = alpha * u0 + (beta << cf)
        v_q = alpha * v0 + (gamma << cf)

        # Nearest Voxel Finder: round half-up to integer voxel indices.
        half = np.int64(1) << (out_frac - 1)
        iu = (u_q + half) >> out_frac
        iv = (v_q + half) >> out_frac

        inside = (
            (iu >= 0)
            & (iu < self.sensor_width)
            & (iv >= 0)
            & (iv < self.sensor_height)
            & valid[:, None]
        )
        # Vote Address Generator: linear DSI addresses, stream order.
        planes = self.plane_indices[None, :]
        addresses = (planes * self.sensor_height + iv) * self.sensor_width + iu

        self.stats.events_in += uv0_raw.shape[0]
        self.stats.votes_generated += int(inside.sum())
        self.stats.projection_misses += int((~inside).sum())
        self.stats.frames += 1
        return addresses[inside]

    # ------------------------------------------------------------------
    # Timing model
    # ------------------------------------------------------------------
    def cycles(self, n_events: int) -> int:
        """Cycles for a frame: one (event, plane) pair per cycle, plus fill."""
        if n_events <= 0:
            return 0
        return self.latency + n_events * self.n_planes


def split_planes(n_planes: int, n_pe: int) -> list[np.ndarray]:
    """Contiguous plane partition used by the Data Allocator."""
    if n_planes % n_pe != 0:
        raise ValueError("plane count must divide evenly across PEs")
    per = n_planes // n_pe
    return [np.arange(i * per, (i + 1) * per) for i in range(n_pe)]
