"""On-chip buffers with double-buffering (Sec. 3.1).

All streaming buffers of Eventor (Buf_E, Buf_P, Buf_I, Buf_V) are built as
*double buffers*: one bank is filled by the producer while the consumer
drains the other, and a synchronized swap flips the roles — so transfer and
compute overlap without pipeline stalls.  Buf_H is a plain register file
(one 3x3 homography per frame).

The models here are functional (they hold the actual payloads the PEs
consume) and track occupancy/swap statistics the tests and the resource
model use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class BufferError(RuntimeError):
    """Raised on protocol violations (overfill, read-before-ready)."""


@dataclass
class BufferStats:
    writes: int = 0
    reads: int = 0
    swaps: int = 0
    peak_words: int = 0


class DoubleBuffer:
    """Two-bank ping-pong buffer.

    The *load* bank accepts :meth:`write`; the *process* bank serves
    :meth:`read`.  :meth:`swap` flips them and is only legal when the load
    bank holds data — mirroring the FSM synchronization state that keeps
    the Canonical and Proportional controllers in lock step.
    """

    def __init__(self, name: str, capacity_words: int, word_bytes: int):
        if capacity_words < 1:
            raise ValueError("capacity must be at least one word")
        self.name = name
        self.capacity_words = capacity_words
        self.word_bytes = word_bytes
        self._banks: list[list[np.ndarray]] = [[], []]
        self._bank_words = [0, 0]
        self._load_bank = 0
        self._process_ready = False
        self.stats = BufferStats()

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Physical size: two banks of ``capacity_words`` each."""
        return 2 * self.capacity_words * self.word_bytes

    @property
    def load_occupancy(self) -> int:
        return self._bank_words[self._load_bank]

    @property
    def process_ready(self) -> bool:
        return self._process_ready

    # ------------------------------------------------------------------
    def write(self, words: np.ndarray) -> None:
        """Producer side: append words to the load bank."""
        words = np.atleast_1d(words)
        n = words.shape[0]
        if self._bank_words[self._load_bank] + n > self.capacity_words:
            raise BufferError(
                f"{self.name}: writing {n} words overflows the "
                f"{self.capacity_words}-word bank"
            )
        self._banks[self._load_bank].append(words)
        self._bank_words[self._load_bank] += n
        self.stats.writes += n
        self.stats.peak_words = max(self.stats.peak_words, self._bank_words[self._load_bank])

    def swap(self) -> None:
        """Flip load/process banks (the controllers' SYNC state)."""
        if self._bank_words[self._load_bank] == 0:
            raise BufferError(f"{self.name}: swap with an empty load bank")
        self._load_bank ^= 1
        self._process_ready = True
        self.stats.swaps += 1
        # The new load bank must start empty.
        self._banks[self._load_bank] = []
        self._bank_words[self._load_bank] = 0

    def read_all(self) -> np.ndarray:
        """Consumer side: drain the process bank."""
        if not self._process_ready:
            raise BufferError(f"{self.name}: read before any swap")
        bank = self._load_bank ^ 1
        if not self._banks[bank]:
            raise BufferError(f"{self.name}: process bank already drained")
        data = np.concatenate(self._banks[bank])
        self._banks[bank] = []
        self._bank_words[bank] = 0
        self.stats.reads += data.shape[0]
        return data

    def reset(self) -> None:
        self._banks = [[], []]
        self._bank_words = [0, 0]
        self._load_bank = 0
        self._process_ready = False


class RegisterFile:
    """Small register bank (Buf_H: one 3x3 homography per frame)."""

    def __init__(self, name: str, n_words: int, word_bytes: int = 4):
        self.name = name
        self.n_words = n_words
        self.word_bytes = word_bytes
        self._value: np.ndarray | None = None
        self.stats = BufferStats()

    @property
    def total_bytes(self) -> int:
        return self.n_words * self.word_bytes

    def load(self, value: np.ndarray) -> None:
        value = np.asarray(value)
        if value.size > self.n_words:
            raise BufferError(
                f"{self.name}: {value.size} words exceed {self.n_words} registers"
            )
        self._value = value
        self.stats.writes += value.size

    def read(self) -> np.ndarray:
        if self._value is None:
            raise BufferError(f"{self.name}: read before load")
        self.stats.reads += self._value.size
        return self._value


def make_eventor_buffers(frame_size: int, n_planes: int) -> dict[str, object]:
    """The buffer complement of Fig. 5, sized for a configuration.

    ======  =============================================  ==============
    Buffer  Contents                                       Words per bank
    ======  =============================================  ==============
    Buf_E   input event coordinate words (32-bit packed)   ``frame_size``
    Buf_P   phi coefficients (3 x 32-bit per plane)        ``3 * Nz``
    Buf_I   canonical coordinates (32-bit packed pairs)    ``frame_size``
    Buf_V   vote addresses (32-bit DSI linear addresses)   ``2 * frame_size``
    Buf_H   homography registers (9 x 32-bit)              9 (registers)
    ======  =============================================  ==============
    """
    return {
        "Buf_E": DoubleBuffer("Buf_E", frame_size, word_bytes=4),
        "Buf_P": DoubleBuffer("Buf_P", 3 * n_planes, word_bytes=4),
        "Buf_I": DoubleBuffer("Buf_I", frame_size, word_bytes=4),
        "Buf_V": DoubleBuffer("Buf_V", 2 * frame_size, word_bytes=4),
        "Buf_H": RegisterFile("Buf_H", 9, word_bytes=4),
    }
