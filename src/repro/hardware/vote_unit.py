"""Vote Execute Unit (Sec. 3.2).

Drains vote addresses from Buf_V and performs saturating read-modify-write
increments on the DSI scores in DRAM, through two AXI-HP ports — without
ARM intervention.  Functionally it delegates to the
:class:`~repro.hardware.dram.DRAMModel`; its timing model captures the
port-level parallelism and the DDR3 read-modify-write turnaround stalls
that calibrate the published per-frame runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.dram import DRAMModel


@dataclass
class VoteUnitStats:
    votes_applied: int = 0
    bursts: int = 0


class VoteExecuteUnit:
    """RMW vote engine with ``n_ports`` AXI-HP ports.

    Parameters
    ----------
    dram:
        The external-memory model that owns the DSI.
    n_ports:
        Parallel AXI-HP ports (2 in the prototype).
    stall_fraction:
        Average fractional stall per vote from DDR3 read-to-write
        turnaround and refresh; 0.094 is calibrated so a fully-voting
        1024-event frame with Nz=128 matches Table 3's 551.58 us.
    """

    def __init__(self, dram: DRAMModel, n_ports: int = 2, stall_fraction: float = 0.094):
        if n_ports < 1:
            raise ValueError("need at least one AXI-HP port")
        if stall_fraction < 0:
            raise ValueError("stall_fraction cannot be negative")
        self.dram = dram
        self.n_ports = n_ports
        self.stall_fraction = stall_fraction
        self.stats = VoteUnitStats()

    # ------------------------------------------------------------------
    def execute(self, addresses: np.ndarray) -> int:
        """Apply votes at the given linear DSI addresses (functional)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        n = self.dram.vote(addresses)
        self.stats.votes_applied += n
        self.stats.bursts += 1
        return n

    # ------------------------------------------------------------------
    def cycles(self, n_votes: int) -> float:
        """Fabric cycles to retire ``n_votes`` RMW operations.

        Votes interleave across the ports; each port sustains one
        read-modify-write per cycle less the turnaround stalls.
        """
        if n_votes <= 0:
            return 0.0
        per_port = np.ceil(n_votes / self.n_ports)
        return float(per_port * (1.0 + self.stall_fraction))
