"""Eventor top level: the FPGA/ARM heterogeneous system (Fig. 5).

:class:`EventorSystem` executes the full reformulated EMVS dataflow with
the responsibilities split exactly as in the paper:

**ARM (PS) side** — streaming event distortion correction, event
aggregation, key-frame selection, per-frame computation of ``H_Z0`` and
the proportional coefficients φ, DMA configuration, and — after each key
segment — scene-structure detection and map merging on the DSI read back
from DRAM.

**FPGA (PL) side** — PE_Z0 (canonical back-projection), the Data
Allocator feeding ``n`` PE_Zi (proportional back-projection + vote-address
generation), and the Vote Execute Unit performing saturating RMW votes in
DRAM, all driven through double-buffered BRAM buffers and the two FSM
controllers, scheduled per Fig. 6.

The functional output (DSI contents, depth maps, point cloud) is bit-exact
with :class:`repro.core.ReformulatedPipeline`; on top of that the system
produces a :class:`HardwareReport` with cycle-level timing, DRAM traffic,
energy and utilization — the numbers behind Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.backprojection import BackProjector
from repro.core.config import EMVSConfig
from repro.core.dsi import DSI, depth_planes
from repro.core.engine import ReconstructionEngine
from repro.core.results import EMVSResult
from repro.core.policy import DataflowPolicy
from repro.core.voting import VotingMethod
from repro.events.containers import EventArray
from repro.fixedpoint.quantize import EVENTOR_SCHEMA, QuantizationSchema, pack_event_word, unpack_event_word
from repro.geometry.camera import PinholeCamera
from repro.geometry.trajectory import Trajectory
from repro.hardware.axi import DMAEngine
from repro.hardware.buffers import make_eventor_buffers
from repro.hardware.config import EventorConfig
from repro.hardware.controller import (
    CanonicalProjectionController,
    CtrlState,
    ProportionalProjectionController,
)
from repro.hardware.dram import DRAMModel
from repro.hardware.energy import PowerModel
from repro.hardware.pe_z0 import PEZ0
from repro.hardware.pe_zi import PEZi, split_planes
from repro.hardware.scheduler import ScheduleResult
from repro.hardware.timing import TimingModel
from repro.hardware.vote_unit import VoteExecuteUnit


@dataclass
class HardwareReport:
    """Cycle/energy/traffic accounting of one accelerator run."""

    total_cycles: float = 0.0
    frames: int = 0
    keyframes: int = 0
    events: int = 0
    votes: int = 0
    dram_bytes: int = 0
    dma_bytes: int = 0
    dsi_reset_seconds: float = 0.0
    schedule: ScheduleResult | None = None
    power_watts: float = 0.0
    clock_hz: float = 130e6
    task_seconds: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def event_rate(self) -> float:
        """Sustained events/second over the accelerated portion."""
        if self.total_seconds <= 0:
            return 0.0
        return self.events / self.total_seconds

    @property
    def energy_joules(self) -> float:
        return self.power_watts * self.total_seconds

    @property
    def energy_per_event(self) -> float:
        return self.energy_joules / self.events if self.events else 0.0


class EventorSystem:
    """The heterogeneous accelerator (functional + timing model).

    Parameters
    ----------
    camera:
        Sensor calibration.
    emvs_config:
        Algorithm parameters; ``frame_size`` must match the hardware
        configuration.
    depth_range:
        DSI depth bounds.
    hw_config:
        Architecture parameters (clock, PEs, formats are fixed by Table 1).
    schema:
        Quantization schema (the Table 1 default).
    """

    def __init__(
        self,
        camera: PinholeCamera,
        emvs_config: EMVSConfig | None = None,
        depth_range: tuple[float, float] = (0.5, 5.0),
        hw_config: EventorConfig | None = None,
        schema: QuantizationSchema = EVENTOR_SCHEMA,
    ):
        self.camera = camera
        self.hw_config = hw_config or EventorConfig()
        self.emvs_config = emvs_config or EMVSConfig(
            n_depth_planes=self.hw_config.n_planes,
            frame_size=self.hw_config.frame_size,
        )
        if self.emvs_config.frame_size != self.hw_config.frame_size:
            raise ValueError(
                "algorithm frame_size must match the hardware buffer sizing"
            )
        if self.emvs_config.n_depth_planes != self.hw_config.n_planes:
            raise ValueError("algorithm Nz must match the hardware plane count")
        if not schema.enabled:
            raise ValueError("the accelerator datapath is quantized by design")
        self.schema = schema
        self.depth_range = depth_range
        self.depths = depth_planes(
            depth_range[0],
            depth_range[1],
            self.emvs_config.n_depth_planes,
            self.emvs_config.depth_sampling,
        )

        # --- PL-side blocks -------------------------------------------
        cfg = self.hw_config
        self.dram = DRAMModel(cfg.dram_bytes, cfg.dma_bus_bits, cfg.ddr_clock_hz)
        self.dma = DMAEngine(bus_bits=cfg.dma_bus_bits)
        self.buffers = make_eventor_buffers(cfg.frame_size, cfg.n_planes)
        self.pe_z0 = PEZ0(latency=cfg.pe_z0_latency)
        self.pe_zi = [
            PEZi(
                plane_indices=planes,
                sensor_width=camera.width,
                sensor_height=camera.height,
                latency=cfg.pe_zi_latency,
            )
            for planes in split_planes(cfg.n_planes, cfg.n_pe_zi)
        ]
        self.vote_unit = VoteExecuteUnit(
            self.dram, n_ports=cfg.n_vote_ports, stall_fraction=cfg.vote_stall_fraction
        )
        self.canonical_ctrl = CanonicalProjectionController()
        self.proportional_ctrl = ProportionalProjectionController()
        self.timing = TimingModel(cfg)
        self.power = PowerModel()

    # ------------------------------------------------------------------
    # ARM-side helpers
    # ------------------------------------------------------------------
    def read_out_dsi(self, T_w_ref) -> DSI:
        """ARM reads the voted DSI back from DRAM for detection."""
        scores = self.dram.read_dsi()
        dsi = DSI(
            self.camera,
            T_w_ref,
            self.depths,
            integer_scores=True,
            score_limit=self.schema.dsi_score.raw_max,
        )
        dsi.scores[...] = scores
        return dsi

    # ------------------------------------------------------------------
    # One frame through the PL datapath
    # ------------------------------------------------------------------
    def process_frame_on_fpga(
        self, projector: BackProjector, frame, scheduler, cycle: float
    ) -> tuple[int, int]:
        """Functional + timing execution of one event frame.

        Returns ``(votes, misses)``: votes applied to the DSI and events
        the projection-miss judgement rejected.
        """
        # ARM: per-frame parameters (quantized), then DMA configuration.
        params = projector.frame_parameters(frame.T_wc)
        h_raw = self.schema.homography.to_raw(params.H_Z0)
        phi_raw = self.schema.phi.to_raw(params.phi)

        xy_q = self.schema.quantize_event_coords(frame.events.xy)
        xy_raw = self.schema.event_coord.to_raw(xy_q)
        packed = pack_event_word(xy_raw)

        # DMA ingest into the double-buffered input structures.
        self.canonical_ctrl.configure(cycle)
        self.canonical_ctrl.start_load(cycle)
        buf_e = self.buffers["Buf_E"]
        buf_p = self.buffers["Buf_P"]
        buf_h = self.buffers["Buf_H"]
        self.dma.to_buffer(buf_e, packed)
        self.dma.to_buffer(buf_p, phi_raw.reshape(-1))
        self.dma.to_registers(buf_h, h_raw.reshape(-1))
        self.dram.stream_read(packed.size * 4 + phi_raw.size * 4 + h_raw.size * 4)
        buf_e.swap()
        buf_p.swap()

        # PE_Z0: canonical back-projection from Buf_E into Buf_I.
        self.canonical_ctrl.start_run(cycle)
        words = buf_e.read_all()
        xy_in = unpack_event_word(words)
        uv0_raw, valid = self.pe_z0.process(h_raw, xy_in)
        buf_i = self.buffers["Buf_I"]
        buf_i.write(pack_event_word(uv0_raw))
        self.canonical_ctrl.request_sync(cycle)
        buf_i.swap()
        self.canonical_ctrl.complete(cycle)

        # Data Allocator -> PE_Zi array -> Buf_V -> Vote Execute Unit.
        if self.proportional_ctrl.state is CtrlState.IDLE:
            self.proportional_ctrl.configure(cycle)
        self.proportional_ctrl.wait_input(cycle)
        self.proportional_ctrl.start_run(cycle)
        uv0_in = unpack_event_word(buf_i.read_all())
        phi_in = buf_p.read_all().reshape(-1, 3)
        buf_v = self.buffers["Buf_V"]
        n_votes = 0
        for pe in self.pe_zi:
            addresses = pe.process(phi_in, uv0_in, valid)
            # Vote addresses stream through Buf_V in bounded chunks.
            for start in range(0, addresses.size, buf_v.capacity_words):
                chunk = addresses[start : start + buf_v.capacity_words]
                buf_v.write(chunk)
                buf_v.swap()
                n_votes += self.vote_unit.execute(buf_v.read_all())
        self.proportional_ctrl.complete(cycle)

        # Timing: the scheduler receives this frame's stage durations.
        votes_per_event = n_votes / max(len(frame), 1)
        scheduler.add_frame(
            self.timing.frame_timing(
                n_events=len(frame),
                votes_per_event=votes_per_event,
                is_keyframe=frame.is_keyframe,
            )
        )
        return n_votes, int((~valid).sum())

    # ------------------------------------------------------------------
    # Full-sequence execution
    # ------------------------------------------------------------------
    def make_backend(self):
        """A fresh engine backend driving this system's datapath.

        Returned instances plug into
        :class:`repro.core.engine.ReconstructionEngine` (registry name
        ``"hardware-model"``); each instance carries the report of one run.
        """
        from repro.hardware.backend import HardwareBackend

        return HardwareBackend(self)

    def run(
        self, events: EventArray, trajectory: Trajectory
    ) -> tuple[EMVSResult, HardwareReport]:
        """Execute the full heterogeneous pipeline over an event stream.

        The ARM-side front-end (streaming correction, aggregation,
        key-framing, detection, merging) is the shared
        :class:`~repro.core.engine.ReconstructionEngine` dataflow; only
        the per-frame hot path runs on the modelled PL datapath.
        """
        backend = self.make_backend()
        engine = ReconstructionEngine(
            self.camera,
            trajectory,
            self.emvs_config,
            self.depth_range,
            policy=DataflowPolicy(
                voting=VotingMethod.NEAREST,
                schema=self.schema,
                integer_scores=True,
                name="hardware-model",
            ),
            backend=backend,
        )
        result = engine.run(events)
        return result, backend.report()
