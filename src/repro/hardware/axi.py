"""AXI / DMA transfer model (Sec. 3.1).

The ARM host configures a DMA engine that streams packed 32-bit event
words and parameters from DRAM into the on-chip buffers over the AXI bus.
The model accounts transfer cycles (fabric-clock beats at the configured
bus width, plus per-burst setup) and moves the actual payloads into the
destination buffers, so the functional and timing views stay attached to
the same transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.buffers import DoubleBuffer, RegisterFile


@dataclass
class DMAStats:
    transfers: int = 0
    bytes_moved: int = 0
    cycles: float = 0.0


class DMAEngine:
    """Simple burst DMA between DRAM and on-chip buffers.

    Parameters
    ----------
    bus_bits:
        AXI data width (32 in the prototype: one packed event per beat).
    burst_beats:
        Beats per burst (AXI4 INCR bursts of 256 beats).
    setup_cycles:
        Fixed cost per burst (address phase + handshake).
    """

    def __init__(self, bus_bits: int = 32, burst_beats: int = 256,
                 setup_cycles: int = 4):
        if bus_bits % 8 != 0:
            raise ValueError("bus width must be a whole number of bytes")
        self.bus_bits = bus_bits
        self.burst_beats = burst_beats
        self.setup_cycles = setup_cycles
        self.stats = DMAStats()

    # ------------------------------------------------------------------
    def transfer_cycles(self, n_bytes: int) -> float:
        """Fabric cycles to move ``n_bytes`` (one beat per bus word)."""
        if n_bytes <= 0:
            return 0.0
        beats = int(np.ceil(n_bytes * 8 / self.bus_bits))
        bursts = int(np.ceil(beats / self.burst_beats))
        return beats + bursts * self.setup_cycles

    def to_buffer(self, buffer: DoubleBuffer, words: np.ndarray) -> float:
        """Move 32-bit words into a double buffer's load bank.

        Returns the transfer cost in fabric cycles.
        """
        words = np.atleast_1d(words)
        buffer.write(words)
        n_bytes = words.shape[0] * buffer.word_bytes
        cycles = self.transfer_cycles(n_bytes)
        self.stats.transfers += 1
        self.stats.bytes_moved += n_bytes
        self.stats.cycles += cycles
        return cycles

    def to_registers(self, regs: RegisterFile, values: np.ndarray) -> float:
        """Load a register file (Buf_H) over the configuration path."""
        values = np.asarray(values)
        regs.load(values)
        n_bytes = values.size * regs.word_bytes
        cycles = self.transfer_cycles(n_bytes)
        self.stats.transfers += 1
        self.stats.bytes_moved += n_bytes
        self.stats.cycles += cycles
        return cycles
