"""Per-frame cycle accounting.

Derives the per-task cycle counts of Table 3 from the architecture
configuration:

* ``P(Z0)`` — PE_Z0 is II = 1, so a 1024-event frame takes
  ``latency + 1024`` = 1071 cycles = **8.24 us** at 130 MHz.
* ``P(Z0->Zi) & R`` — per event, address generation occupies each of the
  two PE_Zi for ``Nz / 2`` = 64 cycles while the Vote Execute Unit retires
  ``Nz / 2`` votes per port with a 9.4 % DDR3 RMW stall, i.e. ~70.0
  cycles; the pipeline runs at the slower of the two, so a frame takes
  ``12 + 1024 * 70.0`` = 71 708 cycles = **551.6 us** — matching the
  published 551.58 us.

Key frames serialize the two modules (Fig. 6 bottom): 8.24 + 551.6 =
**559.8 us**, matching the published 559.82 us.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.config import EventorConfig


@dataclass(frozen=True)
class FrameTiming:
    """Cycle breakdown of one event frame."""

    canonical_cycles: float
    proportional_cycles: float
    dma_cycles: float
    is_keyframe: bool = False

    @property
    def exposed_cycles(self) -> float:
        """Cycles this frame adds to the pipeline in steady state.

        For normal frames the canonical stage overlaps the previous
        frame's proportional stage, so only the proportional time is
        exposed; a key frame serializes both.  DMA ingest hides under the
        double-buffered Buf_E in either case (1024 beats << 71 708 cycles).
        """
        if self.is_keyframe:
            return self.canonical_cycles + self.proportional_cycles
        return max(self.proportional_cycles, self.canonical_cycles)


class TimingModel:
    """Computes per-frame cycles from the architecture configuration."""

    def __init__(self, config: EventorConfig):
        self.config = config

    # ------------------------------------------------------------------
    def canonical_cycles(self, n_events: int) -> float:
        """``P(Z0)``: II=1 pipeline."""
        if n_events <= 0:
            return 0.0
        return self.config.pe_z0_latency + n_events

    def generation_cycles_per_event(self) -> float:
        """Vote-address generation: planes split across PE_Zi at II=1."""
        return self.config.planes_per_pe

    def voting_cycles_per_event(self, votes_per_event: float | None = None) -> float:
        """Vote retirement: ports in parallel with DDR3 RMW stalls."""
        if votes_per_event is None:
            votes_per_event = float(self.config.n_planes)
        per_port = votes_per_event / self.config.n_vote_ports
        return per_port * (1.0 + self.config.vote_stall_fraction)

    def proportional_cycles(
        self, n_events: int, votes_per_event: float | None = None
    ) -> float:
        """``P(Z0->Zi) & R``: the slower of generation and voting wins."""
        if n_events <= 0:
            return 0.0
        per_event = max(
            self.generation_cycles_per_event(),
            self.voting_cycles_per_event(votes_per_event),
        )
        return self.config.pe_zi_latency + n_events * per_event

    def dma_cycles(self, n_events: int) -> float:
        """Event-frame ingest: one packed event word per AXI beat."""
        beats = n_events  # 32-bit packed coordinates, 32-bit bus
        bursts = np.ceil(beats / 256)
        return float(beats + 4 * bursts)

    # ------------------------------------------------------------------
    def frame_timing(
        self,
        n_events: int | None = None,
        votes_per_event: float | None = None,
        is_keyframe: bool = False,
    ) -> FrameTiming:
        n = self.config.frame_size if n_events is None else n_events
        return FrameTiming(
            canonical_cycles=self.canonical_cycles(n),
            proportional_cycles=self.proportional_cycles(n, votes_per_event),
            dma_cycles=self.dma_cycles(n),
            is_keyframe=is_keyframe,
        )

    # ------------------------------------------------------------------
    # Table 3 summary values
    # ------------------------------------------------------------------
    def task_seconds(self) -> dict[str, float]:
        """Per-task runtimes for a full frame (Table 3, Eventor column)."""
        cfg = self.config
        return {
            "P_Z0": cfg.cycles_to_seconds(self.canonical_cycles(cfg.frame_size)),
            "P_Zi_R": cfg.cycles_to_seconds(self.proportional_cycles(cfg.frame_size)),
        }

    def frame_seconds(self, is_keyframe: bool = False) -> float:
        timing = self.frame_timing(is_keyframe=is_keyframe)
        return self.config.cycles_to_seconds(timing.exposed_cycles)

    def event_rate(self, is_keyframe: bool = False) -> float:
        """Sustained events/second in steady state."""
        return self.config.frame_size / self.frame_seconds(is_keyframe)
