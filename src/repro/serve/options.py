"""Consolidated configuration objects of the serving layer.

PR 7 grew :class:`~repro.serve.ReconstructionService` six reliability
kwargs (``retry``, ``deadline_s``, ``segment_deadline_s``,
``allow_partial``, ``faults``, ``integrity``) copy-pasted across three
signatures (``__init__`` / ``submit`` / ``open_stream``); the segment
cache adds tier knobs on top.  This module replaces the knob spread with
three frozen value objects:

* :class:`JobOptions` — everything that can vary *per job*: the
  reliability knobs, the fuse parameters, and the cache mode.  ``None``
  in any field means "inherit" — per-job options are merged over the
  service defaults by one :meth:`JobOptions.merged` method, so the
  override semantics live in exactly one place.
* :class:`CacheConfig` — the cache tiers: job-level LRU entry count,
  segment memory-tier bytes, segment disk-tier bytes and directory
  (with an ``REPRO_CACHE_DIR`` environment fallback).
* :class:`ServiceConfig` — the whole service: pool shape, admission
  knobs, the cache config and the default :class:`JobOptions`.
  :meth:`ReconstructionService.from_config` constructs a service from
  one of these; the CLI builds it in a single place.

The legacy kwargs keep working through a shim that maps them onto
:class:`JobOptions` and emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.faults import FaultPlan
    from repro.serve.retry import RetryPolicy

#: Per-job cache modes: ``"on"`` reads and writes both cache levels,
#: ``"off"`` touches neither (no reads, no writes, no coalescing),
#: ``"refresh"`` recomputes (no reads) but writes its results — the
#: cache-busting resubmission that repopulates stale entries.
CACHE_MODES = ("on", "off", "refresh")


@dataclass(frozen=True)
class JobOptions:
    """Per-job execution options, mergeable over service defaults.

    Every field defaults to ``None`` = "inherit the service default";
    a service resolves the effective options with :meth:`merged`.  The
    reliability fields carry PR 7's exact semantics (see
    ``docs/RELIABILITY.md``); ``voxel_size`` / ``min_observations`` are
    the fuse parameters previously passed as loose ``submit`` kwargs;
    ``cache`` selects this job's cache mode (:data:`CACHE_MODES`).
    """

    #: Retry budget for failed segment attempts (``None`` = inherit).
    retry: "RetryPolicy | None" = None
    #: Whole-job wall-clock budget in seconds.
    deadline_s: float | None = None
    #: Per-attempt budget of one segment on the pool, in seconds.
    segment_deadline_s: float | None = None
    #: Degrade out-of-budget jobs to ``PARTIAL`` instead of ``FAILED``.
    allow_partial: bool | None = None
    #: Deterministic fault schedule injected into the job's segments.
    faults: "FaultPlan | None" = None
    #: Verify each outcome's content digest at merge time (and re-verify
    #: segment-cache disk loads).
    integrity: bool | None = None
    #: Fusion voxel edge in metres (``None`` = 1 % of mean DSI depth).
    voxel_size: float | None = None
    #: Cross-view support threshold of the fused cloud.
    min_observations: int | None = None
    #: Cache mode: ``"on"``, ``"off"`` or ``"refresh"``.
    cache: str | None = None

    def __post_init__(self) -> None:
        """Validate every supplied field (``None`` fields are unchecked)."""
        # Deferred imports: options is imported by the package __init__
        # before faults/retry, and only needs the types for isinstance.
        from repro.serve.faults import FaultPlan
        from repro.serve.retry import RetryPolicy

        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise TypeError("retry must be a RetryPolicy (or None)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.segment_deadline_s is not None and self.segment_deadline_s <= 0:
            raise ValueError("segment_deadline_s must be positive (or None)")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError("fault_plan must be a FaultPlan (or None)")
        if self.voxel_size is not None and self.voxel_size <= 0:
            raise ValueError("voxel_size must be positive")
        if self.min_observations is not None and self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if self.cache is not None and self.cache not in CACHE_MODES:
            raise ValueError(
                f"cache mode must be one of {CACHE_MODES}, got {self.cache!r}"
            )

    def merged(self, defaults: "JobOptions") -> "JobOptions":
        """These options layered over ``defaults`` (field-wise).

        Every ``None`` field inherits the default's value; every set
        field overrides it.  The single merge rule of the options
        redesign — the service resolves per-job options as
        ``explicit_kwargs.merged(options).merged(service_defaults)``.
        """
        overrides = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if getattr(self, f.name) is not None
        }
        return dataclasses.replace(defaults, **overrides)


@dataclass(frozen=True)
class CacheConfig:
    """Capacity and placement of the serving layer's cache tiers.

    ``job_entries`` bounds the job-level LRU (whole fused results, in
    entries; ``0`` disables it — the legacy ``cache_size`` knob).  The
    segment tiers are byte-bounded: ``mem_mb`` for the in-memory LRU
    (``0`` disables it, the default) and ``disk_mb`` for the on-disk
    store, which activates only when a directory is resolved — from
    ``cache_dir``, or from the ``REPRO_CACHE_DIR`` environment variable
    when ``cache_dir`` is ``None`` (pass ``cache_dir=""`` to suppress
    the environment fallback explicitly).
    """

    #: Job-level LRU capacity in entries (``0`` disables).
    job_entries: int = 32
    #: Segment memory-tier bound in MiB (``0`` disables, the default).
    mem_mb: float = 0.0
    #: Segment disk-tier bound in MiB (``0`` disables).
    disk_mb: float = 256.0
    #: Disk-tier directory; ``None`` falls back to ``REPRO_CACHE_DIR``,
    #: ``""`` disables the disk tier unconditionally.
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        """Validate the tier bounds."""
        if self.job_entries < 0:
            raise ValueError("cache capacity must be >= 0 (0 disables)")
        if self.mem_mb < 0:
            raise ValueError("mem_mb must be >= 0 (0 disables the memory tier)")
        if self.disk_mb < 0:
            raise ValueError("disk_mb must be >= 0 (0 disables the disk tier)")

    def resolved_dir(self) -> str | None:
        """The effective disk-tier directory, or ``None`` (tier off).

        ``cache_dir`` when set, else the ``REPRO_CACHE_DIR`` environment
        variable; an empty string (either source) disables the tier.
        """
        if self.disk_mb <= 0:
            return None
        if self.cache_dir is not None:
            return self.cache_dir or None
        return os.environ.get("REPRO_CACHE_DIR") or None


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`ReconstructionService` is constructed from.

    The one-object spelling of the constructor surface:
    :meth:`ReconstructionService.from_config` unpacks it, and the CLI's
    serve/submit/stream commands build exactly one of these from their
    flags instead of threading fourteen positional knobs.
    """

    #: Shared pool width (``None`` = machine CPU count).
    workers: int | None = None
    #: ``"process"``, ``"thread"``, ``"inline"`` or ``None`` (auto).
    executor: str | None = None
    #: Per-session bound on active jobs.
    queue_limit: int = 8
    #: Full-queue policy: ``"refuse"`` or ``"drop-oldest"``.
    overflow: str = "refuse"
    #: Terminal job records retained for late ``poll``/``result`` calls.
    retain_jobs: int = 256
    #: Cache-tier capacities and placement.
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: Service-wide default :class:`JobOptions` (per-job options merge
    #: over these).
    defaults: JobOptions = field(default_factory=JobOptions)


@dataclass(frozen=True)
class GatewayConfig:
    """Everything a :class:`~repro.serve.gateway.Gateway` is built from.

    The gateway-level twin of :class:`ServiceConfig`: shard count and
    fan-out policy, the admission-control knobs layered *above* the
    per-shard ``refuse``/``drop-oldest`` policies, the HTTP bind
    address, and the :class:`ServiceConfig` every shard is constructed
    from (shards are homogeneous — one config, N services).
    """

    #: Number of :class:`ReconstructionService` shards.
    shards: int = 1
    #: Virtual nodes per shard on the consistent-hash ring.
    virtual_nodes: int = 64
    #: Per-tenant token-bucket refill rate in requests/second
    #: (``0`` disables per-tenant throttling).
    tenant_rate: float = 0.0
    #: Per-tenant token-bucket burst capacity in requests.
    tenant_burst: int = 8
    #: Global bound on jobs admitted but not yet observed terminal
    #: (``0`` = unbounded).
    max_inflight: int = 0
    #: HTTP bind host of :class:`~repro.serve.gateway.GatewayServer`.
    host: str = "127.0.0.1"
    #: HTTP bind port (``0`` = ephemeral, reported after ``start``).
    port: int = 0
    #: The :class:`ServiceConfig` every shard is constructed from.
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def __post_init__(self) -> None:
        """Validate the shard and admission knobs."""
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if self.tenant_rate < 0:
            raise ValueError("tenant_rate must be >= 0 (0 disables)")
        if self.tenant_burst < 1:
            raise ValueError("tenant_burst must be >= 1")
        if self.max_inflight < 0:
            raise ValueError("max_inflight must be >= 0 (0 = unbounded)")
        if not (0 <= self.port <= 65535):
            raise ValueError("port must be in [0, 65535]")
