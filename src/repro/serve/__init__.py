"""Multi-session reconstruction serving.

The scaling layer above :mod:`repro.core.mapping`: many independent
event-stream jobs, one shared bounded worker pool, fair round-robin
segment scheduling across sessions, explicit backpressure, and tiered
result caching — a job-level LRU plus a segment-level memo (in-memory
LRU over a persistent on-disk store) that lets overlapping jobs and
warm-started streams skip already-computed segments.  See
:class:`ReconstructionService` for the batch API
(``submit`` / ``poll`` / ``result`` / ``drain``),
:class:`StreamingSession` for the incremental one (``open_stream`` /
``feed`` / ``poll_updates`` / ``close``), and ``repro serve`` /
``repro submit`` / ``repro stream`` for the CLI drivers.

Configuration is consolidated in :mod:`repro.serve.options`:
:class:`JobOptions` (per-job knobs, mergeable over service defaults),
:class:`CacheConfig` (cache-tier capacities and placement) and
:class:`ServiceConfig` (the whole service;
:meth:`ReconstructionService.from_config` consumes one).

Reliability lives in :mod:`repro.serve.retry` (deterministic retry
budgets), :mod:`repro.serve.faults` (seeded fault injection for chaos
testing), and the service's deadline/watchdog/``allow_partial`` knobs;
``docs/RELIABILITY.md`` documents the full contract and
``docs/CACHING.md`` the caching one.
"""

from repro.serve.cache import (
    SEGMENT_CACHE_SCHEMA,
    CacheStats,
    ResultCache,
    SegmentCache,
    job_key,
    outcome_digest,
    payload_digest,
    segment_key,
)
from repro.serve.faults import (
    FaultDirective,
    FaultInjected,
    FaultKind,
    FaultPlan,
)
from repro.serve.options import (
    CACHE_MODES,
    CacheConfig,
    JobOptions,
    ServiceConfig,
)
from repro.serve.retry import RetryPolicy
from repro.serve.scheduler import Dispatch, RoundRobinScheduler
from repro.serve.service import (
    OVERFLOW_POLICIES,
    JobFailed,
    ReconstructionService,
    ServeError,
    ServiceStats,
    SessionBacklogFull,
    StreamBacklogFull,
)
from repro.serve.session import Job, JobState, JobStatus, Session
from repro.serve.stream import StreamingSession, StreamUpdate

__all__ = [
    "SEGMENT_CACHE_SCHEMA",
    "CacheStats",
    "ResultCache",
    "SegmentCache",
    "job_key",
    "outcome_digest",
    "payload_digest",
    "segment_key",
    "FaultDirective",
    "FaultInjected",
    "FaultKind",
    "FaultPlan",
    "CACHE_MODES",
    "CacheConfig",
    "JobOptions",
    "ServiceConfig",
    "RetryPolicy",
    "Dispatch",
    "RoundRobinScheduler",
    "OVERFLOW_POLICIES",
    "JobFailed",
    "ReconstructionService",
    "ServeError",
    "ServiceStats",
    "SessionBacklogFull",
    "StreamBacklogFull",
    "Job",
    "JobState",
    "JobStatus",
    "Session",
    "StreamingSession",
    "StreamUpdate",
]
