"""Multi-session reconstruction serving.

The scaling layer above :mod:`repro.core.mapping`: many independent
event-stream jobs, one shared bounded worker pool, fair round-robin
segment scheduling across sessions, explicit backpressure, and an LRU
result cache.  See :class:`ReconstructionService` for the batch API
(``submit`` / ``poll`` / ``result`` / ``drain``),
:class:`StreamingSession` for the incremental one (``open_stream`` /
``feed`` / ``poll_updates`` / ``close``), and ``repro serve`` /
``repro submit`` / ``repro stream`` for the CLI drivers.
"""

from repro.serve.cache import CacheStats, ResultCache, job_key
from repro.serve.scheduler import Dispatch, RoundRobinScheduler
from repro.serve.service import (
    OVERFLOW_POLICIES,
    JobFailed,
    ReconstructionService,
    ServeError,
    ServiceStats,
    SessionBacklogFull,
    StreamBacklogFull,
)
from repro.serve.session import Job, JobState, JobStatus, Session
from repro.serve.stream import StreamingSession, StreamUpdate

__all__ = [
    "CacheStats",
    "ResultCache",
    "job_key",
    "Dispatch",
    "RoundRobinScheduler",
    "OVERFLOW_POLICIES",
    "JobFailed",
    "ReconstructionService",
    "ServeError",
    "ServiceStats",
    "SessionBacklogFull",
    "StreamBacklogFull",
    "Job",
    "JobState",
    "JobStatus",
    "Session",
    "StreamingSession",
    "StreamUpdate",
]
