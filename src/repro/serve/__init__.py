"""Multi-session reconstruction serving.

The scaling layer above :mod:`repro.core.mapping`: many independent
event-stream jobs, one shared bounded worker pool, fair round-robin
segment scheduling across sessions, explicit backpressure, and tiered
result caching — a job-level LRU plus a segment-level memo (in-memory
LRU over a persistent on-disk store) that lets overlapping jobs and
warm-started streams skip already-computed segments.  See
:class:`ReconstructionService` for the batch API
(``submit`` / ``poll`` / ``result`` / ``drain``),
:class:`StreamingSession` for the incremental one (``open_stream`` /
``feed`` / ``poll_updates`` / ``close``), and ``repro serve`` /
``repro submit`` / ``repro stream`` for the CLI drivers.

Configuration is consolidated in :mod:`repro.serve.options`:
:class:`JobOptions` (per-job knobs, mergeable over service defaults),
:class:`CacheConfig` (cache-tier capacities and placement) and
:class:`ServiceConfig` (the whole service;
:meth:`ReconstructionService.from_config` consumes one).

Reliability lives in :mod:`repro.serve.retry` (deterministic retry
budgets), :mod:`repro.serve.faults` (seeded fault injection for chaos
testing), and the service's deadline/watchdog/``allow_partial`` knobs;
``docs/RELIABILITY.md`` documents the full contract and
``docs/CACHING.md`` the caching one.

Horizontal scale lives in :mod:`repro.serve.gateway`: an asyncio
:class:`Gateway` consistent-hashes sessions across N service shards
behind token-bucket admission control, with a stdlib-HTTP
:class:`GatewayServer` exposing ``/metrics`` (Prometheus text built by
:mod:`repro.serve.metrics`), ``/status`` and job submission; ``repro
gateway`` is the CLI driver and ``docs/OBSERVABILITY.md`` the metrics
catalog.
"""

from repro.serve.cache import (
    SEGMENT_CACHE_SCHEMA,
    CacheStats,
    ResultCache,
    SegmentCache,
    job_key,
    outcome_digest,
    payload_digest,
    segment_key,
)
from repro.serve.faults import (
    FaultDirective,
    FaultInjected,
    FaultKind,
    FaultPlan,
)
from repro.serve.gateway import (
    AdmissionController,
    Gateway,
    GatewayRefused,
    GatewayServer,
    GatewayStream,
    HashRing,
    TokenBucket,
    http_request,
)
from repro.serve.metrics import (
    Histogram,
    MetricFamily,
    format_status,
    parse_metrics,
    render_metrics,
    service_families,
    status_snapshot,
    sum_series,
)
from repro.serve.options import (
    CACHE_MODES,
    CacheConfig,
    GatewayConfig,
    JobOptions,
    ServiceConfig,
)
from repro.serve.retry import RetryPolicy
from repro.serve.scheduler import Dispatch, RoundRobinScheduler
from repro.serve.service import (
    OVERFLOW_POLICIES,
    JobFailed,
    ReconstructionService,
    ServeError,
    ServiceStats,
    SessionBacklogFull,
    StreamBacklogFull,
)
from repro.serve.session import Job, JobState, JobStatus, Session
from repro.serve.stream import StreamingSession, StreamUpdate

__all__ = [
    "SEGMENT_CACHE_SCHEMA",
    "CacheStats",
    "ResultCache",
    "SegmentCache",
    "job_key",
    "outcome_digest",
    "payload_digest",
    "segment_key",
    "FaultDirective",
    "FaultInjected",
    "FaultKind",
    "FaultPlan",
    "AdmissionController",
    "Gateway",
    "GatewayRefused",
    "GatewayServer",
    "GatewayStream",
    "HashRing",
    "TokenBucket",
    "http_request",
    "Histogram",
    "MetricFamily",
    "format_status",
    "parse_metrics",
    "render_metrics",
    "service_families",
    "status_snapshot",
    "sum_series",
    "CACHE_MODES",
    "CacheConfig",
    "GatewayConfig",
    "JobOptions",
    "ServiceConfig",
    "RetryPolicy",
    "Dispatch",
    "RoundRobinScheduler",
    "OVERFLOW_POLICIES",
    "JobFailed",
    "ReconstructionService",
    "ServeError",
    "ServiceStats",
    "SessionBacklogFull",
    "StreamBacklogFull",
    "Job",
    "JobState",
    "JobStatus",
    "Session",
    "StreamingSession",
    "StreamUpdate",
]
