"""Multi-session reconstruction serving.

The scaling layer above :mod:`repro.core.mapping`: many independent
event-stream jobs, one shared bounded worker pool, fair round-robin
segment scheduling across sessions, explicit backpressure, and an LRU
result cache.  See :class:`ReconstructionService` for the API
(``submit`` / ``poll`` / ``result`` / ``drain``) and
``repro serve`` / ``repro submit`` for the CLI drivers.
"""

from repro.serve.cache import CacheStats, ResultCache, job_key
from repro.serve.scheduler import Dispatch, RoundRobinScheduler
from repro.serve.service import (
    OVERFLOW_POLICIES,
    JobFailed,
    ReconstructionService,
    ServeError,
    ServiceStats,
    SessionBacklogFull,
)
from repro.serve.session import Job, JobState, JobStatus, Session

__all__ = [
    "CacheStats",
    "ResultCache",
    "job_key",
    "Dispatch",
    "RoundRobinScheduler",
    "OVERFLOW_POLICIES",
    "JobFailed",
    "ReconstructionService",
    "ServeError",
    "ServiceStats",
    "SessionBacklogFull",
    "Job",
    "JobState",
    "JobStatus",
    "Session",
]
