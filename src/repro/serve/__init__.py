"""Multi-session reconstruction serving.

The scaling layer above :mod:`repro.core.mapping`: many independent
event-stream jobs, one shared bounded worker pool, fair round-robin
segment scheduling across sessions, explicit backpressure, and an LRU
result cache.  See :class:`ReconstructionService` for the batch API
(``submit`` / ``poll`` / ``result`` / ``drain``),
:class:`StreamingSession` for the incremental one (``open_stream`` /
``feed`` / ``poll_updates`` / ``close``), and ``repro serve`` /
``repro submit`` / ``repro stream`` for the CLI drivers.

Reliability lives in :mod:`repro.serve.retry` (deterministic retry
budgets), :mod:`repro.serve.faults` (seeded fault injection for chaos
testing), and the service's deadline/watchdog/``allow_partial`` knobs;
``docs/RELIABILITY.md`` documents the full contract.
"""

from repro.serve.cache import CacheStats, ResultCache, job_key, outcome_digest
from repro.serve.faults import (
    FaultDirective,
    FaultInjected,
    FaultKind,
    FaultPlan,
)
from repro.serve.retry import RetryPolicy
from repro.serve.scheduler import Dispatch, RoundRobinScheduler
from repro.serve.service import (
    OVERFLOW_POLICIES,
    JobFailed,
    ReconstructionService,
    ServeError,
    ServiceStats,
    SessionBacklogFull,
    StreamBacklogFull,
)
from repro.serve.session import Job, JobState, JobStatus, Session
from repro.serve.stream import StreamingSession, StreamUpdate

__all__ = [
    "CacheStats",
    "ResultCache",
    "job_key",
    "outcome_digest",
    "FaultDirective",
    "FaultInjected",
    "FaultKind",
    "FaultPlan",
    "RetryPolicy",
    "Dispatch",
    "RoundRobinScheduler",
    "OVERFLOW_POLICIES",
    "JobFailed",
    "ReconstructionService",
    "ServeError",
    "ServiceStats",
    "SessionBacklogFull",
    "StreamBacklogFull",
    "Job",
    "JobState",
    "JobStatus",
    "Session",
    "StreamingSession",
    "StreamUpdate",
]
