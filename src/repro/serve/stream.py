"""Streaming sessions: incremental event ingestion for the serve layer.

PR 4's :class:`~repro.serve.ReconstructionService` accepts fully
materialized event arrays per job; this module turns it into a *live*
pipeline.  A :class:`StreamingSession` (opened with
:meth:`~repro.serve.ReconstructionService.open_stream`) accepts event
chunks as they arrive (``feed``), plans key-frame segment boundaries
incrementally from a pose-only pass
(:class:`~repro.core.engine.StreamSegmentPlanner`), and schedules each
segment onto the shared worker pool the moment its boundary is crossed —
the same :class:`~repro.core.mapping.SegmentTask` /
:func:`~repro.core.mapping.run_segment_task` units batch jobs use, so a
streamed session's final result is bit-identical to a one-shot ``submit``
of the concatenated events, at any chunk size and worker count.

Partial results flow back while the stream is still open: every
finalized key frame produces a :class:`StreamUpdate` (its depth-map
reconstruction plus an incrementally fused
:class:`~repro.core.mapping.GlobalMap` snapshot), harvested with
``poll_updates``.  In-flight buffering is bounded — chunks the planner
cannot absorb yet wait in a bounded queue, and a full queue applies the
service's ``refuse`` / ``drop-oldest`` overflow policy at *chunk*
granularity (:class:`StreamBacklogFull`, ``chunks_dropped``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.engine import StreamSegmentPlanner
from repro.core.mapping import GlobalMap
from repro.core.pointcloud import PointCloud
from repro.core.results import KeyframeReconstruction
from repro.events.containers import EventArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.mapping import MappingResult
    from repro.serve.service import ReconstructionService
    from repro.serve.session import Job, JobStatus


@dataclass(frozen=True)
class StreamUpdate:
    """One finalized key frame of a streaming session.

    Emitted in stream order (segment order, key-frame order within a
    segment) the moment the segment's outcome lands *and* every earlier
    segment has been folded in — so the fused snapshot in update ``k``
    is exactly the fusion of the first ``k + 1`` key frames, whatever
    order the pool completed segments in.
    """

    #: Id of the streaming job that produced the update.
    job_id: str
    #: Fairness session the stream belongs to.
    session: str
    #: Global index of the segment the key frame closed.
    segment_index: int
    #: Ordinal of the key frame across the whole stream (0-based).
    keyframe_index: int
    #: The finalized reconstruction (pose + semi-dense depth map).
    keyframe: KeyframeReconstruction
    #: Fused global-map snapshot including this key frame.
    cloud: PointCloud
    #: Occupied voxels in the fused map at this point.
    map_voxels: int
    #: Seconds from feeding the chunk that closed the segment to this
    #: update becoming available — the stream's end-to-end latency.
    latency_seconds: float


class StreamState:
    """Service-side bookkeeping of one open stream (attached to its Job).

    Not part of the public API: users hold a :class:`StreamingSession`,
    the service reads and mutates this record during its pump.
    """

    def __init__(
        self,
        planner: StreamSegmentPlanner,
        voxel_size: float,
        max_pending_chunks: int,
    ):
        self.planner = planner
        self.max_pending_chunks = max_pending_chunks
        #: Chunks fed but not yet absorbed by the planner, with their
        #: feed timestamps (the bounded in-flight buffer).
        self.pending_chunks: deque[tuple[EventArray, float]] = deque()
        #: Planned-but-uncompleted segments' event slices, keyed by
        #: segment index; released when the segment's outcome lands.
        self.segment_events: dict[int, EventArray] = {}
        #: Feed timestamp of the chunk that closed each segment.
        self.feed_times: dict[int, float] = {}
        #: Incrementally fused world map (key frames in stream order).
        self.global_map = GlobalMap(voxel_size)
        #: Updates emitted but not yet polled by the client.
        self.updates: list[StreamUpdate] = []
        #: Next segment index to fold into the fused map.
        self.emit_cursor = 0
        self.keyframes_emitted = 0
        #: Whether ``feed`` is still accepted (flips on ``close``).
        self.open = True
        #: Whether the planner's trailing segment has been cut.
        self.flushed = False
        #: ``close()`` timestamp, for the final segment's latency.
        self.closed_at: float | None = None
        self.chunks_fed = 0
        self.events_fed = 0
        self.chunks_dropped = 0


class StreamingSession:
    """Client handle of one incremental reconstruction stream.

    Obtained from
    :meth:`~repro.serve.ReconstructionService.open_stream`; the
    service owns all execution state, this handle only feeds and polls.
    The lifecycle is ``feed* -> close -> result``, with ``poll_updates``
    legal at any point:

    * :meth:`feed` pushes one time-ordered event chunk (any size) and
      pumps the service — newly crossed key-frame boundaries dispatch
      immediately, unless the segment cache already holds the slice's
      outcome, in which case the update lands without a dispatch (see
      ``docs/CACHING.md``).
    * :meth:`poll_updates` drains the finalized-key-frame updates
      produced since the previous poll.
    * :meth:`close` ends the stream: the trailing segment is cut and the
      dropped partial-frame events are accounted.
    * :meth:`result` blocks until every segment completed and returns
      the same :class:`~repro.core.mapping.MappingResult` a one-shot
      ``submit`` of the concatenated chunks would produce —
      bit-identically (fused map *and* profile counters).

    The handle is a context manager; leaving the ``with`` block closes
    the stream (without waiting for the result).

    Examples
    --------
    ::

        from repro.core import EMVSConfig, EngineSpec
        from repro.events.datasets import load_sequence
        from repro.serve import ReconstructionService

        seq = load_sequence("corridor_sweep", quality="fast")
        spec = EngineSpec(
            seq.camera, seq.trajectory,
            EMVSConfig(n_depth_planes=48,
                       keyframe_distance=seq.keyframe_distance),
            depth_range=seq.depth_range, backend="numpy-batch",
        )
        with ReconstructionService(workers=2, executor="thread") as svc:
            with svc.open_stream(spec, session="robot-7") as stream:
                for t0 in range(20):  # 50 ms chunks, as a driver would
                    chunk = seq.events.time_slice(t0 * 0.05, (t0 + 1) * 0.05)
                    stream.feed(chunk)
                    for update in stream.poll_updates():
                        print(update.keyframe_index, update.map_voxels)
            result = stream.result()  # == one-shot submit, bit-exactly
    """

    def __init__(self, service: "ReconstructionService", job: "Job"):
        self._service = service
        self._job = job

    # ------------------------------------------------------------------
    @property
    def job_id(self) -> str:
        """Service job id of this stream (pollable via the service too)."""
        return self._job.job_id

    @property
    def session(self) -> str:
        """Fairness session the stream was opened under."""
        return self._job.session

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (feeding has ended)."""
        return not self._job.stream.open

    @property
    def chunks_fed(self) -> int:
        """Chunks accepted by :meth:`feed` so far (empty feeds excluded)."""
        return self._job.stream.chunks_fed

    @property
    def events_fed(self) -> int:
        """Events accepted by :meth:`feed` so far."""
        return self._job.stream.events_fed

    @property
    def chunks_dropped(self) -> int:
        """Chunks this stream shed under the ``drop-oldest`` policy."""
        return self._job.stream.chunks_dropped

    # ------------------------------------------------------------------
    def feed(self, events: EventArray) -> None:
        """Push one time-ordered event chunk into the stream.

        Chunks may be any size (sub-frame chunks simply buffer).  When
        the bounded in-flight buffer is full the service's overflow
        policy decides: ``refuse`` raises :class:`StreamBacklogFull`,
        ``drop-oldest`` evicts the oldest unabsorbed chunk (recorded in
        ``chunks_dropped``).  Raises once the stream is closed or its
        job reached a terminal state.
        """
        self._service._feed_stream(self._job, events)

    def poll_updates(self) -> list[StreamUpdate]:
        """Pump the service; return updates emitted since the last poll.

        Non-blocking.  Updates arrive in stream order; each carries a
        finalized key frame plus the fused-map snapshot including it.
        Snapshots cost one fusion pass per key frame (inherent to the
        per-update prefix-snapshot contract) and un-polled updates are
        retained until collected — poll regularly on long streams.
        """
        return self._service._poll_stream(self._job)

    def close(self) -> None:
        """End the stream: no more feeds; the trailing segment is cut.

        Idempotent.  Remaining buffered chunks are still planned and
        executed — ``close`` marks end-of-stream, it does not discard
        work.  The trailing partial frame (fewer than ``frame_size``
        events) is dropped and accounted in ``profile.dropped_events``,
        exactly as a one-shot run would.  If the stream carries a
        ``deadline_s``, the deadline clock arms here — an open stream
        can always grow, so the budget only starts once input ends.
        """
        self._service._close_stream(self._job)

    def result(self, timeout: float | None = None) -> "MappingResult":
        """Block until the stream's last segment lands; return the result.

        Requires :meth:`close` first (an open stream could always grow),
        *unless* the job already reached a terminal state — a stream
        whose segments all failed surfaces its error here promptly
        (:class:`~repro.serve.service.JobFailed`) instead of waiting on
        updates that can never arrive.  The returned
        :class:`~repro.core.mapping.MappingResult` is bit-identical to
        ``service.submit`` of the concatenated chunks: same fused map,
        same keyframes, same profile counters.  A degraded stream
        (``allow_partial``) returns its ``PARTIAL`` result — the fused
        map of the completed key frames with ``missing_segments``
        listing the abandoned ones.
        """
        return self._service._stream_result(self._job, timeout)

    def status(self) -> "JobStatus":
        """Non-blocking job-status snapshot (pumps the service first)."""
        return self._service._status(self._job, pump=True)

    # ------------------------------------------------------------------
    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
