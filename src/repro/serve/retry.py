"""Retry budgets with deterministic exponential backoff.

A :class:`RetryPolicy` is the serve layer's answer to *transient*
segment failures: a failed attempt re-dispatches (up to
``max_attempts``) after an exponentially growing delay, with seeded
jitter so re-dispatch times are deterministic per ``(segment,
failure)`` — chaos tests replay the exact schedule — while still
de-synchronizing herds the way production jitter does.

Persistent failures are not healed by retrying, only bounded by it:
they burn the budget and surface (``FAILED``, or ``PARTIAL`` under
``allow_partial``).  The policy itself is mechanism, not diagnosis — it
never inspects the exception.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """How many times a segment may run, and how long to wait between runs.

    Parameters
    ----------
    max_attempts:
        Total attempts allowed per segment (first try included).  ``1``
        disables retrying — the service's default, preserving the PR 4
        fail-fast semantics.
    backoff_s:
        Delay before the first retry; ``0`` re-dispatches immediately.
    backoff_factor:
        Multiplier applied per additional failure (exponential backoff).
    jitter:
        Fraction of the delay added as seeded pseudo-random jitter
        (``0.2`` means up to +20 %).  Deterministic per ``(seed,
        segment, failure count)``.
    seed:
        Root of the jitter draw.
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self):
        """Validate the retry knobs."""
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def retryable(self, failures: int) -> bool:
        """Whether a segment with ``failures`` failed attempts may run again."""
        return failures < self.max_attempts

    def delay(self, index: int, failures: int) -> float:
        """Seconds to wait before re-dispatching after failure #``failures``.

        Pure in ``(policy, index, failures)``: the jitter generator is
        re-seeded per call, so a replayed failure schedule produces the
        identical backoff schedule.
        """
        if failures < 1:
            raise ValueError("delay() is asked after at least one failure")
        base = self.backoff_s * self.backoff_factor ** (failures - 1)
        if base <= 0 or self.jitter <= 0:
            return base
        rng = np.random.default_rng([self.seed, index, failures])
        return base * (1.0 + self.jitter * float(rng.random()))
