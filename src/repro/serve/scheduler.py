"""Fair round-robin sharding of session work onto one worker pool.

The scheduler owns no threads and no pool — it is a deterministic
decision procedure: *given the sessions' queues, which segment runs
next?*  The service pumps it for tasks whenever pool slots free up.
Keeping the policy synchronous and stateful-but-deterministic is what
makes fairness testable: the dispatch log for a fixed submission order
is always the same, whatever the pool timing.

Fairness model (ESVO-style interleaving generalized to N streams):

* **across sessions** — strict round robin at *segment* granularity.  A
  session that just dispatched goes to the back of the rotation, so one
  heavy job cannot starve other sessions; their segments interleave on
  the shared pool.  Streaming jobs take part exactly like batch jobs —
  a live stream's freshly planned segments interleave with batch jobs'
  pre-planned ones in the same dispatch log.
* **within a session** — FIFO over jobs; a job's segments dispatch in
  stream order.

Backpressure is enforced at admission (see
:meth:`ReconstructionService.submit`): a session whose active-job count
reached its bound either refuses the submission or drops its oldest
still-queued job, per the service's overflow policy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.mapping import SegmentTask
from repro.serve.session import Job, JobState, Session


@dataclass(frozen=True)
class Dispatch:
    """One scheduling decision: a segment task and the job it belongs to.

    ``attempt`` is the segment's dispatch epoch (1 on the first try,
    bumped per re-dispatch) — the service stamps it on the in-flight
    record so a superseded attempt's late result is discarded instead
    of fused twice.
    """

    job: Job
    task: SegmentTask
    attempt: int = 1


class RoundRobinScheduler:
    """Segment-granular round robin across sessions (see module docs)."""

    def __init__(self, queue_limit: int = 8):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.queue_limit = queue_limit
        self._sessions: dict[str, Session] = {}
        self._rotation: deque[str] = deque()
        #: Record of (session, job_id, segment_index) in dispatch order —
        #: the artifact the fairness tests inspect.  Bounded so a
        #: long-lived service's log cannot grow without limit.
        self.dispatch_log: deque[tuple[str, str, int]] = deque(maxlen=100_000)

    # ------------------------------------------------------------------
    def session(self, name: str) -> Session:
        """The named session, created on first use."""
        if name not in self._sessions:
            self._sessions[name] = Session(name, self.queue_limit)
            self._rotation.append(name)
        return self._sessions[name]

    @property
    def sessions(self) -> dict[str, Session]:
        """Registered sessions by name (copy)."""
        return dict(self._sessions)

    def admit(self, job: Job) -> None:
        """Record an admitted job (capacity is the service's decision)."""
        self.session(job.session).add(job)

    # ------------------------------------------------------------------
    def next_dispatch(self) -> Dispatch | None:
        """Pick the next segment fairly, or ``None`` when all queues idle.

        Rotates through sessions starting from the head of the rotation;
        the session that yields work is moved to the back.  Sessions with
        nothing to dispatch keep their position, so a returning stream
        re-enters where it left off.
        """
        for position in range(len(self._rotation)):
            name = self._rotation[position]
            session = self._sessions[name]
            job = session.next_dispatch()
            if job is None:
                continue  # idle sessions keep their rotation position
            # Recovery/retry re-dispatches come first; indices whose
            # outcome already landed (segment-cache prefills) are
            # consumed without dispatching.
            index = job.take_next_index()
            if index is None:
                continue  # everything left had landed; session keeps its turn
            if job.state is JobState.QUEUED:
                job.state = JobState.RUNNING
            session.segments_dispatched += 1
            # Bump the segment's dispatch epoch: outcomes are only
            # accepted from the newest attempt (see _collect_done).
            attempt = job.attempts.get(index, 0) + 1
            job.attempts[index] = attempt
            del self._rotation[position]
            self._rotation.append(name)
            self.dispatch_log.append((name, job.job_id, index))
            plan = job.plans[index]
            if job.stream is not None:
                # Streaming jobs hold no whole-stream array; the planner
                # already cut the segment's slice.  Kept (not popped)
                # until the outcome lands so a pool break can requeue.
                events = job.stream.segment_events[plan.index]
            else:
                events = plan.slice(job.events)
            task = SegmentTask(plan.index, events, job.spec)
            return Dispatch(job=job, task=task, attempt=attempt)
        return None

    @property
    def has_pending_dispatch(self) -> bool:
        """Whether any session still has a segment to dispatch."""
        return any(s.has_pending_dispatch for s in self._sessions.values())

    def queue_depths(self) -> dict[str, int]:
        """Pending (planned-but-unlanded) segments per session.

        The observability view of the scheduler's queues: each entry is
        :attr:`Session.pending_segments` — undispatched plan tail plus
        requeues plus backed-off retries — keyed by session name.
        Idle sessions report ``0`` rather than being omitted, so a
        scrape always sees every session the service has touched.
        """
        return {
            name: session.pending_segments
            for name, session in self._sessions.items()
        }

    def cancel_job(self, job: Job) -> None:
        """Stop dispatching a job's remaining segments (failure path)."""
        job.next_segment = job.n_segments
        job.requeued.clear()
        job.retry_backlog.clear()
