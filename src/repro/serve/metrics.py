"""Prometheus-style observability surface of the serving layer.

One module owns the whole metrics story so every exporter agrees on
names and shapes:

* :class:`Histogram` — fixed-bucket latency histogram (cumulative
  bucket counts, ``sum``/``count``), the classic Prometheus shape.
* :class:`MetricFamily` — one named metric with typed samples; built
  from :class:`~repro.serve.service.ServiceStats` snapshots by
  :func:`service_families` (per-shard labels) and rendered to the
  text exposition format by :func:`render_metrics`.
* :func:`parse_metrics` — the inverse of :func:`render_metrics`, so
  tests (and the reconcile invariant in ``docs/OBSERVABILITY.md``) can
  assert scraped counters against ``ServiceStats`` totals without a
  Prometheus client library.
* :func:`status_snapshot` / :func:`format_status` — the JSON
  (``GET /status``) and human (``repro serve --status``) views of the
  same numbers.

Everything here is observability only: none of these numbers feed the
deterministic :meth:`~repro.core.results.PipelineProfile.counters`
equality the bit-exactness tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.service import ServiceStats

#: Default latency buckets in seconds — reconstruction jobs run from
#: tens of milliseconds (cache hits) to minutes (cold full-quality
#: sequences), so the ladder spans five decades.
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative semantics.

    ``observe`` files a value into every bucket whose upper bound it
    does not exceed (cumulative counts), plus the ``+Inf`` implicit
    bucket tracked by ``count``; ``sum`` accumulates the raw values.
    Bucket bounds are fixed at construction — scrapes never resize.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """File one observation."""
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[i] += 1

    def bucket_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` excluded."""
        return list(zip(self.buckets, self._counts))

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (bucket upper bound that covers it).

        The standard scrape-side estimate: the smallest bucket bound
        whose cumulative count reaches ``q * count``.  Returns the top
        bound for observations beyond the ladder, ``0.0`` when empty.
        """
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        for bound, cumulative in zip(self.buckets, self._counts):
            if cumulative >= target:
                return bound
        return self.buckets[-1]


@dataclass(frozen=True)
class MetricFamily:
    """One named metric: type, help text, and labeled samples.

    ``samples`` pairs a label dict with a value.  For ``histogram``
    families the samples are pre-expanded ``_bucket``/``_sum``/
    ``_count`` series (see :func:`histogram_family`), so rendering is
    uniform across kinds.
    """

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    samples: tuple[tuple[tuple[tuple[str, str], ...], float], ...] = field(
        default_factory=tuple
    )


def _labels(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    """Normalize a label mapping to the hashable tuple form."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def make_family(
    name: str,
    kind: str,
    help_text: str,
    samples: Iterable[tuple[Mapping[str, str], float]],
) -> MetricFamily:
    """Build a :class:`MetricFamily` from ``(labels, value)`` pairs."""
    return MetricFamily(
        name=name,
        kind=kind,
        help=help_text,
        samples=tuple((_labels(labels), float(value)) for labels, value in samples),
    )


def histogram_family(
    name: str,
    help_text: str,
    histograms: Mapping[Mapping[str, str] | tuple, Histogram] | Iterable,
) -> MetricFamily:
    """Expand labeled :class:`Histogram` objects into one family.

    ``histograms`` maps a label set (mapping or label-tuple) to a
    histogram; the family carries the conventional
    ``<name>_bucket{le=...}`` / ``<name>_sum`` / ``<name>_count``
    series for each.
    """
    samples: list[tuple[tuple[tuple[str, str], ...], float]] = []
    items = histograms.items() if isinstance(histograms, Mapping) else histograms
    for labels, hist in items:
        base = _labels(dict(labels) if not isinstance(labels, Mapping) else labels)
        cumulative = 0
        for bound, cumulative in hist.bucket_counts():
            samples.append((base + (("le", _format_value(bound)),), cumulative))
        samples.append((base + (("le", "+Inf"),), hist.count))
        samples.append(((("__series__", "sum"),) + base, hist.sum))
        samples.append(((("__series__", "count"),) + base, hist.count))
    return MetricFamily(name=name, kind="histogram", help=help_text, samples=tuple(samples))


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (no float noise)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_metrics(families: Iterable[MetricFamily]) -> str:
    """Render families to the Prometheus text exposition format."""
    lines: list[str] = []
    for fam in families:
        lines.append(f"# HELP {fam.name} {fam.help}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for labels, value in fam.samples:
            series = fam.name
            plain = []
            for key, val in labels:
                if key == "__series__":
                    series = f"{fam.name}_{val}"
                else:
                    plain.append((key, val))
            if fam.kind == "histogram" and any(k == "le" for k, _ in plain):
                series = f"{fam.name}_bucket"
            if plain:
                rendered = ",".join(
                    f'{k}="{_escape(v)}"' for k, v in plain
                )
                lines.append(f"{series}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{series} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def parse_metrics(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text back to ``{(series, labels): value}``.

    The test-side inverse of :func:`render_metrics` — enough of the
    format to assert scraped counters against ``ServiceStats`` totals
    (full label sets, ``_bucket``/``_sum``/``_count`` series, comment
    lines skipped).  Not a general Prometheus parser.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            series, _, label_blob = name_part.partition("{")
            label_blob = label_blob.rstrip("}")
            labels = []
            for chunk in _split_labels(label_blob):
                key, _, raw = chunk.partition("=")
                labels.append((key, raw.strip('"')))
            out[(series, tuple(sorted(labels)))] = float(value_part)
        else:
            out[(name_part, ())] = float(value_part)
    return out


def _split_labels(blob: str) -> list[str]:
    """Split a label blob on commas outside quoted values."""
    parts, current, quoted = [], "", False
    for ch in blob:
        if ch == '"':
            quoted = not quoted
        if ch == "," and not quoted:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current:
        parts.append(current)
    return parts


def sum_series(
    parsed: Mapping[tuple[str, tuple[tuple[str, str], ...]], float],
    series: str,
    **match: str,
) -> float:
    """Sum every sample of ``series`` whose labels include ``match``.

    The reconcile helper: ``sum_series(parsed, "repro_serve_jobs_total",
    state="done")`` totals the done-job counter across shards.
    """
    wanted = set((k, str(v)) for k, v in match.items())
    return sum(
        value
        for (name, labels), value in parsed.items()
        if name == series and wanted <= set(labels)
    )


# ----------------------------------------------------------------------
# ServiceStats -> families
# ----------------------------------------------------------------------
def service_families(
    stats_by_shard: Mapping[int | str, "ServiceStats"],
) -> list[MetricFamily]:
    """Metric families of N service shards (single service: ``{0: stats}``).

    The catalog (documented in ``docs/OBSERVABILITY.md``): job outcome
    counters, stream/chunk counters, reliability counters, cache events
    and entry gauges per tier, queue-depth gauges per (shard, session),
    and the deterministic ``PipelineProfile`` counters — everything
    labeled by shard so cross-shard sums reconcile with the per-shard
    ``ServiceStats`` exactly.
    """
    jobs, streams, chunks, reliability = [], [], [], []
    cache_events, cache_entries, depths = [], [], []
    dispatched, inflight, active, profile_counters = [], [], [], []
    for shard, stats in stats_by_shard.items():
        s = {"shard": str(shard)}
        for state in (
            "submitted", "done", "failed", "refused",
            "dropped", "coalesced", "partial",
        ):
            jobs.append(({**s, "state": state}, getattr(stats, f"jobs_{state}")))
        streams.append(({**s, "event": "opened"}, stats.streams_opened))
        streams.append(({**s, "event": "update"}, stats.updates_emitted))
        chunks.append(({**s, "outcome": "refused"}, stats.chunks_refused))
        chunks.append(({**s, "outcome": "dropped"}, stats.chunks_dropped))
        reliability.append(({**s, "event": "retried"}, stats.segments_retried))
        reliability.append(({**s, "event": "timed_out"}, stats.segments_timed_out))
        reliability.append(({**s, "event": "corrupted"}, stats.results_corrupted))
        cache = stats.cache
        cache_events.append(({**s, "tier": "job", "event": "hit"}, cache.hits))
        cache_events.append(({**s, "tier": "job", "event": "miss"}, cache.misses))
        cache_events.append(
            ({**s, "tier": "segment", "event": "hit"}, cache.segment_hits)
        )
        cache_events.append(
            ({**s, "tier": "segment", "event": "miss"}, cache.segment_misses)
        )
        cache_events.append(
            ({**s, "tier": "segment_disk", "event": "hit"}, cache.segment_disk_hits)
        )
        cache_entries.append(({**s, "tier": "job"}, cache.size))
        cache_entries.append(({**s, "tier": "segment"}, cache.segment_entries))
        cache_entries.append(
            ({**s, "tier": "segment_disk"}, cache.segment_disk_entries)
        )
        for session, depth in sorted(stats.queue_depths.items()):
            depths.append(({**s, "session": session}, depth))
        for session, count in sorted(stats.segments_dispatched.items()):
            dispatched.append(({**s, "session": session}, count))
        inflight.append((s, stats.inflight_segments))
        active.append((s, stats.active_jobs))
        for counter, value in stats.profile.counters().items():
            profile_counters.append(({**s, "counter": counter}, value))
    return [
        make_family(
            "repro_serve_jobs_total", "counter",
            "Job admission/outcome counters by state.", jobs,
        ),
        make_family(
            "repro_serve_stream_events_total", "counter",
            "Streams opened and stream updates emitted.", streams,
        ),
        make_family(
            "repro_serve_chunks_total", "counter",
            "Stream chunks shed by the overflow policy, by outcome.", chunks,
        ),
        make_family(
            "repro_serve_segment_events_total", "counter",
            "Reliability events: retries, watchdog timeouts, integrity "
            "rejections.", reliability,
        ),
        make_family(
            "repro_serve_cache_events_total", "counter",
            "Cache probes by tier (job LRU, segment memory, segment disk).",
            cache_events,
        ),
        make_family(
            "repro_serve_cache_entries", "gauge",
            "Live cache entries by tier.", cache_entries,
        ),
        make_family(
            "repro_serve_queue_depth", "gauge",
            "Pending (planned-but-unlanded) segments per shard and session.",
            depths,
        ),
        make_family(
            "repro_serve_segments_dispatched_total", "counter",
            "Segments dispatched onto the pool per shard and session.",
            dispatched,
        ),
        make_family(
            "repro_serve_inflight_segments", "gauge",
            "Segment attempts on the pool right now.", inflight,
        ),
        make_family(
            "repro_serve_active_jobs", "gauge",
            "Admitted, non-terminal jobs right now.", active,
        ),
        make_family(
            "repro_pipeline_counters_total", "counter",
            "Deterministic PipelineProfile counters (events, frames, "
            "keyframes, votes, drops).", profile_counters,
        ),
    ]


def _rate(numerator: float, denominator: float) -> str:
    """A percentage string, dash when the denominator is zero."""
    if denominator <= 0:
        return "-"
    return f"{100.0 * numerator / denominator:.1f}%"


def status_snapshot(
    stats_by_shard: Mapping[int | str, "ServiceStats"],
) -> dict:
    """JSON-ready status document (the ``GET /status`` body).

    Per-shard counter dicts plus cross-shard totals and derived rates;
    every number also appears in ``/metrics``, this is the same data
    grouped for humans and dashboards.
    """
    shards = {}
    totals = {
        "jobs_submitted": 0, "jobs_done": 0, "jobs_failed": 0,
        "jobs_refused": 0, "jobs_dropped": 0, "jobs_coalesced": 0,
        "jobs_partial": 0, "segments_retried": 0, "segments_timed_out": 0,
        "active_jobs": 0, "inflight_segments": 0, "queue_depth": 0,
        "cache_hits": 0, "cache_misses": 0,
        "segment_cache_hits": 0, "segment_cache_misses": 0,
        "segment_disk_hits": 0, "updates_emitted": 0,
    }
    for shard, stats in stats_by_shard.items():
        cache = stats.cache
        depth = sum(stats.queue_depths.values())
        record = {
            "jobs_submitted": stats.jobs_submitted,
            "jobs_done": stats.jobs_done,
            "jobs_failed": stats.jobs_failed,
            "jobs_refused": stats.jobs_refused,
            "jobs_dropped": stats.jobs_dropped,
            "jobs_coalesced": stats.jobs_coalesced,
            "jobs_partial": stats.jobs_partial,
            "segments_retried": stats.segments_retried,
            "segments_timed_out": stats.segments_timed_out,
            "active_jobs": stats.active_jobs,
            "inflight_segments": stats.inflight_segments,
            "queue_depth": depth,
            "queue_depths": dict(sorted(stats.queue_depths.items())),
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "segment_cache_hits": cache.segment_hits,
            "segment_cache_misses": cache.segment_misses,
            "segment_disk_hits": cache.segment_disk_hits,
            "updates_emitted": stats.updates_emitted,
            "profile": stats.profile.counters(),
        }
        shards[str(shard)] = record
        for key in totals:
            totals[key] += record[key]
    done_or_partial = totals["jobs_done"] + totals["jobs_partial"]
    finished = done_or_partial + totals["jobs_failed"]
    totals["retry_rate"] = _rate(totals["segments_retried"], finished)
    totals["partial_rate"] = _rate(totals["jobs_partial"], finished)
    totals["job_cache_hit_rate"] = _rate(
        totals["cache_hits"], totals["cache_hits"] + totals["cache_misses"]
    )
    totals["segment_cache_hit_rate"] = _rate(
        totals["segment_cache_hits"],
        totals["segment_cache_hits"] + totals["segment_cache_misses"],
    )
    return {"shards": shards, "totals": totals}


def format_status(stats_by_shard: Mapping[int | str, "ServiceStats"]) -> str:
    """Human-readable status block (``repro serve --status``)."""
    snap = status_snapshot(stats_by_shard)
    totals = snap["totals"]
    lines = [
        f"shards: {len(snap['shards'])}",
        "jobs: {jobs_submitted} submitted, {jobs_done} done, "
        "{jobs_partial} partial, {jobs_failed} failed, "
        "{jobs_refused} refused, {jobs_dropped} dropped, "
        "{jobs_coalesced} coalesced".format(**totals),
        f"in flight: {totals['active_jobs']} jobs, "
        f"{totals['inflight_segments']} segments "
        f"(queue depth {totals['queue_depth']})",
        f"reliability: {totals['segments_retried']} retries "
        f"(rate {totals['retry_rate']}), "
        f"{totals['segments_timed_out']} timeouts, "
        f"partial rate {totals['partial_rate']}",
        f"cache: job hit rate {totals['job_cache_hit_rate']}, "
        f"segment hit rate {totals['segment_cache_hit_rate']} "
        f"({totals['segment_disk_hits']} from disk)",
    ]
    for shard, record in sorted(snap["shards"].items()):
        depth = record["queue_depth"]
        lines.append(
            f"  shard {shard}: {record['jobs_submitted']} submitted, "
            f"{record['jobs_done']} done, {record['jobs_failed']} failed, "
            f"queue depth {depth}, "
            f"{record['updates_emitted']} stream updates"
        )
    return "\n".join(lines)
