"""LRU result cache for the reconstruction service.

Reconstruction is a pure function of ``(events, engine spec, fuse
parameters)`` — the engine is deterministic by construction and the
fusion is an order-fixed reduction — so repeated requests for the same
job are served from a bounded LRU cache instead of recomputed.

Keys are content-addressed: the event stream contributes its
:meth:`~repro.events.containers.EventArray.content_digest`, and every
configuration object (camera, trajectory, config, policy) is normalized
into a stable token tree and hashed.  Two submissions hit the same entry
iff they would produce bit-identical results.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import pickle
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.engine import EngineSpec
from repro.events.containers import EventArray


def _token(obj) -> object:
    """Normalize ``obj`` into a deterministic, hashable-by-pickle token."""
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        # repr round-trips the exact double, so 0.1 and 0.1000...01 differ.
        return ("f", repr(obj))
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__name__, obj.name)
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return ("nd", arr.shape, arr.dtype.str, arr.tobytes())
    if isinstance(obj, np.generic):
        return _token(obj.item())
    if isinstance(obj, EventArray):
        return ("events", obj.content_digest())
    if isinstance(obj, (tuple, list)):
        return (type(obj).__name__, tuple(_token(item) for item in obj))
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(sorted((_token(k), _token(v)) for k, v in obj.items())),
        )
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, _token(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    state = getattr(obj, "__dict__", None)
    if state is None and hasattr(type(obj), "__slots__"):
        state = {
            name: getattr(obj, name)
            for name in type(obj).__slots__
            if hasattr(obj, name)
        }
    if state is not None:
        return (type(obj).__name__, _token(state))
    # Last resort: pickle bytes are deterministic for a fixed in-process
    # object layout, which is all an in-process cache needs.
    return ("pickle", type(obj).__name__, pickle.dumps(obj, protocol=5))


def job_key(
    spec: EngineSpec,
    events: EventArray,
    voxel_size: float,
    min_observations: int = 1,
) -> str:
    """Content hash identifying one reconstruction job (hex digest)."""
    token = _token(
        (
            ("events", events),
            ("camera", spec.camera),
            ("trajectory", spec.trajectory),
            ("config", spec.config),
            ("depth_range", spec.depth_range),
            ("policy", spec.policy),
            ("backend", spec.backend),
            ("voxel_size", float(voxel_size)),
            ("min_observations", int(min_observations)),
        )
    )
    return hashlib.sha256(pickle.dumps(token, protocol=5)).hexdigest()


def outcome_digest(outcome) -> str:
    """Content hash of one segment outcome (hex digest).

    The integrity check of the reliability layer: the worker digests the
    outcome it is about to return, and the service re-digests what it
    received at merge time — any corruption in between (serialization
    damage, transport bit rot, an injected CORRUPT fault) mismatches.
    The hash covers the *deterministic* payload — segment index, key
    frames, and the profile's deterministic counters — because the
    profile's ``stage_seconds`` are wall-clock measurements that
    legitimately differ between the worker's digest and a verification
    re-run; only data that flows into the fused result is protected.
    """
    index, keyframes, profile = outcome
    token = _token((index, tuple(keyframes), profile.counters()))
    return hashlib.sha256(pickle.dumps(token, protocol=5)).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    def as_dict(self) -> dict:
        """The counters as a plain dict (JSON-friendly)."""
        return dataclasses.asdict(self)


class ResultCache:
    """Bounded LRU map from job keys to finished results.

    ``capacity == 0`` disables caching entirely (every lookup is a miss
    and nothing is stored) — the switch the determinism tests and the
    throughput bench use to compare cached and uncached serving.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0 (0 disables)")
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything (``capacity > 0``)."""
        return self.capacity > 0

    def get(self, key: str):
        """The cached result for ``key``, or ``None`` (counted) on a miss."""
        if self.enabled and key in self._entries:
            self._entries.move_to_end(key)
            self._hits += 1
            return self._entries[key]
        self._misses += 1
        return None

    def put(self, key: str, value) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        if not self.enabled:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )
