"""Tiered result caches for the reconstruction service.

Reconstruction is a pure function of ``(events, engine spec, fuse
parameters)`` — the engine is deterministic by construction and the
fusion is an order-fixed reduction — so repeated requests for the same
job are served from a bounded LRU cache instead of recomputed
(:class:`ResultCache`, keyed by :func:`job_key`).

The same purity holds one level down: a segment's outcome is fully
determined by its frame-aligned event slice plus the engine spec, and
the segment index plays no part in the computation.  The serving layer
therefore also memoizes at *segment* granularity (:class:`SegmentCache`,
keyed by :func:`segment_key`): overlapping jobs — sliding windows,
warm-started streams, resubmissions after a partial failure — reuse
every segment they share with anything computed before, across two
tiers: an in-memory LRU bounded by bytes, in front of an optional
content-addressed on-disk store (atomic write-then-rename, versioned
schema, size-bounded eviction) whose entries survive process restarts.

Keys are content-addressed: the event stream contributes its
:meth:`~repro.events.containers.EventArray.content_digest`, and every
configuration object (camera, trajectory, config, policy) is normalized
into a stable token tree and hashed.  Two submissions hit the same entry
iff they would produce bit-identical results.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.engine import EngineSpec
from repro.events.containers import EventArray

#: Version stamp of the segment-cache key derivation *and* the on-disk
#: entry layout.  Bumping it invalidates every previously written entry
#: (old files simply stop matching any key and age out via eviction), so
#: a change to the payload schema can never deserialize stale bytes.
SEGMENT_CACHE_SCHEMA = 1


def _token(obj) -> object:
    """Normalize ``obj`` into a deterministic, hashable-by-pickle token."""
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        # repr round-trips the exact double, so 0.1 and 0.1000...01 differ.
        return ("f", repr(obj))
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__name__, obj.name)
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return ("nd", arr.shape, arr.dtype.str, arr.tobytes())
    if isinstance(obj, np.generic):
        return _token(obj.item())
    if isinstance(obj, EventArray):
        return ("events", obj.content_digest())
    if isinstance(obj, (tuple, list)):
        return (type(obj).__name__, tuple(_token(item) for item in obj))
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(sorted((_token(k), _token(v)) for k, v in obj.items())),
        )
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, _token(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    state = getattr(obj, "__dict__", None)
    if state is None and hasattr(type(obj), "__slots__"):
        state = {
            name: getattr(obj, name)
            for name in type(obj).__slots__
            if hasattr(obj, name)
        }
    if state is not None:
        return (type(obj).__name__, _token(state))
    # Last resort: pickle bytes are deterministic for a fixed in-process
    # object layout, which is all an in-process cache needs.
    return ("pickle", type(obj).__name__, pickle.dumps(obj, protocol=5))


def job_key(
    spec: EngineSpec,
    events: EventArray,
    voxel_size: float,
    min_observations: int = 1,
) -> str:
    """Content hash identifying one reconstruction job (hex digest)."""
    token = _token(
        (
            ("events", events),
            ("camera", spec.camera),
            ("trajectory", spec.trajectory),
            ("config", spec.config),
            ("depth_range", spec.depth_range),
            ("policy", spec.policy),
            ("backend", spec.backend),
            ("voxel_size", float(voxel_size)),
            ("min_observations", int(min_observations)),
        )
    )
    return hashlib.sha256(pickle.dumps(token, protocol=5)).hexdigest()


def outcome_digest(outcome) -> str:
    """Content hash of one segment outcome (hex digest).

    The integrity check of the reliability layer: the worker digests the
    outcome it is about to return, and the service re-digests what it
    received at merge time — any corruption in between (serialization
    damage, transport bit rot, an injected CORRUPT fault) mismatches.
    The hash covers the *deterministic* payload — segment index, key
    frames, and the profile's deterministic counters — because the
    profile's ``stage_seconds`` are wall-clock measurements that
    legitimately differ between the worker's digest and a verification
    re-run; only data that flows into the fused result is protected.
    """
    index, keyframes, profile = outcome
    token = _token((index, tuple(keyframes), profile.counters()))
    return hashlib.sha256(pickle.dumps(token, protocol=5)).hexdigest()


def segment_key(spec: EngineSpec, events_digest: str) -> str:
    """Content hash identifying one segment's worth of work (hex digest).

    Covers the segment's event-slice digest plus every spec field that
    flows into :func:`~repro.core.mapping.run_segment_task` — and
    nothing else.  Deliberately excluded:

    * the **segment index** — it orders the outcome back into its job's
      sequence but plays no part in the computation, so two jobs whose
      plans cut the same events under the same spec share the entry
      even when the slice sits at different positions;
    * the **fuse parameters** (``voxel_size``, ``min_observations``) —
      fusion happens after the per-segment stage, so one cached segment
      serves jobs that fuse differently.

    The derivation is stamped with :data:`SEGMENT_CACHE_SCHEMA` so a
    schema bump orphans (rather than misreads) old on-disk entries.
    """
    token = _token(
        (
            ("schema", SEGMENT_CACHE_SCHEMA),
            ("events", events_digest),
            ("camera", spec.camera),
            ("trajectory", spec.trajectory),
            ("config", spec.config),
            ("depth_range", spec.depth_range),
            ("policy", spec.policy),
            ("backend", spec.backend),
        )
    )
    return hashlib.sha256(pickle.dumps(token, protocol=5)).hexdigest()


def payload_digest(payload: tuple) -> str:
    """Content hash of one cached segment payload ``(keyframes, profile)``.

    The disk tier's load-time integrity check: the digest is stored next
    to the payload at write time and re-verified on ``integrity=True``
    loads, so bytes damaged at rest (truncation, bit rot, a concurrent
    writer bug) are detected and evicted instead of fused.  Like
    :func:`outcome_digest` it covers the deterministic payload only —
    key frames and profile counters, not wall-clock stage timings.
    """
    keyframes, profile = payload
    token = _token((tuple(keyframes), profile.counters()))
    return hashlib.sha256(pickle.dumps(token, protocol=5)).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of the serving layer's caches.

    ``hits``/``misses``/``evictions``/``size``/``capacity`` describe the
    job-level :class:`ResultCache` (their meaning is unchanged from
    before the segment tier existed); the ``segment_*`` fields describe
    the :class:`SegmentCache` and stay zero while it is disabled.  All
    counters are observability only — none of them feed the
    deterministic :meth:`~repro.core.results.PipelineProfile.counters`
    the equivalence tests compare.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0
    #: Segment-tier probes answered from memory or disk.
    segment_hits: int = 0
    #: Segment-tier probes that found nothing in either tier.
    segment_misses: int = 0
    #: Subset of ``segment_hits`` served by the on-disk store.
    segment_disk_hits: int = 0
    #: Entries dropped from either segment tier to stay in bounds.
    segment_evictions: int = 0
    #: Live entries in the segment memory tier.
    segment_entries: int = 0
    #: Live entries in the segment disk tier.
    segment_disk_entries: int = 0

    def as_dict(self) -> dict:
        """The counters as a plain dict (JSON-friendly)."""
        return dataclasses.asdict(self)


class ResultCache:
    """Bounded LRU map from job keys to finished results.

    ``capacity == 0`` disables caching entirely (every lookup is a miss
    and nothing is stored) — the switch the determinism tests and the
    throughput bench use to compare cached and uncached serving.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0 (0 disables)")
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything (``capacity > 0``)."""
        return self.capacity > 0

    def get(self, key: str):
        """The cached result for ``key``, or ``None`` (counted) on a miss."""
        if self.enabled and key in self._entries:
            self._entries.move_to_end(key)
            self._hits += 1
            return self._entries[key]
        self._misses += 1
        return None

    def put(self, key: str, value) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        if not self.enabled:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )


class SegmentCache:
    """Tiered segment-outcome store: bytes-bounded LRU over a disk tier.

    Entries map a :func:`segment_key` to the index-free payload
    ``(keyframes, profile)`` of one completed segment.  Two tiers:

    * **memory** — an LRU of live payload objects, bounded by the
      *pickled* size of its entries (``mem_mb``); a hit costs a dict
      lookup, no deserialization.
    * **disk** — a content-addressed file per entry under
      ``cache_dir/seg-v<schema>/<key[:2]>/<key>.pkl``, written to a
      temporary sibling and atomically renamed into place
      (``os.replace``), so readers — including concurrent services
      sharing the directory — never observe a torn entry.  Bounded by
      ``disk_mb`` with oldest-first (mtime) eviction.  Disk hits
      deserialize, verify the schema stamp (and, on ``verify=True``
      loads, the stored :func:`payload_digest`), promote into the
      memory tier, and survive process restarts.

    Either tier may be disabled independently (``mem_mb=0`` /
    ``cache_dir=None``); with both off the cache is inert (``enabled``
    is False and every probe is an uncounted no-op).
    """

    def __init__(
        self,
        mem_mb: float = 0.0,
        disk_mb: float = 256.0,
        cache_dir: str | None = None,
    ):
        if mem_mb < 0:
            raise ValueError("mem_mb must be >= 0 (0 disables the memory tier)")
        if disk_mb < 0:
            raise ValueError("disk_mb must be >= 0 (0 disables the disk tier)")
        self.mem_bytes = int(mem_mb * 2**20)
        self.disk_bytes = int(disk_mb * 2**20)
        self.cache_dir = cache_dir if (cache_dir and disk_mb > 0) else None
        #: key -> (payload, pickled size); insertion order is LRU order.
        self._mem: OrderedDict[str, tuple[tuple, int]] = OrderedDict()
        self._mem_total = 0
        #: key -> (path, size); populated from disk at construction so a
        #: restarted service knows its inherited footprint.
        self._disk: dict[str, tuple[str, int]] = {}
        self._disk_total = 0
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        if self.cache_dir is not None:
            self._scan_disk()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether any tier can store anything."""
        return self.mem_bytes > 0 or self.cache_dir is not None

    def __len__(self) -> int:
        return len(self._mem)

    @property
    def disk_entries(self) -> int:
        """Entries currently indexed in the disk tier."""
        return len(self._disk)

    def _root(self) -> str:
        return os.path.join(self.cache_dir, f"seg-v{SEGMENT_CACHE_SCHEMA}")

    def _path(self, key: str) -> str:
        return os.path.join(self._root(), key[:2], f"{key}.pkl")

    def _scan_disk(self) -> None:
        """Index the inherited on-disk entries (restart survival)."""
        root = self._root()
        if not os.path.isdir(root):
            return
        found = []
        for shard in os.scandir(root):
            if not shard.is_dir():
                continue
            for entry in os.scandir(shard.path):
                if not entry.name.endswith(".pkl"):
                    continue
                stat = entry.stat()
                found.append((stat.st_mtime, entry.name[:-4], entry.path, stat.st_size))
        # Oldest first, so the LRU-ish eviction order is deterministic
        # for a fixed directory state.
        for _, key, path, size in sorted(found):
            self._disk[key] = (path, size)
            self._disk_total += size
        self._evict_disk()

    # ------------------------------------------------------------------
    def get(self, key: str, *, count_miss: bool = True, verify: bool = False):
        """The cached ``(keyframes, profile)`` payload, or ``None``.

        ``count_miss=False`` keeps an opportunistic re-probe (the
        dispatch-time check after an admission-time miss) from charging
        the miss counter twice.  ``verify=True`` re-checks the stored
        payload digest on disk loads — the serve layer passes the job's
        ``integrity`` flag through — and treats a mismatch as a miss,
        deleting the damaged entry.
        """
        if not self.enabled:
            return None
        entry = self._mem.get(key)
        if entry is not None:
            self._mem.move_to_end(key)
            self.hits += 1
            return entry[0]
        payload = self._read_disk(key, verify)
        if payload is not None:
            self.hits += 1
            self.disk_hits += 1
            return payload
        if count_miss:
            self.misses += 1
        return None

    def _read_disk(self, key: str, verify: bool):
        """Load one disk entry; damaged or mismatched entries are evicted."""
        if self.cache_dir is None or key not in self._disk:
            return None
        path = self._disk[key][0]
        try:
            with open(path, "rb") as f:
                record = pickle.load(f)
            ok = (
                isinstance(record, dict)
                and record.get("version") == SEGMENT_CACHE_SCHEMA
                and record.get("key") == key
            )
            payload = record["payload"] if ok else None
            if payload is not None and verify:
                if payload_digest(payload) != record.get("digest"):
                    payload = None
        except Exception:  # damaged bytes can raise nearly anything
            payload = None
        if payload is None:
            self._drop_disk(key)
            return None
        # Promote: a warm disk entry is about to be hot.
        self._put_mem(key, payload, self._disk[key][1])
        return payload

    def _drop_disk(self, key: str) -> None:
        path, size = self._disk.pop(key, (None, 0))
        self._disk_total -= size
        if path is not None:
            try:
                os.remove(path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def put(self, key: str, payload: tuple) -> None:
        """Store one segment payload in every enabled tier (idempotent)."""
        if not self.enabled:
            return
        blob = None
        if key not in self._mem and self.mem_bytes > 0:
            blob = pickle.dumps(payload, protocol=5)
            self._put_mem(key, payload, len(blob))
        elif key in self._mem:
            self._mem.move_to_end(key)
        if self.cache_dir is not None and key not in self._disk:
            if blob is None:
                blob = pickle.dumps(payload, protocol=5)
            self._write_disk(key, payload, blob)

    def _put_mem(self, key: str, payload: tuple, size: int) -> None:
        if self.mem_bytes <= 0:
            return
        if key in self._mem:
            self._mem.move_to_end(key)
            return
        self._mem[key] = (payload, size)
        self._mem_total += size
        while self._mem_total > self.mem_bytes and len(self._mem) > 1:
            _, (_, dropped) = self._mem.popitem(last=False)
            self._mem_total -= dropped
            self.evictions += 1

    def _write_disk(self, key: str, payload: tuple, blob: bytes) -> None:
        """Atomic write-then-rename of one content-addressed entry."""
        record = pickle.dumps(
            {
                "version": SEGMENT_CACHE_SCHEMA,
                "key": key,
                "digest": payload_digest(payload),
                "payload": payload,
            },
            protocol=5,
        )
        directory = os.path.dirname(self._path(key))
        path = self._path(key)
        tmp = f"{path}.tmp-{os.getpid()}"
        try:
            os.makedirs(directory, exist_ok=True)
            with open(tmp, "wb") as f:
                f.write(record)
            os.replace(tmp, path)
        except OSError:
            # A full or read-only disk degrades the tier, never the job.
            try:
                os.remove(tmp)
            except OSError:
                pass
            return
        self._disk[key] = (path, len(record))
        self._disk_total += len(record)
        self._evict_disk()

    def _evict_disk(self) -> None:
        """Drop oldest-written entries until the disk tier fits its bound."""
        while self._disk_total > self.disk_bytes and len(self._disk) > 1:
            key = next(iter(self._disk))
            self._drop_disk(key)
            self.evictions += 1
