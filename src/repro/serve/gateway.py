"""Async front door: sharded serving behind one asyncio gateway.

A :class:`Gateway` owns N :class:`~repro.serve.ReconstructionService`
shards and routes every request by **consistent hash on the session
id** (:class:`HashRing`): a session's jobs — and its streams, which are
pinned for their whole life — always land on the same shard, so
per-session FIFO ordering, coalescing and the per-session backpressure
bound keep exactly their single-service semantics.  Each shard runs its
(not thread-safe) service behind a dedicated single-thread executor;
the event loop delegates every call with ``run_in_executor`` and never
blocks on reconstruction work.

Above the per-shard ``refuse``/``drop-oldest`` policies sits gateway
**admission control** (:class:`AdmissionController`): a per-tenant
token bucket (rate/burst) plus a global in-flight cap, refusals
surfaced as structured 429-style :class:`GatewayRefused` errors — and,
through :class:`GatewayServer`, as actual HTTP 429 responses with a
JSON body and ``Retry-After`` hint.

:class:`GatewayServer` is a minimal stdlib HTTP/1.1 server
(``asyncio.start_server`` — the container has no aiohttp) exposing
``GET /healthz``, ``GET /metrics`` (Prometheus text, see
:mod:`repro.serve.metrics`), ``GET /status`` (JSON), ``GET /jobs/<id>``
and ``POST /jobs`` (submit a named registry sequence).  Tests drive
the same surface through :func:`http_request`, an in-process async
client over ``asyncio.open_connection``.

The scaling layer changes *where* work runs, never *what* it computes:
a gateway-routed job's :class:`~repro.core.mapping.MappingResult` is
bit-identical to a direct single-service run (pinned by the gateway leg
of the differential fuzz suite).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import TYPE_CHECKING, Callable

from repro.serve.metrics import (
    Histogram,
    format_status,
    histogram_family,
    make_family,
    render_metrics,
    service_families,
    status_snapshot,
)
from repro.serve.options import GatewayConfig, JobOptions
from repro.serve.service import (
    ReconstructionService,
    ServeError,
    ServiceStats,
    SessionBacklogFull,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import EngineSpec
    from repro.core.mapping import MappingResult
    from repro.events.containers import EventArray
    from repro.serve.session import JobStatus
    from repro.serve.stream import StreamUpdate

#: Poll interval of the gateway's async result/drain waits, seconds.
POLL_INTERVAL_S = 0.002


class GatewayRefused(ServeError):
    """A request the gateway's admission control (or a shard) refused.

    The structured 429: ``reason`` is one of ``"throttled"`` (the
    tenant's token bucket is empty), ``"overloaded"`` (the global
    in-flight cap is reached) or ``"backlogged"`` (the target shard's
    per-session queue refused the job); ``retry_after_s`` carries the
    earliest useful retry instant for throttled tenants.
    :meth:`to_payload` is the HTTP response body.
    """

    def __init__(
        self, reason: str, message: str, retry_after_s: float | None = None
    ):
        super().__init__(message)
        self.reason = reason
        self.status = 429
        self.retry_after_s = retry_after_s

    def to_payload(self) -> dict:
        """The JSON body of the 429 response."""
        payload = {
            "error": str(self),
            "reason": self.reason,
            "status": self.status,
        }
        if self.retry_after_s is not None:
            payload["retry_after_s"] = round(self.retry_after_s, 3)
        return payload


class HashRing:
    """Consistent hashing of session ids onto shard indices.

    ``virtual_nodes`` points per shard are placed on a 64-bit ring at
    ``sha256("shard-<i>#<v>")`` positions; a session maps to the first
    point clockwise of ``sha256(session)``.  SHA-256 (not Python's
    seeded ``hash``) makes the mapping a pure function of
    ``(session, shards, virtual_nodes)`` — the same session lands on
    the same shard across process restarts, which is what lets a
    restarted gateway with an equal shard count find a session's warm
    segment-cache entries on the same shard's disk tier.
    """

    def __init__(self, shards: int, virtual_nodes: int = 64):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.shards = shards
        self.virtual_nodes = virtual_nodes
        points = []
        for shard in range(shards):
            for v in range(virtual_nodes):
                points.append((self._point(f"shard-{shard}#{v}"), shard))
        points.sort()
        self._ring = [p for p, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _point(key: str) -> int:
        """The ring position of a key (first 8 bytes of its SHA-256)."""
        return int.from_bytes(
            hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
        )

    def shard_for(self, session: str) -> int:
        """The shard index owning ``session``."""
        index = bisect_right(self._ring, self._point(session))
        if index == len(self._ring):
            index = 0
        return self._owners[index]


class TokenBucket:
    """Per-tenant request throttle (rate/burst, injectable clock).

    ``rate`` tokens/second refill up to ``burst``; each admitted
    request takes one token.  ``rate == 0`` disables the bucket (every
    take succeeds).  Refill arithmetic runs on the owner's monotonic
    clock — the same seam the service's deadlines use, so tests drive
    throttling with a fake clock instead of sleeps.
    """

    def __init__(self, rate: float, burst: int, clock: Callable[[], float]):
        if rate < 0:
            raise ValueError("rate must be >= 0 (0 disables)")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)

    def try_take(self) -> float | None:
        """Take one token; ``None`` on success, else seconds until one.

        The failure value is the ``retry_after_s`` hint of the 429.
        """
        if self.rate == 0:
            return None
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return None
        return (1.0 - self._tokens) / self.rate


class AdmissionController:
    """Gateway-level admission: per-tenant fairness + a global cap.

    Layered *above* the shards' per-session queue bounds: the token
    buckets stop one tenant from monopolizing submission bandwidth,
    and the in-flight cap bounds the gateway's total outstanding work
    whatever the tenant mix.  Refusal raises :class:`GatewayRefused`;
    the caller owns the in-flight count (jobs leave it when observed
    terminal, see :meth:`Gateway._observe_status`).
    """

    def __init__(self, config: GatewayConfig, clock: Callable[[], float]):
        self._config = config
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def admit(self, session: str, inflight: int) -> None:
        """Admit one request for ``session`` or raise :class:`GatewayRefused`."""
        cap = self._config.max_inflight
        if cap and inflight >= cap:
            raise GatewayRefused(
                "overloaded",
                f"gateway at its global in-flight cap ({cap} jobs)",
                retry_after_s=POLL_INTERVAL_S,
            )
        if self._config.tenant_rate > 0:
            bucket = self._buckets.get(session)
            if bucket is None:
                bucket = self._buckets[session] = TokenBucket(
                    self._config.tenant_rate,
                    self._config.tenant_burst,
                    self._clock,
                )
            wait = bucket.try_take()
            if wait is not None:
                raise GatewayRefused(
                    "throttled",
                    f"tenant {session!r} exceeded its request rate "
                    f"({self._config.tenant_rate}/s, burst "
                    f"{self._config.tenant_burst})",
                    retry_after_s=wait,
                )


class _Shard:
    """One service shard plus its single-thread call executor.

    The service is not thread-safe; funneling every call through one
    dedicated thread serializes access per shard while different
    shards run their pumps genuinely in parallel.
    """

    def __init__(self, index: int, service: ReconstructionService):
        self.index = index
        self.service = service
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"gateway-shard-{index}"
        )

    async def call(self, fn, /, *args, **kwargs):
        """Run one service call on the shard thread; await its result."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, partial(fn, *args, **kwargs)
        )

    def close(self) -> None:
        """Join the shard thread (after the service was shut down)."""
        self._executor.shutdown(wait=True)


class GatewayStream:
    """Async client handle of one gateway-routed streaming session.

    The async twin of :class:`~repro.serve.stream.StreamingSession`,
    pinned to the shard that admitted it — every feed, poll and the
    final result run on that shard's thread, so the stream's
    incremental plan and fused map live (and stay bit-exact) exactly
    as in the single-service case.  Usable as an async context
    manager; leaving the block closes the stream.
    """

    def __init__(self, gateway: "Gateway", shard: _Shard, handle):
        self._gateway = gateway
        self._shard = shard
        self._handle = handle

    @property
    def job_id(self) -> str:
        """Service job id of the underlying streaming job."""
        return self._handle.job_id

    @property
    def session(self) -> str:
        """Tenant session the stream was opened under."""
        return self._handle.session

    @property
    def shard_index(self) -> int:
        """Index of the shard this stream is pinned to."""
        return self._shard.index

    async def feed(self, events: "EventArray") -> None:
        """Push one time-ordered event chunk (see ``StreamingSession.feed``)."""
        await self._shard.call(self._handle.feed, events)

    async def poll_updates(self) -> list["StreamUpdate"]:
        """Drain updates emitted since the previous poll."""
        return await self._shard.call(self._handle.poll_updates)

    async def close(self) -> None:
        """End the stream's input (idempotent)."""
        await self._shard.call(self._handle.close)

    async def result(self, timeout: float | None = None) -> "MappingResult":
        """Await the closed stream's final fused result."""
        return await self._gateway.result(self.job_id, timeout=timeout)

    async def status(self) -> "JobStatus":
        """Non-blocking job-status snapshot."""
        return await self._gateway.poll(self.job_id)

    async def __aenter__(self) -> "GatewayStream":
        """Enter the async context (no-op; the stream is already open)."""
        return self

    async def __aexit__(self, *exc) -> None:
        """Close the stream on context exit."""
        await self.close()


class Gateway:
    """The asyncio front door over N reconstruction-service shards.

    Lifecycle: ``await start()`` builds the shards (and their pinned
    call threads), ``await stop()`` shuts them down in order — HTTP
    callers first (:class:`GatewayServer` stops accepting before the
    gateway stops), then each shard's
    :meth:`~repro.serve.ReconstructionService.shutdown` so every
    admitted job ends terminal, then the shard threads.  Also an async
    context manager.

    All public methods are coroutines safe to call from one event
    loop; the reconstruction work itself always runs on shard threads
    and the shards' worker pools, never on the loop.
    """

    def __init__(
        self,
        config: GatewayConfig | None = None,
        *,
        clock: Callable[[], float] | None = None,
    ):
        import time

        self.config = config or GatewayConfig()
        self._clock = clock or time.perf_counter
        self._ring = HashRing(self.config.shards, self.config.virtual_nodes)
        self._admission = AdmissionController(self.config, self._clock)
        self._shards: list[_Shard] = []
        self._routes: dict[str, _Shard] = {}
        self._inflight_ids: set[str] = set()
        self._requests = {"submit": 0, "stream": 0}
        self._refusals = {"throttled": 0, "overloaded": 0, "backlogged": 0}
        self._latency = Histogram()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Gateway":
        """Build the shards; idempotent."""
        if self._started:
            return self
        for index in range(self.config.shards):
            service = ReconstructionService.from_config(self.config.service)
            self._shards.append(_Shard(index, service))
        self._started = True
        return self

    async def stop(self, wait: bool = True, timeout: float | None = None) -> None:
        """Shut every shard down; every admitted job ends terminal.

        ``wait``/``timeout`` forward to each shard's
        :meth:`~repro.serve.ReconstructionService.shutdown` — with
        ``wait=True`` open streams flush and backed-off retries run,
        with ``wait=False`` (or past ``timeout``) remaining jobs fail
        deterministically.  Shards shut down concurrently.
        """
        if not self._started:
            return
        await asyncio.gather(
            *(
                shard.call(shard.service.shutdown, wait=wait, timeout=timeout)
                for shard in self._shards
            )
        )
        for shard in self._shards:
            shard.close()
        self._started = False

    async def __aenter__(self) -> "Gateway":
        """Start the gateway on context entry."""
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        """Stop the gateway on context exit."""
        await self.stop()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_index(self, session: str) -> int:
        """The shard index the hash ring assigns to ``session``."""
        return self._ring.shard_for(session)

    def _shard(self, session: str) -> _Shard:
        if not self._started:
            raise ServeError("gateway is not started")
        return self._shards[self._ring.shard_for(session)]

    def _route(self, job_id: str) -> _Shard:
        try:
            return self._routes[job_id]
        except KeyError:
            raise KeyError(f"unknown job id {job_id!r}") from None

    def _admit(self, session: str, kind: str) -> None:
        """Run gateway admission; count the request and any refusal."""
        self._requests[kind] += 1
        try:
            self._admission.admit(session, len(self._inflight_ids))
        except GatewayRefused as refusal:
            self._refusals[refusal.reason] += 1
            raise

    def _observe_status(self, status: "JobStatus") -> None:
        """Fold one status snapshot into the gateway's observability state.

        A job observed terminal for the first time leaves the in-flight
        set (freeing global-cap room) and files its submit-to-terminal
        latency into the request histogram.
        """
        if status.done and status.job_id in self._inflight_ids:
            self._inflight_ids.discard(status.job_id)
            if status.latency_seconds is not None:
                self._latency.observe(status.latency_seconds)

    # ------------------------------------------------------------------
    # Job API
    # ------------------------------------------------------------------
    async def submit(
        self,
        events: "EventArray",
        spec: "EngineSpec",
        *,
        session: str = "default",
        options: JobOptions | None = None,
    ) -> str:
        """Admit one batch job onto the session's shard; return its id.

        Gateway admission (token bucket, global cap) runs first; the
        shard's own backpressure runs second, and its
        :class:`~repro.serve.SessionBacklogFull` refusal is re-raised
        as a structured ``backlogged`` :class:`GatewayRefused` — on
        the shard, ``drop-oldest`` eviction (which never selects a
        coalesced follower or a live stream) applies exactly as in a
        direct submission.
        """
        self._admit(session, "submit")
        shard = self._shard(session)
        try:
            job_id = await shard.call(
                shard.service.submit, events, spec,
                session=session, options=options,
            )
        except SessionBacklogFull as exc:
            self._refusals["backlogged"] += 1
            raise GatewayRefused("backlogged", str(exc)) from exc
        self._routes[job_id] = shard
        self._inflight_ids.add(job_id)
        return job_id

    async def open_stream(
        self,
        spec: "EngineSpec",
        *,
        session: str = "default",
        max_pending_chunks: int = 64,
        options: JobOptions | None = None,
    ) -> GatewayStream:
        """Open a streaming session pinned to the session's shard."""
        self._admit(session, "stream")
        shard = self._shard(session)
        try:
            handle = await shard.call(
                shard.service.open_stream, spec,
                session=session,
                max_pending_chunks=max_pending_chunks,
                options=options,
            )
        except SessionBacklogFull as exc:
            self._refusals["backlogged"] += 1
            raise GatewayRefused("backlogged", str(exc)) from exc
        self._routes[handle.job_id] = shard
        self._inflight_ids.add(handle.job_id)
        return GatewayStream(self, shard, handle)

    async def poll(self, job_id: str) -> "JobStatus":
        """Non-blocking progress snapshot of a routed job."""
        shard = self._route(job_id)
        status = await shard.call(shard.service.poll, job_id)
        self._observe_status(status)
        return status

    async def result(
        self, job_id: str, timeout: float | None = None
    ) -> "MappingResult":
        """Await a routed job's fused result (poll loop, loop never blocks).

        Polling — rather than parking the shard thread in the service's
        blocking ``result`` — keeps the shard thread available to every
        other request between pumps.  Raises
        :class:`~repro.serve.JobFailed` for failed jobs and
        ``TimeoutError`` past ``timeout`` (measured on the gateway
        clock).
        """
        shard = self._route(job_id)
        deadline = None if timeout is None else self._clock() + timeout
        while True:
            status = await shard.call(shard.service.poll, job_id)
            self._observe_status(status)
            if status.done:
                break
            if deadline is not None and self._clock() >= deadline:
                raise TimeoutError(f"job {job_id!r} not done within {timeout} s")
            await asyncio.sleep(POLL_INTERVAL_S)
        # Terminal: the blocking call returns (or raises JobFailed)
        # immediately, without occupying the shard thread in a wait.
        return await shard.call(shard.service.result, job_id)

    async def drain(self, timeout: float | None = None) -> int:
        """Drain every shard concurrently; returns total completed jobs.

        Each shard's :meth:`~repro.serve.ReconstructionService.drain`
        runs on its own thread, so N shards drain in parallel.  Routed
        jobs observed terminal settle the gateway's in-flight set and
        latency histogram.
        """
        completed = await asyncio.gather(
            *(
                shard.call(shard.service.drain, timeout=timeout)
                for shard in self._shards
            )
        )
        for job_id in list(self._inflight_ids):
            shard = self._routes.get(job_id)
            if shard is None:
                self._inflight_ids.discard(job_id)
                continue
            try:
                self._observe_status(
                    await shard.call(shard.service.poll, job_id)
                )
            except KeyError:
                # Pruned from the shard's terminal-record ring: it was
                # terminal; settle the in-flight count without a latency
                # sample.
                self._inflight_ids.discard(job_id)
        return sum(completed)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    async def stats(self) -> dict[int, ServiceStats]:
        """Per-shard :class:`~repro.serve.ServiceStats` snapshots."""
        snapshots = await asyncio.gather(
            *(shard.call(shard.service.stats) for shard in self._shards)
        )
        return {shard.index: snap for shard, snap in zip(self._shards, snapshots)}

    def gateway_families(self):
        """The gateway-level metric families (requests, refusals, latency)."""
        return [
            make_family(
                "repro_gateway_requests_total", "counter",
                "Requests received by kind (submit, stream).",
                [({"kind": kind}, count) for kind, count in self._requests.items()],
            ),
            make_family(
                "repro_gateway_refusals_total", "counter",
                "Structured 429 refusals by reason.",
                [
                    ({"reason": reason}, count)
                    for reason, count in self._refusals.items()
                ],
            ),
            make_family(
                "repro_gateway_inflight_jobs", "gauge",
                "Jobs admitted but not yet observed terminal.",
                [({}, len(self._inflight_ids))],
            ),
            make_family(
                "repro_gateway_shards", "gauge",
                "Service shards behind this gateway.",
                [({}, len(self._shards))],
            ),
            histogram_family(
                "repro_gateway_request_latency_seconds",
                "Submit-to-terminal job latency as observed by the gateway.",
                [((), self._latency)],
            ),
        ]

    async def metrics_text(self) -> str:
        """The full ``/metrics`` document (Prometheus text format)."""
        families = self.gateway_families() + service_families(await self.stats())
        return render_metrics(families)

    async def status(self) -> dict:
        """The ``/status`` JSON document: shard totals plus gateway state."""
        snap = status_snapshot(await self.stats())
        snap["gateway"] = {
            "shards": len(self._shards),
            "requests": dict(self._requests),
            "refusals": dict(self._refusals),
            "inflight_jobs": len(self._inflight_ids),
            "latency_p50_s": self._latency.quantile(0.5),
            "latency_p99_s": self._latency.quantile(0.99),
        }
        return snap


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
class GatewayServer:
    """Minimal stdlib HTTP/1.1 server over a :class:`Gateway`.

    Routes: ``GET /healthz``, ``GET /metrics`` (Prometheus text),
    ``GET /status`` (JSON), ``GET /jobs/<id>`` (status snapshot) and
    ``POST /jobs`` (submit a named registry sequence; body schema in
    ``docs/OBSERVABILITY.md``).  One request per connection
    (``Connection: close``) — the serving cost lives in the
    reconstruction work, not connection reuse, and the parser stays
    ~40 lines of stdlib.
    """

    def __init__(self, gateway: Gateway, host: str | None = None, port: int | None = None):
        self.gateway = gateway
        self.host = host if host is not None else gateway.config.host
        self.port = port if port is not None else gateway.config.port
        self._server: asyncio.base_events.Server | None = None
        self._sequences: dict[tuple[str, str], object] = {}

    async def start(self) -> "GatewayServer":
        """Bind and start serving; resolves an ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Stop accepting connections (the gateway keeps running)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "GatewayServer":
        """Start serving on context entry."""
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        """Stop serving on context exit."""
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one request: parse, dispatch, respond, close."""
        try:
            request_line = (await reader.readline()).decode("latin-1").strip()
            if not request_line:
                return
            try:
                method, path, _ = request_line.split(" ", 2)
            except ValueError:
                await self._respond(writer, 400, {"error": "malformed request line"})
                return
            headers = {}
            while True:
                line = (await reader.readline()).decode("latin-1").strip()
                if not line:
                    break
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", "0") or "0")
            if length:
                body = await reader.readexactly(length)
            status, payload, content_type = await self._dispatch(
                method, path, body
            )
            await self._respond(writer, status, payload, content_type)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, object, str]:
        """Route one parsed request to the gateway API."""
        path = path.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok", "shards": self.gateway.config.shards}, "json"
        if method == "GET" and path == "/metrics":
            return 200, await self.gateway.metrics_text(), "text"
        if method == "GET" and path == "/status":
            return 200, await self.gateway.status(), "json"
        if method == "GET" and path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            try:
                status = await self.gateway.poll(job_id)
            except KeyError:
                return 404, {"error": f"unknown job id {job_id!r}"}, "json"
            return 200, self._status_payload(status), "json"
        if method == "POST" and path == "/jobs":
            return await self._submit(body)
        return 404, {"error": f"no route {method} {path}"}, "json"

    @staticmethod
    def _status_payload(status: "JobStatus") -> dict:
        """JSON form of a :class:`~repro.serve.session.JobStatus`."""
        return {
            "job_id": status.job_id,
            "session": status.session,
            "state": status.state.value,
            "done": status.done,
            "segments_done": status.segments_done,
            "segments_total": status.segments_total,
            "cache_hit": status.cache_hit,
            "coalesced": status.coalesced,
            "segments_retried": status.segments_retried,
            "missing_segments": list(status.missing_segments),
            "latency_seconds": status.latency_seconds,
            "error": status.error,
        }

    def _load_sequence(self, name: str, quality: str):
        """Load (and memoize) a registry sequence for HTTP submissions."""
        key = (name, quality)
        if key not in self._sequences:
            from repro.events.datasets import load_sequence

            self._sequences[key] = load_sequence(name, quality=quality)
        return self._sequences[key]

    async def _submit(self, body: bytes) -> tuple[int, object, str]:
        """``POST /jobs``: build a job from a named sequence and submit it."""
        from repro.core import EMVSConfig, EngineSpec

        try:
            request = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            return 400, {"error": "body must be a JSON object"}, "json"
        if not isinstance(request, dict) or "sequence" not in request:
            return 400, {"error": "missing required field 'sequence'"}, "json"
        name = request["sequence"]
        session = request.get("session", name)
        try:
            loop = asyncio.get_running_loop()
            seq = await loop.run_in_executor(
                None, self._load_sequence, name, request.get("quality", "fast")
            )
        except KeyError as exc:
            return 400, {"error": str(exc.args[0])}, "json"
        events = seq.events
        t_start = request.get("t_start")
        t_end = request.get("t_end")
        if t_start is not None or t_end is not None:
            events = events.time_slice(
                events.t_start if t_start is None else float(t_start),
                events.t_end if t_end is None else float(t_end),
            )
        try:
            config = EMVSConfig(
                n_depth_planes=int(request.get("planes", 48)),
                frame_size=int(request.get("frame_size", 1024)),
                keyframe_distance=float(
                    request.get("keyframe_distance", seq.keyframe_distance)
                ),
            )
            spec = EngineSpec(
                seq.camera,
                seq.trajectory,
                config,
                depth_range=seq.depth_range,
                backend=request.get("backend", "numpy-batch"),
            )
        except (TypeError, ValueError, KeyError) as exc:
            return 400, {"error": f"invalid job parameters: {exc}"}, "json"
        try:
            job_id = await self.gateway.submit(events, spec, session=session)
        except GatewayRefused as refusal:
            return refusal.status, refusal.to_payload(), "json"
        return 202, {
            "job_id": job_id,
            "session": session,
            "shard": self.gateway.shard_index(session),
        }, "json"

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: object,
        content_type: str = "json",
    ) -> None:
        """Write one HTTP/1.1 response and flush."""
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 429: "Too Many Requests"}
        if content_type == "text":
            body = str(payload).encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            ctype = "application/json"
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if status == 429 and isinstance(payload, dict) and "retry_after_s" in payload:
            head += f"Retry-After: {max(1, round(payload['retry_after_s']))}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


async def http_request(
    host: str, port: int, method: str, path: str, body: dict | None = None
) -> tuple[int, bytes]:
    """In-process async HTTP client (tests and the CLI's self-scrape).

    Speaks exactly the subset :class:`GatewayServer` serves — one
    request per connection, optional JSON body — over
    ``asyncio.open_connection``; returns ``(status_code, body_bytes)``.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        status_line = (await reader.readline()).decode("latin-1")
        status = int(status_line.split(" ", 2)[1])
        length = None
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            key, _, value = line.partition(":")
            if key.strip().lower() == "content-length":
                length = int(value.strip())
        data = await (
            reader.readexactly(length) if length is not None else reader.read()
        )
        return status, data
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover - platform dependent
            pass


def format_gateway_status(stats_by_shard: dict[int, ServiceStats]) -> str:
    """Human status block of a sharded run (the CLI's summary printer)."""
    return format_status(stats_by_shard)
