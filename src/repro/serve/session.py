"""Sessions and jobs: the bookkeeping units of the reconstruction service.

A *session* is one logical client stream source (a robot, a dataset
replay, a tenant).  Sessions are the unit of fairness — the scheduler
round-robins segment dispatch across them — and the unit of
backpressure: each session holds a bounded queue of admitted jobs, and
submissions beyond the bound are refused or displace the oldest queued
job, per the service's overflow policy.

A *job* is one independent event-stream reconstruction request.  A
*batch* job is pre-planned into key-frame segments at admission
(:func:`repro.core.engine.plan_segments`); a *streaming* job (opened via
``open_stream``) grows its plan incrementally as chunks arrive, carrying
its live state in a :class:`~repro.serve.stream.StreamState`.  Either
way the scheduler shards the planned segments onto the shared worker
pool, and the service fuses the outcomes in segment order.
"""

from __future__ import annotations

import enum
import itertools
import time
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.core.engine import EngineSpec, SegmentPlan
from repro.core.mapping import MappingResult, SegmentOutcome
from repro.events.containers import EventArray
from repro.serve.stream import StreamState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.faults import FaultPlan
    from repro.serve.retry import RetryPolicy


class JobState(enum.Enum):
    """Lifecycle of a submitted job.

    ``QUEUED -> RUNNING -> DONE | FAILED`` is the normal path; ``DONE``
    is reached directly on a cache hit.  ``DROPPED`` marks queued jobs
    displaced by the ``drop-oldest`` overflow policy (refused jobs are
    never admitted, so they have no job record — the submission raises).
    ``PARTIAL`` is graceful degradation: an ``allow_partial`` job whose
    deadline expired or whose retries exhausted still terminates with a
    usable result — the fused map of its completed key frames plus a
    missing-segment manifest — instead of failing outright.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    PARTIAL = "partial"
    FAILED = "failed"
    DROPPED = "dropped"


#: States a job can never leave.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.PARTIAL, JobState.FAILED, JobState.DROPPED}
)

_job_ids = itertools.count(1)


@dataclass(eq=False)
class Job:
    """One admitted reconstruction request and its progress.

    Identity semantics (``eq=False``): a job is its record, not its
    field values — two submissions of the same stream are distinct jobs.
    """

    job_id: str
    session: str
    spec: EngineSpec
    #: The submitted stream; released (set to None) once the job is
    #: terminal — segments are sliced from it only at dispatch time.
    events: EventArray | None
    plans: tuple[SegmentPlan, ...]
    dropped_tail: int
    voxel_size: float
    min_observations: int
    cache_key: str | None
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.perf_counter)
    finished_at: float | None = None
    cache_hit: bool = False
    error: str | None = None
    result: MappingResult | None = None
    #: Index of the next segment to dispatch (cursor into ``plans``).
    next_segment: int = 0
    #: Segment indices lost to a pool break, to re-dispatch before the
    #: cursor advances (already-completed segments are not recomputed).
    requeued: list[int] = field(default_factory=list)
    #: Completed segment outcomes, keyed by segment index.
    outcomes: dict[int, SegmentOutcome] = field(default_factory=dict)
    #: Job id of the in-flight leader this job coalesced onto, if any.
    coalesced_with: str | None = None
    #: Identical jobs admitted while this one was in flight; they settle
    #: (result or error) when this job reaches a terminal state.
    followers: list["Job"] = field(default_factory=list)
    #: Live state of a streaming job (``None`` for batch jobs): the
    #: incremental planner, the bounded chunk buffer, per-segment event
    #: slices and the incrementally fused map.
    stream: StreamState | None = None
    #: Retry budget for failed segment attempts (``None`` = fail fast).
    retry: "RetryPolicy | None" = None
    #: Whether exhausted retries / deadlines degrade the job to a
    #: ``PARTIAL`` result instead of failing it.
    allow_partial: bool = False
    #: Wall-clock budget of the whole job; for streams the clock starts
    #: at ``close()`` (an open stream can always grow).
    deadline_s: float | None = None
    #: Absolute (service-clock) expiry instant, once armed.
    deadline_at: float | None = None
    #: Per-attempt budget of a single segment on the pool.
    segment_deadline_s: float | None = None
    #: Deterministic fault schedule injected into this job's segments.
    fault_plan: "FaultPlan | None" = None
    #: Whether workers digest their outcomes for merge-time verification.
    integrity: bool = False
    #: Dispatch epoch per segment index — bumped on every dispatch (and
    #: on abandonment), so a stale attempt's late result is discarded.
    attempts: dict[int, int] = field(default_factory=dict)
    #: Failed attempts per segment index (the retry budget's meter).
    failures: dict[int, int] = field(default_factory=dict)
    #: Segment attempts this job re-dispatched (retries granted).
    retries: int = 0
    #: Backoff queue: ``(eligible_at, segment_index)`` pairs released
    #: into ``requeued`` once the service clock passes ``eligible_at``.
    retry_backlog: list[tuple[float, int]] = field(default_factory=list)
    #: Segments abandoned under ``allow_partial`` (the missing-segment
    #: manifest of a ``PARTIAL`` result).
    missing: set[int] = field(default_factory=set)
    #: Full traceback of the failure that terminated the job, if any.
    traceback: str | None = None
    #: This job's cache mode (``"on"`` / ``"off"`` / ``"refresh"``, see
    #: :data:`repro.serve.options.CACHE_MODES`).
    cache_mode: str = "on"
    #: Segment-cache key per segment index, computed at admission (batch
    #: jobs) or as segments are cut (streams); empty when the segment
    #: cache is disabled or the job's cache mode is ``"off"``.
    segment_keys: dict[int, str] = field(default_factory=dict)
    #: Segments served from the segment cache (admission, stream cut, or
    #: dispatch-time probe) — they never touched the pool.
    segments_cached: int = 0

    @property
    def n_segments(self) -> int:
        """Segments planned so far (grows while a stream is open)."""
        return len(self.plans)

    @property
    def segments_done(self) -> int:
        """Segments whose outcome has landed."""
        return len(self.outcomes)

    @property
    def dispatch_exhausted(self) -> bool:
        """All *currently planned* segments dispatched (not completed).

        A streaming job whose planned segments are all on the pool is
        exhausted *for now*; absorbing more chunks re-arms it.
        """
        return not self.requeued and self.next_segment >= self.n_segments

    @property
    def complete(self) -> bool:
        """Every segment accounted for (and, for streams, no more can come).

        "Accounted for" means the outcome landed *or* the segment was
        abandoned into the ``missing`` manifest — an ``allow_partial``
        job is complete (and finalizes ``PARTIAL``) once nothing else
        can arrive.
        """
        if self.stream is not None and not self.stream.flushed:
            return False
        return self.segments_done + len(self.missing) >= self.n_segments

    def take_next_index(self) -> int | None:
        """Claim the next segment index that actually needs dispatching.

        Drains the recovery/retry requeue first, then advances the plan
        cursor — skipping, in both sources, segments whose outcome
        already landed (e.g. served from the segment cache after the
        index was queued) or that were abandoned into ``missing``.
        Returns ``None`` when nothing currently needs the pool; the
        cursor state is consumed either way, so callers must dispatch
        (or account) a returned index.
        """
        while self.requeued:
            index = self.requeued.pop(0)
            if index not in self.outcomes and index not in self.missing:
                return index
        while self.next_segment < self.n_segments:
            index = self.next_segment
            self.next_segment += 1
            if index not in self.outcomes and index not in self.missing:
                return index
        return None

    @property
    def latency_seconds(self) -> float | None:
        """Submit-to-terminal latency, or ``None`` while in flight."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def finish(self, state: JobState, at: float | None = None) -> None:
        """Move to a terminal state and release the input event buffers.

        The raw stream is only needed to slice segments at dispatch
        time; terminal jobs keep their (fused) result, not the input
        events — a long-lived service must not pin every stream it
        ever served.  Streaming jobs likewise drop their buffered
        chunks and undispatched segment slices (un-polled updates and
        the fused map survive for the client), and their ``open`` flag
        flips off — a terminal stream accepts no more feeds, and its
        result must be claimable without a prior explicit ``close()``
        (a stream whose segments all failed would otherwise wait on
        updates that can never arrive).

        ``at`` is the terminal instant on the owning service's clock;
        the service always passes its injected ``clock`` reading so
        ``latency_seconds`` is measured on the same (fake-able)
        timeline as deadlines and backoff — never on the host clock.
        """
        self.state = state
        self.finished_at = time.perf_counter() if at is None else at
        self.events = None
        self.retry_backlog.clear()
        if self.stream is not None:
            self.stream.open = False
            self.stream.pending_chunks.clear()
            self.stream.segment_events.clear()
            self.stream.feed_times.clear()


def new_job_id(session: str) -> str:
    """Monotonic, human-greppable job identifiers (``job-<n>@<session>``)."""
    return f"job-{next(_job_ids)}@{session}"


@dataclass(frozen=True)
class JobStatus:
    """Immutable progress snapshot returned by ``ReconstructionService.poll``."""

    job_id: str
    session: str
    state: JobState
    segments_total: int
    segments_done: int
    cache_hit: bool
    coalesced: bool
    error: str | None
    latency_seconds: float | None
    #: Abandoned segment indices of a ``PARTIAL`` (or degrading) job.
    missing_segments: tuple[int, ...] = ()
    #: Segment attempts re-dispatched by the job's retry policy so far.
    segments_retried: int = 0
    #: Full culprit traceback of a failed job, when one was captured.
    traceback: str | None = None

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in TERMINAL_STATES


class Session:
    """One client's bounded job queue plus fairness accounting.

    ``queue_limit`` bounds the number of *active* (queued or running)
    jobs the session may hold; admission beyond it is the service's
    overflow decision, not the session's.  Segment dispatch within a
    session is strictly FIFO over its jobs — a session's second job never
    overtakes its first — while fairness *across* sessions is the
    scheduler's round-robin.
    """

    def __init__(self, name: str, queue_limit: int):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.name = name
        self.queue_limit = queue_limit
        self.jobs: list[Job] = []
        self.segments_dispatched = 0

    # ------------------------------------------------------------------
    @property
    def active_jobs(self) -> list[Job]:
        """Jobs admitted but not yet terminal, in submission order."""
        return [job for job in self.jobs if job.state not in TERMINAL_STATES]

    @property
    def pending_segments(self) -> int:
        """Planned-but-unlanded segments across the session's active jobs.

        The session's queue depth: undispatched plan tail plus
        recovery/retry requeues plus backed-off retries.  Coalesced
        followers contribute nothing (they ride on their leader), so
        the depth measures genuine pool demand — the number exported
        per session by ``/metrics`` (``repro_serve_queue_depth``).
        """
        return sum(
            (job.n_segments - job.next_segment)
            + len(job.requeued)
            + len(job.retry_backlog)
            for job in self.active_jobs
            if job.coalesced_with is None
        )

    @property
    def backlogged(self) -> bool:
        """Whether the *compute* backlog reached the queue bound.

        Coalesced followers ride on their leader's segments and consume
        no pool slots, so they are excluded — the bound protects compute
        capacity, and duplicates of admitted work must not crowd out
        genuinely new jobs.
        """
        active_compute = sum(
            1 for job in self.active_jobs if job.coalesced_with is None
        )
        return active_compute >= self.queue_limit

    def oldest_queued(self) -> Job | None:
        """The drop-oldest victim: first job with no segment dispatched yet.

        Jobs that other submissions coalesced onto are never victims —
        dropping them would fail every follower to admit one newcomer.
        Coalesced *followers* are never victims either: they consume no
        pool slots (they ride on their leader), so evicting one frees
        no compute — it would fail a request for nothing.  The cursor
        test alone does not exclude them: a follower of an empty-plan
        leader has ``next_segment == 0 == n_segments``, so the guard
        must be explicit.  Streaming jobs are never victims: a live
        stream handle must not be killed to admit a batch job (streams
        shed load at chunk granularity instead, via their bounded chunk
        buffer).
        """
        for job in self.jobs:
            if (
                job.state is JobState.QUEUED
                and job.next_segment == 0
                and not job.followers
                and job.coalesced_with is None
                and job.stream is None
            ):
                return job
        return None

    def add(self, job: Job) -> None:
        """Append an admitted job to the session's FIFO."""
        self.jobs.append(job)

    def next_dispatch(self) -> Job | None:
        """The FIFO-first active job that still has segments to dispatch.

        A fully-dispatched but still-running job is skipped rather than
        waited on, so a session with spare queue depth keeps the pool
        busy; outcome ordering is restored at fusion time per job.
        """
        for job in self.jobs:
            if job.state not in TERMINAL_STATES and not job.dispatch_exhausted:
                return job
        return None

    @property
    def has_pending_dispatch(self) -> bool:
        """Whether any job still has a segment to dispatch."""
        return self.next_dispatch() is not None
