"""Deterministic fault injection at the ``run_segment_task`` seam.

A production serve stack earns its robustness claims only if every
failure mode can be *reproduced on demand*: a transient worker
exception, a worker that fails the same segment forever, a hung worker,
a slow segment that trips a deadline, a hard process crash, a corrupted
result payload.  This module provides exactly that — a seedable
:class:`FaultPlan` whose :meth:`~FaultPlan.directive` is a pure function
of ``(plan, segment index, attempt number)``, so a chaos test or bench
replays the identical fault schedule on every run.

Injection happens in :func:`run_guarded_segment`, the thin wrapper the
:class:`~repro.serve.service.ReconstructionService` dispatches instead
of a bare :func:`~repro.core.mapping.run_segment_task`.  The wrapper is
module-level and every directive is a frozen dataclass, so process pools
pickle the whole unit; the service computes directives host-side, which
keeps workers free of fault-plan logic.

Fault taxonomy (:class:`FaultKind`):

========== =============================================================
kind       worker behaviour on a faulted attempt
========== =============================================================
TRANSIENT  raise :class:`FaultInjected`; later attempts succeed
PERSISTENT raise :class:`FaultInjected` on *every* attempt
HANG       block on a host-released gate (process workers fall back to a
           bounded ``delay_s`` sleep), then run normally — deadlines and
           the watchdog are what turn a hang into an outcome
SLOW       sleep ``delay_s`` first, then run normally (trips per-segment
           deadlines without failing)
CRASH      kill the worker process (``os._exit``) — only when the
           directive is *hard* (process pools); otherwise downgraded to
           a raised :class:`FaultInjected`
CORRUPT    run normally, then tamper the returned payload *after* the
           integrity digest was computed — detectable at merge time
========== =============================================================
"""

from __future__ import annotations

import copy
import enum
import itertools
import os
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.mapping import SegmentOutcome, SegmentTask, run_segment_task
from repro.serve.cache import outcome_digest


class FaultKind(enum.Enum):
    """The injectable failure modes (see the module docs for semantics)."""

    TRANSIENT = "transient"
    PERSISTENT = "persistent"
    HANG = "hang"
    SLOW = "slow"
    CRASH = "crash"
    CORRUPT = "corrupt"


class FaultInjected(RuntimeError):
    """The exception a faulted segment attempt raises."""


@dataclass(frozen=True)
class FaultDirective:
    """One resolved injection decision for one segment attempt.

    Computed host-side by :meth:`FaultPlan.directive` and shipped to the
    worker inside the :func:`run_guarded_segment` call; picklable.
    """

    #: The failure mode to inject.
    kind: FaultKind
    #: Segment the directive targets (attribution in error messages).
    index: int
    #: Zero-based attempt number the directive was computed for.
    attempt: int
    #: Sleep bound: SLOW's delay, and HANG's fallback when the gate is
    #: not visible (process workers).
    delay_s: float = 0.0
    #: Whether a CRASH may actually kill the worker process.  The
    #: service sets this only for process pools; on threads or inline a
    #: hard exit would kill the host, so the crash degrades to a raise.
    hard: bool = False
    #: Host-released hang gate id (thread pools), ``None`` otherwise.
    gate_id: str | None = None


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seedable schedule of segment faults.

    ``directive(index, attempt)`` is a pure function: a fresh
    ``numpy`` generator is seeded from ``(seed, index)`` on every call,
    so the schedule depends only on the plan's fields — never on call
    order, worker count or wall clock.  Two runs with the same plan see
    the same faults on the same segments.

    Parameters
    ----------
    kind:
        The failure mode every faulted attempt injects.
    seed:
        Root of the per-segment eligibility draw.
    rate:
        Probability (per segment) that the segment is faulted at all.
        ``1.0`` faults every eligible segment.
    targets:
        Explicit segment indices to fault; empty means "all segments
        are eligible" (subject to ``rate``).
    max_failures:
        Faulted attempts per targeted segment before it runs clean —
        the transient-vs-persistent dial (PERSISTENT ignores it).
    delay_s:
        SLOW's sleep, and HANG's bounded fallback sleep on process
        workers (where the host's gate object is not visible).
    """

    kind: FaultKind
    seed: int = 0
    rate: float = 1.0
    targets: tuple[int, ...] = ()
    max_failures: int = 1
    delay_s: float = 0.05

    def __post_init__(self):
        """Validate the schedule parameters."""
        if not isinstance(self.kind, FaultKind):
            raise TypeError("kind must be a FaultKind")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def targeted(self, index: int) -> bool:
        """Whether segment ``index`` is faulted at all under this plan."""
        if self.targets and index not in self.targets:
            return False
        if self.rate >= 1.0:
            return True
        rng = np.random.default_rng([self.seed, index])
        return bool(rng.random() < self.rate)

    def directive(self, index: int, attempt: int) -> FaultDirective | None:
        """The injection decision for ``(segment, attempt)``, or ``None``.

        ``attempt`` is zero-based (first try = 0).  Non-PERSISTENT kinds
        stop faulting once ``attempt >= max_failures``, which is what
        lets a retry heal the segment.
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        if not self.targeted(index):
            return None
        if self.kind is not FaultKind.PERSISTENT and attempt >= self.max_failures:
            return None
        return FaultDirective(
            kind=self.kind, index=index, attempt=attempt, delay_s=self.delay_s
        )


# ----------------------------------------------------------------------
# Hang gates — host-released events the HANG fault blocks on
# ----------------------------------------------------------------------
#: Registry of live hang gates.  Thread workers share the host's memory
#: and block on the Event; process workers never see it and fall back to
#: the directive's bounded ``delay_s`` sleep.
_HANG_GATES: dict[str, threading.Event] = {}
_gate_ids = itertools.count(1)


def new_hang_gate() -> str:
    """Register a fresh hang gate; returns its id."""
    gate_id = f"gate-{next(_gate_ids)}"
    _HANG_GATES[gate_id] = threading.Event()
    return gate_id


def release_hang_gate(gate_id: str) -> None:
    """Unblock (and forget) one hang gate; unknown ids are a no-op."""
    gate = _HANG_GATES.pop(gate_id, None)
    if gate is not None:
        gate.set()


def release_all_hang_gates() -> None:
    """Unblock every registered gate (service shutdown / test teardown)."""
    for gate_id in list(_HANG_GATES):
        release_hang_gate(gate_id)


# ----------------------------------------------------------------------
# The guarded worker entry point
# ----------------------------------------------------------------------
def _tamper(outcome: SegmentOutcome) -> SegmentOutcome:
    """Deterministically corrupt a (deep-copied) segment outcome."""
    index, keyframes, profile = copy.deepcopy(outcome)
    if keyframes:
        depth = keyframes[0].depth_map.depth
        # Flip the payload without touching NaN structure: a real bit
        # rot would not be so polite, but the digest must catch either.
        depth[np.isfinite(depth)] += 1.0
    profile.votes_cast += 1
    return index, keyframes, profile


def _apply_prework(directive: FaultDirective) -> None:
    """Execute a directive's pre-compute behaviour (raise/sleep/block/exit)."""
    kind = directive.kind
    if kind in (FaultKind.TRANSIENT, FaultKind.PERSISTENT):
        raise FaultInjected(
            f"injected {kind.value} fault on segment {directive.index} "
            f"(attempt {directive.attempt})"
        )
    if kind is FaultKind.CRASH:
        if directive.hard:
            os._exit(3)
        raise FaultInjected(
            f"injected crash fault on segment {directive.index} "
            f"(attempt {directive.attempt}; soft — non-process executor)"
        )
    if kind is FaultKind.SLOW:
        time.sleep(directive.delay_s)
        return
    if kind is FaultKind.HANG:
        gate = _HANG_GATES.get(directive.gate_id) if directive.gate_id else None
        if gate is not None:
            gate.wait()
        else:
            # Process worker: the host's gate is invisible, a bounded
            # sleep stands in for the hang (the watchdog kills the pool
            # long before this elapses in deadline scenarios).
            time.sleep(directive.delay_s)


def run_guarded_segment(
    task: SegmentTask,
    directive: FaultDirective | None = None,
    with_digest: bool = False,
) -> tuple[SegmentOutcome, str | None]:
    """Run one segment with optional fault injection and integrity digest.

    The worker entry point the service dispatches: identical to
    :func:`~repro.core.mapping.run_segment_task` when ``directive`` is
    ``None``, so the fault-free path stays bit-for-bit the orchestrator
    path.  With ``with_digest`` the outcome's content digest is computed
    *before* any CORRUPT tampering — exactly the window a real
    serialization or transport corruption occupies — so the service's
    merge-time verification can detect and attribute the damage.
    """
    if directive is not None:
        _apply_prework(directive)
    outcome = run_segment_task(task)
    digest = outcome_digest(outcome) if with_digest else None
    if directive is not None and directive.kind is FaultKind.CORRUPT:
        outcome = _tamper(outcome)
    return outcome, digest
