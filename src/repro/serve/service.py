"""The multi-session reconstruction service.

:class:`ReconstructionService` accepts many independent event-stream
jobs (``submit``), shards each job's pre-planned key-frame segments onto
one shared bounded worker pool with fair round-robin scheduling across
sessions, and fuses per-segment outcomes into the same
:class:`~repro.core.mapping.MappingResult` a direct
:class:`~repro.core.mapping.MappingOrchestrator` run would produce —
bit-identically, because both layers execute the *same*
:func:`~repro.core.mapping.run_segment_task` /
:func:`~repro.core.mapping.merge_outcomes` /
:func:`~repro.core.mapping.fuse_keyframes` path.

Semantics in one breath:

* **admission** — ``submit`` pre-plans the stream (cheap pose-only
  pass), consults the LRU result cache, and enforces per-session
  backpressure: a session at its queue bound either refuses the
  submission (:class:`SessionBacklogFull`) or drops its oldest
  still-queued job, per ``overflow``; both outcomes are recorded in the
  service's aggregate :class:`~repro.core.results.PipelineProfile`
  (``jobs_refused`` / ``jobs_dropped``).
* **execution** — a cooperative pump: ``poll``/``result``/``drain``
  collect finished segment futures and dispatch new ones whenever pool
  slots free up.  The pump runs on the caller's thread; worker
  parallelism comes from the pool.
* **failure** — a worker exception mid-segment fails *that job* (state
  ``FAILED``, error surfaced by ``result``), cancels its undispatched
  segments, and leaves every other job and the pool serving.  A *hard*
  crash that breaks a process pool cannot be attributed while several
  futures fly, so the pool is rebuilt, lost segments requeue, and
  dispatch turns serial until the pool proves healthy — a job that
  breaks the pool while flying alone is the proven culprit and fails.
* **caching** — results are cached under a content hash of (events,
  camera, trajectory, config, policy, backend, fuse parameters); a
  repeated submission returns the fused map without recompute.  An
  identical job submitted while its twin is still *in flight* coalesces
  onto it (no duplicate compute, both requests settle when the leader
  finishes) — burst-duplicate traffic costs one reconstruction, not N.
* **streaming** — ``open_stream`` admits a job whose events arrive in
  chunks (:class:`~repro.serve.stream.StreamingSession`): an
  incremental pose-only planner cuts key-frame segments as boundaries
  are crossed, each dispatches onto the same pool (interleaving fairly
  with batch jobs), and every finalized key frame emits a
  :class:`~repro.serve.stream.StreamUpdate` with an incrementally
  fused map snapshot.  The closed stream's final result is
  bit-identical to a one-shot ``submit`` of the concatenated chunks.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass

from repro.core.engine import EngineSpec
from repro.core.mapping import (
    MappingResult,
    default_voxel_size,
    fuse_keyframes,
    merge_outcomes,
    run_segment_task,
)
from repro.core.results import PipelineProfile
from repro.events.containers import EventArray
from repro.serve.cache import CacheStats, ResultCache, job_key
from repro.serve.scheduler import RoundRobinScheduler
from repro.serve.session import (
    TERMINAL_STATES,
    Job,
    JobState,
    JobStatus,
    Session,
    new_job_id,
)
from repro.serve.stream import StreamingSession, StreamState, StreamUpdate

#: Supported overflow policies for a full session queue.
OVERFLOW_POLICIES = ("refuse", "drop-oldest")

#: Successful segment completions required to leave serial probation
#: after a pool break (see ``ReconstructionService._collect_done``).
PROBATION_SUCCESSES = 3


class ServeError(RuntimeError):
    """Base class of service-level failures."""


class SessionBacklogFull(ServeError):
    """A submission was refused: the session's bounded queue is full."""


class StreamBacklogFull(SessionBacklogFull):
    """A chunk was refused: the stream's bounded chunk buffer is full."""


class JobFailed(ServeError):
    """``result`` was asked for a job that failed or was dropped."""


class _InlineExecutor(Executor):
    """Run tasks synchronously on the dispatching thread.

    The zero-dependency serial substrate (``workers=1`` default): no
    pool processes to spawn, identical scheduling decisions, and the
    exact single-engine execution path — useful for tests and for hosts
    where one core is all there is.
    """

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Run the task now; return an already-settled future."""
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except Exception as exc:  # surfaced via future.exception();
            # KeyboardInterrupt/SystemExit propagate — a Ctrl-C must
            # stop the pump, not fail one job and keep dispatching.
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """Nothing to shut down: no threads, no processes."""
        pass


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate service counters (admission, outcomes, cache, streaming)."""

    jobs_submitted: int
    jobs_done: int
    jobs_failed: int
    jobs_refused: int
    jobs_dropped: int
    jobs_coalesced: int
    streams_opened: int
    updates_emitted: int
    chunks_refused: int
    chunks_dropped: int
    cache: CacheStats
    segments_dispatched: dict[str, int]
    profile: PipelineProfile


class ReconstructionService:
    """Serve many concurrent reconstruction jobs over one worker pool.

    Parameters
    ----------
    workers:
        Shared pool width.  ``None`` uses the machine's CPU count.
    executor:
        ``"process"``, ``"thread"``, ``"inline"`` or ``None`` to choose
        automatically: inline for one worker, processes otherwise
        (threads suit the in-process hardware model and test doubles).
    queue_limit:
        Per-session bound on active (queued + running) jobs.
    cache_size:
        LRU result-cache capacity in entries; ``0`` disables caching.
    retain_jobs:
        How many *terminal* (done/failed/dropped) job records to keep
        for late ``poll``/``result`` calls; the oldest are evicted
        beyond this, so a long-lived service's bookkeeping stays
        bounded (active jobs are never evicted).
    overflow:
        ``"refuse"`` (submission raises :class:`SessionBacklogFull`) or
        ``"drop-oldest"`` (the session's oldest undispatched job is
        dropped to admit the new one; with nothing droppable the
        submission is refused).  Either way the outcome is recorded in
        the aggregate profile.

    Examples
    --------
    Batch jobs (``submit``/``result``) and a streaming session
    (``open_stream``) sharing one pool::

        from repro.core import EMVSConfig, EngineSpec
        from repro.events.datasets import load_sequence
        from repro.serve import ReconstructionService

        seq = load_sequence("slider_long", quality="fast")
        spec = EngineSpec(
            seq.camera, seq.trajectory,
            EMVSConfig(n_depth_planes=48,
                       keyframe_distance=seq.keyframe_distance),
            depth_range=seq.depth_range, backend="numpy-batch",
        )
        with ReconstructionService(workers=2, executor="thread") as svc:
            job = svc.submit(seq.events, spec, session="replay")
            result = svc.result(job)          # fused MappingResult
            stream = svc.open_stream(spec, session="live")
            stream.feed(seq.events); stream.close()
            assert (stream.result().profile.counters()
                    == result.profile.counters())
    """

    def __init__(
        self,
        workers: int | None = None,
        executor: str | None = None,
        queue_limit: int = 8,
        cache_size: int = 32,
        overflow: str = "refuse",
        retain_jobs: int = 256,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for auto)")
        if retain_jobs < 1:
            raise ValueError("retain_jobs must be >= 1")
        if executor not in (None, "process", "thread", "inline"):
            raise ValueError("executor must be 'process', 'thread', 'inline' or None")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, got {overflow!r}"
            )
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.executor = executor or ("inline" if self.workers == 1 else "process")
        self.overflow = overflow
        self.retain_jobs = retain_jobs
        self.cache = ResultCache(cache_size)
        self.profile = PipelineProfile()
        self._scheduler = RoundRobinScheduler(queue_limit)
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[Future, Job] = {}
        #: cache key -> in-flight job computing it (coalescing target).
        self._leaders: dict[str, Job] = {}
        self._pool: Executor | None = None
        self._closed = False
        #: Remaining successful collections before parallel dispatch
        #: resumes after a pool break (0 = normal operation).
        self._probation = 0
        #: Active streaming jobs, pumped by ``_absorb_streams``.
        self._streams: list[Job] = []
        self._jobs_submitted = 0
        self._jobs_done = 0
        self._jobs_failed = 0
        self._jobs_coalesced = 0
        self._streams_opened = 0
        self._updates_emitted = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ReconstructionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down; queued work is abandoned."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _make_pool(self) -> Executor:
        if self.executor == "inline":
            return _InlineExecutor()
        if self.executor == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(max_workers=self.workers)

    @property
    def pool(self) -> Executor:
        """The lazily created executor (rebuilt after a pool break)."""
        if self._closed:
            raise ServeError("service is closed")
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        events: EventArray,
        spec: EngineSpec,
        *,
        session: str = "default",
        voxel_size: float | None = None,
        min_observations: int = 1,
    ) -> str:
        """Admit one reconstruction job; returns its job id.

        Admission is cheap (segment planning is a pose-only pass) and
        never executes the hot path; call :meth:`poll` / :meth:`result` /
        :meth:`drain` to make progress.  Raises
        :class:`SessionBacklogFull` when backpressure refuses the job.
        """
        if self._closed:
            raise ServeError("service is closed")
        self._prune_terminal()
        if not isinstance(spec, EngineSpec):
            raise TypeError("submit() takes an EngineSpec (see EngineSpec.build)")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if voxel_size is None:
            voxel_size = default_voxel_size(spec.depth_range)
        if voxel_size <= 0:
            raise ValueError("voxel_size must be positive")

        key = None
        if self.cache.enabled:
            key = job_key(spec, events, voxel_size, min_observations)
            leader = self._leaders.get(key)
            if leader is not None and leader.state not in TERMINAL_STATES:
                # Identical job already in flight: coalesce instead of
                # recomputing (checked before the cache so a burst does
                # not count one miss per duplicate).  Coalesced jobs
                # consume no pool slots, so they bypass the
                # compute-protecting backpressure bound and are excluded
                # from its count (see Session.backlogged).
                job = Job(
                    job_id=new_job_id(session),
                    session=session,
                    spec=spec,
                    events=events,
                    plans=leader.plans,
                    dropped_tail=leader.dropped_tail,
                    voxel_size=voxel_size,
                    min_observations=min_observations,
                    cache_key=key,
                    coalesced_with=leader.job_id,
                )
                job.next_segment = job.n_segments  # nothing to dispatch
                leader.followers.append(job)
                self._jobs_submitted += 1
                self._jobs_coalesced += 1
                self._scheduler.admit(job)
                self._jobs[job.job_id] = job
                return job.job_id
            cached = self.cache.get(key)
            if cached is not None:
                job = Job(
                    job_id=new_job_id(session),
                    session=session,
                    spec=spec,
                    events=events,
                    plans=tuple(cached.segments),
                    dropped_tail=0,
                    voxel_size=voxel_size,
                    min_observations=min_observations,
                    cache_key=key,
                    cache_hit=True,
                    result=cached,
                )
                job.outcomes = {plan.index: None for plan in cached.segments}
                job.next_segment = job.n_segments
                job.finish(JobState.DONE)
                self._jobs_submitted += 1
                self._jobs_done += 1
                self._scheduler.admit(job)
                self._jobs[job.job_id] = job
                self._retire(job)
                return job.job_id

        self._admit_session(session)

        plans, dropped = spec.plan(events)
        job = Job(
            job_id=new_job_id(session),
            session=session,
            spec=spec,
            events=events,
            plans=tuple(plans),
            dropped_tail=dropped,
            voxel_size=voxel_size,
            min_observations=min_observations,
            cache_key=key,
        )
        self._scheduler.admit(job)
        self._jobs[job.job_id] = job
        self._jobs_submitted += 1
        if key is not None:
            self._leaders[key] = job
        if not plans:
            # Too short for a single frame: finish with an (accounted)
            # empty result instead of parking a never-schedulable job.
            self._finalize(job)
        return job.job_id

    def _admit_session(self, session: str) -> Session:
        """Enforce the per-session backpressure bound; return the session.

        A backlogged session either refuses the newcomer
        (:class:`SessionBacklogFull`) or drops its oldest still-queued
        batch job, per the service's overflow policy — the shared
        admission step of :meth:`submit` and :meth:`open_stream`.
        """
        target = self._scheduler.session(session)
        if target.backlogged:
            victim = (
                target.oldest_queued() if self.overflow == "drop-oldest" else None
            )
            if victim is None:
                self.profile.jobs_refused += 1
                raise SessionBacklogFull(
                    f"session {session!r} is at its queue limit "
                    f"({target.queue_limit} active jobs); overflow policy "
                    f"is {self.overflow!r}"
                )
            victim.error = "dropped by overflow policy 'drop-oldest'"
            victim.finish(JobState.DROPPED)
            self.profile.jobs_dropped += 1
            self._settle_followers(victim)
            self._retire(victim)
        return target

    def _retire(self, job: Job) -> None:
        """Drop a terminal job from its session's scan list.

        Scheduling decisions iterate ``Session.jobs`` per dispatch, so
        finished records must not linger there; the ``_jobs`` registry
        keeps them pollable until :meth:`_prune_terminal` evicts them.
        """
        jobs = self._scheduler.session(job.session).jobs
        if job in jobs:  # identity: Job is eq=False
            jobs.remove(job)

    def _prune_terminal(self) -> None:
        """Evict the oldest terminal job records beyond ``retain_jobs``.

        Bounds the service's bookkeeping under sustained traffic: counters
        and the cache survive eviction, but ``poll``/``result`` on an
        evicted job id raise ``KeyError`` (its window has passed).
        """
        terminal = [
            job for job in self._jobs.values() if job.state in TERMINAL_STATES
        ]
        for job in terminal[: max(0, len(terminal) - self.retain_jobs)]:
            del self._jobs[job.job_id]

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def open_stream(
        self,
        spec: EngineSpec,
        *,
        session: str = "default",
        voxel_size: float | None = None,
        min_observations: int = 1,
        max_pending_chunks: int = 64,
    ) -> StreamingSession:
        """Admit a streaming job; returns its :class:`StreamingSession` handle.

        The stream occupies one job slot in its session (the same
        backpressure bound as :meth:`submit`), interleaves fairly with
        batch jobs at segment granularity, and emits a
        :class:`~repro.serve.stream.StreamUpdate` per finalized key
        frame.  ``max_pending_chunks`` bounds the in-flight chunk
        buffer; a full buffer applies the service's overflow policy at
        chunk granularity.  Streams bypass the result cache — their
        content is unknown until closed.
        """
        if self._closed:
            raise ServeError("service is closed")
        self._prune_terminal()
        if not isinstance(spec, EngineSpec):
            raise TypeError("open_stream() takes an EngineSpec (see EngineSpec.build)")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if voxel_size is None:
            voxel_size = default_voxel_size(spec.depth_range)
        if voxel_size <= 0:
            raise ValueError("voxel_size must be positive")
        if max_pending_chunks < 1:
            raise ValueError("max_pending_chunks must be >= 1")
        self._admit_session(session)
        job = Job(
            job_id=new_job_id(session),
            session=session,
            spec=spec,
            events=None,
            plans=(),
            dropped_tail=0,
            voxel_size=voxel_size,
            min_observations=min_observations,
            cache_key=None,
            stream=StreamState(
                spec.stream_planner(), voxel_size, max_pending_chunks
            ),
        )
        self._scheduler.admit(job)
        self._jobs[job.job_id] = job
        self._streams.append(job)
        self._jobs_submitted += 1
        self._streams_opened += 1
        return StreamingSession(self, job)

    def _feed_stream(self, job: Job, events: EventArray) -> None:
        """Buffer one chunk of a stream and pump (see StreamingSession.feed)."""
        if self._closed:
            raise ServeError("service is closed")
        stream = job.stream
        if job.state in (JobState.FAILED, JobState.DROPPED):
            raise JobFailed(
                f"stream {job.job_id!r} {job.state.value}: "
                f"{job.error or 'no error recorded'}"
            )
        if not stream.open or job.state in TERMINAL_STATES:
            raise ServeError(f"stream {job.job_id!r} is closed")
        if len(events) == 0:
            self._pump()
            return
        if len(stream.pending_chunks) >= stream.max_pending_chunks:
            if self.overflow == "drop-oldest":
                stream.pending_chunks.popleft()
                stream.chunks_dropped += 1
                self.profile.chunks_dropped += 1
            else:
                self.profile.chunks_refused += 1
                raise StreamBacklogFull(
                    f"stream {job.job_id!r} has {len(stream.pending_chunks)} "
                    f"pending chunks (bound {stream.max_pending_chunks}); "
                    f"overflow policy is {self.overflow!r}"
                )
        stream.pending_chunks.append((events, time.perf_counter()))
        stream.chunks_fed += 1
        stream.events_fed += len(events)
        self._pump()

    def _close_stream(self, job: Job) -> None:
        """End a stream's input (idempotent); remaining chunks still run."""
        stream = job.stream
        if job.state in TERMINAL_STATES or not stream.open:
            return
        stream.open = False
        stream.closed_at = time.perf_counter()
        if not self._closed:
            self._pump()

    def _poll_stream(self, job: Job) -> list[StreamUpdate]:
        """Drain the stream's un-polled updates (pumps the service first)."""
        if not self._closed:
            self._pump()
        updates = job.stream.updates
        job.stream.updates = []
        return updates

    def _stream_result(self, job: Job, timeout: float | None) -> MappingResult:
        """Block for a closed stream's final fused result."""
        if job.stream.open and job.state not in TERMINAL_STATES:
            raise ServeError(
                f"stream {job.job_id!r} is still open; close() it before "
                "asking for the final result"
            )
        return self._result_job(job, timeout)

    def _stream_backlog(self, job: Job) -> int:
        """Planned-but-undispatched segments of a streaming job."""
        return job.n_segments - job.next_segment + len(job.requeued)

    def _absorb_streams(self) -> bool:
        """Move buffered chunks through the planners; cut ready segments.

        Absorption is paced by the dispatch backlog: a stream stops
        planning ahead once it holds ``queue_limit`` undispatched
        segments, so a fast producer cannot turn the bounded chunk
        buffer into an unbounded segment queue — chunks wait (and
        eventually overflow) at the feed side instead.  A closing
        stream flushes its trailing segment once its buffer drains.
        """
        progressed = False
        retired = False
        for job in self._streams:
            stream = job.stream
            if job.state in TERMINAL_STATES:
                retired = True
                continue
            while (
                stream.pending_chunks
                and self._stream_backlog(job) < self._scheduler.queue_limit
            ):
                chunk, fed_at = stream.pending_chunks.popleft()
                for plan, segment_events in stream.planner.push(chunk):
                    self._add_stream_segment(job, plan, segment_events, fed_at)
                progressed = True
            if not stream.open and not stream.flushed and not stream.pending_chunks:
                tail, dropped = stream.planner.finish()
                for plan, segment_events in tail:
                    self._add_stream_segment(
                        job, plan, segment_events, stream.closed_at
                    )
                job.dropped_tail = dropped
                stream.flushed = True
                progressed = True
                if job.complete:
                    # A stream can settle with nothing in flight (all
                    # outcomes already in, or no complete frame at all).
                    self._finalize(job)
                    retired = True
        if retired:
            self._streams = [
                job for job in self._streams if job.state not in TERMINAL_STATES
            ]
        return progressed

    def _add_stream_segment(
        self, job: Job, plan, segment_events: EventArray, fed_at: float
    ) -> None:
        """Append one freshly cut segment to a streaming job's plan."""
        job.plans = job.plans + (plan,)
        job.stream.segment_events[plan.index] = segment_events
        job.stream.feed_times[plan.index] = fed_at

    def _emit_stream_updates(self, job: Job) -> None:
        """Fold landed outcomes into the fused map, in segment order.

        Outcomes may land in any pool order; the emit cursor holds
        updates back until every earlier segment has been folded, so
        key frames enter the :class:`~repro.core.mapping.GlobalMap` in
        stream order — the insertion order
        :func:`~repro.core.mapping.fuse_keyframes` uses, which is what
        keeps the incremental map bit-identical to a batch fusion.
        """
        stream = job.stream
        now = time.perf_counter()
        while stream.emit_cursor in job.outcomes:
            index = stream.emit_cursor
            _, keyframes, _ = job.outcomes[index]
            for keyframe in keyframes:
                stream.global_map.insert_keyframe(keyframe, job.spec.camera)
                stream.updates.append(
                    StreamUpdate(
                        job_id=job.job_id,
                        session=job.session,
                        segment_index=index,
                        keyframe_index=stream.keyframes_emitted,
                        keyframe=keyframe,
                        cloud=stream.global_map.fused_cloud(job.min_observations),
                        map_voxels=stream.global_map.n_voxels,
                        latency_seconds=now - stream.feed_times[index],
                    )
                )
                stream.keyframes_emitted += 1
                self._updates_emitted += 1
            stream.feed_times.pop(index, None)
            stream.emit_cursor += 1

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def _dispatch_ready(self) -> bool:
        # Serial probation after a pool break: one future at a time, so
        # a repeat break is attributable to the job that was flying.
        limit = 1 if self._probation > 0 else self.workers
        dispatched = False
        while len(self._inflight) < limit:
            decision = self._scheduler.next_dispatch()
            if decision is None:
                break
            future = self.pool.submit(run_segment_task, decision.task)
            self._inflight[future] = decision.job
            dispatched = True
        return dispatched

    def _collect_done(self) -> bool:
        collected = False
        # Pool-break attribution must be judged on the *break snapshot*,
        # not on pop order: a break poisons every in-flight future at
        # once, so the crash is attributable iff exactly one future was
        # in flight when it happened.
        sole_flight = len(self._inflight) == 1
        for future in [f for f in self._inflight if f.done()]:
            job = self._inflight.pop(future)
            collected = True
            if future.cancelled():  # close() cancelled queued work
                continue
            exc = future.exception()
            if exc is not None:
                if isinstance(exc, BrokenExecutor):
                    # The pool itself died, which breaks *every*
                    # in-flight future, not just the culprit's.  If this
                    # job was flying alone the crash is attributable and
                    # it fails; otherwise its lost segments requeue and
                    # the service probes serially until the pool proves
                    # healthy again (the culprit, once flying alone,
                    # breaks the pool attributably and is removed).
                    if self._pool is not None:
                        self._pool.shutdown(wait=False, cancel_futures=True)
                        self._pool = None
                    self._probation = PROBATION_SUCCESSES
                    if job.state in TERMINAL_STATES:
                        continue
                    if not sole_flight:
                        job.requeued.extend(
                            i
                            for i in range(job.next_segment)
                            if i not in job.outcomes and i not in job.requeued
                        )
                        continue
                if job.state not in TERMINAL_STATES:
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.finish(JobState.FAILED)
                    self._jobs_failed += 1
                    self._scheduler.cancel_job(job)
                    self._settle_followers(job)
                    self._retire(job)
                continue
            if job.state in TERMINAL_STATES:
                continue  # job already failed on a sibling segment
            if self._probation > 0:
                self._probation -= 1
            index, keyframes, profile = future.result()
            job.outcomes[index] = (index, keyframes, profile)
            if job.stream is not None:
                # The segment's slice is no longer needed for dispatch
                # (or pool-break requeue); release it and emit every
                # update this outcome unblocked.
                job.stream.segment_events.pop(index, None)
                self._emit_stream_updates(job)
            if job.complete:
                self._finalize(job)
        return collected

    def _finalize(self, job: Job) -> None:
        """Fuse a job's segment outcomes — the orchestrator-identical tail.

        Streaming jobs reuse their incrementally fused map instead of
        re-fusing from scratch: the emit cursor inserted every key frame
        in segment order, which is exactly the insertion order
        :func:`~repro.core.mapping.fuse_keyframes` would use, so the two
        maps are bit-identical (the stream ≡ batch tests pin this).
        """
        keyframes, profile = merge_outcomes(
            list(job.outcomes.values()), job.dropped_tail
        )
        if job.stream is not None:
            global_map = job.stream.global_map
        else:
            global_map = fuse_keyframes(keyframes, job.spec.camera, job.voxel_size)
        job.result = MappingResult(
            keyframes=keyframes,
            global_map=global_map,
            cloud=global_map.fused_cloud(job.min_observations),
            profile=profile,
            segments=job.plans,
            workers=self.workers,
            wall_seconds=time.perf_counter() - job.submitted_at,
        )
        job.finish(JobState.DONE)
        self._jobs_done += 1
        self.profile.merge(profile)
        if job.cache_key is not None:
            self.cache.put(job.cache_key, job.result)
        self._settle_followers(job)
        self._retire(job)

    def _settle_followers(self, leader: Job) -> None:
        """Propagate a leader's terminal outcome to its coalesced twins."""
        if leader.cache_key is not None and self._leaders.get(leader.cache_key) is leader:
            del self._leaders[leader.cache_key]
        for follower in leader.followers:
            if follower.state in TERMINAL_STATES:
                continue
            if leader.state is JobState.DONE:
                follower.result = leader.result
                follower.finish(JobState.DONE)
                self._jobs_done += 1
            else:
                follower.error = (
                    f"coalesced leader {leader.job_id} "
                    f"{leader.state.value}: {leader.error}"
                )
                follower.finish(JobState.FAILED)
                self._jobs_failed += 1
            self._retire(follower)
        leader.followers.clear()

    def _pump(self) -> None:
        """Collect and dispatch until no immediate progress remains.

        A no-op on a closed service: close() cancelled the in-flight
        futures and the pool is gone, so there is nothing to collect and
        dispatching would silently resurrect a pool nobody will shut
        down again.
        """
        if self._closed:
            return
        progressed = True
        while progressed:
            progressed = self._collect_done()
            progressed = self._absorb_streams() or progressed
            progressed = self._dispatch_ready() or progressed

    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job id {job_id!r}") from None

    def poll(self, job_id: str) -> JobStatus:
        """Non-blocking progress snapshot (pumps the scheduler first)."""
        return self._status(self._job(job_id), pump=True)

    def _status(self, job: Job, pump: bool = False) -> JobStatus:
        """Build a :class:`JobStatus` snapshot, optionally pumping first."""
        if pump:
            self._pump()
        return JobStatus(
            job_id=job.job_id,
            session=job.session,
            state=job.state,
            segments_total=job.n_segments,
            segments_done=job.segments_done,
            cache_hit=job.cache_hit,
            coalesced=job.coalesced_with is not None,
            error=job.error,
            latency_seconds=job.latency_seconds,
        )

    def result(self, job_id: str, timeout: float | None = None) -> MappingResult:
        """Block until the job finishes; return its fused result.

        Raises :class:`JobFailed` for failed or dropped jobs (carrying
        the worker's error), ``TimeoutError`` past ``timeout`` seconds,
        and ``KeyError`` for unknown ids.
        """
        return self._result_job(self._job(job_id), timeout)

    def _result_job(self, job: Job, timeout: float | None) -> MappingResult:
        """The blocking wait behind :meth:`result` (job-object addressed).

        Streaming handles call this directly so their jobs stay
        reachable even after ``retain_jobs`` pruning evicts the id from
        the registry.
        """
        job_id = job.job_id
        deadline = None if timeout is None else time.perf_counter() + timeout
        self._pump()
        while job.state not in TERMINAL_STATES:
            if self._closed:
                raise ServeError(
                    f"service is closed; job {job_id!r} will not complete"
                )
            if job.stream is not None and job.stream.open:
                raise ServeError(
                    f"stream {job_id!r} is still open; close() it before "
                    "waiting for its result"
                )
            if not self._inflight:
                raise ServeError(
                    f"job {job_id!r} cannot progress: nothing in flight "
                    "(pool lost its work?)"
                )
            remaining = None
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise TimeoutError(f"job {job_id!r} not done within {timeout} s")
            wait(set(self._inflight), timeout=remaining, return_when=FIRST_COMPLETED)
            self._pump()
        if job.state is JobState.DONE:
            return job.result
        raise JobFailed(
            f"job {job_id!r} {job.state.value}: {job.error or 'no error recorded'}"
        )

    def drain(self, timeout: float | None = None) -> int:
        """Run every admitted job to a terminal state; returns #completed.

        Streams that are still *open* are drained of their currently
        planned work but stay non-terminal — an open stream can always
        grow, so ``drain`` completes what exists and returns rather than
        waiting for a ``close()`` that may never come.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        self._pump()
        while self._inflight or self._scheduler.has_pending_dispatch:
            if self._closed:
                raise ServeError("service is closed; queued work was abandoned")
            remaining = None
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise TimeoutError(f"drain() incomplete after {timeout} s")
            if self._inflight:
                wait(
                    set(self._inflight),
                    timeout=remaining,
                    return_when=FIRST_COMPLETED,
                )
            self._pump()
        return self._jobs_done + self._jobs_failed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def jobs(self) -> dict[str, Job]:
        """All retained job records by id (copy)."""
        return dict(self._jobs)

    @property
    def dispatch_log(self) -> list[tuple[str, str, int]]:
        """(session, job_id, segment_index) in dispatch order."""
        return list(self._scheduler.dispatch_log)

    def stats(self) -> ServiceStats:
        """Aggregate counters: admission, outcomes, cache, streaming."""
        return ServiceStats(
            jobs_submitted=self._jobs_submitted,
            jobs_done=self._jobs_done,
            jobs_failed=self._jobs_failed,
            jobs_refused=self.profile.jobs_refused,
            jobs_dropped=self.profile.jobs_dropped,
            jobs_coalesced=self._jobs_coalesced,
            streams_opened=self._streams_opened,
            updates_emitted=self._updates_emitted,
            chunks_refused=self.profile.chunks_refused,
            chunks_dropped=self.profile.chunks_dropped,
            cache=self.cache.stats(),
            segments_dispatched={
                name: session.segments_dispatched
                for name, session in self._scheduler.sessions.items()
            },
            profile=self.profile,
        )
