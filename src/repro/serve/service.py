"""The multi-session reconstruction service.

:class:`ReconstructionService` accepts many independent event-stream
jobs (``submit``), shards each job's pre-planned key-frame segments onto
one shared bounded worker pool with fair round-robin scheduling across
sessions, and fuses per-segment outcomes into the same
:class:`~repro.core.mapping.MappingResult` a direct
:class:`~repro.core.mapping.MappingOrchestrator` run would produce —
bit-identically, because both layers execute the *same*
:func:`~repro.core.mapping.run_segment_task` /
:func:`~repro.core.mapping.merge_outcomes` /
:func:`~repro.core.mapping.fuse_keyframes` path.

Semantics in one breath:

* **admission** — ``submit`` pre-plans the stream (cheap pose-only
  pass), consults the LRU result cache, and enforces per-session
  backpressure: a session at its queue bound either refuses the
  submission (:class:`SessionBacklogFull`) or drops its oldest
  still-queued job, per ``overflow``; both outcomes are recorded in the
  service's aggregate :class:`~repro.core.results.PipelineProfile`
  (``jobs_refused`` / ``jobs_dropped``).
* **execution** — a cooperative pump: ``poll``/``result``/``drain``
  collect finished segment futures and dispatch new ones whenever pool
  slots free up.  The pump runs on the caller's thread; worker
  parallelism comes from the pool.
* **failure** — a worker exception mid-segment fails *that job* (state
  ``FAILED``, error surfaced by ``result``), cancels its undispatched
  segments, and leaves every other job and the pool serving.  A *hard*
  crash that breaks a process pool cannot be attributed while several
  futures fly, so the pool is rebuilt, lost segments requeue, and
  dispatch turns serial until the pool proves healthy — a job that
  breaks the pool while flying alone is the proven culprit and fails.
* **caching** — two granularities (see ``docs/CACHING.md``).  Whole
  results are cached under a content hash of (events, camera,
  trajectory, config, policy, backend, fuse parameters); a repeated
  submission returns the fused map without recompute, and an identical
  job submitted while its twin is still *in flight* coalesces onto it
  (no duplicate compute, both requests settle when the leader
  finishes) — burst-duplicate traffic costs one reconstruction, not N.
  Below that, a tiered **segment cache** (in-memory LRU over a
  persistent on-disk store) memoizes per-segment outcomes under a
  content hash of (segment event slice, engine spec): overlapping jobs
  — sliding windows, warm-started streams, resubmissions after a
  restart — skip the already-computed segments entirely, and the
  assembled result stays bit-identical to a cold run because the
  cached payload *is* the segment's outcome.  Per-job cache modes
  (``JobOptions.cache``): ``"on"``, ``"off"``, ``"refresh"``.
* **streaming** — ``open_stream`` admits a job whose events arrive in
  chunks (:class:`~repro.serve.stream.StreamingSession`): an
  incremental pose-only planner cuts key-frame segments as boundaries
  are crossed, each dispatches onto the same pool (interleaving fairly
  with batch jobs), and every finalized key frame emits a
  :class:`~repro.serve.stream.StreamUpdate` with an incrementally
  fused map snapshot.  The closed stream's final result is
  bit-identical to a one-shot ``submit`` of the concatenated chunks.
* **reliability** — a :class:`~repro.serve.retry.RetryPolicy`
  re-dispatches failed segment attempts with deterministic exponential
  backoff; per-segment and per-job **deadlines** bound how long an
  attempt (or a whole job) may take, with a watchdog that abandons hung
  attempts and kills-and-rebuilds a stuck process pool; ``allow_partial``
  degrades an out-of-budget job to a ``PARTIAL`` result (the fused map
  of the completed key frames plus a missing-segment manifest) instead
  of failing it; and an optional merge-time **integrity check** verifies
  each outcome's content digest so a corrupted payload is detected,
  attributed and retried rather than silently fused.  Failure modes are
  reproducible on demand via seeded
  :class:`~repro.serve.faults.FaultPlan` schedules.  See
  ``docs/RELIABILITY.md`` for the full contract.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from repro.core.engine import EngineSpec
from repro.core.mapping import (
    MappingResult,
    default_voxel_size,
    fuse_keyframes,
    merge_outcomes,
)
from repro.core.results import PipelineProfile
from repro.events.containers import EventArray
from repro.serve.cache import (
    CacheStats,
    ResultCache,
    SegmentCache,
    job_key,
    outcome_digest,
    segment_key,
)
from repro.serve.faults import (
    FaultKind,
    FaultPlan,
    new_hang_gate,
    release_hang_gate,
    run_guarded_segment,
)
from repro.serve.options import CacheConfig, JobOptions, ServiceConfig
from repro.serve.retry import RetryPolicy
from repro.serve.scheduler import RoundRobinScheduler
from repro.serve.session import (
    TERMINAL_STATES,
    Job,
    JobState,
    JobStatus,
    Session,
    new_job_id,
)
from repro.serve.stream import StreamingSession, StreamState, StreamUpdate

#: Supported overflow policies for a full session queue.
OVERFLOW_POLICIES = ("refuse", "drop-oldest")

#: Successful segment completions required to leave serial probation
#: after a pool break (see ``ReconstructionService._collect_done``).
PROBATION_SUCCESSES = 3

#: Sentinel distinguishing "kwarg not supplied" from an explicit None in
#: the deprecated reliability-kwarg shims.
_UNSET = object()

#: The legacy per-call reliability kwargs the JobOptions redesign
#: deprecates (constructor spelling -> JobOptions field).
_DEPRECATED_FIELDS = {
    "retry": "retry",
    "deadline_s": "deadline_s",
    "segment_deadline_s": "segment_deadline_s",
    "allow_partial": "allow_partial",
    "faults": "faults",
    "fault_plan": "faults",
    "integrity": "integrity",
}


class ServeError(RuntimeError):
    """Base class of service-level failures."""


class SessionBacklogFull(ServeError):
    """A submission was refused: the session's bounded queue is full."""


class StreamBacklogFull(SessionBacklogFull):
    """A chunk was refused: the stream's bounded chunk buffer is full."""


class JobFailed(ServeError):
    """``result`` was asked for a job that failed or was dropped."""


class _InlineExecutor(Executor):
    """Run tasks synchronously on the dispatching thread.

    The zero-dependency serial substrate (``workers=1`` default): no
    pool processes to spawn, identical scheduling decisions, and the
    exact single-engine execution path — useful for tests and for hosts
    where one core is all there is.
    """

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Run the task now; return an already-settled future."""
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except Exception as exc:  # surfaced via future.exception();
            # KeyboardInterrupt/SystemExit propagate — a Ctrl-C must
            # stop the pump, not fail one job and keep dispatching.
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """Nothing to shut down: no threads, no processes."""
        pass


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate service counters (admission, outcomes, cache, reliability)."""

    jobs_submitted: int
    jobs_done: int
    jobs_failed: int
    jobs_refused: int
    jobs_dropped: int
    jobs_coalesced: int
    jobs_partial: int
    streams_opened: int
    updates_emitted: int
    chunks_refused: int
    chunks_dropped: int
    segments_retried: int
    segments_timed_out: int
    results_corrupted: int
    cache: CacheStats
    segments_dispatched: dict[str, int]
    profile: PipelineProfile
    #: Admitted, non-terminal jobs at snapshot time (gauge).
    active_jobs: int = 0
    #: Segment attempts on the pool at snapshot time (gauge).
    inflight_segments: int = 0
    #: Pending (planned-but-unlanded) segments per session — the
    #: scheduler's queue depths (see ``RoundRobinScheduler.queue_depths``).
    queue_depths: dict[str, int] = field(default_factory=dict)


@dataclass
class _Flight:
    """One in-flight segment attempt (the value side of ``_inflight``).

    ``attempt`` is the dispatch epoch the attempt was launched under;
    an outcome is only accepted while ``job.attempts[index]`` still
    equals it — abandoning an attempt (deadline watchdog) or
    re-dispatching the segment bumps the epoch, so a late or duplicate
    landing is discarded instead of fused twice.
    """

    job: Job
    index: int
    attempt: int
    started_at: float
    gate_id: str | None = None
    #: Whether a fault directive was injected into this attempt — a
    #: faulted attempt's outcome may be tampered (CORRUPT), so it is
    #: never stored in the segment cache.
    faulted: bool = False


class ReconstructionService:
    """Serve many concurrent reconstruction jobs over one worker pool.

    Parameters
    ----------
    workers:
        Shared pool width.  ``None`` uses the machine's CPU count.
    executor:
        ``"process"``, ``"thread"``, ``"inline"`` or ``None`` to choose
        automatically: inline for one worker, processes otherwise
        (threads suit the in-process hardware model and test doubles).
    queue_limit:
        Per-session bound on active (queued + running) jobs.
    cache_size:
        Job-level LRU result-cache capacity in entries; ``0`` disables
        caching.  Shorthand for ``cache=CacheConfig(job_entries=n)``;
        mutually exclusive with ``cache``.
    retain_jobs:
        How many *terminal* (done/failed/dropped) job records to keep
        for late ``poll``/``result`` calls; the oldest are evicted
        beyond this, so a long-lived service's bookkeeping stays
        bounded (active jobs are never evicted).
    overflow:
        ``"refuse"`` (submission raises :class:`SessionBacklogFull`) or
        ``"drop-oldest"`` (the session's oldest undispatched job is
        dropped to admit the new one; with nothing droppable the
        submission is refused).  Either way the outcome is recorded in
        the aggregate profile.
    retry, deadline_s, segment_deadline_s, allow_partial, fault_plan, integrity:
        **Deprecated** spellings of the service-wide default
        :class:`~repro.serve.options.JobOptions` fields; they keep
        working through a shim that maps them onto ``options`` (and
        emits a :class:`DeprecationWarning`).  See
        :class:`~repro.serve.options.JobOptions` for their semantics.
    clock:
        Monotonic time source for deadlines and backoff scheduling
        (default ``time.perf_counter``); injectable so deadline tests
        run on a fake clock instead of sleeps.
    options:
        Service-wide default :class:`~repro.serve.options.JobOptions`;
        per-job options merge over these (``JobOptions.merged``).
    cache:
        Cache-tier configuration
        (:class:`~repro.serve.options.CacheConfig`): job-level LRU
        entries plus the segment tiers — an in-memory LRU in front of a
        persistent on-disk store, so overlapping jobs and warm-started
        streams skip already-computed segments entirely (see
        ``docs/CACHING.md``).  Mutually exclusive with ``cache_size``.

    Examples
    --------
    Batch jobs (``submit``/``result``) and a streaming session
    (``open_stream``) sharing one pool::

        from repro.core import EMVSConfig, EngineSpec
        from repro.events.datasets import load_sequence
        from repro.serve import ReconstructionService

        seq = load_sequence("slider_long", quality="fast")
        spec = EngineSpec(
            seq.camera, seq.trajectory,
            EMVSConfig(n_depth_planes=48,
                       keyframe_distance=seq.keyframe_distance),
            depth_range=seq.depth_range, backend="numpy-batch",
        )
        with ReconstructionService(workers=2, executor="thread") as svc:
            job = svc.submit(seq.events, spec, session="replay")
            result = svc.result(job)          # fused MappingResult
            stream = svc.open_stream(spec, session="live")
            stream.feed(seq.events); stream.close()
            assert (stream.result().profile.counters()
                    == result.profile.counters())
    """

    def __init__(
        self,
        workers: int | None = None,
        executor: str | None = None,
        queue_limit: int = 8,
        cache_size: int | None = None,
        overflow: str = "refuse",
        retain_jobs: int = 256,
        retry=_UNSET,
        deadline_s=_UNSET,
        segment_deadline_s=_UNSET,
        allow_partial=_UNSET,
        fault_plan=_UNSET,
        integrity=_UNSET,
        clock: Callable[[], float] | None = None,
        *,
        options: JobOptions | None = None,
        cache: CacheConfig | None = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for auto)")
        if retain_jobs < 1:
            raise ValueError("retain_jobs must be >= 1")
        if executor not in (None, "process", "thread", "inline"):
            raise ValueError("executor must be 'process', 'thread', 'inline' or None")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, got {overflow!r}"
            )
        if cache is not None and cache_size is not None:
            raise ValueError(
                "pass either cache_size (legacy shorthand) or "
                "cache=CacheConfig(...), not both"
            )
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.executor = executor or ("inline" if self.workers == 1 else "process")
        self.overflow = overflow
        self.retain_jobs = retain_jobs
        self._clock = clock or time.perf_counter
        legacy = {
            "retry": retry,
            "deadline_s": deadline_s,
            "segment_deadline_s": segment_deadline_s,
            "allow_partial": allow_partial,
            "fault_plan": fault_plan,
            "integrity": integrity,
        }
        ctor = self._shim_legacy_kwargs(legacy)
        hard = JobOptions(
            allow_partial=False, integrity=False, min_observations=1, cache="on"
        )
        #: The service-wide default :class:`JobOptions`; per-job options
        #: merge over these (``JobOptions.merged``).
        self.defaults = ctor.merged(options or JobOptions()).merged(hard)
        self._check_options(self.defaults)
        if cache is None:
            cache = CacheConfig(job_entries=32 if cache_size is None else cache_size)
        #: The :class:`CacheConfig` the cache tiers were built from.
        self.cache_config = cache
        self.cache = ResultCache(cache.job_entries)
        #: Tiered segment-outcome cache (memory LRU over a persistent
        #: disk store); disabled by default — see ``docs/CACHING.md``.
        self.segment_cache = SegmentCache(
            mem_mb=cache.mem_mb,
            disk_mb=cache.disk_mb,
            cache_dir=cache.resolved_dir(),
        )
        self.profile = PipelineProfile()
        self._scheduler = RoundRobinScheduler(queue_limit)
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[Future, _Flight] = {}
        #: cache key -> in-flight job computing it (coalescing target).
        self._leaders: dict[str, Job] = {}
        self._pool: Executor | None = None
        self._closed = False
        #: Remaining successful collections before parallel dispatch
        #: resumes after a pool break (0 = normal operation).
        self._probation = 0
        #: Active streaming jobs, pumped by ``_absorb_streams``.
        self._streams: list[Job] = []
        self._jobs_submitted = 0
        self._jobs_done = 0
        self._jobs_failed = 0
        self._jobs_partial = 0
        self._jobs_coalesced = 0
        self._streams_opened = 0
        self._updates_emitted = 0
        #: Hang-gate ids this service registered (released on close).
        self._gates: list[str] = []

    @classmethod
    def from_config(
        cls, config: ServiceConfig, *, clock: Callable[[], float] | None = None
    ) -> "ReconstructionService":
        """Construct a service from one :class:`ServiceConfig` value object.

        The one-object spelling of the constructor — the CLI's
        serve/submit/stream commands build a :class:`ServiceConfig` in a
        single place and hand it here.
        """
        return cls(
            workers=config.workers,
            executor=config.executor,
            queue_limit=config.queue_limit,
            overflow=config.overflow,
            retain_jobs=config.retain_jobs,
            clock=clock,
            options=config.defaults,
            cache=config.cache,
        )

    # ------------------------------------------------------------------
    # Legacy reliability-kwarg views (deprecated spellings)
    # ------------------------------------------------------------------
    @property
    def retry(self) -> RetryPolicy | None:
        """Service-wide default retry policy (``defaults.retry``)."""
        return self.defaults.retry

    @property
    def deadline_s(self) -> float | None:
        """Service-wide default job deadline (``defaults.deadline_s``)."""
        return self.defaults.deadline_s

    @property
    def segment_deadline_s(self) -> float | None:
        """Default per-attempt budget (``defaults.segment_deadline_s``)."""
        return self.defaults.segment_deadline_s

    @property
    def allow_partial(self) -> bool:
        """Default graceful-degradation switch (``defaults.allow_partial``)."""
        return bool(self.defaults.allow_partial)

    @property
    def fault_plan(self) -> FaultPlan | None:
        """Service-wide default fault schedule (``defaults.faults``)."""
        return self.defaults.faults

    @property
    def integrity(self) -> bool:
        """Default merge-time integrity checking (``defaults.integrity``)."""
        return bool(self.defaults.integrity)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ReconstructionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def _shim_legacy_kwargs(legacy: dict) -> JobOptions:
        """Map supplied deprecated kwargs onto a :class:`JobOptions`.

        ``legacy`` holds the deprecated kwargs by their old names with
        ``_UNSET`` marking "not supplied"; anything supplied emits one
        :class:`DeprecationWarning` naming the offenders.  Construction
        validates the values (same messages as the legacy checks).
        """
        supplied = {k: v for k, v in legacy.items() if v is not _UNSET}
        if supplied:
            warnings.warn(
                f"the {sorted(supplied)} kwargs are deprecated; pass "
                "options=JobOptions(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        return JobOptions(
            **{_DEPRECATED_FIELDS[k]: v for k, v in supplied.items()}
        )

    def _check_options(self, options: JobOptions) -> None:
        """Validate a resolved options set against this service's executor.

        Value/type validation lives in ``JobOptions.__post_init__``;
        this check catches the one executor-dependent combination.
        """
        if (
            options.faults is not None
            and options.faults.kind is FaultKind.HANG
            and self.executor == "inline"
        ):
            raise ValueError(
                "hang faults cannot run on the inline executor (the "
                "dispatching thread would block itself); use threads "
                "or processes"
            )

    def close(self) -> None:
        """Shut the pool down; queued work is abandoned.

        The *abrupt* exit (``with`` blocks use it): in-flight futures
        are cancelled and non-terminal jobs are left as-is — their
        ``result`` raises :class:`ServeError` rather than
        :class:`JobFailed`.  For a deterministic end state (every job
        terminal, open streams flushed, backed-off retries resolved)
        use :meth:`shutdown`.

        Any hang gates this service registered are released first, so
        worker threads blocked on an injected hang unblock and the pool
        shutdown can join them.
        """
        self._closed = True
        for gate_id in self._gates:
            release_hang_gate(gate_id)
        self._gates.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def shutdown(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop the service, leaving every admitted job in a terminal state.

        The graceful counterpart of :meth:`close`, safe with open
        :class:`~repro.serve.stream.StreamingSession` handles and a
        non-empty retry backlog.  Ordering with ``wait=True``:

        1. Open streams are closed (end-of-input): their buffered
           chunks still plan and their trailing segments still run,
           exactly as an explicit ``close()`` on the handle would.
        2. Backed-off retries are released immediately — shutdown
           overrides backoff *pacing* (not the retry *budget*), so a
           segment sitting out a long backoff flushes now instead of
           holding the drain hostage.
        3. The service drains; on a drain ``timeout`` (or with
           ``wait=False``) every still-active job fails deterministically
           (``FAILED``, error ``"service shut down before completion"``,
           coalesced followers settled) — nothing is ever left stuck in
           a non-terminal state.
        4. The pool shuts down (:meth:`close`).

        Idempotent; a second call is a no-op.
        """
        if self._closed:
            return
        if wait:
            for job in list(self._streams):
                if job.state not in TERMINAL_STATES and job.stream.open:
                    self._close_stream(job)
            for job in self._active_jobs():
                if job.retry_backlog:
                    job.requeued.extend(index for _, index in job.retry_backlog)
                    job.retry_backlog.clear()
            try:
                self.drain(timeout=timeout)
            except TimeoutError:
                self._fail_active(
                    "service shut down before completion "
                    f"(drain timed out after {timeout} s)"
                )
        else:
            self._fail_active("service shut down before completion")
        self.close()

    def _fail_active(self, reason: str) -> None:
        """Deterministically fail every non-terminal job (shutdown path).

        In-flight attempts are abandoned (their late results discarded
        via the epoch bump in :meth:`_abandon_attempt`), undispatched
        work is cancelled, and coalesced followers settle with their
        leader's error — the invariant :meth:`shutdown` guarantees is
        that no job survives in a non-terminal state.
        """
        for future, flight in list(self._inflight.items()):
            del self._inflight[future]
            self._abandon_attempt(future, flight)
        for job in list(self._active_jobs()):
            if job.state in TERMINAL_STATES:
                continue  # settled as an earlier job's follower
            job.error = reason
            job.finish(JobState.FAILED, at=self._clock())
            self._jobs_failed += 1
            self._scheduler.cancel_job(job)
            self._settle_followers(job)
            self._retire(job)
        self._streams = [
            job for job in self._streams if job.state not in TERMINAL_STATES
        ]

    def _make_pool(self) -> Executor:
        if self.executor == "inline":
            return _InlineExecutor()
        if self.executor == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(max_workers=self.workers)

    @property
    def pool(self) -> Executor:
        """The lazily created executor (rebuilt after a pool break)."""
        if self._closed:
            raise ServeError("service is closed")
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _resolve_job_options(
        self,
        options: JobOptions | None,
        legacy: dict,
        *,
        voxel_size: float | None = None,
        min_observations: int | None = None,
    ) -> JobOptions:
        """Resolve one call's effective :class:`JobOptions`.

        The single merge rule of the options redesign: deprecated
        per-call kwargs (shimmed onto :class:`JobOptions`, with a
        :class:`DeprecationWarning`) layer over ``options``, which
        layers over the service defaults —
        ``legacy.merged(options).merged(self.defaults)``.  The
        first-class fuse kwargs (``voxel_size``/``min_observations``)
        join the strongest layer.
        """
        per_call = self._shim_legacy_kwargs(legacy)
        fuse = {}
        if voxel_size is not None:
            fuse["voxel_size"] = voxel_size
        if min_observations is not None:
            fuse["min_observations"] = min_observations
        if fuse:
            per_call = replace(per_call, **fuse)
        resolved = per_call.merged(options or JobOptions()).merged(self.defaults)
        self._check_options(resolved)
        return resolved

    def _job_kwargs(self, resolved: JobOptions) -> dict:
        """The :class:`Job` constructor kwargs of a resolved options set."""
        return dict(
            retry=resolved.retry,
            deadline_s=resolved.deadline_s,
            segment_deadline_s=resolved.segment_deadline_s,
            allow_partial=bool(resolved.allow_partial),
            fault_plan=resolved.faults,
            integrity=bool(resolved.integrity),
            cache_mode=resolved.cache,
        )

    def submit(
        self,
        events: EventArray,
        spec: EngineSpec,
        *,
        session: str = "default",
        voxel_size: float | None = None,
        min_observations: int | None = None,
        retry=_UNSET,
        deadline_s=_UNSET,
        segment_deadline_s=_UNSET,
        allow_partial=_UNSET,
        faults=_UNSET,
        integrity=_UNSET,
        options: JobOptions | None = None,
    ) -> str:
        """Admit one reconstruction job; returns its job id.

        Admission is cheap (segment planning is a pose-only pass) and
        never executes the hot path; call :meth:`poll` / :meth:`result` /
        :meth:`drain` to make progress.  Raises
        :class:`SessionBacklogFull` when backpressure refuses the job.

        ``options`` overrides the service-wide default
        :class:`~repro.serve.options.JobOptions` for this job (``None``
        fields inherit); the loose reliability kwargs are deprecated
        spellings of the same fields and emit a
        :class:`DeprecationWarning`.  The job's deadline clock starts
        now (at admission).  When the segment cache holds outcomes for
        some (or all) of the job's segments, those segments complete at
        admission without ever touching the pool.
        """
        if self._closed:
            raise ServeError("service is closed")
        self._prune_terminal()
        if not isinstance(spec, EngineSpec):
            raise TypeError("submit() takes an EngineSpec (see EngineSpec.build)")
        resolved = self._resolve_job_options(
            options,
            {
                "retry": retry,
                "deadline_s": deadline_s,
                "segment_deadline_s": segment_deadline_s,
                "allow_partial": allow_partial,
                "faults": faults,
                "integrity": integrity,
            },
            voxel_size=voxel_size,
            min_observations=min_observations,
        )
        voxel_size = resolved.voxel_size
        if voxel_size is None:
            voxel_size = default_voxel_size(spec.depth_range)
        min_observations = resolved.min_observations
        mode = resolved.cache
        reliability = self._job_kwargs(resolved)

        key = None
        if mode != "off" and self.cache.enabled:
            key = job_key(spec, events, voxel_size, min_observations)
        if mode == "on" and key is not None:
            leader = self._leaders.get(key)
            if leader is not None and leader.state not in TERMINAL_STATES:
                # Identical job already in flight: coalesce instead of
                # recomputing (checked before the cache so a burst does
                # not count one miss per duplicate).  Coalesced jobs
                # consume no pool slots, so they bypass the
                # compute-protecting backpressure bound and are excluded
                # from its count (see Session.backlogged).
                job = Job(
                    job_id=new_job_id(session),
                    session=session,
                    spec=spec,
                    events=events,
                    plans=leader.plans,
                    dropped_tail=leader.dropped_tail,
                    voxel_size=voxel_size,
                    min_observations=min_observations,
                    cache_key=key,
                    coalesced_with=leader.job_id,
                    submitted_at=self._clock(),
                )
                job.next_segment = job.n_segments  # nothing to dispatch
                leader.followers.append(job)
                self._jobs_submitted += 1
                self._jobs_coalesced += 1
                self._scheduler.admit(job)
                self._jobs[job.job_id] = job
                return job.job_id
            cached = self.cache.get(key)
            if cached is not None:
                job = Job(
                    job_id=new_job_id(session),
                    session=session,
                    spec=spec,
                    events=events,
                    plans=tuple(cached.segments),
                    dropped_tail=0,
                    voxel_size=voxel_size,
                    min_observations=min_observations,
                    cache_key=key,
                    cache_hit=True,
                    result=cached,
                    submitted_at=self._clock(),
                )
                job.outcomes = {plan.index: None for plan in cached.segments}
                job.next_segment = job.n_segments
                job.finish(JobState.DONE, at=self._clock())
                self._jobs_submitted += 1
                self._jobs_done += 1
                self._scheduler.admit(job)
                self._jobs[job.job_id] = job
                self._retire(job)
                return job.job_id

        self._admit_session(session)

        plans, dropped = spec.plan(events)
        job = Job(
            job_id=new_job_id(session),
            session=session,
            spec=spec,
            events=events,
            plans=tuple(plans),
            dropped_tail=dropped,
            voxel_size=voxel_size,
            min_observations=min_observations,
            cache_key=key,
            submitted_at=self._clock(),
            **reliability,
        )
        if job.deadline_s is not None:
            job.deadline_at = self._clock() + job.deadline_s
        if mode != "off" and self.segment_cache.enabled:
            # Admission sweep of the segment tier: key every planned
            # segment by its content (the plan's frame-aligned event
            # slice digests without materializing it), and complete the
            # already-known ones on the spot — a fully warm job never
            # touches the pool.  ``refresh`` keys but never reads.
            for plan in plans:
                skey = segment_key(
                    spec, events.content_digest(plan.start_event, plan.end_event)
                )
                job.segment_keys[plan.index] = skey
                if mode == "on":
                    hit = self.segment_cache.get(skey, verify=job.integrity)
                    if hit is not None:
                        job.outcomes[plan.index] = (plan.index, list(hit[0]), hit[1])
                        job.segments_cached += 1
        self._scheduler.admit(job)
        self._jobs[job.job_id] = job
        self._jobs_submitted += 1
        if key is not None:
            self._leaders[key] = job
        if not plans:
            # Too short for a single frame: finish with an (accounted)
            # empty result instead of parking a never-schedulable job.
            self._finalize(job)
        elif job.complete:
            # Every segment came out of the segment cache at admission.
            self._finalize(job)
        return job.job_id

    def _admit_session(self, session: str) -> Session:
        """Enforce the per-session backpressure bound; return the session.

        A backlogged session either refuses the newcomer
        (:class:`SessionBacklogFull`) or drops its oldest still-queued
        batch job, per the service's overflow policy — the shared
        admission step of :meth:`submit` and :meth:`open_stream`.
        """
        target = self._scheduler.session(session)
        if target.backlogged:
            victim = (
                target.oldest_queued() if self.overflow == "drop-oldest" else None
            )
            if victim is None:
                self.profile.jobs_refused += 1
                raise SessionBacklogFull(
                    f"session {session!r} is at its queue limit "
                    f"({target.queue_limit} active jobs); overflow policy "
                    f"is {self.overflow!r}"
                )
            victim.error = "dropped by overflow policy 'drop-oldest'"
            victim.finish(JobState.DROPPED, at=self._clock())
            self.profile.jobs_dropped += 1
            self._settle_followers(victim)
            self._retire(victim)
        return target

    def _retire(self, job: Job) -> None:
        """Drop a terminal job from its session's scan list.

        Scheduling decisions iterate ``Session.jobs`` per dispatch, so
        finished records must not linger there; the ``_jobs`` registry
        keeps them pollable until :meth:`_prune_terminal` evicts them.
        """
        jobs = self._scheduler.session(job.session).jobs
        if job in jobs:  # identity: Job is eq=False
            jobs.remove(job)

    def _prune_terminal(self) -> None:
        """Evict the oldest terminal job records beyond ``retain_jobs``.

        Bounds the service's bookkeeping under sustained traffic: counters
        and the cache survive eviction, but ``poll``/``result`` on an
        evicted job id raise ``KeyError`` (its window has passed).
        """
        terminal = [
            job for job in self._jobs.values() if job.state in TERMINAL_STATES
        ]
        for job in terminal[: max(0, len(terminal) - self.retain_jobs)]:
            del self._jobs[job.job_id]

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def open_stream(
        self,
        spec: EngineSpec,
        *,
        session: str = "default",
        voxel_size: float | None = None,
        min_observations: int | None = None,
        max_pending_chunks: int = 64,
        retry=_UNSET,
        deadline_s=_UNSET,
        segment_deadline_s=_UNSET,
        allow_partial=_UNSET,
        faults=_UNSET,
        integrity=_UNSET,
        options: JobOptions | None = None,
    ) -> StreamingSession:
        """Admit a streaming job; returns its :class:`StreamingSession` handle.

        The stream occupies one job slot in its session (the same
        backpressure bound as :meth:`submit`), interleaves fairly with
        batch jobs at segment granularity, and emits a
        :class:`~repro.serve.stream.StreamUpdate` per finalized key
        frame.  ``max_pending_chunks`` bounds the in-flight chunk
        buffer; a full buffer applies the service's overflow policy at
        chunk granularity.  Streams bypass the *job-level* result cache
        (their content is unknown until closed) but warm-start from the
        *segment* tier: a freshly cut segment whose outcome is already
        cached emits its updates immediately, without a dispatch.

        ``options`` / the deprecated reliability kwargs resolve exactly
        as in :meth:`submit`, with one difference: a stream's
        ``deadline_s`` arms at ``close()`` — an open stream can always
        grow, so there is no meaningful total budget until the input
        ends.
        """
        if self._closed:
            raise ServeError("service is closed")
        self._prune_terminal()
        if not isinstance(spec, EngineSpec):
            raise TypeError("open_stream() takes an EngineSpec (see EngineSpec.build)")
        if max_pending_chunks < 1:
            raise ValueError("max_pending_chunks must be >= 1")
        resolved = self._resolve_job_options(
            options,
            {
                "retry": retry,
                "deadline_s": deadline_s,
                "segment_deadline_s": segment_deadline_s,
                "allow_partial": allow_partial,
                "faults": faults,
                "integrity": integrity,
            },
            voxel_size=voxel_size,
            min_observations=min_observations,
        )
        voxel_size = resolved.voxel_size
        if voxel_size is None:
            voxel_size = default_voxel_size(spec.depth_range)
        min_observations = resolved.min_observations
        reliability = self._job_kwargs(resolved)
        self._admit_session(session)
        job = Job(
            job_id=new_job_id(session),
            session=session,
            spec=spec,
            events=None,
            plans=(),
            dropped_tail=0,
            voxel_size=voxel_size,
            min_observations=min_observations,
            cache_key=None,
            stream=StreamState(
                spec.stream_planner(), voxel_size, max_pending_chunks
            ),
            submitted_at=self._clock(),
            **reliability,
        )
        self._scheduler.admit(job)
        self._jobs[job.job_id] = job
        self._streams.append(job)
        self._jobs_submitted += 1
        self._streams_opened += 1
        return StreamingSession(self, job)

    def _feed_stream(self, job: Job, events: EventArray) -> None:
        """Buffer one chunk of a stream and pump (see StreamingSession.feed)."""
        if self._closed:
            raise ServeError("service is closed")
        stream = job.stream
        if job.state in (JobState.FAILED, JobState.DROPPED):
            raise JobFailed(
                f"stream {job.job_id!r} {job.state.value}: "
                f"{job.error or 'no error recorded'}"
            )
        if not stream.open or job.state in TERMINAL_STATES:
            raise ServeError(f"stream {job.job_id!r} is closed")
        if len(events) == 0:
            self._pump()
            return
        if len(stream.pending_chunks) >= stream.max_pending_chunks:
            if self.overflow == "drop-oldest":
                stream.pending_chunks.popleft()
                stream.chunks_dropped += 1
                self.profile.chunks_dropped += 1
            else:
                self.profile.chunks_refused += 1
                raise StreamBacklogFull(
                    f"stream {job.job_id!r} has {len(stream.pending_chunks)} "
                    f"pending chunks (bound {stream.max_pending_chunks}); "
                    f"overflow policy is {self.overflow!r}"
                )
        stream.pending_chunks.append((events, self._clock()))
        stream.chunks_fed += 1
        stream.events_fed += len(events)
        self._pump()

    def _close_stream(self, job: Job) -> None:
        """End a stream's input (idempotent); remaining chunks still run.

        Closing also arms the job deadline, when one was configured: an
        open stream can always grow, so its total budget only makes
        sense once the input has ended.
        """
        stream = job.stream
        if job.state in TERMINAL_STATES or not stream.open:
            return
        stream.open = False
        stream.closed_at = self._clock()
        if job.deadline_s is not None and job.deadline_at is None:
            job.deadline_at = self._clock() + job.deadline_s
        if not self._closed:
            self._pump()

    def _poll_stream(self, job: Job) -> list[StreamUpdate]:
        """Drain the stream's un-polled updates (pumps the service first)."""
        if not self._closed:
            self._pump()
        updates = job.stream.updates
        job.stream.updates = []
        return updates

    def _stream_result(self, job: Job, timeout: float | None) -> MappingResult:
        """Block for a closed stream's final fused result."""
        if job.stream.open and job.state not in TERMINAL_STATES:
            raise ServeError(
                f"stream {job.job_id!r} is still open; close() it before "
                "asking for the final result"
            )
        return self._result_job(job, timeout)

    def _stream_backlog(self, job: Job) -> int:
        """Planned-but-undispatched segments of a streaming job."""
        return job.n_segments - job.next_segment + len(job.requeued)

    def _absorb_streams(self) -> bool:
        """Move buffered chunks through the planners; cut ready segments.

        Absorption is paced by the dispatch backlog: a stream stops
        planning ahead once it holds ``queue_limit`` undispatched
        segments, so a fast producer cannot turn the bounded chunk
        buffer into an unbounded segment queue — chunks wait (and
        eventually overflow) at the feed side instead.  A closing
        stream flushes its trailing segment once its buffer drains.
        """
        progressed = False
        retired = False
        for job in self._streams:
            stream = job.stream
            if job.state in TERMINAL_STATES:
                retired = True
                continue
            while (
                stream.pending_chunks
                and self._stream_backlog(job) < self._scheduler.queue_limit
            ):
                chunk, fed_at = stream.pending_chunks.popleft()
                for plan, segment_events in stream.planner.push(chunk):
                    self._add_stream_segment(job, plan, segment_events, fed_at)
                progressed = True
            if not stream.open and not stream.flushed and not stream.pending_chunks:
                tail, dropped = stream.planner.finish()
                for plan, segment_events in tail:
                    self._add_stream_segment(
                        job, plan, segment_events, stream.closed_at
                    )
                job.dropped_tail = dropped
                stream.flushed = True
                progressed = True
                if job.complete:
                    # A stream can settle with nothing in flight (all
                    # outcomes already in, or no complete frame at all).
                    self._finalize(job)
                    retired = True
        if retired:
            self._streams = [
                job for job in self._streams if job.state not in TERMINAL_STATES
            ]
        return progressed

    def _add_stream_segment(
        self, job: Job, plan, segment_events: EventArray, fed_at: float
    ) -> None:
        """Append one freshly cut segment to a streaming job's plan.

        The segment probes the segment cache first (the streaming twin
        of :meth:`submit`'s admission sweep): a hit lands the outcome —
        and emits every update it unblocks — without ever buffering the
        slice for dispatch.  The stream's slices are cut at the same
        frame-aligned boundaries a batch plan uses, so the keys match a
        prior ``submit`` of the same content.
        """
        job.plans = job.plans + (plan,)
        job.stream.feed_times[plan.index] = fed_at
        if job.cache_mode != "off" and self.segment_cache.enabled:
            skey = segment_key(job.spec, segment_events.content_digest())
            job.segment_keys[plan.index] = skey
            if job.cache_mode == "on":
                hit = self.segment_cache.get(skey, verify=job.integrity)
                if hit is not None:
                    job.outcomes[plan.index] = (plan.index, list(hit[0]), hit[1])
                    job.segments_cached += 1
                    self._emit_stream_updates(job)
                    return
        job.stream.segment_events[plan.index] = segment_events

    def _emit_stream_updates(self, job: Job) -> None:
        """Fold landed outcomes into the fused map, in segment order.

        Outcomes may land in any pool order; the emit cursor holds
        updates back until every earlier segment has been folded, so
        key frames enter the :class:`~repro.core.mapping.GlobalMap` in
        stream order — the insertion order
        :func:`~repro.core.mapping.fuse_keyframes` uses, which is what
        keeps the incremental map bit-identical to a batch fusion.
        Segments abandoned into the ``missing`` manifest emit nothing;
        the cursor steps over them so later outcomes still flow.
        """
        stream = job.stream
        now = self._clock()
        while True:
            index = stream.emit_cursor
            if index in job.missing:
                stream.feed_times.pop(index, None)
                stream.emit_cursor += 1
                continue
            if index not in job.outcomes:
                break
            _, keyframes, _ = job.outcomes[index]
            for keyframe in keyframes:
                stream.global_map.insert_keyframe(keyframe, job.spec.camera)
                stream.updates.append(
                    StreamUpdate(
                        job_id=job.job_id,
                        session=job.session,
                        segment_index=index,
                        keyframe_index=stream.keyframes_emitted,
                        keyframe=keyframe,
                        cloud=stream.global_map.fused_cloud(job.min_observations),
                        map_voxels=stream.global_map.n_voxels,
                        latency_seconds=now - stream.feed_times[index],
                    )
                )
                stream.keyframes_emitted += 1
                self._updates_emitted += 1
            stream.feed_times.pop(index, None)
            stream.emit_cursor += 1

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def _dispatch_ready(self) -> bool:
        # Serial probation after a pool break: one future at a time, so
        # a repeat break is attributable to the job that was flying.
        limit = 1 if self._probation > 0 else self.workers
        dispatched = False
        while len(self._inflight) < limit:
            decision = self._scheduler.next_dispatch()
            if decision is None:
                break
            job = decision.job
            index = decision.task.index
            if job.cache_mode == "on":
                # Dispatch-time cache consult: an outcome that appeared
                # after admission (typically computed by an overlapping
                # job in the meantime) completes the segment without
                # consuming a pool slot.  Not counted as a miss — the
                # admission sweep already charged this segment once.
                skey = job.segment_keys.get(index)
                if skey is not None:
                    hit = self.segment_cache.get(
                        skey, count_miss=False, verify=job.integrity
                    )
                    if hit is not None:
                        self._land_cached_segment(job, index, hit)
                        dispatched = True
                        continue
            directive = None
            if job.fault_plan is not None:
                directive = job.fault_plan.directive(index, decision.attempt - 1)
            if directive is not None:
                if directive.kind is FaultKind.CRASH and self.executor == "process":
                    # Hard crashes are only survivable (and meaningful)
                    # on a process pool; elsewhere the fault degrades to
                    # an ordinary raised exception.
                    directive = replace(directive, hard=True)
                if directive.kind is FaultKind.HANG and self.executor == "thread":
                    # Thread workers hang on a releasable gate so close()
                    # can always join the pool; process workers fall
                    # back to a bounded sleep inside the fault itself.
                    gate_id = new_hang_gate()
                    self._gates.append(gate_id)
                    directive = replace(directive, gate_id=gate_id)
            future = self.pool.submit(
                run_guarded_segment, decision.task, directive, job.integrity
            )
            self._inflight[future] = _Flight(
                job=job,
                index=index,
                attempt=decision.attempt,
                started_at=self._clock(),
                gate_id=directive.gate_id if directive is not None else None,
                faulted=directive is not None,
            )
            dispatched = True
        return dispatched

    def _land_cached_segment(self, job: Job, index: int, payload: tuple) -> None:
        """Complete one segment from the segment cache, pool untouched.

        The dispatch-time twin of :meth:`_collect_done`'s success path:
        the payload becomes the segment's outcome, a stream releases the
        slice and emits the updates it unblocks, and a job whose last
        segment this was finalizes.
        """
        keyframes, profile = payload
        job.outcomes[index] = (index, list(keyframes), profile)
        job.segments_cached += 1
        if job.stream is not None:
            job.stream.segment_events.pop(index, None)
            self._emit_stream_updates(job)
        if job.complete:
            self._finalize(job)

    def _collect_done(self) -> bool:
        collected = False
        # Pool-break attribution must be judged on the *break snapshot*,
        # not on pop order: a break poisons every in-flight future at
        # once, so the crash is attributable iff exactly one future was
        # in flight when it happened.
        sole_flight = len(self._inflight) == 1
        for future in [f for f in self._inflight if f.done()]:
            flight = self._inflight.pop(future)
            job, index = flight.job, flight.index
            collected = True
            if flight.gate_id is not None:
                release_hang_gate(flight.gate_id)
            if future.cancelled():  # close() cancelled queued work
                continue
            # Epoch staleness: only the newest dispatch of a segment may
            # land — an abandoned (deadline watchdog) or re-dispatched
            # attempt's late result is discarded here.
            current = job.attempts.get(index) == flight.attempt
            exc = future.exception()
            if exc is not None:
                if isinstance(exc, BrokenExecutor):
                    # The pool itself died, which breaks *every*
                    # in-flight future, not just the culprit's.  If this
                    # job was flying alone the crash is attributable and
                    # counts as a segment failure (fatal unless a retry
                    # budget heals it); otherwise its lost segments
                    # requeue and the service probes serially until the
                    # pool proves healthy again (the culprit, once
                    # flying alone, breaks the pool attributably).
                    if self._pool is not None:
                        self._pool.shutdown(wait=False, cancel_futures=True)
                        self._pool = None
                    self._probation = PROBATION_SUCCESSES
                    if job.state in TERMINAL_STATES or not current:
                        continue
                    if not sole_flight:
                        job.requeued.extend(
                            i
                            for i in range(job.next_segment)
                            if i not in job.outcomes
                            and i not in job.requeued
                            and i not in job.missing
                        )
                        continue
                if job.state in TERMINAL_STATES or not current:
                    continue
                error = f"{type(exc).__name__}: {exc}"
                tb = "".join(
                    traceback_module.format_exception(
                        type(exc), exc, exc.__traceback__
                    )
                )
                self._segment_failed(job, index, error, tb)
                continue
            if job.state in TERMINAL_STATES or not current:
                continue  # job already terminal / attempt superseded
            if self._probation > 0:
                self._probation -= 1
            outcome, digest = future.result()
            if (
                job.integrity
                and digest is not None
                and outcome_digest(outcome) != digest
            ):
                # The payload the worker digested is not the payload
                # that arrived: treat the attempt as failed (retryable)
                # rather than fusing a corrupted outcome.
                self.profile.results_corrupted += 1
                self._segment_failed(
                    job,
                    index,
                    f"segment {index} failed its result-integrity check "
                    "(payload digest mismatch)",
                )
                continue
            job.outcomes[outcome[0]] = outcome
            if (
                not flight.faulted
                and job.cache_mode != "off"
                and self.segment_cache.enabled
            ):
                # Store only final good outcomes: the integrity gate
                # above already passed, and a faulted attempt's payload
                # may have been tampered (CORRUPT) without integrity
                # armed, so it never enters the cache.
                skey = job.segment_keys.get(index)
                if skey is not None:
                    self.segment_cache.put(skey, (outcome[1], outcome[2]))
            if job.stream is not None:
                # The segment's slice is no longer needed for dispatch
                # (or pool-break requeue); release it and emit every
                # update this outcome unblocked.
                job.stream.segment_events.pop(index, None)
                self._emit_stream_updates(job)
            if job.complete:
                self._finalize(job)
        return collected

    def _segment_failed(
        self, job: Job, index: int, error: str, tb: str | None = None
    ) -> None:
        """Route one failed segment attempt: retry, degrade, or fail.

        The attempt first charges the segment's failure meter; a
        :class:`~repro.serve.retry.RetryPolicy` with remaining budget
        re-dispatches the segment (after its deterministic backoff), an
        ``allow_partial`` job abandons it into the missing manifest, and
        otherwise the whole job fails — carrying the culprit's error
        string and full traceback.
        """
        job.failures[index] = job.failures.get(index, 0) + 1
        if job.state in TERMINAL_STATES:
            return
        failures = job.failures[index]
        if job.retry is not None and job.retry.retryable(failures):
            job.retries += 1
            self.profile.segments_retried += 1
            delay = job.retry.delay(index, failures)
            if delay > 0:
                job.retry_backlog.append((self._clock() + delay, index))
            else:
                job.requeued.append(index)
            return
        if job.allow_partial:
            job.missing.add(index)
            if job.stream is not None:
                job.stream.segment_events.pop(index, None)
                self._emit_stream_updates(job)
            if job.complete:
                self._finalize(job)
            return
        job.error = (
            error
            if failures <= 1
            else f"{error} (segment {index} failed {failures} attempts)"
        )
        job.traceback = tb
        job.finish(JobState.FAILED, at=self._clock())
        self._jobs_failed += 1
        self._scheduler.cancel_job(job)
        self._settle_followers(job)
        self._retire(job)

    # ------------------------------------------------------------------
    # Reliability: deadlines, retries, watchdog
    # ------------------------------------------------------------------
    def _active_jobs(self) -> Iterator[Job]:
        """Every admitted, non-terminal job across all sessions."""
        for session in self._scheduler.sessions.values():
            for job in list(session.jobs):
                if job.state not in TERMINAL_STATES:
                    yield job

    def _release_ripe_retries(self) -> bool:
        """Move backed-off retries whose delay elapsed into the requeue."""
        progressed = False
        now = self._clock()
        for job in self._active_jobs():
            if not job.retry_backlog:
                continue
            ripe = [entry for entry in job.retry_backlog if entry[0] <= now]
            if not ripe:
                continue
            job.retry_backlog = [e for e in job.retry_backlog if e[0] > now]
            job.requeued.extend(index for _, index in ripe)
            progressed = True
        return progressed

    def _check_deadlines(self) -> bool:
        """The watchdog: expire over-budget jobs, abandon hung attempts.

        Job deadlines are judged first (an expired job abandons all its
        flights at once); then each in-flight attempt is judged against
        its job's per-segment budget.  Abandonment bumps the segment's
        dispatch epoch so a late landing is discarded, and a hung
        *process* worker — which cannot be cancelled — forces a pool
        kill-and-rebuild (:meth:`_kill_pool`).
        """
        progressed = False
        now = self._clock()
        for job in list(self._active_jobs()):
            if job.deadline_at is not None and now >= job.deadline_at:
                self._expire_job(job)
                progressed = True
        needs_kill = False
        for future, flight in list(self._inflight.items()):
            job, index = flight.job, flight.index
            if job.state in TERMINAL_STATES:
                continue  # lands (and is discarded) in _collect_done
            if (
                job.segment_deadline_s is None
                or now - flight.started_at < job.segment_deadline_s
            ):
                continue
            del self._inflight[future]
            self.profile.segments_timed_out += 1
            if self._abandon_attempt(future, flight):
                needs_kill = True
            self._segment_failed(
                job,
                index,
                f"segment {index} exceeded its deadline "
                f"({job.segment_deadline_s} s per attempt)",
            )
            progressed = True
        if needs_kill:
            self._kill_pool()
        return progressed

    def _abandon_attempt(self, future: Future, flight: _Flight) -> bool:
        """Abandon one in-flight attempt; returns whether a pool kill is due.

        A still-queued future simply cancels.  A *running* one cannot
        be: its dispatch epoch is bumped so its late result is
        discarded, its hang gate (if any) is released so a blocked
        thread worker unwinds, and on a process pool the caller must
        kill-and-rebuild — a hung process worker honours no signal the
        executor API offers.
        """
        job, index = flight.job, flight.index
        if flight.gate_id is not None:
            release_hang_gate(flight.gate_id)
        if future.cancel():
            return False
        job.attempts[index] = job.attempts.get(index, 0) + 1
        return self.executor == "process" and not future.done()

    def _expire_job(self, job: Job) -> None:
        """Terminate a job whose whole-job deadline passed.

        In-flight attempts are abandoned (hung process workers force a
        pool kill), undispatched work is cancelled, and the job ends
        ``PARTIAL`` — with everything unlanded in the missing manifest —
        when it allows partial results, ``FAILED`` otherwise.
        """
        needs_kill = False
        for future, flight in list(self._inflight.items()):
            if flight.job is not job:
                continue
            del self._inflight[future]
            self.profile.segments_timed_out += 1
            if self._abandon_attempt(future, flight):
                needs_kill = True
        if needs_kill:
            self._kill_pool()
        unlanded = [
            i
            for i in range(job.n_segments)
            if i not in job.outcomes and i not in job.missing
        ]
        self._scheduler.cancel_job(job)
        stream = job.stream
        if stream is not None and not stream.flushed:
            # The deadline outran chunks still buffered: they are
            # abandoned wholesale, and the stream is marked flushed so
            # the job can reach a terminal state.
            stream.pending_chunks.clear()
            stream.flushed = True
        if job.allow_partial:
            job.missing.update(unlanded)
            if stream is not None:
                for index in unlanded:
                    stream.segment_events.pop(index, None)
                self._emit_stream_updates(job)
            self._finalize(job)
            return
        job.error = (
            f"job deadline exceeded ({job.deadline_s} s); "
            f"{len(unlanded)} of {job.n_segments} segments unfinished"
        )
        job.finish(JobState.FAILED, at=self._clock())
        self._jobs_failed += 1
        self._settle_followers(job)
        self._retire(job)

    def _kill_pool(self) -> None:
        """Kill a pool wedged by a hung worker and requeue the innocents.

        ``shutdown`` would join the hung worker forever, so a process
        pool's workers are terminated directly.  Every remaining
        in-flight attempt dies with the pool through no fault of its
        own — their segments are requeued proactively (rather than
        letting the post-kill ``BrokenExecutor`` harvest mis-attribute
        a sole survivor as a culprit), and dispatch turns serial until
        the rebuilt pool proves healthy, exactly the pool-break
        probation of :meth:`_collect_done`.
        """
        pool, self._pool = self._pool, None
        for future, flight in list(self._inflight.items()):
            del self._inflight[future]
            job, index = flight.job, flight.index
            if flight.gate_id is not None:
                release_hang_gate(flight.gate_id)
            if not future.cancel():
                job.attempts[index] = job.attempts.get(index, 0) + 1
            if job.state in TERMINAL_STATES:
                continue
            if (
                index not in job.outcomes
                and index not in job.requeued
                and index not in job.missing
            ):
                job.requeued.append(index)
        self._probation = PROBATION_SUCCESSES
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def _finalize(self, job: Job) -> None:
        """Fuse a job's segment outcomes — the orchestrator-identical tail.

        Streaming jobs reuse their incrementally fused map instead of
        re-fusing from scratch: the emit cursor inserted every key frame
        in segment order, which is exactly the insertion order
        :func:`~repro.core.mapping.fuse_keyframes` would use, so the two
        maps are bit-identical (the stream ≡ batch tests pin this).

        A job with abandoned segments finalizes ``PARTIAL``: the same
        fusion restricted to the landed outcomes (which
        :func:`~repro.core.mapping.merge_outcomes` sorts into segment
        order, so the map equals a fault-free fusion of the completed
        key frames), plus the missing-segment manifest.  Partial
        results are never cached — a later identical submission must
        get the chance to compute the full map.
        """
        keyframes, profile = merge_outcomes(
            list(job.outcomes.values()), job.dropped_tail
        )
        if job.stream is not None:
            global_map = job.stream.global_map
        else:
            global_map = fuse_keyframes(keyframes, job.spec.camera, job.voxel_size)
        missing = tuple(sorted(job.missing))
        job.result = MappingResult(
            keyframes=keyframes,
            global_map=global_map,
            cloud=global_map.fused_cloud(job.min_observations),
            profile=profile,
            segments=job.plans,
            workers=self.workers,
            wall_seconds=self._clock() - job.submitted_at,
            missing_segments=missing,
        )
        if missing:
            job.finish(JobState.PARTIAL, at=self._clock())
            self._jobs_partial += 1
            self.profile.jobs_partial += 1
        else:
            job.finish(JobState.DONE, at=self._clock())
            self._jobs_done += 1
        self.profile.merge(profile)
        if job.cache_key is not None and not missing:
            self.cache.put(job.cache_key, job.result)
        self._settle_followers(job)
        self._retire(job)

    def _settle_followers(self, leader: Job) -> None:
        """Propagate a leader's terminal outcome to its coalesced twins."""
        if leader.cache_key is not None and self._leaders.get(leader.cache_key) is leader:
            del self._leaders[leader.cache_key]
        for follower in leader.followers:
            if follower.state in TERMINAL_STATES:
                continue
            if leader.state in (JobState.DONE, JobState.PARTIAL):
                follower.result = leader.result
                follower.finish(leader.state, at=self._clock())
                if leader.state is JobState.DONE:
                    self._jobs_done += 1
                else:
                    self._jobs_partial += 1
            else:
                follower.error = (
                    f"coalesced leader {leader.job_id} "
                    f"{leader.state.value}: {leader.error}"
                )
                follower.finish(JobState.FAILED, at=self._clock())
                self._jobs_failed += 1
            self._retire(follower)
        leader.followers.clear()

    def _pump(self) -> None:
        """Collect and dispatch until no immediate progress remains.

        A no-op on a closed service: close() cancelled the in-flight
        futures and the pool is gone, so there is nothing to collect and
        dispatching would silently resurrect a pool nobody will shut
        down again.
        """
        if self._closed:
            return
        progressed = True
        while progressed:
            progressed = self._collect_done()
            progressed = self._check_deadlines() or progressed
            progressed = self._release_ripe_retries() or progressed
            progressed = self._absorb_streams() or progressed
            progressed = self._dispatch_ready() or progressed

    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job id {job_id!r}") from None

    def poll(self, job_id: str) -> JobStatus:
        """Non-blocking progress snapshot (pumps the scheduler first)."""
        return self._status(self._job(job_id), pump=True)

    def _status(self, job: Job, pump: bool = False) -> JobStatus:
        """Build a :class:`JobStatus` snapshot, optionally pumping first."""
        if pump:
            self._pump()
        return JobStatus(
            job_id=job.job_id,
            session=job.session,
            state=job.state,
            segments_total=job.n_segments,
            segments_done=job.segments_done,
            cache_hit=job.cache_hit,
            coalesced=job.coalesced_with is not None,
            error=job.error,
            latency_seconds=job.latency_seconds,
            missing_segments=tuple(sorted(job.missing)),
            segments_retried=job.retries,
            traceback=job.traceback,
        )

    def result(self, job_id: str, timeout: float | None = None) -> MappingResult:
        """Block until the job finishes; return its fused result.

        Raises :class:`JobFailed` for failed or dropped jobs (carrying
        the worker's error), ``TimeoutError`` past ``timeout`` seconds,
        and ``KeyError`` for unknown ids.
        """
        return self._result_job(self._job(job_id), timeout)

    def _next_event_time(self) -> float | None:
        """Earliest future instant a deadline or backoff release can fire.

        Bounds the blocking waits of :meth:`result` and :meth:`drain`:
        a hung worker never completes its future, so waiting on futures
        alone would outwait the very watchdog meant to catch it.
        """
        times = []
        for flight in self._inflight.values():
            budget = flight.job.segment_deadline_s
            if budget is not None and flight.job.state not in TERMINAL_STATES:
                times.append(flight.started_at + budget)
        for job in self._active_jobs():
            if job.deadline_at is not None:
                times.append(job.deadline_at)
            times.extend(at for at, _ in job.retry_backlog)
        return min(times, default=None)

    def _wait_for_progress(self, remaining: float | None) -> None:
        """Block until a future settles, a timed event ripens, or timeout."""
        wake = self._next_event_time()
        wait_t = remaining
        if wake is not None:
            until_wake = max(wake - self._clock(), 0.0) + 1e-4
            wait_t = until_wake if wait_t is None else min(wait_t, until_wake)
        if self._inflight:
            wait(set(self._inflight), timeout=wait_t, return_when=FIRST_COMPLETED)
        else:
            # Nothing on the pool: the next progress is a timed event
            # (backoff release or deadline expiry), so nap toward it.
            time.sleep(min(wait_t, 0.05) if wait_t is not None else 0.001)

    def _result_job(self, job: Job, timeout: float | None) -> MappingResult:
        """The blocking wait behind :meth:`result` (job-object addressed).

        Streaming handles call this directly so their jobs stay
        reachable even after ``retain_jobs`` pruning evicts the id from
        the registry.
        """
        job_id = job.job_id
        deadline = None if timeout is None else self._clock() + timeout
        self._pump()
        while job.state not in TERMINAL_STATES:
            if self._closed:
                raise ServeError(
                    f"service is closed; job {job_id!r} will not complete"
                )
            if job.stream is not None and job.stream.open:
                raise ServeError(
                    f"stream {job_id!r} is still open; close() it before "
                    "waiting for its result"
                )
            if not self._inflight and self._next_event_time() is None:
                raise ServeError(
                    f"job {job_id!r} cannot progress: nothing in flight "
                    "(pool lost its work?)"
                )
            remaining = None
            if deadline is not None:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    raise TimeoutError(f"job {job_id!r} not done within {timeout} s")
            self._wait_for_progress(remaining)
            self._pump()
        if job.state in (JobState.DONE, JobState.PARTIAL):
            return job.result
        raise JobFailed(
            f"job {job_id!r} {job.state.value}: {job.error or 'no error recorded'}"
        )

    def drain(self, timeout: float | None = None) -> int:
        """Run every admitted job to a terminal state; returns #completed.

        Streams that are still *open* are drained of their currently
        planned work but stay non-terminal — an open stream can always
        grow, so ``drain`` completes what exists and returns rather than
        waiting for a ``close()`` that may never come.  Backed-off
        retries count as pending work: ``drain`` waits out their delay
        and runs the re-dispatch.
        """
        deadline = None if timeout is None else self._clock() + timeout
        self._pump()
        while (
            self._inflight
            or self._scheduler.has_pending_dispatch
            or self._has_deferred_work()
        ):
            if self._closed:
                raise ServeError("service is closed; queued work was abandoned")
            remaining = None
            if deadline is not None:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    raise TimeoutError(f"drain() incomplete after {timeout} s")
            self._wait_for_progress(remaining)
            self._pump()
        return self._jobs_done + self._jobs_failed + self._jobs_partial

    def _has_deferred_work(self) -> bool:
        """Whether any active job holds backed-off retries awaiting release."""
        return any(job.retry_backlog for job in self._active_jobs())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether the service was closed (``close`` or ``shutdown``)."""
        return self._closed

    @property
    def jobs(self) -> dict[str, Job]:
        """All retained job records by id (copy)."""
        return dict(self._jobs)

    @property
    def dispatch_log(self) -> list[tuple[str, str, int]]:
        """(session, job_id, segment_index) in dispatch order."""
        return list(self._scheduler.dispatch_log)

    def stats(self) -> ServiceStats:
        """Aggregate counters: admission, outcomes, cache, streaming."""
        segment = self.segment_cache
        cache_stats = replace(
            self.cache.stats(),
            segment_hits=segment.hits,
            segment_misses=segment.misses,
            segment_disk_hits=segment.disk_hits,
            segment_evictions=segment.evictions,
            segment_entries=len(segment),
            segment_disk_entries=segment.disk_entries,
        )
        return ServiceStats(
            jobs_submitted=self._jobs_submitted,
            jobs_done=self._jobs_done,
            jobs_failed=self._jobs_failed,
            jobs_refused=self.profile.jobs_refused,
            jobs_dropped=self.profile.jobs_dropped,
            jobs_coalesced=self._jobs_coalesced,
            jobs_partial=self._jobs_partial,
            streams_opened=self._streams_opened,
            updates_emitted=self._updates_emitted,
            chunks_refused=self.profile.chunks_refused,
            chunks_dropped=self.profile.chunks_dropped,
            segments_retried=self.profile.segments_retried,
            segments_timed_out=self.profile.segments_timed_out,
            results_corrupted=self.profile.results_corrupted,
            cache=cache_stats,
            segments_dispatched={
                name: session.segments_dispatched
                for name, session in self._scheduler.sessions.items()
            },
            profile=self.profile,
            active_jobs=sum(1 for _ in self._active_jobs()),
            inflight_segments=len(self._inflight),
            queue_depths=self._scheduler.queue_depths(),
        )
