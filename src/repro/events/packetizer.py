"""Event aggregation (the paper's stage ``A``).

The event stream is divided into fixed-size *event frames* (the paper uses
1024 events per frame, "determined according to the sensor's event rate and
storage").  Each frame carries the camera pose at its representative
timestamp; all events of a frame are back-projected with that single pose,
which is the approximation both the original EMVS implementation and the
accelerator make.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from collections.abc import Generator

import numpy as np

from repro.events.containers import EventArray
from repro.geometry.se3 import SE3
from repro.geometry.trajectory import Trajectory

#: Frame size used throughout the paper's evaluation.
DEFAULT_FRAME_SIZE = 1024


@dataclass
class EventFrame:
    """A fixed-size packet of events with its camera pose.

    Attributes
    ----------
    events:
        The aggregated events.
    T_wc:
        Camera pose at :attr:`timestamp` (camera-to-world).
    timestamp:
        Representative time of the frame (midpoint of its span).
    index:
        Position of the frame in the stream.
    is_keyframe:
        Set by key-frame selection (:mod:`repro.core.keyframes`); a key
        frame resets the DSI to a new reference view.
    """

    events: EventArray
    T_wc: SE3
    timestamp: float
    index: int = 0
    is_keyframe: bool = False

    def __len__(self) -> int:
        return len(self.events)


class Packetizer:
    """Streaming aggregator: push events, emit fixed-size frames.

    Mirrors the behaviour of the hardware ingest path: events accumulate in
    a buffer and a frame is emitted whenever ``frame_size`` events are
    available.  The trailing partial frame can be flushed explicitly.
    """

    def __init__(self, trajectory: Trajectory, frame_size: int = DEFAULT_FRAME_SIZE):
        if frame_size < 1:
            raise ValueError("frame_size must be >= 1")
        self._trajectory = trajectory
        self._frame_size = frame_size
        self._pending: list[EventArray] = []
        self._pending_count = 0
        self._emitted = 0

    @property
    def frame_size(self) -> int:
        return self._frame_size

    @property
    def pending_count(self) -> int:
        """Events buffered but not yet emitted (the trailing partial frame)."""
        return self._pending_count

    def drop_pending(self) -> int:
        """Discard the trailing partial frame; returns how many events died.

        The fixed-size hardware buffers drop the same events — callers use
        the returned count to account them (e.g. in
        :attr:`repro.core.results.PipelineProfile.dropped_events`) instead
        of losing them silently.
        """
        dropped = self._pending_count
        self._pending = []
        self._pending_count = 0
        return dropped

    def push(self, events: EventArray) -> list[EventFrame]:
        """Add events to the buffer; return every completed frame."""
        if len(events) == 0:
            return []
        self._pending.append(events)
        self._pending_count += len(events)
        if self._pending_count < self._frame_size:
            return []
        # Merge once, then emit frame-sized slices (views, no re-copy).
        merged = (
            self._pending[0]
            if len(self._pending) == 1
            else EventArray.concatenate(self._pending)
        )
        n_full = self._pending_count // self._frame_size
        frames = [
            self._make_frame(merged[i * self._frame_size : (i + 1) * self._frame_size])
            for i in range(n_full)
        ]
        tail = merged[n_full * self._frame_size :]
        self._pending = [tail] if len(tail) else []
        self._pending_count = len(tail)
        return frames

    def flush(self) -> EventFrame | None:
        """Emit the trailing partial frame, if any."""
        if self._pending_count == 0:
            return None
        merged = EventArray.concatenate(self._pending)
        self._pending = []
        self._pending_count = 0
        return self._make_frame(merged)

    def _make_frame(self, events: EventArray) -> EventFrame:
        t_mid = 0.5 * (events.t_start + events.t_end)
        frame = EventFrame(
            events=events,
            T_wc=self._trajectory.sample(t_mid),
            timestamp=t_mid,
            index=self._emitted,
        )
        self._emitted += 1
        return frame


class ChunkBuffer:
    """Accumulate time-ordered event chunks; split frame-aligned prefixes.

    The streaming counterpart of slicing one materialized stream: chunks
    of any size are appended (:meth:`push`), merged lazily into a single
    contiguous :class:`~repro.events.containers.EventArray`
    (:meth:`merged`, cached between pushes), and consumed from the front
    in event-aligned blocks (:meth:`split`).  Because
    :meth:`EventArray.concatenate` preserves every ``(t, x, y, p)``
    record bit-exactly, a prefix split off a chunk buffer equals the
    same slice of the concatenated stream — the identity streaming
    segment planning (:class:`repro.core.engine.StreamSegmentPlanner`)
    rests on.
    """

    def __init__(self):
        self._parts: list[EventArray] = []
        #: Cumulative end index of each part (for :meth:`timestamp`).
        self._offsets: list[int] = []
        self._count = 0
        self._merged: EventArray | None = None

    def __len__(self) -> int:
        return self._count

    def push(self, events: EventArray) -> None:
        """Append one time-ordered chunk (empty chunks are no-ops)."""
        if len(events) == 0:
            return
        self._parts.append(events)
        self._count += len(events)
        self._offsets.append(self._count)
        self._merged = None

    def timestamp(self, index: int) -> float:
        """Timestamp of the ``index``-th buffered event, without merging.

        A binary search over the parts' cumulative offsets — O(log P)
        and copy-free, so per-frame probes (the streaming planner's
        boundary checks) stay cheap however finely the stream was
        chunked.  The value is the exact float64 the merged array would
        hold at the same index.
        """
        if not 0 <= index < self._count:
            raise IndexError(f"event {index} of a buffer of {self._count}")
        part_index = bisect.bisect_right(self._offsets, index)
        start = self._offsets[part_index - 1] if part_index else 0
        return float(self._parts[part_index].t[index - start])

    def merged(self) -> EventArray:
        """Everything buffered, as one contiguous array (cached)."""
        if self._merged is None:
            if not self._parts:
                self._merged = EventArray.empty()
            elif len(self._parts) == 1:
                self._merged = self._parts[0]
            else:
                self._merged = EventArray.concatenate(self._parts)
                self._parts = [self._merged]
                self._offsets = [self._count]
        return self._merged

    def split(self, n_events: int) -> EventArray:
        """Remove and return the first ``n_events`` buffered events."""
        if not 0 <= n_events <= self._count:
            raise ValueError(
                f"cannot split {n_events} events from a buffer of {self._count}"
            )
        merged = self.merged()
        head = merged[:n_events]
        tail = merged[n_events:]
        self._parts = [tail] if len(tail) else []
        self._count = len(tail)
        self._offsets = [self._count] if len(tail) else []
        self._merged = tail if len(tail) else None
        return head

    def clear(self) -> int:
        """Discard the buffer; returns how many events were dropped."""
        dropped = self._count
        self._parts = []
        self._offsets = []
        self._count = 0
        self._merged = None
        return dropped


def aggregate_frames(
    events: EventArray,
    trajectory: Trajectory,
    frame_size: int = DEFAULT_FRAME_SIZE,
    drop_partial: bool = True,
    return_dropped: bool = False,
) -> list[EventFrame] | tuple[list[EventFrame], int]:
    """Split an event stream into pose-stamped frames.

    Parameters
    ----------
    events:
        Full time-sorted event stream.
    trajectory:
        Known camera trajectory for pose lookup.
    frame_size:
        Events per frame (1024 in the paper).
    drop_partial:
        Drop the trailing frame if it has fewer than ``frame_size`` events
        (matches the fixed-size hardware buffers).
    return_dropped:
        Also return how many trailing events were dropped, mirroring
        :meth:`Packetizer.drop_pending` — callers that account work (e.g.
        ``PipelineProfile.dropped_events``) should pass True instead of
        losing the tail silently.

    Returns
    -------
    The frame list, or ``(frames, n_dropped)`` when ``return_dropped`` is
    True (``n_dropped`` is 0 when ``drop_partial`` is False).
    """
    packetizer = Packetizer(trajectory, frame_size)
    frames = packetizer.push(events)
    if drop_partial:
        dropped = packetizer.drop_pending()
    else:
        dropped = 0
        tail = packetizer.flush()
        if tail is not None:
            frames.append(tail)
    if return_dropped:
        return frames, dropped
    return frames


def n_full_frames(events: EventArray, frame_size: int = DEFAULT_FRAME_SIZE) -> int:
    """How many complete frames a stream yields (the tail is dropped)."""
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    return len(events) // frame_size


def frame_midtimes(
    events: EventArray, frame_size: int = DEFAULT_FRAME_SIZE
) -> np.ndarray:
    """Representative (mid-span) timestamps of every complete frame.

    Computes, without materializing any :class:`EventFrame`, exactly the
    ``timestamp`` values a :class:`Packetizer` would stamp on the frames of
    ``events``: ``0.5 * (t_first + t_last)`` of each ``frame_size`` slice,
    evaluated in the same float64 arithmetic.  Segment planners
    (:func:`repro.core.engine.plan_segments`) rely on this bit-exactness to
    predict key-frame boundaries without running the pipeline.
    """
    n = n_full_frames(events, frame_size)
    if n == 0:
        return np.empty(0, dtype=float)
    ts = events.t
    starts = np.arange(n, dtype=np.int64) * frame_size
    return 0.5 * (ts[starts] + ts[starts + frame_size - 1])


def segment_slice(
    events: EventArray,
    start_frame: int,
    end_frame: int,
    frame_size: int = DEFAULT_FRAME_SIZE,
) -> EventArray:
    """The events of frames ``[start_frame, end_frame)`` as one slice.

    Frame-aligned by construction, so re-packetizing the slice with the
    same ``frame_size`` reproduces the original frames (same events, same
    mid-span timestamps) — the property per-segment parallel runs rest on.
    """
    if not 0 <= start_frame <= end_frame:
        raise ValueError("need 0 <= start_frame <= end_frame")
    if end_frame * frame_size > len(events):
        raise ValueError(
            f"segment [{start_frame}, {end_frame}) needs "
            f"{end_frame * frame_size} events but the stream has {len(events)}"
        )
    return events[start_frame * frame_size : end_frame * frame_size]


def iter_frames(
    events: EventArray,
    trajectory: Trajectory,
    frame_size: int = DEFAULT_FRAME_SIZE,
) -> Generator[EventFrame, None, int]:
    """Generator variant of :func:`aggregate_frames` for streaming use.

    Yields exactly the frames of ``aggregate_frames(drop_partial=True)``:
    the trailing partial frame is dropped, never yielded.  The generator's
    ``return`` value (``StopIteration.value``, or the target of
    ``yield from``) carries the dropped-event count so streaming drivers
    can account the tail just like :meth:`Packetizer.drop_pending` users.
    """
    packetizer = Packetizer(trajectory, frame_size)
    for start in range(0, len(events), frame_size):
        yield from packetizer.push(events[start : start + frame_size])
    return packetizer.drop_pending()
