"""Procedural replicas of the four evaluation sequences.

The paper evaluates on four sequences of the Event Camera Dataset
(Mueggler et al., IJRR 2017): ``simulation_3planes`` and
``simulation_3walls`` (simulated), ``slider_close`` and ``slider_far``
(recorded on a motorized linear slider).  The dataset itself is not
available offline, so this module synthesizes sequences with the same
structure: identical sensor (240x180 DAVIS), analogous scene geometry,
slider-style trajectories, and exact ground-truth depth via the scene ray
caster.  See DESIGN.md §2 for the substitution argument.

Sequences are deterministic for a given (name, quality) pair and cached
in-process, since generating one takes a couple of seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.events.containers import EventArray
from repro.events.scenes import (
    PlanarScene,
    corridor_scene,
    slider_scene,
    three_planes_scene,
    three_walls_scene,
)
from repro.events.simulator import (
    EventCameraSimulator,
    SimulatorConfig,
    simulate_rig,
)
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3, Quaternion
from repro.geometry.trajectory import Trajectory, linear_trajectory

#: The paper's four evaluation sequences, in the paper's order.
SEQUENCE_NAMES = (
    "simulation_3planes",
    "simulation_3walls",
    "slider_close",
    "slider_far",
)

#: Extended scenario sequences beyond the paper: longer trajectories that
#: cross many key-frame segments, built for multi-keyframe parallel
#: mapping (see :mod:`repro.core.mapping`).  Kept out of
#: :data:`SEQUENCE_NAMES` so the paper benchmarks stay exactly the
#: published four-sequence suite.
SCENARIO_NAMES = (
    "slider_long",
    "corridor_sweep",
)

#: Every name :func:`load_sequence` accepts.
ALL_SEQUENCE_NAMES = SEQUENCE_NAMES + SCENARIO_NAMES

#: Multi-camera rig scenarios (see :func:`load_rig_sequence`): the same
#: scene observed by extrinsically-offset cameras with shared timestamps,
#: built for the stereo / N-camera fusion layer (:mod:`repro.core.rig`).
RIG_SCENARIO_NAMES = (
    "slider_stereo",
    "corridor_rig3",
)

#: Short labels used in the paper's figures and reports.
SHORT_NAMES = {
    "simulation_3planes": "3planes",
    "simulation_3walls": "3walls",
    "slider_close": "close",
    "slider_far": "far",
    "slider_long": "long",
    "corridor_sweep": "corridor",
    "slider_stereo": "stereo",
    "corridor_rig3": "rig3",
}


@dataclass(frozen=True)
class Sequence:
    """A loaded evaluation sequence.

    Attributes
    ----------
    name:
        One of :data:`SEQUENCE_NAMES`.
    events:
        Raw sensor events (integer pixel coordinates, time sorted).
    trajectory:
        Ground-truth camera trajectory ``T_wc``.
    camera:
        Sensor calibration (240x180; the slider replicas carry lens
        distortion like the real recordings).
    scene:
        The generating scene — provides analytic ground-truth depth.
    depth_range:
        ``(z_min, z_max)`` bounds for the DSI, analogous to the dataset's
        published scene depth ranges.
    keyframe_distance:
        Recommended key-frame translation threshold (metres) for
        multi-keyframe mapping over this sequence, or ``None`` when the
        sequence is short enough that a single reference view suffices
        (the paper's four sequences).  The CLI uses it as the
        ``--keyframe-distance`` default.
    """

    name: str
    events: EventArray
    trajectory: Trajectory
    camera: PinholeCamera
    scene: PlanarScene
    depth_range: tuple[float, float]
    keyframe_distance: float | None = None

    @property
    def short_name(self) -> str:
        return SHORT_NAMES[self.name]

    def gt_depth_at(self, T_wc: SE3, pixels: np.ndarray) -> np.ndarray:
        """Ground-truth depth at (sub-pixel) positions of an arbitrary view."""
        return self.scene.depth_at_pixels(self.camera, T_wc, pixels)


def _quality_steps(quality: str, full: int) -> int:
    """Render-step count for a quality preset (``fast`` for unit tests)."""
    if quality == "full":
        return full
    if quality == "fast":
        return max(40, full // 4)
    raise ValueError(f"unknown quality {quality!r}; use 'full' or 'fast'")


def _build_simulation_3planes(quality: str) -> Sequence:
    scene = three_planes_scene()
    camera = PinholeCamera.davis240c(distorted=False)
    trajectory = linear_trajectory(
        start=[-0.25, 0.02, 0.0],
        end=[0.25, -0.02, 0.0],
        duration=2.0,
        n_poses=201,
    )
    config = SimulatorConfig(
        contrast_threshold=0.15,
        n_render_steps=_quality_steps(quality, 320),
        seed=1,
    )
    events = EventCameraSimulator(scene, camera, trajectory, config).run()
    return Sequence(
        name="simulation_3planes",
        events=events,
        trajectory=trajectory,
        camera=camera,
        scene=scene,
        depth_range=(0.6, 3.6),
    )


def _build_simulation_3walls(quality: str) -> Sequence:
    scene = three_walls_scene()
    camera = PinholeCamera.davis240c(distorted=False)
    trajectory = linear_trajectory(
        start=[-0.35, 0.0, 0.0],
        end=[0.35, 0.05, 0.1],
        duration=2.0,
        n_poses=201,
    )
    config = SimulatorConfig(
        contrast_threshold=0.15,
        n_render_steps=_quality_steps(quality, 320),
        seed=2,
    )
    events = EventCameraSimulator(scene, camera, trajectory, config).run()
    return Sequence(
        name="simulation_3walls",
        events=events,
        trajectory=trajectory,
        camera=camera,
        scene=scene,
        depth_range=(0.8, 4.0),
    )


def _build_slider(name: str, mean_depth: float, seed: int, quality: str) -> Sequence:
    scene = slider_scene(mean_depth, seed=seed)
    camera = PinholeCamera.davis240c(distorted=False)
    # The physical slider is ~40 cm long; keep the baseline proportional to
    # the scene depth so both sequences sweep comparable parallax.
    half_span = min(0.2, 0.45 * mean_depth)
    trajectory = linear_trajectory(
        start=[-half_span, 0.0, 0.0],
        end=[half_span, 0.0, 0.0],
        duration=1.6,
        n_poses=161,
        rotation=Quaternion.identity(),
    )
    config = SimulatorConfig(
        contrast_threshold=0.17,
        n_render_steps=_quality_steps(quality, 280),
        threshold_mismatch=0.03,  # real-sensor non-idealities
        noise_rate=0.05,
        seed=seed,
    )
    events = EventCameraSimulator(scene, camera, trajectory, config).run()
    return Sequence(
        name=name,
        events=events,
        trajectory=trajectory,
        camera=camera,
        scene=scene,
        depth_range=(0.55 * mean_depth, 2.2 * mean_depth),
    )


def _build_slider_long(quality: str) -> Sequence:
    """Long-baseline slider sweep crossing many key-frame segments.

    Same slider-style scene family as ``slider_close``/``slider_far`` but
    with a board wide enough to stay textured across a 0.9 m sweep — a
    ~7-segment workload at the recommended key-frame distance, versus the
    single-reference paper sequences.
    """
    mean_depth = 0.9
    scene = slider_scene(mean_depth, seed=9)
    camera = PinholeCamera.davis240c(distorted=False)
    trajectory = linear_trajectory(
        start=[-0.45, 0.0, 0.0],
        end=[0.45, 0.0, 0.0],
        duration=3.2,
        n_poses=321,
        rotation=Quaternion.identity(),
    )
    config = SimulatorConfig(
        contrast_threshold=0.17,
        n_render_steps=_quality_steps(quality, 560),
        threshold_mismatch=0.03,
        noise_rate=0.05,
        seed=9,
    )
    events = EventCameraSimulator(scene, camera, trajectory, config).run()
    return Sequence(
        name="slider_long",
        events=events,
        trajectory=trajectory,
        camera=camera,
        scene=scene,
        depth_range=(0.55 * mean_depth, 2.2 * mean_depth),
        keyframe_distance=0.15 * mean_depth,
    )


def _build_corridor_sweep(quality: str) -> Sequence:
    """Forward sweep down a textured corridor: continuously fresh structure.

    The camera translates 2.4 m along the corridor axis; side-wall texture
    sweeps outward through the field of view, so each key-frame segment
    observes different geometry — the fused global map genuinely unions
    per-segment reconstructions instead of re-seeing one board.
    """
    scene = corridor_scene(half_width=0.8, length=6.0, seed=31)
    camera = PinholeCamera.davis240c(distorted=False)
    trajectory = linear_trajectory(
        start=[0.0, 0.0, 0.0],
        end=[0.0, 0.0, 2.4],
        duration=4.0,
        n_poses=401,
        rotation=Quaternion.identity(),
    )
    config = SimulatorConfig(
        contrast_threshold=0.16,
        n_render_steps=_quality_steps(quality, 640),
        seed=31,
    )
    events = EventCameraSimulator(scene, camera, trajectory, config).run()
    return Sequence(
        name="corridor_sweep",
        events=events,
        trajectory=trajectory,
        camera=camera,
        scene=scene,
        depth_range=(1.1, 6.5),
        keyframe_distance=0.3,
    )


_BUILDERS = {
    "simulation_3planes": lambda q: _build_simulation_3planes(q),
    "simulation_3walls": lambda q: _build_simulation_3walls(q),
    "slider_close": lambda q: _build_slider("slider_close", 0.45, seed=3, quality=q),
    "slider_far": lambda q: _build_slider("slider_far", 1.3, seed=4, quality=q),
    "slider_long": lambda q: _build_slider_long(q),
    "corridor_sweep": lambda q: _build_corridor_sweep(q),
}


@dataclass(frozen=True)
class RigSequence:
    """A loaded multi-camera rig scenario.

    Structure-compatible with :class:`Sequence` where evaluation needs
    it (``scene``, ``depth_range``, ``camera``, ``gt_depth_at``), so
    :func:`repro.eval.evaluate_fused_map` consumes one directly.  The
    per-camera streams share timestamps — every camera observed the same
    scene over the same span, from ``trajectory`` (the rig *body*'s
    ``T_w_rig``) composed with its mounting extrinsic.

    Attributes
    ----------
    name:
        One of :data:`RIG_SCENARIO_NAMES`.
    events:
        Ordered ``{camera name: EventArray}`` in extrinsic order.
    trajectory:
        The rig body's ground-truth trajectory ``T_w_rig(t)``.
    extrinsics:
        Per-camera mounting poses ``T_rig_cam``, in camera order.
    camera:
        The (shared) sensor calibration of every rig camera.
    scene:
        The generating scene — analytic ground-truth depth.
    depth_range:
        DSI bounds shared by all cameras (the scene is the same).
    keyframe_distance:
        Recommended key-frame translation threshold (metres).
    """

    name: str
    events: dict[str, EventArray]
    trajectory: Trajectory
    extrinsics: tuple[SE3, ...]
    camera: PinholeCamera
    scene: PlanarScene
    depth_range: tuple[float, float]
    keyframe_distance: float

    @property
    def short_name(self) -> str:
        return SHORT_NAMES[self.name]

    @property
    def camera_names(self) -> tuple[str, ...]:
        """Camera names in rig order."""
        return tuple(self.events)

    @property
    def n_cameras(self) -> int:
        """Number of cameras in the rig."""
        return len(self.extrinsics)

    def gt_depth_at(self, T_wc: SE3, pixels: np.ndarray) -> np.ndarray:
        """Ground-truth depth at (sub-pixel) positions of an arbitrary view."""
        return self.scene.depth_at_pixels(self.camera, T_wc, pixels)


def _build_slider_stereo(quality: str) -> RigSequence:
    """Horizontal stereo pair sweeping the slider board.

    Two identical sensors 8 cm apart ride the slider together.  Sensor
    non-idealities are on (per-camera seeds, so threshold mismatch and
    background noise are *uncorrelated* between the eyes) — exactly the
    regime where ``min_cameras=2`` agreement rejects what monocular
    fusion cannot: each camera's noise lands in voxels the other never
    votes for.
    """
    mean_depth = 0.9
    scene = slider_scene(mean_depth, seed=17)
    camera = PinholeCamera.davis240c(distorted=False)
    trajectory = linear_trajectory(
        start=[-0.3, 0.0, 0.0],
        end=[0.3, 0.0, 0.0],
        duration=2.4,
        n_poses=241,
        rotation=Quaternion.identity(),
    )
    extrinsics = (
        SE3.identity(),
        SE3(np.eye(3), np.array([0.08, 0.0, 0.0])),
    )
    config = SimulatorConfig(
        contrast_threshold=0.17,
        n_render_steps=_quality_steps(quality, 480),
        threshold_mismatch=0.04,
        noise_rate=0.12,
        seed=17,
    )
    events = simulate_rig(scene, camera, trajectory, extrinsics, config)
    return RigSequence(
        name="slider_stereo",
        events=events,
        trajectory=trajectory,
        extrinsics=extrinsics,
        camera=camera,
        scene=scene,
        depth_range=(0.55 * mean_depth, 2.2 * mean_depth),
        keyframe_distance=0.15 * mean_depth,
    )


def _build_corridor_rig3(quality: str) -> RigSequence:
    """Three-camera rig sweeping the corridor: center plus two toed-out eyes.

    The side cameras sit 6 cm off-axis with a 3° outward yaw, so all
    three overlap on the corridor walls while each sees a slightly
    different slice — voxels supported by ≥2 cameras are real structure,
    single-camera voxels are dominated by per-sensor noise.
    """
    scene = corridor_scene(half_width=0.8, length=6.0, seed=23)
    camera = PinholeCamera.davis240c(distorted=False)
    trajectory = linear_trajectory(
        start=[0.0, 0.0, 0.0],
        end=[0.0, 0.0, 1.6],
        duration=3.0,
        n_poses=301,
        rotation=Quaternion.identity(),
    )
    yaw = np.deg2rad(3.0)
    extrinsics = (
        SE3(
            Quaternion.from_axis_angle(np.array([0.0, 1.0, 0.0]), -yaw),
            np.array([-0.06, 0.0, 0.0]),
        ),
        SE3.identity(),
        SE3(
            Quaternion.from_axis_angle(np.array([0.0, 1.0, 0.0]), yaw),
            np.array([0.06, 0.0, 0.0]),
        ),
    )
    config = SimulatorConfig(
        contrast_threshold=0.16,
        n_render_steps=_quality_steps(quality, 480),
        threshold_mismatch=0.03,
        noise_rate=0.1,
        seed=23,
    )
    events = simulate_rig(
        scene,
        camera,
        trajectory,
        extrinsics,
        config,
        names=["left", "center", "right"],
    )
    return RigSequence(
        name="corridor_rig3",
        events=events,
        trajectory=trajectory,
        extrinsics=extrinsics,
        camera=camera,
        scene=scene,
        depth_range=(1.1, 6.5),
        keyframe_distance=0.3,
    )


_RIG_BUILDERS = {
    "slider_stereo": _build_slider_stereo,
    "corridor_rig3": _build_corridor_rig3,
}


@lru_cache(maxsize=4)
def load_rig_sequence(name: str, quality: str = "full") -> RigSequence:
    """Load (generate) one multi-camera rig scenario.

    Parameters
    ----------
    name:
        One of :data:`RIG_SCENARIO_NAMES`.
    quality:
        ``"full"`` for evaluation fidelity, ``"fast"`` for quick tests.
    """
    if name not in _RIG_BUILDERS:
        raise KeyError(
            f"unknown rig sequence {name!r}; "
            f"available: {', '.join(RIG_SCENARIO_NAMES)}"
        )
    return _RIG_BUILDERS[name](quality)


@lru_cache(maxsize=8)
def load_sequence(name: str, quality: str = "full") -> Sequence:
    """Load (generate) one of the four evaluation sequences.

    Parameters
    ----------
    name:
        One of :data:`ALL_SEQUENCE_NAMES` (the paper's four plus the
        extended multi-keyframe scenarios).
    quality:
        ``"full"`` for evaluation fidelity, ``"fast"`` for quick tests
        (coarser temporal sampling, ~4x fewer events).
    """
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown sequence {name!r}; available: {', '.join(ALL_SEQUENCE_NAMES)}"
        )
    return _BUILDERS[name](quality)
