"""Procedural replicas of the four evaluation sequences.

The paper evaluates on four sequences of the Event Camera Dataset
(Mueggler et al., IJRR 2017): ``simulation_3planes`` and
``simulation_3walls`` (simulated), ``slider_close`` and ``slider_far``
(recorded on a motorized linear slider).  The dataset itself is not
available offline, so this module synthesizes sequences with the same
structure: identical sensor (240x180 DAVIS), analogous scene geometry,
slider-style trajectories, and exact ground-truth depth via the scene ray
caster.  See DESIGN.md §2 for the substitution argument.

Sequences are deterministic for a given (name, quality) pair and cached
in-process, since generating one takes a couple of seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.events.containers import EventArray
from repro.events.scenes import (
    PlanarScene,
    slider_scene,
    three_planes_scene,
    three_walls_scene,
)
from repro.events.simulator import EventCameraSimulator, SimulatorConfig
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3, Quaternion
from repro.geometry.trajectory import Trajectory, linear_trajectory

#: Names accepted by :func:`load_sequence`, in the paper's order.
SEQUENCE_NAMES = (
    "simulation_3planes",
    "simulation_3walls",
    "slider_close",
    "slider_far",
)

#: Short labels used in the paper's figures.
SHORT_NAMES = {
    "simulation_3planes": "3planes",
    "simulation_3walls": "3walls",
    "slider_close": "close",
    "slider_far": "far",
}


@dataclass(frozen=True)
class Sequence:
    """A loaded evaluation sequence.

    Attributes
    ----------
    name:
        One of :data:`SEQUENCE_NAMES`.
    events:
        Raw sensor events (integer pixel coordinates, time sorted).
    trajectory:
        Ground-truth camera trajectory ``T_wc``.
    camera:
        Sensor calibration (240x180; the slider replicas carry lens
        distortion like the real recordings).
    scene:
        The generating scene — provides analytic ground-truth depth.
    depth_range:
        ``(z_min, z_max)`` bounds for the DSI, analogous to the dataset's
        published scene depth ranges.
    """

    name: str
    events: EventArray
    trajectory: Trajectory
    camera: PinholeCamera
    scene: PlanarScene
    depth_range: tuple[float, float]

    @property
    def short_name(self) -> str:
        return SHORT_NAMES[self.name]

    def gt_depth_at(self, T_wc: SE3, pixels: np.ndarray) -> np.ndarray:
        """Ground-truth depth at (sub-pixel) positions of an arbitrary view."""
        return self.scene.depth_at_pixels(self.camera, T_wc, pixels)


def _quality_steps(quality: str, full: int) -> int:
    """Render-step count for a quality preset (``fast`` for unit tests)."""
    if quality == "full":
        return full
    if quality == "fast":
        return max(40, full // 4)
    raise ValueError(f"unknown quality {quality!r}; use 'full' or 'fast'")


def _build_simulation_3planes(quality: str) -> Sequence:
    scene = three_planes_scene()
    camera = PinholeCamera.davis240c(distorted=False)
    trajectory = linear_trajectory(
        start=[-0.25, 0.02, 0.0],
        end=[0.25, -0.02, 0.0],
        duration=2.0,
        n_poses=201,
    )
    config = SimulatorConfig(
        contrast_threshold=0.15,
        n_render_steps=_quality_steps(quality, 320),
        seed=1,
    )
    events = EventCameraSimulator(scene, camera, trajectory, config).run()
    return Sequence(
        name="simulation_3planes",
        events=events,
        trajectory=trajectory,
        camera=camera,
        scene=scene,
        depth_range=(0.6, 3.6),
    )


def _build_simulation_3walls(quality: str) -> Sequence:
    scene = three_walls_scene()
    camera = PinholeCamera.davis240c(distorted=False)
    trajectory = linear_trajectory(
        start=[-0.35, 0.0, 0.0],
        end=[0.35, 0.05, 0.1],
        duration=2.0,
        n_poses=201,
    )
    config = SimulatorConfig(
        contrast_threshold=0.15,
        n_render_steps=_quality_steps(quality, 320),
        seed=2,
    )
    events = EventCameraSimulator(scene, camera, trajectory, config).run()
    return Sequence(
        name="simulation_3walls",
        events=events,
        trajectory=trajectory,
        camera=camera,
        scene=scene,
        depth_range=(0.8, 4.0),
    )


def _build_slider(name: str, mean_depth: float, seed: int, quality: str) -> Sequence:
    scene = slider_scene(mean_depth, seed=seed)
    camera = PinholeCamera.davis240c(distorted=False)
    # The physical slider is ~40 cm long; keep the baseline proportional to
    # the scene depth so both sequences sweep comparable parallax.
    half_span = min(0.2, 0.45 * mean_depth)
    trajectory = linear_trajectory(
        start=[-half_span, 0.0, 0.0],
        end=[half_span, 0.0, 0.0],
        duration=1.6,
        n_poses=161,
        rotation=Quaternion.identity(),
    )
    config = SimulatorConfig(
        contrast_threshold=0.17,
        n_render_steps=_quality_steps(quality, 280),
        threshold_mismatch=0.03,  # real-sensor non-idealities
        noise_rate=0.05,
        seed=seed,
    )
    events = EventCameraSimulator(scene, camera, trajectory, config).run()
    return Sequence(
        name=name,
        events=events,
        trajectory=trajectory,
        camera=camera,
        scene=scene,
        depth_range=(0.55 * mean_depth, 2.2 * mean_depth),
    )


_BUILDERS = {
    "simulation_3planes": lambda q: _build_simulation_3planes(q),
    "simulation_3walls": lambda q: _build_simulation_3walls(q),
    "slider_close": lambda q: _build_slider("slider_close", 0.45, seed=3, quality=q),
    "slider_far": lambda q: _build_slider("slider_far", 1.3, seed=4, quality=q),
}


@lru_cache(maxsize=8)
def load_sequence(name: str, quality: str = "full") -> Sequence:
    """Load (generate) one of the four evaluation sequences.

    Parameters
    ----------
    name:
        One of :data:`SEQUENCE_NAMES`.
    quality:
        ``"full"`` for evaluation fidelity, ``"fast"`` for quick tests
        (coarser temporal sampling, ~4x fewer events).
    """
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown sequence {name!r}; available: {', '.join(SEQUENCE_NAMES)}"
        )
    return _BUILDERS[name](quality)
