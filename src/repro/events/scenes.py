"""Ray-cast planar scenes with analytic ground-truth depth.

The four paper sequences all view piecewise-planar structure (three
fronto-parallel planes, a three-wall room corner, and textured boards on a
linear slider), so a planar-scene ray caster reproduces both their imagery
and — crucially for AbsRel evaluation — their *exact* depth maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.events import texture as tex
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3

_EPS = 1e-12


@dataclass
class TexturedPlane:
    """A finite textured rectangle in world space.

    The plane passes through ``origin`` and is spanned by the orthonormal
    in-plane axes ``u_axis`` and ``v_axis``; its normal is their cross
    product.  ``half_u``/``half_v`` bound the rectangle (``inf`` = infinite
    wall).  ``texture`` maps local metric ``(u, v)`` to intensity.
    """

    origin: np.ndarray
    u_axis: np.ndarray
    v_axis: np.ndarray
    half_u: float = np.inf
    half_v: float = np.inf
    texture: object = field(default_factory=tex.checkerboard)
    name: str = "plane"

    def __post_init__(self) -> None:
        self.origin = np.asarray(self.origin, dtype=float).reshape(3)
        u = np.asarray(self.u_axis, dtype=float).reshape(3)
        v = np.asarray(self.v_axis, dtype=float).reshape(3)
        u = u / np.linalg.norm(u)
        v = v - np.dot(v, u) * u  # re-orthogonalize defensively
        v_norm = np.linalg.norm(v)
        if v_norm < _EPS:
            raise ValueError("u_axis and v_axis must be linearly independent")
        v = v / v_norm
        self.u_axis = u
        self.v_axis = v

    @property
    def normal(self) -> np.ndarray:
        return np.cross(self.u_axis, self.v_axis)

    def intersect(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Ray/rectangle intersection.

        Parameters
        ----------
        origins, directions:
            ``(N, 3)`` ray origins and (not necessarily unit) directions.

        Returns
        -------
        ``(t, u, v)`` arrays of shape ``(N,)``; ``t`` is the ray parameter
        (``inf`` for misses) and ``(u, v)`` the local plane coordinates.
        """
        origins = np.atleast_2d(origins)
        directions = np.atleast_2d(directions)
        n = self.normal
        denom = directions @ n
        num = (self.origin - origins) @ n
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(np.abs(denom) > _EPS, num / denom, np.inf)
        t = np.where(t > _EPS, t, np.inf)

        # Local plane coordinates (misses get a dummy hit point; they are
        # excluded below, this just keeps inf * 0 NaNs out of the matmul).
        t_safe = np.where(np.isfinite(t), t, 0.0)
        hit = origins + t_safe[:, None] * directions - self.origin
        u = hit @ self.u_axis
        v = hit @ self.v_axis
        inside = (np.abs(u) <= self.half_u) & (np.abs(v) <= self.half_v)
        t = np.where(inside & np.isfinite(t), t, np.inf)
        return t, u, v

    def shade(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        return np.asarray(self.texture(u, v), dtype=float)


@dataclass
class PlanarScene:
    """Collection of textured planes with a uniform background."""

    planes: list[TexturedPlane] = field(default_factory=list)
    background: float = 0.4
    name: str = "scene"

    def _pixel_rays_world(
        self, camera: PinholeCamera, T_wc: SE3
    ) -> tuple[np.ndarray, np.ndarray]:
        """World-frame rays for every pixel.

        Directions keep camera-frame ``Z = 1`` scaling so the returned ray
        parameter *is* the camera-frame depth.
        """
        rays_cam = camera.back_project(camera.pixel_grid(), undistort=False)
        dirs = rays_cam @ T_wc.rotation.T
        origins = np.broadcast_to(T_wc.translation, dirs.shape)
        return origins, dirs

    def _trace(
        self, origins: np.ndarray, dirs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-hit trace: returns (depth, intensity) per ray."""
        n = origins.shape[0]
        best_t = np.full(n, np.inf)
        intensity = np.full(n, self.background)
        for plane in self.planes:
            t, u, v = plane.intersect(origins, dirs)
            closer = t < best_t
            if np.any(closer):
                shade = plane.shade(u[closer], v[closer])
                intensity[closer] = shade
                best_t[closer] = t[closer]
        return best_t, intensity

    def render(self, camera: PinholeCamera, T_wc: SE3) -> np.ndarray:
        """Intensity image ``(H, W)`` in ``[0, 1]`` seen from pose ``T_wc``."""
        origins, dirs = self._pixel_rays_world(camera, T_wc)
        _, intensity = self._trace(origins, dirs)
        return intensity.reshape(camera.height, camera.width)

    def depth_map(self, camera: PinholeCamera, T_wc: SE3) -> np.ndarray:
        """Ground-truth camera-frame depth ``(H, W)`` (``inf`` = background)."""
        origins, dirs = self._pixel_rays_world(camera, T_wc)
        depth, _ = self._trace(origins, dirs)
        return depth.reshape(camera.height, camera.width)

    def depth_at_pixels(
        self, camera: PinholeCamera, T_wc: SE3, pixels: np.ndarray
    ) -> np.ndarray:
        """Ground-truth depth at arbitrary (sub-pixel) image positions."""
        rays_cam = camera.back_project(pixels, undistort=False)
        dirs = rays_cam @ T_wc.rotation.T
        origins = np.broadcast_to(T_wc.translation, dirs.shape)
        depth, _ = self._trace(origins, dirs)
        return depth

    def depth_extent(self, camera: PinholeCamera, T_wc: SE3) -> tuple[float, float]:
        """(min, max) finite scene depth from a pose — used to size the DSI."""
        depth = self.depth_map(camera, T_wc)
        finite = depth[np.isfinite(depth)]
        if finite.size == 0:
            raise ValueError("no scene structure visible from this pose")
        return float(finite.min()), float(finite.max())


# ----------------------------------------------------------------------
# Scene builders replicating the paper's four sequences
# ----------------------------------------------------------------------
_X = np.array([1.0, 0.0, 0.0])
_Y = np.array([0.0, 1.0, 0.0])


def three_planes_scene() -> PlanarScene:
    """Replica of ``simulation_3planes``: three textured planes in depth.

    Three fronto-parallel square boards at staggered depths and lateral
    offsets, each with a distinct texture, viewed by a laterally translating
    camera.
    """
    # All planes carry fine-grained aperiodic textures: the dataset's
    # simulated planes show natural imagery, and periodic patterns
    # (checkerboards, stripes) would manufacture depth-aliasing ghost
    # maxima in the DSI that the real sequences do not exhibit.  The
    # noise scale is chosen so edge features subtend ~10-15 pixels,
    # keeping the event rate comparable to the original recordings.
    planes = [
        TexturedPlane(
            origin=[-0.45, 0.05, 1.0],
            u_axis=_X,
            v_axis=_Y,
            half_u=0.45,
            half_v=0.40,
            texture=tex.quantized_noise(seed=5, scale=0.07, levels=5),
            name="near",
        ),
        TexturedPlane(
            origin=[0.25, -0.10, 1.7],
            u_axis=_X,
            v_axis=_Y,
            half_u=0.55,
            half_v=0.50,
            texture=tex.quantized_noise(seed=21, scale=0.11, levels=4),
            name="mid",
        ),
        TexturedPlane(
            origin=[0.0, 0.15, 2.5],
            u_axis=_X,
            v_axis=_Y,
            half_u=1.1,
            half_v=0.9,
            texture=tex.quantized_noise(seed=7, scale=0.16, levels=4),
            name="far",
        ),
    ]
    return PlanarScene(planes=planes, background=0.4, name="3planes")


def three_walls_scene() -> PlanarScene:
    """Replica of ``simulation_3walls``: a textured three-wall room corner."""
    # Aperiodic textures throughout (see three_planes_scene for why).
    planes = [
        TexturedPlane(  # back wall, fronto-parallel at z = 2.6
            origin=[0.0, 0.0, 2.6],
            u_axis=_X,
            v_axis=_Y,
            half_u=1.6,
            half_v=1.2,
            texture=tex.quantized_noise(seed=11, scale=0.18, levels=4),
            name="back",
        ),
        TexturedPlane(  # left wall, slanted toward the viewer
            origin=[-1.4, 0.0, 1.6],
            u_axis=np.array([0.45, 0.0, -1.0]),
            v_axis=_Y,
            half_u=1.3,
            half_v=1.2,
            texture=tex.quantized_noise(seed=12, scale=0.12, levels=5),
            name="left",
        ),
        TexturedPlane(  # right wall, slanted the other way
            origin=[1.4, 0.0, 1.6],
            u_axis=np.array([0.45, 0.0, 1.0]),
            v_axis=_Y,
            half_u=1.3,
            half_v=1.2,
            texture=tex.quantized_noise(seed=13, scale=0.12, levels=5),
            name="right",
        ),
    ]
    return PlanarScene(planes=planes, background=0.35, name="3walls")


def corridor_scene(
    half_width: float = 0.8,
    length: float = 6.0,
    seed: int = 31,
) -> PlanarScene:
    """A textured corridor: two side walls flanking the motion axis + end wall.

    Built for the *long multi-keyframe* scenario sequences: a camera
    translating down the corridor sees wall texture sweep past with depth
    varying continuously along each wall, so every key-frame segment views
    fresh structure — the workload parallel mapping shards.
    """
    if half_width <= 0 or length <= 0:
        raise ValueError("corridor dimensions must be positive")
    z_mid = 0.5 * length
    planes = [
        TexturedPlane(  # left wall, spanned along the corridor (Z) and Y
            origin=[-half_width, 0.0, z_mid],
            u_axis=np.array([0.0, 0.0, 1.0]),
            v_axis=_Y,
            half_u=z_mid + 1.0,
            half_v=1.0,
            texture=tex.quantized_noise(seed=seed, scale=0.14, levels=5),
            name="left",
        ),
        TexturedPlane(  # right wall
            origin=[half_width, 0.0, z_mid],
            u_axis=np.array([0.0, 0.0, 1.0]),
            v_axis=_Y,
            half_u=z_mid + 1.0,
            half_v=1.0,
            texture=tex.quantized_noise(seed=seed + 1, scale=0.14, levels=5),
            name="right",
        ),
        TexturedPlane(  # end wall closing the corridor
            origin=[0.0, 0.0, length],
            u_axis=_X,
            v_axis=_Y,
            half_u=2.5,
            half_v=1.8,
            texture=tex.quantized_noise(seed=seed + 2, scale=0.2, levels=4),
            name="end",
        ),
    ]
    return PlanarScene(planes=planes, background=0.4, name="corridor")


def slider_scene(mean_depth: float, seed: int = 3) -> PlanarScene:
    """Replica of the ``slider_*`` scenes: textured boards facing a slider.

    The real recordings view highly textured posters/objects from a DAVIS on
    a motorized linear slider.  ``mean_depth`` sets the dominant board depth
    (small for ``slider_close``, larger for ``slider_far``); a second offset
    board adds depth variation.
    """
    if mean_depth <= 0:
        raise ValueError("mean_depth must be positive")
    main_extent = 1.4 * mean_depth
    planes = [
        TexturedPlane(
            origin=[0.0, 0.0, mean_depth],
            u_axis=_X,
            v_axis=_Y,
            half_u=main_extent,
            half_v=main_extent,
            texture=tex.quantized_noise(
                seed=seed, scale=0.22 * mean_depth, levels=5
            ),
            name="board",
        ),
        TexturedPlane(
            origin=[-0.35 * mean_depth, -0.1 * mean_depth, 0.8 * mean_depth],
            u_axis=_X,
            v_axis=_Y,
            half_u=0.28 * mean_depth,
            half_v=0.35 * mean_depth,
            texture=tex.checkerboard(period=0.09 * mean_depth),
            name="foreground",
        ),
    ]
    return PlanarScene(planes=planes, background=0.45, name=f"slider_{mean_depth}")
