"""Event-camera simulator.

Generates DAVIS-style event streams from a ray-cast scene and a camera
trajectory using the standard log-intensity threshold-crossing model (as in
ESIM, Rebecq et al., CoRL 2018, and the simulator shipped with the Event
Camera Dataset):

* the scene is rendered at a fixed number of steps along the trajectory;
* every pixel tracks a per-pixel *reference* log intensity;
* whenever the (linearly interpolated) log intensity crosses the reference
  by the contrast threshold ``C``, an event fires at the interpolated
  crossing time and the reference steps by ``±C``.

Optional per-pixel threshold mismatch and salt-and-pepper noise events model
the non-idealities of a real DAVIS sensor (enabled for the ``slider_*``
replicas, disabled for the ``simulation_*`` ones).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.events.containers import EventArray
from repro.events.scenes import PlanarScene
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3
from repro.geometry.trajectory import Trajectory


@dataclass(frozen=True)
class SimulatorConfig:
    """Tuning knobs of the event generation model.

    Attributes
    ----------
    contrast_threshold:
        Log-intensity step ``C`` that triggers one event (DAVIS nominal
        sensitivity is 10-20 %; 0.15 is a common default).
    n_render_steps:
        Number of rendered poses along the trajectory.  The linear
        interpolation between renders means this bounds temporal resolution.
    log_eps:
        Offset inside the logarithm to keep ``log(I + eps)`` finite.
    threshold_mismatch:
        Relative std-dev of the fixed per-pixel threshold variation
        (sensor mismatch, typically a few percent).
    noise_rate:
        Expected uniformly-distributed spurious events per pixel per second
        (background activity).
    max_events_per_pixel_per_step:
        Safety clamp against pathological texture/step combinations.
    seed:
        Seed for mismatch and noise generation (the signal path itself is
        deterministic).
    """

    contrast_threshold: float = 0.15
    n_render_steps: int = 300
    log_eps: float = 1e-2
    threshold_mismatch: float = 0.0
    noise_rate: float = 0.0
    max_events_per_pixel_per_step: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.contrast_threshold <= 0:
            raise ValueError("contrast_threshold must be positive")
        if self.n_render_steps < 2:
            raise ValueError("need at least 2 render steps")


class EventCameraSimulator:
    """Simulates a DAVIS event camera observing a planar scene."""

    def __init__(
        self,
        scene: PlanarScene,
        camera: PinholeCamera,
        trajectory: Trajectory,
        config: SimulatorConfig | None = None,
    ):
        self.scene = scene
        self.camera = camera
        self.trajectory = trajectory
        self.config = config or SimulatorConfig()

    # ------------------------------------------------------------------
    def run(self, t0: float | None = None, t1: float | None = None) -> EventArray:
        """Generate the event stream for ``[t0, t1]`` (default: full span)."""
        cfg = self.config
        t0 = self.trajectory.t_start if t0 is None else t0
        t1 = self.trajectory.t_end if t1 is None else t1
        if t1 <= t0:
            raise ValueError("t1 must be greater than t0")

        times = np.linspace(t0, t1, cfg.n_render_steps)
        h, w = self.camera.height, self.camera.width
        n_pix = h * w

        rng = np.random.default_rng(cfg.seed)
        thresholds = np.full(n_pix, cfg.contrast_threshold)
        if cfg.threshold_mismatch > 0:
            thresholds = thresholds * (
                1.0 + cfg.threshold_mismatch * rng.standard_normal(n_pix)
            )
            thresholds = np.maximum(thresholds, 0.25 * cfg.contrast_threshold)

        pix_x = np.tile(np.arange(w, dtype=np.float32), h)
        pix_y = np.repeat(np.arange(h, dtype=np.float32), w)

        prev_log = self._render_log(times[0])
        reference = prev_log.copy()

        chunks: list[np.ndarray] = []
        from repro.events.containers import EVENT_DTYPE

        for step in range(1, cfg.n_render_steps):
            cur_log = self._render_log(times[step])
            chunk = self._events_between(
                prev_log,
                cur_log,
                reference,
                thresholds,
                times[step - 1],
                times[step],
                pix_x,
                pix_y,
            )
            if chunk is not None:
                chunks.append(chunk)
            prev_log = cur_log

        if cfg.noise_rate > 0:
            chunks.append(self._noise_events(rng, t0, t1, pix_x, pix_y))

        if not chunks:
            return EventArray.empty()
        data = np.concatenate(chunks)
        data = data[np.argsort(data["t"], kind="stable")]
        return EventArray(data, validate=False)

    # ------------------------------------------------------------------
    def _render_log(self, t: float) -> np.ndarray:
        image = self.scene.render(self.camera, self.trajectory.sample(t))
        return np.log(image.ravel() + self.config.log_eps)

    def _events_between(
        self,
        prev_log: np.ndarray,
        cur_log: np.ndarray,
        reference: np.ndarray,
        thresholds: np.ndarray,
        t_prev: float,
        t_cur: float,
        pix_x: np.ndarray,
        pix_y: np.ndarray,
    ) -> np.ndarray | None:
        """Vectorized threshold-crossing extraction for one render interval.

        Mutates ``reference`` in place (it tracks the per-pixel level of the
        last emitted event).
        """
        from repro.events.containers import EVENT_DTYPE

        cfg = self.config
        delta = cur_log - reference
        sign = np.sign(delta).astype(np.int8)
        count = np.floor(np.abs(delta) / thresholds).astype(np.int64)
        count = np.minimum(count, cfg.max_events_per_pixel_per_step)
        active = count > 0
        if not np.any(active):
            return None

        idx = np.nonzero(active)[0]
        k = count[idx]
        total = int(k.sum())

        # Flatten (pixel, j) pairs: event j of pixel idx[i] crosses level
        # reference + sign * j * C at a linearly-interpolated time.
        rep_idx = np.repeat(idx, k)
        starts = np.concatenate([[0], np.cumsum(k)[:-1]])
        j = (np.arange(total) - np.repeat(starts, k)) + 1

        levels = reference[rep_idx] + sign[rep_idx] * j * thresholds[rep_idx]
        change = cur_log[rep_idx] - prev_log[rep_idx]
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(
                np.abs(change) > 1e-12,
                (levels - prev_log[rep_idx]) / change,
                0.5,
            )
        frac = np.clip(frac, 0.0, 1.0)
        timestamps = t_prev + frac * (t_cur - t_prev)

        out = np.empty(total, dtype=EVENT_DTYPE)
        out["t"] = timestamps
        out["x"] = pix_x[rep_idx]
        out["y"] = pix_y[rep_idx]
        out["p"] = sign[rep_idx]

        reference[idx] += sign[idx] * k * thresholds[idx]
        return out

    def _noise_events(
        self,
        rng: np.random.Generator,
        t0: float,
        t1: float,
        pix_x: np.ndarray,
        pix_y: np.ndarray,
    ) -> np.ndarray:
        """Uniform background-activity noise events."""
        from repro.events.containers import EVENT_DTYPE

        n_pix = pix_x.shape[0]
        expected = self.config.noise_rate * n_pix * (t1 - t0)
        n = int(rng.poisson(expected))
        out = np.empty(n, dtype=EVENT_DTYPE)
        which = rng.integers(0, n_pix, size=n)
        out["t"] = rng.uniform(t0, t1, size=n)
        out["x"] = pix_x[which]
        out["y"] = pix_y[which]
        out["p"] = rng.choice(np.array([-1, 1], dtype=np.int8), size=n)
        return out


def simulate_rig(
    scene: PlanarScene,
    camera: PinholeCamera,
    trajectory: Trajectory,
    extrinsics: list[SE3] | tuple[SE3, ...],
    config: SimulatorConfig | None = None,
    t0: float | None = None,
    t1: float | None = None,
    names: list[str] | None = None,
) -> dict[str, EventArray]:
    """Simulate one scene observed by a rig of extrinsically-offset cameras.

    Every camera watches the *same* scene over the *same* time span with
    shared timestamps — ``trajectory`` is the rig body's ``T_w_rig(t)``
    and camera ``i`` rides at ``extrinsics[i] = T_rig_cam``, so its own
    world trajectory is
    :meth:`~repro.geometry.trajectory.Trajectory.transformed` with that
    offset.  Sensor non-idealities (threshold mismatch, background
    noise) are drawn from a *per-camera* seed (``config.seed + i``): two
    cameras never share noise realizations, which is what makes
    cross-camera ``min_cameras`` agreement an effective outlier filter
    (uncorrelated noise does not agree; true structure does).

    Returns an ordered ``{name: EventArray}`` dict in extrinsic order
    (default names ``cam0``, ``cam1``, …) — directly consumable by
    :meth:`repro.core.rig.RigOrchestrator.run`.
    """
    extrinsics = tuple(extrinsics)
    if not extrinsics:
        raise ValueError("need at least one extrinsic")
    if names is None:
        names = [f"cam{i}" for i in range(len(extrinsics))]
    if len(names) != len(extrinsics):
        raise ValueError(f"{len(names)} names but {len(extrinsics)} extrinsics")
    config = config or SimulatorConfig()
    events: dict[str, EventArray] = {}
    for i, (name, offset) in enumerate(zip(names, extrinsics)):
        sim = EventCameraSimulator(
            scene,
            camera,
            trajectory.transformed(offset),
            replace(config, seed=config.seed + i),
        )
        events[name] = sim.run(t0, t1)
    return events
