"""Event containers.

An *event* ``e_k = <x_k, y_k, t_k, p_k>`` encodes a logarithmic-brightness
change at pixel ``(x_k, y_k)`` at time ``t_k`` with polarity ``p_k``
(+1 brighter, -1 darker).  :class:`EventArray` stores a time-sorted batch of
events as a numpy structured array for cache-friendly bulk processing.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

#: Structured dtype of one event.  ``x``/``y`` are float32 because the
#: reformulated dataflow stores *undistorted* (sub-pixel) coordinates.
EVENT_DTYPE = np.dtype(
    [("t", np.float64), ("x", np.float32), ("y", np.float32), ("p", np.int8)]
)


class EventArray:
    """Immutable time-sorted array of events.

    Construction validates monotonic timestamps and polarity values; all
    accessors return views where possible.
    """

    __slots__ = ("_data",)

    def __init__(self, data: np.ndarray, *, validate: bool = True, sort: bool = False):
        data = np.asarray(data)
        if data.dtype != EVENT_DTYPE:
            raise TypeError(
                f"EventArray requires dtype {EVENT_DTYPE}, got {data.dtype}; "
                "use EventArray.from_arrays to build from columns"
            )
        if sort and len(data) > 1 and np.any(np.diff(data["t"]) < 0):
            data = data[np.argsort(data["t"], kind="stable")]
        if validate and len(data) > 1 and np.any(np.diff(data["t"]) < 0):
            raise ValueError("event timestamps must be non-decreasing")
        if validate and len(data) > 0:
            p = data["p"]
            if not np.all((p == 1) | (p == -1)):
                raise ValueError("event polarity must be +1 or -1")
        self._data = data
        self._data.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_arrays(
        t: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        p: np.ndarray,
        *,
        sort: bool = False,
    ) -> "EventArray":
        t = np.asarray(t, dtype=np.float64)
        n = t.shape[0]
        data = np.empty(n, dtype=EVENT_DTYPE)
        data["t"] = t
        data["x"] = np.asarray(x, dtype=np.float32)
        data["y"] = np.asarray(y, dtype=np.float32)
        data["p"] = np.asarray(p, dtype=np.int8)
        return EventArray(data, sort=sort)

    @staticmethod
    def empty() -> "EventArray":
        return EventArray(np.empty(0, dtype=EVENT_DTYPE))

    @staticmethod
    def concatenate(parts: Sequence["EventArray"]) -> "EventArray":
        """Concatenate time-ordered parts (their spans must not interleave)."""
        if not parts:
            return EventArray.empty()
        data = np.concatenate([p.data for p in parts])
        return EventArray(data)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def t(self) -> np.ndarray:
        return self._data["t"]

    @property
    def x(self) -> np.ndarray:
        return self._data["x"]

    @property
    def y(self) -> np.ndarray:
        return self._data["y"]

    @property
    def p(self) -> np.ndarray:
        return self._data["p"]

    @property
    def xy(self) -> np.ndarray:
        """``(N, 2)`` float64 pixel coordinates (copy)."""
        return np.stack(
            [self._data["x"].astype(float), self._data["y"].astype(float)], axis=1
        )

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, key) -> "EventArray":
        result = self._data[key]
        if result.ndim == 0:  # single event: keep container semantics
            result = result.reshape(1)
        return EventArray(np.ascontiguousarray(result), validate=False)

    def __eq__(self, other) -> bool:
        if not isinstance(other, EventArray):
            return NotImplemented
        return len(self) == len(other) and bool(np.all(self._data == other._data))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if len(self) == 0:
            return "EventArray(empty)"
        return (
            f"EventArray(n={len(self)}, "
            f"t=[{self.t[0]:.6f}, {self.t[-1]:.6f}])"
        )

    def content_digest(self, start: int | None = None, stop: int | None = None) -> str:
        """SHA-256 over the packed event records (hex).

        Two arrays digest equally iff every ``(t, x, y, p)`` record is
        bit-identical in the same order — the identity the serving
        layer's result cache keys streams by.

        ``start``/``stop`` digest a contiguous slice of the records
        without materializing a new container, and the slice digest
        equals the digest of the standalone sliced array::

            events.content_digest(a, b) == events[a:b].content_digest()

        — the per-segment identity the serving layer's segment cache
        keys frame-aligned :class:`~repro.core.engine.SegmentPlan`
        slices by.
        """
        import hashlib

        data = self._data
        if start is not None or stop is not None:
            data = data[slice(start, stop)]
        digest = hashlib.sha256()
        digest.update(str(len(data)).encode())
        digest.update(np.ascontiguousarray(data).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def t_start(self) -> float:
        if len(self) == 0:
            raise ValueError("empty event array has no time span")
        return float(self._data["t"][0])

    @property
    def t_end(self) -> float:
        if len(self) == 0:
            raise ValueError("empty event array has no time span")
        return float(self._data["t"][-1])

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start if len(self) else 0.0

    def event_rate(self) -> float:
        """Mean event rate in events/second."""
        if len(self) < 2 or self.duration == 0.0:
            return 0.0
        return len(self) / self.duration

    def time_slice(self, t0: float, t1: float) -> "EventArray":
        """Events with ``t0 <= t < t1`` (binary search, O(log n) + view)."""
        ts = self._data["t"]
        i0 = int(np.searchsorted(ts, t0, side="left"))
        i1 = int(np.searchsorted(ts, t1, side="left"))
        return EventArray(self._data[i0:i1], validate=False)

    def crop_to_sensor(self, width: int, height: int) -> "EventArray":
        """Drop events outside the sensor (can appear after undistortion)."""
        x, y = self._data["x"], self._data["y"]
        keep = (x >= 0) & (x <= width - 1) & (y >= 0) & (y <= height - 1)
        return EventArray(np.ascontiguousarray(self._data[keep]), validate=False)

    def with_coordinates(self, xy: np.ndarray) -> "EventArray":
        """Copy with replaced pixel coordinates (e.g. after undistortion)."""
        xy = np.asarray(xy, dtype=float)
        if xy.shape != (len(self), 2):
            raise ValueError(f"expected coordinates of shape ({len(self)}, 2)")
        data = self._data.copy()
        data["x"] = xy[:, 0].astype(np.float32)
        data["y"] = xy[:, 1].astype(np.float32)
        return EventArray(data, validate=False)

    def polarity_split(self) -> tuple["EventArray", "EventArray"]:
        """(positive, negative) event sub-arrays."""
        pos = self._data["p"] == 1
        return (
            EventArray(np.ascontiguousarray(self._data[pos]), validate=False),
            EventArray(np.ascontiguousarray(self._data[~pos]), validate=False),
        )
