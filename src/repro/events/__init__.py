"""Event-camera substrate.

Provides the event containers, frame aggregation, dataset IO, a synthetic
event-camera simulator and procedural replicas of the four Event Camera
Dataset sequences the paper evaluates on (``simulation_3planes``,
``simulation_3walls``, ``slider_close``, ``slider_far``).
"""

from repro.events.containers import EventArray, EVENT_DTYPE
from repro.events.packetizer import EventFrame, Packetizer, aggregate_frames
from repro.events.davis_io import (
    load_events_txt,
    save_events_txt,
    load_groundtruth_txt,
    save_groundtruth_txt,
    load_calib_txt,
    save_calib_txt,
    load_dataset_dir,
    save_dataset_dir,
)
from repro.events.simulator import (
    EventCameraSimulator,
    SimulatorConfig,
    simulate_rig,
)
from repro.events.scenes import PlanarScene, TexturedPlane
from repro.events.datasets import (
    ALL_SEQUENCE_NAMES,
    RIG_SCENARIO_NAMES,
    SCENARIO_NAMES,
    SEQUENCE_NAMES,
    RigSequence,
    Sequence,
    load_rig_sequence,
    load_sequence,
)

__all__ = [
    "EventArray",
    "EVENT_DTYPE",
    "EventFrame",
    "Packetizer",
    "aggregate_frames",
    "load_events_txt",
    "save_events_txt",
    "load_groundtruth_txt",
    "save_groundtruth_txt",
    "load_calib_txt",
    "save_calib_txt",
    "load_dataset_dir",
    "save_dataset_dir",
    "EventCameraSimulator",
    "SimulatorConfig",
    "simulate_rig",
    "PlanarScene",
    "TexturedPlane",
    "RigSequence",
    "Sequence",
    "load_rig_sequence",
    "load_sequence",
    "SEQUENCE_NAMES",
    "SCENARIO_NAMES",
    "RIG_SCENARIO_NAMES",
    "ALL_SEQUENCE_NAMES",
]
