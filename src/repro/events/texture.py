"""Procedural textures for synthetic scenes.

Event cameras respond to brightness *gradients* sweeping across pixels, so
the textures here are chosen for rich, band-limited edge content: checker
boards, stripe patterns, and multi-octave value noise.  A texture is a
callable ``tex(u, v) -> intensity`` over plane-local metric coordinates,
vectorized over numpy arrays, returning values in ``[0, 1]``.
"""

from __future__ import annotations

import numpy as np

Texture = "callable[[np.ndarray, np.ndarray], np.ndarray]"


def constant(value: float = 0.5):
    """Uniform brightness (produces no events — useful for backgrounds)."""

    def tex(u: np.ndarray, v: np.ndarray) -> np.ndarray:
        return np.full(np.broadcast(u, v).shape, float(value))

    return tex


def checkerboard(period: float = 0.1, low: float = 0.15, high: float = 0.9):
    """Checkerboard with the given square size in metres."""
    if period <= 0:
        raise ValueError("period must be positive")

    def tex(u: np.ndarray, v: np.ndarray) -> np.ndarray:
        iu = np.floor(np.asarray(u) / period).astype(np.int64)
        iv = np.floor(np.asarray(v) / period).astype(np.int64)
        return np.where((iu + iv) % 2 == 0, high, low)

    return tex


def stripes(period: float = 0.08, axis: int = 0, low: float = 0.2, high: float = 0.85):
    """Hard-edged stripes along ``axis`` (0 = vary with u, 1 = with v)."""
    if period <= 0:
        raise ValueError("period must be positive")

    def tex(u: np.ndarray, v: np.ndarray) -> np.ndarray:
        coord = np.asarray(u if axis == 0 else v)
        return np.where(np.floor(coord / period).astype(np.int64) % 2 == 0, high, low)

    return tex


def line_grid(period: float = 0.12, line_width: float = 0.015,
              low: float = 0.1, high: float = 0.85):
    """Bright background with a grid of dark lines (poster-like edges)."""

    def tex(u: np.ndarray, v: np.ndarray) -> np.ndarray:
        du = np.mod(np.asarray(u), period)
        dv = np.mod(np.asarray(v), period)
        on_line = (du < line_width) | (dv < line_width)
        return np.where(on_line, low, high)

    return tex


def smooth_noise(seed: int = 0, scale: float = 0.15, octaves: int = 3,
                 low: float = 0.1, high: float = 0.9):
    """Multi-octave value noise (natural-texture stand-in, e.g. rocks).

    A fixed random grid is sampled with bilinear interpolation; octaves
    halve the wavelength and amplitude.  Deterministic for a given seed.
    """
    rng = np.random.default_rng(seed)
    grids = [rng.random((64, 64)) for _ in range(octaves)]

    def sample_grid(grid: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        gu = np.mod(u, 64.0)
        gv = np.mod(v, 64.0)
        iu = np.floor(gu).astype(np.int64) % 64
        iv = np.floor(gv).astype(np.int64) % 64
        fu = gu - np.floor(gu)
        fv = gv - np.floor(gv)
        iu1 = (iu + 1) % 64
        iv1 = (iv + 1) % 64
        top = grid[iv, iu] * (1 - fu) + grid[iv, iu1] * fu
        bot = grid[iv1, iu] * (1 - fu) + grid[iv1, iu1] * fu
        return top * (1 - fv) + bot * fv

    def tex(u: np.ndarray, v: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float) / scale
        v = np.asarray(v, dtype=float) / scale
        total = np.zeros(np.broadcast(u, v).shape)
        amplitude = 1.0
        norm = 0.0
        for i, grid in enumerate(grids):
            freq = 2.0**i
            total = total + amplitude * sample_grid(grid, u * freq, v * freq)
            norm += amplitude
            amplitude *= 0.5
        total = total / norm
        return low + (high - low) * total

    return tex


def quantized_noise(seed: int = 0, scale: float = 0.15, levels: int = 4,
                    low: float = 0.1, high: float = 0.9):
    """Posterized value noise: flat regions separated by sharp edges.

    Sharp iso-contours make this the most event-dense natural texture; it is
    what the slider-sequence replicas use.
    """
    base = smooth_noise(seed=seed, scale=scale, octaves=3, low=0.0, high=1.0)

    def tex(u: np.ndarray, v: np.ndarray) -> np.ndarray:
        raw = base(u, v)
        q = np.floor(raw * levels) / max(levels - 1, 1)
        return low + (high - low) * np.clip(q, 0.0, 1.0)

    return tex
