"""Event visualization: accumulation images and activity maps.

The standard debugging views for event streams (the "event frames" of the
paper's Fig. 1): per-pixel polarity accumulation over a time window, event
counts, and timestamp surfaces.  All return plain numpy arrays so they
compose with :mod:`repro.io.pgm` for export.
"""

from __future__ import annotations

import numpy as np

from repro.events.containers import EventArray


def _bin_pixels(events: EventArray, width: int, height: int) -> tuple[np.ndarray, np.ndarray]:
    """Integer pixel bins with an in-sensor mask."""
    ix = np.floor(events.x + 0.5).astype(np.int64)
    iy = np.floor(events.y + 0.5).astype(np.int64)
    ok = (ix >= 0) & (ix < width) & (iy >= 0) & (iy < height)
    return iy[ok] * width + ix[ok], ok


def accumulate_polarity(
    events: EventArray, width: int, height: int
) -> np.ndarray:
    """Signed polarity accumulation image (``sum of p`` per pixel).

    Positive values mark brightening edges, negative darkening — the
    classic red/blue event-frame view, as a float array.
    """
    lin, ok = _bin_pixels(events, width, height)
    image = np.zeros(height * width, dtype=np.float64)
    np.add.at(image, lin, events.p[ok].astype(np.float64))
    return image.reshape(height, width)


def event_count_map(events: EventArray, width: int, height: int) -> np.ndarray:
    """Per-pixel event count over the stream (activity map)."""
    lin, _ = _bin_pixels(events, width, height)
    counts = np.bincount(lin, minlength=height * width)
    return counts.reshape(height, width)


def timestamp_surface(
    events: EventArray, width: int, height: int
) -> np.ndarray:
    """Surface of most-recent event timestamps (NaN where none fired).

    Time surfaces encode local motion direction as a gradient; widely used
    as an event-stream feature and handy for eyeballing simulator output.
    """
    lin, ok = _bin_pixels(events, width, height)
    surface = np.full(height * width, np.nan)
    # Events are time sorted: later assignments overwrite earlier ones.
    surface[lin] = events.t[ok]
    return surface.reshape(height, width)


def polarity_to_rgb(image: np.ndarray) -> np.ndarray:
    """Map a signed accumulation image to an (H, W, 3) uint8 visualization.

    Positive polarity renders red, negative blue, zero white — matching
    the event-camera literature's convention.
    """
    peak = np.abs(image).max() or 1.0
    norm = np.clip(image / peak, -1.0, 1.0)
    h, w = image.shape
    rgb = np.full((h, w, 3), 255, dtype=np.uint8)
    pos = norm > 0
    neg = norm < 0
    # Fade the complementary channels with magnitude.
    fade_pos = (255 * (1.0 - norm[pos])).astype(np.uint8)
    rgb[pos, 1] = fade_pos
    rgb[pos, 2] = fade_pos
    fade_neg = (255 * (1.0 + norm[neg])).astype(np.uint8)
    rgb[neg, 0] = fade_neg
    rgb[neg, 1] = fade_neg
    return rgb


def save_ppm(path: str, rgb: np.ndarray) -> None:
    """Write an (H, W, 3) uint8 array as binary PPM (P6)."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3 or rgb.dtype != np.uint8:
        raise ValueError("PPM wants an (H, W, 3) uint8 array")
    with open(path, "wb") as f:
        f.write(f"P6\n{rgb.shape[1]} {rgb.shape[0]}\n255\n".encode())
        f.write(rgb.tobytes())
