"""Plane-induced homographies and proportional back-projection coefficients.

This module contains the geometric identities that make Eventor's dataflow
reformulation possible.

Canonical back-projection ``P(Z0)``
    Each event pixel is transferred from the event camera to the *virtual*
    (reference) camera through the canonical depth plane ``Z = Z0`` of the
    virtual frame, using the plane-induced homography ``H_Z0``.

Proportional back-projection ``P(Z0 -> Zi)``
    A ray through the event camera centre ``c`` (expressed in the virtual
    frame) intersects depth plane ``Z = Zi`` at a point whose virtual-camera
    image is an *affine* function of its image on the canonical plane:

        x(Zi) = alpha_i * x(Z0) + beta_i
        y(Zi) = alpha_i * y(Z0) + gamma_i

    with, in normalized camera coordinates,

        alpha_i = Z0 * (Zi - c_z) / (Zi * (Z0 - c_z))
        beta_i  = c_x * (Z0 - Zi) / (Zi * (Z0 - c_z))
        gamma_i = c_y * (Z0 - Zi) / (Zi * (Z0 - c_z))

    *Proof sketch.*  Points on the ray are ``P(l) = c + l*d``.  The image of
    the intersection with ``Z = Zi`` is ``x_i = a_x + b_x / Zi`` where
    ``a_x = d_x / d_z`` and ``b_x = c_x - c_z * a_x`` — affine in inverse
    depth.  Eliminating the per-event ``a_x`` using the canonical-plane image
    ``x_0 = a_x + b_x / Z0`` yields the affine relation above, whose
    coefficients depend only on ``c`` and the plane depths — i.e. they are
    *per-frame* constants (the paper's φ, 3 scalars per depth plane), which
    is exactly why the FPGA can pre-compute them once per event frame and
    reduce the per-event per-plane work to two scalar MACs.

Because the pixel map ``u = fx*x + cx`` is affine, the same relation holds in
pixel coordinates with adjusted offsets; :func:`proportional_coefficients`
returns the pixel-space φ used by both the software reference and the
hardware model.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3

_PLANE_NORMAL = np.array([0.0, 0.0, 1.0])


def plane_homography(
    T_dst_src: SE3,
    plane_normal: np.ndarray,
    plane_distance: float,
    K_src: np.ndarray,
    K_dst: np.ndarray,
) -> np.ndarray:
    """Homography mapping source pixels to destination pixels via a plane.

    The plane is expressed in the *source* frame as
    ``plane_normal . X = plane_distance``.

    Parameters
    ----------
    T_dst_src:
        Transform taking source-frame points to the destination frame.
    plane_normal, plane_distance:
        Plane in the source frame.
    K_src, K_dst:
        Intrinsic matrices of the two cameras.

    Returns
    -------
    3x3 homography ``H`` with ``u_dst ~ H @ u_src`` (homogeneous pixels).
    """
    n = np.asarray(plane_normal, dtype=float).reshape(3)
    if plane_distance == 0.0:
        raise ValueError("plane through the camera centre induces no homography")
    R = T_dst_src.rotation
    t = T_dst_src.translation
    H_metric = R + np.outer(t, n) / plane_distance
    return K_dst @ H_metric @ np.linalg.inv(K_src)


def canonical_plane_homography(
    T_w_virtual: SE3,
    T_w_event: SE3,
    camera: PinholeCamera,
    z0: float,
) -> np.ndarray:
    """``H_Z0``: event-camera pixels -> virtual-camera pixels via ``Z = Z0``.

    ``Z = Z0`` is the canonical depth plane of the *virtual* frame.  This is
    the matrix computed once per event frame by the paper's
    *Compute Homography Matrix* sub-task and applied per event by
    *Canonical Event Back-Projection* (PE_Z0 in hardware).
    """
    if z0 <= 0:
        raise ValueError(f"canonical plane depth must be positive, got {z0}")
    T_event_virtual = T_w_event.inverse() @ T_w_virtual
    # Homography virtual -> event via the plane n.X = z0 in the virtual frame,
    # inverted to obtain the event -> virtual map applied to each event.
    H_ev = plane_homography(T_event_virtual, _PLANE_NORMAL, z0, camera.K, camera.K)
    return np.linalg.inv(H_ev)


def apply_homography(H: np.ndarray, pixels: np.ndarray) -> np.ndarray:
    """Apply a 3x3 homography to ``(N, 2)`` pixels with perspective division."""
    uv, _ = apply_homography_with_scale(H, pixels)
    return uv


def apply_homography_with_scale(
    H: np.ndarray, pixels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Homography application that also returns the homogeneous scale ``w``.

    ``w <= 0`` marks a point mapped from behind the inducing plane — the
    hardware's normalization unit sees the same sign on its divisor and
    flags the event as a projection miss.
    """
    pixels = np.atleast_2d(np.asarray(pixels, dtype=float))
    ones = np.ones((pixels.shape[0], 1))
    hom = np.hstack([pixels, ones]) @ H.T
    w = hom[:, 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        uv = hom[:, :2] / hom[:, 2:3]
    return uv, w


def event_camera_center_in_virtual(T_w_virtual: SE3, T_w_event: SE3) -> np.ndarray:
    """Event-camera optical centre expressed in the virtual frame."""
    return T_w_virtual.inverse().transform(T_w_event.translation)


def proportional_coefficients(
    camera_center: np.ndarray,
    z0: float,
    depths: np.ndarray,
    camera: PinholeCamera,
) -> np.ndarray:
    """Per-frame proportional back-projection parameters φ, in pixel space.

    Parameters
    ----------
    camera_center:
        Event camera centre ``c`` in the virtual frame (see
        :func:`event_camera_center_in_virtual`).
    z0:
        Canonical plane depth.
    depths:
        ``(Nz,)`` depth-plane positions ``Z_i`` in the virtual frame.
    camera:
        Shared intrinsics of the event and virtual cameras.

    Returns
    -------
    ``(Nz, 3)`` array of rows ``(alpha_i, beta_i, gamma_i)`` such that for a
    canonical-plane *pixel* ``(u0, v0)``:

        u(Zi) = alpha_i * u0 + beta_i
        v(Zi) = alpha_i * v0 + gamma_i
    """
    c = np.asarray(camera_center, dtype=float).reshape(3)
    depths = np.asarray(depths, dtype=float)
    denom = depths * (z0 - c[2])
    if np.any(np.abs(denom) < 1e-12):
        raise ValueError(
            "degenerate geometry: camera centre lies on the canonical plane"
        )
    alpha = z0 * (depths - c[2]) / denom
    beta_n = c[0] * (z0 - depths) / denom
    gamma_n = c[1] * (z0 - depths) / denom
    # Lift normalized-coordinate offsets to pixel space:
    #   u_i = fx*x_i + cx = alpha*(fx*x_0 + cx) + fx*beta + cx*(1 - alpha)
    beta = camera.fx * beta_n + camera.cx * (1.0 - alpha)
    gamma = camera.fy * gamma_n + camera.cy * (1.0 - alpha)
    return np.stack([alpha, beta, gamma], axis=1)


def apply_proportional(phi: np.ndarray, uv0: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Back-project canonical-plane pixels onto every depth plane.

    Parameters
    ----------
    phi:
        ``(Nz, 3)`` coefficients from :func:`proportional_coefficients`.
    uv0:
        ``(N, 2)`` canonical-plane pixel coordinates.

    Returns
    -------
    ``(u, v)`` arrays of shape ``(N, Nz)``: the pixel footprint of each event
    on each depth plane.  This is the dense operation PE_Zi performs with two
    scalar MACs per (event, plane) pair.
    """
    uv0 = np.atleast_2d(np.asarray(uv0, dtype=float))
    alpha = phi[:, 0][None, :]
    u = uv0[:, 0:1] * alpha + phi[:, 1][None, :]
    v = uv0[:, 1:2] * alpha + phi[:, 2][None, :]
    return u, v
