"""Plane-induced homographies and proportional back-projection coefficients.

This module contains the geometric identities that make Eventor's dataflow
reformulation possible.

Canonical back-projection ``P(Z0)``
    Each event pixel is transferred from the event camera to the *virtual*
    (reference) camera through the canonical depth plane ``Z = Z0`` of the
    virtual frame, using the plane-induced homography ``H_Z0``.

Proportional back-projection ``P(Z0 -> Zi)``
    A ray through the event camera centre ``c`` (expressed in the virtual
    frame) intersects depth plane ``Z = Zi`` at a point whose virtual-camera
    image is an *affine* function of its image on the canonical plane:

        x(Zi) = alpha_i * x(Z0) + beta_i
        y(Zi) = alpha_i * y(Z0) + gamma_i

    with, in normalized camera coordinates,

        alpha_i = Z0 * (Zi - c_z) / (Zi * (Z0 - c_z))
        beta_i  = c_x * (Z0 - Zi) / (Zi * (Z0 - c_z))
        gamma_i = c_y * (Z0 - Zi) / (Zi * (Z0 - c_z))

    *Proof sketch.*  Points on the ray are ``P(l) = c + l*d``.  The image of
    the intersection with ``Z = Zi`` is ``x_i = a_x + b_x / Zi`` where
    ``a_x = d_x / d_z`` and ``b_x = c_x - c_z * a_x`` — affine in inverse
    depth.  Eliminating the per-event ``a_x`` using the canonical-plane image
    ``x_0 = a_x + b_x / Z0`` yields the affine relation above, whose
    coefficients depend only on ``c`` and the plane depths — i.e. they are
    *per-frame* constants (the paper's φ, 3 scalars per depth plane), which
    is exactly why the FPGA can pre-compute them once per event frame and
    reduce the per-event per-plane work to two scalar MACs.

Because the pixel map ``u = fx*x + cx`` is affine, the same relation holds in
pixel coordinates with adjusted offsets; :func:`proportional_coefficients`
returns the pixel-space φ used by both the software reference and the
hardware model.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3

_PLANE_NORMAL = np.array([0.0, 0.0, 1.0])


def plane_homography(
    T_dst_src: SE3,
    plane_normal: np.ndarray,
    plane_distance: float,
    K_src: np.ndarray,
    K_dst: np.ndarray,
) -> np.ndarray:
    """Homography mapping source pixels to destination pixels via a plane.

    The plane is expressed in the *source* frame as
    ``plane_normal . X = plane_distance``.

    Parameters
    ----------
    T_dst_src:
        Transform taking source-frame points to the destination frame.
    plane_normal, plane_distance:
        Plane in the source frame.
    K_src, K_dst:
        Intrinsic matrices of the two cameras.

    Returns
    -------
    3x3 homography ``H`` with ``u_dst ~ H @ u_src`` (homogeneous pixels).
    """
    n = np.asarray(plane_normal, dtype=float).reshape(3)
    if plane_distance == 0.0:
        raise ValueError("plane through the camera centre induces no homography")
    R = T_dst_src.rotation
    t = T_dst_src.translation
    H_metric = R + np.outer(t, n) / plane_distance
    return K_dst @ H_metric @ np.linalg.inv(K_src)


def canonical_plane_homography(
    T_w_virtual: SE3,
    T_w_event: SE3,
    camera: PinholeCamera,
    z0: float,
) -> np.ndarray:
    """``H_Z0``: event-camera pixels -> virtual-camera pixels via ``Z = Z0``.

    ``Z = Z0`` is the canonical depth plane of the *virtual* frame.  This is
    the matrix computed once per event frame by the paper's
    *Compute Homography Matrix* sub-task and applied per event by
    *Canonical Event Back-Projection* (PE_Z0 in hardware).
    """
    if z0 <= 0:
        raise ValueError(f"canonical plane depth must be positive, got {z0}")
    T_event_virtual = T_w_event.inverse() @ T_w_virtual
    # Homography virtual -> event via the plane n.X = z0 in the virtual frame,
    # inverted to obtain the event -> virtual map applied to each event.
    H_ev = plane_homography(T_event_virtual, _PLANE_NORMAL, z0, camera.K, camera.K)
    return np.linalg.inv(H_ev)


def canonical_plane_homography_batch(
    T_w_virtual: SE3,
    rotations: np.ndarray,
    translations: np.ndarray,
    camera: PinholeCamera,
    z0: float,
) -> np.ndarray:
    """Batched :func:`canonical_plane_homography` over stacked event poses.

    ``rotations``/``translations`` hold ``B`` camera-to-world event poses as
    ``(B, 3, 3)`` / ``(B, 3)`` arrays (see :func:`repro.geometry.se3.stack_poses`);
    the result is the ``(B, 3, 3)`` stack of per-frame ``H_Z0`` matrices.

    Each slice is **bit-identical** to the scalar function: stacked
    ``matmul``/``inv`` execute the same per-slice kernels as their 2-D
    forms (pinned by unit tests), and every remaining operation is
    elementwise, so one ``(B, 3, 3)`` pass replaces ``B`` Python trips
    through :class:`~repro.geometry.se3.SE3` without perturbing a ULP.
    """
    if z0 <= 0:
        raise ValueError(f"canonical plane depth must be positive, got {z0}")
    R_we = np.asarray(rotations, dtype=float)
    t_we = np.asarray(translations, dtype=float)
    # T_event_virtual = T_w_event.inverse() @ T_w_virtual, with the exact
    # operation order of SE3.inverse / SE3.__matmul__.
    R_we_t = R_we.transpose(0, 2, 1)
    t_inv = -np.matmul(R_we_t, t_we[:, :, None])[:, :, 0]
    R_ev = np.matmul(R_we_t, T_w_virtual.rotation)
    t_ev = np.matmul(R_we_t, T_w_virtual.translation[:, None])[:, :, 0] + t_inv
    # plane_homography(T_event_virtual, n, z0, K, K): n = (0, 0, 1), so the
    # outer product contributes t to the third column (and signed zeros
    # elsewhere, reproduced exactly by the broadcasted multiply).
    H_metric = R_ev + (t_ev[:, :, None] * _PLANE_NORMAL[None, None, :]) / z0
    K_inv = np.linalg.inv(camera.K)
    H_ev = np.matmul(np.matmul(camera.K, H_metric), K_inv)
    return np.linalg.inv(H_ev)


def apply_homography(H: np.ndarray, pixels: np.ndarray) -> np.ndarray:
    """Apply a 3x3 homography to ``(N, 2)`` pixels with perspective division."""
    uv, _ = apply_homography_with_scale(H, pixels)
    return uv


def apply_homography_with_scale(
    H: np.ndarray, pixels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Homography application that also returns the homogeneous scale ``w``.

    ``w <= 0`` marks a point mapped from behind the inducing plane — the
    hardware's normalization unit sees the same sign on its divisor and
    flags the event as a projection miss.
    """
    pixels = np.atleast_2d(np.asarray(pixels, dtype=float))
    ones = np.ones((pixels.shape[0], 1))
    hom = np.hstack([pixels, ones]) @ H.T
    w = hom[:, 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        uv = hom[:, :2] / hom[:, 2:3]
    return uv, w


def apply_homography_with_scale_batch(
    H: np.ndarray, pixels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`apply_homography_with_scale`: per-frame homographies.

    ``H`` is ``(B, 3, 3)`` and ``pixels`` is a ``(B, N, 2)`` block (frame
    ``b`` transformed by ``H[b]``).  Returns ``(uv, w)`` of shapes
    ``(B, N, 2)`` / ``(B, N)``; each slice is bit-identical to the scalar
    function (the stacked matmul runs the same per-slice GEMM).
    """
    pixels = np.asarray(pixels, dtype=float)
    ones = np.ones(pixels.shape[:-1] + (1,))
    hom = np.concatenate([pixels, ones], axis=-1) @ H.transpose(0, 2, 1)
    w = hom[..., 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        uv = hom[..., :2] / hom[..., 2:3]
    return uv, w


def event_camera_center_in_virtual(T_w_virtual: SE3, T_w_event: SE3) -> np.ndarray:
    """Event-camera optical centre expressed in the virtual frame."""
    return T_w_virtual.inverse().transform(T_w_event.translation)


def event_camera_centers_in_virtual(
    T_w_virtual: SE3, translations: np.ndarray
) -> np.ndarray:
    """Batched :func:`event_camera_center_in_virtual` over ``(B, 3)`` centres."""
    T_inv = T_w_virtual.inverse()
    return np.asarray(translations, dtype=float) @ T_inv.rotation.T + T_inv.translation


def proportional_coefficients(
    camera_center: np.ndarray,
    z0: float,
    depths: np.ndarray,
    camera: PinholeCamera,
) -> np.ndarray:
    """Per-frame proportional back-projection parameters φ, in pixel space.

    Parameters
    ----------
    camera_center:
        Event camera centre ``c`` in the virtual frame (see
        :func:`event_camera_center_in_virtual`).
    z0:
        Canonical plane depth.
    depths:
        ``(Nz,)`` depth-plane positions ``Z_i`` in the virtual frame.
    camera:
        Shared intrinsics of the event and virtual cameras.

    Returns
    -------
    ``(Nz, 3)`` array of rows ``(alpha_i, beta_i, gamma_i)`` such that for a
    canonical-plane *pixel* ``(u0, v0)``:

        u(Zi) = alpha_i * u0 + beta_i
        v(Zi) = alpha_i * v0 + gamma_i
    """
    c = np.asarray(camera_center, dtype=float).reshape(3)
    depths = np.asarray(depths, dtype=float)
    denom = depths * (z0 - c[2])
    if np.any(np.abs(denom) < 1e-12):
        raise ValueError(
            "degenerate geometry: camera centre lies on the canonical plane"
        )
    alpha = z0 * (depths - c[2]) / denom
    beta_n = c[0] * (z0 - depths) / denom
    gamma_n = c[1] * (z0 - depths) / denom
    # Lift normalized-coordinate offsets to pixel space:
    #   u_i = fx*x_i + cx = alpha*(fx*x_0 + cx) + fx*beta + cx*(1 - alpha)
    beta = camera.fx * beta_n + camera.cx * (1.0 - alpha)
    gamma = camera.fy * gamma_n + camera.cy * (1.0 - alpha)
    return np.stack([alpha, beta, gamma], axis=1)


def proportional_coefficients_batch(
    camera_centers: np.ndarray,
    z0: float,
    depths: np.ndarray,
    camera: PinholeCamera,
) -> np.ndarray:
    """Batched :func:`proportional_coefficients` over ``(B, 3)`` centres.

    Returns the ``(B, Nz, 3)`` stack of per-frame φ coefficient tables.
    All arithmetic is elementwise, so every slice is bit-identical to the
    scalar function.
    """
    c = np.asarray(camera_centers, dtype=float).reshape(-1, 3)
    depths = np.asarray(depths, dtype=float)
    denom = depths[None, :] * (z0 - c[:, 2:3])
    if np.any(np.abs(denom) < 1e-12):
        raise ValueError(
            "degenerate geometry: camera centre lies on the canonical plane"
        )
    alpha = z0 * (depths[None, :] - c[:, 2:3]) / denom
    beta_n = c[:, 0:1] * (z0 - depths[None, :]) / denom
    gamma_n = c[:, 1:2] * (z0 - depths[None, :]) / denom
    beta = camera.fx * beta_n + camera.cx * (1.0 - alpha)
    gamma = camera.fy * gamma_n + camera.cy * (1.0 - alpha)
    return np.stack([alpha, beta, gamma], axis=2)


def apply_proportional(
    phi: np.ndarray,
    uv0: np.ndarray,
    out: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Back-project canonical-plane pixels onto every depth plane.

    Parameters
    ----------
    phi:
        ``(Nz, 3)`` coefficients from :func:`proportional_coefficients`.
    uv0:
        ``(N, 2)`` canonical-plane pixel coordinates.
    out:
        Optional pre-allocated ``(u, v)`` destination arrays of shape
        ``(N, Nz)``.  The hot loop calls this once per frame; writing into
        segment-lifetime scratch removes two large allocations per call
        while producing bit-identical values (same multiply, same add).

    Returns
    -------
    ``(u, v)`` arrays of shape ``(N, Nz)``: the pixel footprint of each event
    on each depth plane.  This is the dense operation PE_Zi performs with two
    scalar MACs per (event, plane) pair.
    """
    uv0 = np.atleast_2d(np.asarray(uv0, dtype=float))
    alpha = phi[:, 0][None, :]
    if out is None:
        u = uv0[:, 0:1] * alpha + phi[:, 1][None, :]
        v = uv0[:, 1:2] * alpha + phi[:, 2][None, :]
        return u, v
    u, v = out
    np.multiply(uv0[:, 0:1], alpha, out=u)
    u += phi[:, 1][None, :]
    np.multiply(uv0[:, 1:2], alpha, out=v)
    v += phi[:, 2][None, :]
    return u, v
