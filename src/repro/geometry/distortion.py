"""Lens distortion models.

The DAVIS sequences in the Event Camera Dataset ship plumb-bob
(radial-tangential) coefficients.  Eventor's reformulated dataflow applies
the correction per event, in streaming fashion, before aggregation
(Fig. 3 right, "Event Distortion Correction"); the models here provide both
the forward (distort) and inverse (undistort) maps on normalized image
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class Distortion:
    """Interface for lens distortion on normalized image coordinates."""

    def distort(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def undistort(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


@dataclass(frozen=True)
class NoDistortion(Distortion):
    """Identity model used by the simulated sequences."""

    def distort(self, x, y):
        return np.asarray(x, dtype=float), np.asarray(y, dtype=float)

    def undistort(self, x, y):
        return np.asarray(x, dtype=float), np.asarray(y, dtype=float)


@dataclass(frozen=True)
class RadialTangentialDistortion(Distortion):
    """Plumb-bob model with radial (k1, k2, k3) and tangential (p1, p2) terms.

    ``distort`` is the closed-form forward model; ``undistort`` inverts it
    with a fixed-point iteration (the standard approach, converges in a few
    iterations for moderate distortion).
    """

    k1: float = 0.0
    k2: float = 0.0
    p1: float = 0.0
    p2: float = 0.0
    k3: float = 0.0
    iterations: int = 25

    def distort(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        r2 = x * x + y * y
        radial = 1.0 + r2 * (self.k1 + r2 * (self.k2 + r2 * self.k3))
        xd = x * radial + 2.0 * self.p1 * x * y + self.p2 * (r2 + 2.0 * x * x)
        yd = y * radial + self.p1 * (r2 + 2.0 * y * y) + 2.0 * self.p2 * x * y
        return xd, yd

    def undistort(self, x, y):
        xd = np.asarray(x, dtype=float)
        yd = np.asarray(y, dtype=float)
        xu = xd.copy()
        yu = yd.copy()
        for _ in range(self.iterations):
            r2 = xu * xu + yu * yu
            radial = 1.0 + r2 * (self.k1 + r2 * (self.k2 + r2 * self.k3))
            dx = 2.0 * self.p1 * xu * yu + self.p2 * (r2 + 2.0 * xu * xu)
            dy = self.p1 * (r2 + 2.0 * yu * yu) + 2.0 * self.p2 * xu * yu
            with np.errstate(divide="ignore", invalid="ignore"):
                xu = (xd - dx) / radial
                yu = (yd - dy) / radial
        return xu, yu

    def max_residual(self, x, y) -> float:
        """Round-trip error of undistort(distort(.)), for model validation."""
        xd, yd = self.distort(x, y)
        xu, yu = self.undistort(xd, yd)
        return float(
            np.max(np.hypot(np.asarray(x) - xu, np.asarray(y) - yu))
        )
