"""Rotations and rigid-body transforms.

Implements :class:`Quaternion`, :class:`SO3` and :class:`SE3` with the small
set of operations EMVS needs: composition, inversion, point transforms,
exponential/logarithm maps and interpolation.  All operations are
numpy-based and accept batched point arrays of shape ``(N, 3)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

_EPS = 1e-12


@dataclass(frozen=True)
class Quaternion:
    """Unit quaternion ``(w, x, y, z)`` representing a rotation.

    The storage order is scalar-first, matching the Event Camera Dataset
    ground-truth files (``tx ty tz qx qy qz qw`` reordered on load).
    """

    w: float
    x: float
    y: float
    z: float

    def __post_init__(self) -> None:
        norm = math.sqrt(self.w**2 + self.x**2 + self.y**2 + self.z**2)
        if norm < _EPS:
            raise ValueError("zero-norm quaternion cannot represent a rotation")
        if abs(norm - 1.0) > 1e-9:
            object.__setattr__(self, "w", self.w / norm)
            object.__setattr__(self, "x", self.x / norm)
            object.__setattr__(self, "y", self.y / norm)
            object.__setattr__(self, "z", self.z / norm)

    @staticmethod
    def identity() -> "Quaternion":
        return Quaternion(1.0, 0.0, 0.0, 0.0)

    @staticmethod
    def from_axis_angle(axis: np.ndarray, angle: float) -> "Quaternion":
        axis = np.asarray(axis, dtype=float)
        norm = np.linalg.norm(axis)
        if norm < _EPS:
            return Quaternion.identity()
        axis = axis / norm
        half = 0.5 * angle
        s = math.sin(half)
        return Quaternion(math.cos(half), axis[0] * s, axis[1] * s, axis[2] * s)

    @staticmethod
    def from_matrix(matrix: np.ndarray) -> "Quaternion":
        """Convert a rotation matrix via Shepperd's numerically-stable method."""
        m = np.asarray(matrix, dtype=float)
        if m.shape != (3, 3):
            raise ValueError(f"rotation matrix must be 3x3, got {m.shape}")
        trace = m[0, 0] + m[1, 1] + m[2, 2]
        if trace > 0.0:
            s = math.sqrt(trace + 1.0) * 2.0
            w = 0.25 * s
            x = (m[2, 1] - m[1, 2]) / s
            y = (m[0, 2] - m[2, 0]) / s
            z = (m[1, 0] - m[0, 1]) / s
        elif m[0, 0] > m[1, 1] and m[0, 0] > m[2, 2]:
            s = math.sqrt(1.0 + m[0, 0] - m[1, 1] - m[2, 2]) * 2.0
            w = (m[2, 1] - m[1, 2]) / s
            x = 0.25 * s
            y = (m[0, 1] + m[1, 0]) / s
            z = (m[0, 2] + m[2, 0]) / s
        elif m[1, 1] > m[2, 2]:
            s = math.sqrt(1.0 + m[1, 1] - m[0, 0] - m[2, 2]) * 2.0
            w = (m[0, 2] - m[2, 0]) / s
            x = (m[0, 1] + m[1, 0]) / s
            y = 0.25 * s
            z = (m[1, 2] + m[2, 1]) / s
        else:
            s = math.sqrt(1.0 + m[2, 2] - m[0, 0] - m[1, 1]) * 2.0
            w = (m[1, 0] - m[0, 1]) / s
            x = (m[0, 2] + m[2, 0]) / s
            y = (m[1, 2] + m[2, 1]) / s
            z = 0.25 * s
        return Quaternion(w, x, y, z)

    def as_array(self) -> np.ndarray:
        return np.array([self.w, self.x, self.y, self.z], dtype=float)

    def to_matrix(self) -> np.ndarray:
        w, x, y, z = self.w, self.x, self.y, self.z
        return np.array(
            [
                [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
                [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
                [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
            ],
            dtype=float,
        )

    def conjugate(self) -> "Quaternion":
        return Quaternion(self.w, -self.x, -self.y, -self.z)

    def __mul__(self, other: "Quaternion") -> "Quaternion":
        w1, x1, y1, z1 = self.w, self.x, self.y, self.z
        w2, x2, y2, z2 = other.w, other.x, other.y, other.z
        return Quaternion(
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        )

    def rotate(self, points: np.ndarray) -> np.ndarray:
        """Rotate an ``(N, 3)`` or ``(3,)`` array of points."""
        return points @ self.to_matrix().T

    def slerp(self, other: "Quaternion", alpha: float) -> "Quaternion":
        """Spherical linear interpolation; ``alpha=0`` gives ``self``."""
        q0 = self.as_array()
        q1 = other.as_array()
        dot = float(np.dot(q0, q1))
        if dot < 0.0:  # take the short arc
            q1 = -q1
            dot = -dot
        if dot > 1.0 - 1e-10:  # nearly parallel: fall back to nlerp
            q = (1.0 - alpha) * q0 + alpha * q1
            q = q / np.linalg.norm(q)
            return Quaternion(*q)
        theta = math.acos(min(1.0, dot))
        sin_theta = math.sin(theta)
        w0 = math.sin((1.0 - alpha) * theta) / sin_theta
        w1 = math.sin(alpha * theta) / sin_theta
        q = w0 * q0 + w1 * q1
        return Quaternion(*q)

    def angle_to(self, other: "Quaternion") -> float:
        """Geodesic angle (radians) between the two rotations."""
        dot = abs(float(np.dot(self.as_array(), other.as_array())))
        return 2.0 * math.acos(min(1.0, dot))


def stack_poses(poses) -> tuple[np.ndarray, np.ndarray]:
    """Stack ``B`` poses into ``(B, 3, 3)`` rotations and ``(B, 3)`` translations.

    The batched geometry kernels (:mod:`repro.geometry.homography`) operate
    on stacked pose arrays so one ``(B, 3, 3)`` matmul/inverse pass replaces
    ``B`` Python trips through :class:`SE3`.
    """
    poses = list(poses)
    if not poses:
        return np.empty((0, 3, 3)), np.empty((0, 3))
    rotations = np.stack([p.rotation for p in poses])
    translations = np.stack([p.translation for p in poses])
    return rotations, translations


class SO3:
    """Rotation represented by a 3x3 matrix with exp/log maps."""

    __slots__ = ("matrix",)

    def __init__(self, matrix: np.ndarray | None = None):
        if matrix is None:
            matrix = np.eye(3)
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (3, 3):
            raise ValueError(f"SO3 matrix must be 3x3, got {matrix.shape}")
        self.matrix = matrix

    @staticmethod
    def identity() -> "SO3":
        return SO3(np.eye(3))

    @staticmethod
    def exp(omega: np.ndarray) -> "SO3":
        """Rodrigues' formula: axis-angle vector to rotation matrix."""
        omega = np.asarray(omega, dtype=float)
        theta = float(np.linalg.norm(omega))
        if theta < _EPS:
            return SO3(np.eye(3) + SO3.hat(omega))
        axis = omega / theta
        k = SO3.hat(axis)
        m = np.eye(3) + math.sin(theta) * k + (1.0 - math.cos(theta)) * (k @ k)
        return SO3(m)

    def log(self) -> np.ndarray:
        """Inverse of :meth:`exp`: rotation matrix to axis-angle vector."""
        m = self.matrix
        cos_theta = max(-1.0, min(1.0, (np.trace(m) - 1.0) / 2.0))
        theta = math.acos(cos_theta)
        if theta < _EPS:
            return np.array([m[2, 1] - m[1, 2], m[0, 2] - m[2, 0], m[1, 0] - m[0, 1]]) / 2.0
        if abs(theta - math.pi) < 1e-6:
            # Near pi the standard formula is singular; recover the axis from
            # the diagonal of (m + I)/2 = axis axis^T near theta = pi.
            a = np.sqrt(np.maximum(0.0, (np.diag(m) + 1.0) / 2.0))
            # Fix signs using the largest component.
            i = int(np.argmax(a))
            if a[i] < _EPS:
                return np.zeros(3)
            signs = np.ones(3)
            for j in range(3):
                if j != i and m[i, j] < 0:
                    signs[j] = -1.0
            axis = signs * a
            axis /= np.linalg.norm(axis)
            return theta * axis
        return theta * np.array(
            [m[2, 1] - m[1, 2], m[0, 2] - m[2, 0], m[1, 0] - m[0, 1]]
        ) / (2.0 * math.sin(theta))

    @staticmethod
    def hat(v: np.ndarray) -> np.ndarray:
        """Skew-symmetric matrix such that ``hat(v) @ w == cross(v, w)``."""
        v = np.asarray(v, dtype=float)
        return np.array(
            [[0.0, -v[2], v[1]], [v[2], 0.0, -v[0]], [-v[1], v[0], 0.0]]
        )

    def inverse(self) -> "SO3":
        return SO3(self.matrix.T)

    def __matmul__(self, other):
        if isinstance(other, SO3):
            return SO3(self.matrix @ other.matrix)
        return np.asarray(other, dtype=float) @ self.matrix.T

    def to_quaternion(self) -> Quaternion:
        return Quaternion.from_matrix(self.matrix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SO3({self.matrix.tolist()})"


class SE3:
    """Rigid transform ``p_out = R @ p_in + t``.

    ``SE3`` composes with ``@`` and transforms batched point arrays with
    :meth:`transform`.  The convention throughout the code base is that the
    pose of a camera is ``T_wc`` (camera-to-world).
    """

    __slots__ = ("rotation", "translation")

    def __init__(self, rotation=None, translation=None):
        if rotation is None:
            rotation = np.eye(3)
        if isinstance(rotation, Quaternion):
            rotation = rotation.to_matrix()
        elif isinstance(rotation, SO3):
            rotation = rotation.matrix
        rotation = np.asarray(rotation, dtype=float)
        if rotation.shape != (3, 3):
            raise ValueError(f"rotation must be 3x3, got {rotation.shape}")
        if translation is None:
            translation = np.zeros(3)
        translation = np.asarray(translation, dtype=float).reshape(3)
        self.rotation = rotation
        self.translation = translation

    @staticmethod
    def identity() -> "SE3":
        return SE3()

    @staticmethod
    def from_matrix(matrix: np.ndarray) -> "SE3":
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (4, 4):
            raise ValueError(f"homogeneous matrix must be 4x4, got {matrix.shape}")
        return SE3(matrix[:3, :3], matrix[:3, 3])

    @staticmethod
    def from_quaternion_translation(q: Quaternion, t: np.ndarray) -> "SE3":
        return SE3(q.to_matrix(), t)

    @staticmethod
    def exp(xi: np.ndarray) -> "SE3":
        """se(3) exponential: ``xi = (rho, omega)`` with rho translational."""
        xi = np.asarray(xi, dtype=float).reshape(6)
        rho, omega = xi[:3], xi[3:]
        rot = SO3.exp(omega)
        theta = float(np.linalg.norm(omega))
        if theta < _EPS:
            v_mat = np.eye(3) + 0.5 * SO3.hat(omega)
        else:
            k = SO3.hat(omega / theta)
            v_mat = (
                np.eye(3)
                + ((1.0 - math.cos(theta)) / theta) * k
                + ((theta - math.sin(theta)) / theta) * (k @ k)
            )
        return SE3(rot.matrix, v_mat @ rho)

    def log(self) -> np.ndarray:
        omega = SO3(self.rotation).log()
        theta = float(np.linalg.norm(omega))
        if theta < _EPS:
            v_inv = np.eye(3) - 0.5 * SO3.hat(omega)
        else:
            k = SO3.hat(omega / theta)
            half = theta / 2.0
            cot_half = 1.0 / math.tan(half)
            v_inv = (
                np.eye(3)
                - (theta / 2.0) * k
                + (1.0 - half * cot_half) * (k @ k)
            )
        return np.concatenate([v_inv @ self.translation, omega])

    def matrix(self) -> np.ndarray:
        m = np.eye(4)
        m[:3, :3] = self.rotation
        m[:3, 3] = self.translation
        return m

    def inverse(self) -> "SE3":
        rt = self.rotation.T
        return SE3(rt, -rt @ self.translation)

    def __matmul__(self, other: "SE3") -> "SE3":
        if not isinstance(other, SE3):
            raise TypeError("SE3 composes only with SE3; use transform() for points")
        return SE3(
            self.rotation @ other.rotation,
            self.rotation @ other.translation + self.translation,
        )

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Apply to ``(N, 3)`` or ``(3,)`` points."""
        points = np.asarray(points, dtype=float)
        return points @ self.rotation.T + self.translation

    def quaternion(self) -> Quaternion:
        return Quaternion.from_matrix(self.rotation)

    def distance_to(self, other: "SE3") -> float:
        """Euclidean distance between the two translations.

        This is the key-frame selection metric of the paper (Sec. 2.1): a new
        key frame fires when the camera has moved farther than a threshold
        from the previous key reference view.
        """
        return float(np.linalg.norm(self.translation - other.translation))

    def rotation_angle_to(self, other: "SE3") -> float:
        return self.quaternion().angle_to(other.quaternion())

    def interpolate(self, other: "SE3", alpha: float) -> "SE3":
        """Pose interpolation: lerp on translation, slerp on rotation."""
        q = self.quaternion().slerp(other.quaternion(), alpha)
        t = (1.0 - alpha) * self.translation + alpha * other.translation
        return SE3(q.to_matrix(), t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SE3(t={self.translation.tolist()})"
