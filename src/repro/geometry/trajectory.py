"""Camera trajectories with pose interpolation.

EMVS assumes a *known* trajectory (from ground truth, a motion-capture
system, or the tracking half of a SLAM system).  The Event Camera Dataset
provides poses at ~200 Hz; events arrive at MHz rates, so poses at event
timestamps are interpolated (lerp on translation, slerp on rotation).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.geometry.se3 import SE3, Quaternion


class Trajectory:
    """Time-indexed sequence of camera poses ``T_wc``.

    Timestamps must be strictly increasing.  Sampling outside the time range
    clamps to the first/last pose (events slightly outside the ground-truth
    span are common in the real sequences).
    """

    def __init__(self, timestamps: Sequence[float], poses: Sequence[SE3]):
        timestamps = np.asarray(timestamps, dtype=float)
        poses = list(poses)
        if timestamps.ndim != 1:
            raise ValueError("timestamps must be a 1-D sequence")
        if len(timestamps) != len(poses):
            raise ValueError(
                f"{len(timestamps)} timestamps but {len(poses)} poses"
            )
        if len(timestamps) == 0:
            raise ValueError("trajectory must contain at least one pose")
        if np.any(np.diff(timestamps) <= 0):
            raise ValueError("timestamps must be strictly increasing")
        self._timestamps = timestamps
        self._poses = poses
        # Cache quaternions and translations for vectorized interpolation.
        self._quats = np.array([p.quaternion().as_array() for p in poses])
        # Enforce hemisphere continuity so vectorized slerp takes short arcs.
        for i in range(1, len(self._quats)):
            if np.dot(self._quats[i], self._quats[i - 1]) < 0.0:
                self._quats[i] = -self._quats[i]
        self._trans = np.array([p.translation for p in poses])

    # ------------------------------------------------------------------
    @property
    def timestamps(self) -> np.ndarray:
        return self._timestamps

    @property
    def poses(self) -> list[SE3]:
        return list(self._poses)

    @property
    def t_start(self) -> float:
        return float(self._timestamps[0])

    @property
    def t_end(self) -> float:
        return float(self._timestamps[-1])

    def __len__(self) -> int:
        return len(self._poses)

    def __iter__(self) -> Iterable[tuple[float, SE3]]:
        return iter(zip(self._timestamps, self._poses))

    # ------------------------------------------------------------------
    def sample(self, t: float) -> SE3:
        """Interpolated pose at time ``t`` (clamped to the trajectory span)."""
        ts = self._timestamps
        if t <= ts[0]:
            return self._poses[0]
        if t >= ts[-1]:
            return self._poses[-1]
        i = int(np.searchsorted(ts, t, side="right")) - 1
        alpha = (t - ts[i]) / (ts[i + 1] - ts[i])
        return self._poses[i].interpolate(self._poses[i + 1], float(alpha))

    def sample_many(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized pose interpolation.

        Returns
        -------
        ``(R, t)`` with ``R`` of shape ``(N, 3, 3)`` and ``t`` of shape
        ``(N, 3)``; row ``k`` is the interpolated ``T_wc`` at ``times[k]``.
        """
        times = np.asarray(times, dtype=float)
        ts = self._timestamps
        idx = np.clip(np.searchsorted(ts, times, side="right") - 1, 0, len(ts) - 2)
        t0 = ts[idx]
        t1 = ts[idx + 1]
        alpha = np.clip((times - t0) / (t1 - t0), 0.0, 1.0)

        trans = (1.0 - alpha)[:, None] * self._trans[idx] + alpha[:, None] * self._trans[
            idx + 1
        ]
        quats = _batch_slerp(self._quats[idx], self._quats[idx + 1], alpha)
        return _quat_to_matrix(quats), trans

    def sample_batch(self, times: np.ndarray) -> list[SE3]:
        """Interpolated poses at many timestamps through one vectorized pass.

        Functionally equivalent to ``[self.sample(t) for t in times]`` but
        runs the interpolation as a single :meth:`sample_many` call — the
        pose-side batch driver used by the hot-path benchmarks
        (``benchmarks/bench_hotpath_kernels.py``) and offline tooling that
        needs many poses at once.  The scalar and vectorized slerp may
        differ by float rounding in the last bits; callers that must match
        :meth:`sample` bit-for-bit (the engine's packetizer, whose frame
        poses the ``numpy-batch`` backend stacks unchanged) keep the
        scalar path.
        """
        rotations, translations = self.sample_many(np.asarray(times, dtype=float))
        return [SE3(R, t) for R, t in zip(rotations, translations)]

    def transformed(self, offset: SE3) -> "Trajectory":
        """Trajectory of a frame rigidly mounted at ``offset`` from this one.

        Composes every pose on the right: if this trajectory is a rig
        body's ``T_w_rig(t)`` and ``offset`` is a camera's mounting
        extrinsic ``T_rig_cam``, the result is the camera's own world
        trajectory ``T_w_cam(t) = T_w_rig(t) @ T_rig_cam`` at the same
        timestamps.  Composition happens at the stored poses (not after
        interpolation), so the returned trajectory is an ordinary
        :class:`Trajectory` — samples interpolate between *composed*
        poses, and two callers composing the same extrinsic get
        bit-identical poses.  ``transformed(SE3.identity())`` is exact:
        every rotation and translation round-trips bit-for-bit.
        """
        if not isinstance(offset, SE3):
            raise TypeError("offset must be an SE3 extrinsic")
        return Trajectory(self._timestamps, [p @ offset for p in self._poses])

    def subsampled(self, step: int) -> "Trajectory":
        """Every ``step``-th pose (always keeping the last one)."""
        if step < 1:
            raise ValueError("step must be >= 1")
        idx = list(range(0, len(self._poses), step))
        if idx[-1] != len(self._poses) - 1:
            idx.append(len(self._poses) - 1)
        return Trajectory(self._timestamps[idx], [self._poses[i] for i in idx])

    def path_length(self) -> float:
        """Total translational distance travelled."""
        return float(np.sum(np.linalg.norm(np.diff(self._trans, axis=0), axis=1)))

    def perturbed(
        self,
        translation_std: float = 0.0,
        rotation_std: float = 0.0,
        seed: int = 0,
    ) -> "Trajectory":
        """Trajectory with zero-mean Gaussian pose noise.

        Models the pose error of a real tracking front-end (EMVS assumes a
        *known* trajectory; its sensitivity to pose error bounds how good
        the tracker feeding it must be).  ``translation_std`` is in metres
        per axis; ``rotation_std`` is the std-dev of a random axis-angle
        perturbation in radians.
        """
        if translation_std < 0 or rotation_std < 0:
            raise ValueError("noise magnitudes must be non-negative")
        rng = np.random.default_rng(seed)
        poses = []
        for pose in self._poses:
            t = pose.translation + translation_std * rng.standard_normal(3)
            rot = pose.rotation
            if rotation_std > 0:
                axis = rng.standard_normal(3)
                axis /= max(np.linalg.norm(axis), 1e-12)
                angle = rotation_std * rng.standard_normal()
                rot = (
                    Quaternion.from_axis_angle(axis, angle).to_matrix() @ rot
                )
            poses.append(SE3(rot, t))
        return Trajectory(self._timestamps, poses)


def _batch_slerp(q0: np.ndarray, q1: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    """Vectorized slerp on ``(N, 4)`` scalar-first quaternion arrays."""
    dot = np.sum(q0 * q1, axis=1)
    flip = dot < 0.0
    q1 = np.where(flip[:, None], -q1, q1)
    dot = np.abs(dot)

    out = np.empty_like(q0)
    near = dot > 1.0 - 1e-10
    if np.any(near):  # nlerp fallback for nearly-identical rotations
        a = alpha[near][:, None]
        q = (1.0 - a) * q0[near] + a * q1[near]
        out[near] = q / np.linalg.norm(q, axis=1, keepdims=True)
    far = ~near
    if np.any(far):
        theta = np.arccos(np.clip(dot[far], -1.0, 1.0))
        sin_theta = np.sin(theta)
        a = alpha[far]
        w0 = np.sin((1.0 - a) * theta) / sin_theta
        w1 = np.sin(a * theta) / sin_theta
        q = w0[:, None] * q0[far] + w1[:, None] * q1[far]
        out[far] = q / np.linalg.norm(q, axis=1, keepdims=True)
    return out


def _quat_to_matrix(q: np.ndarray) -> np.ndarray:
    """Vectorized quaternion-to-matrix for ``(N, 4)`` scalar-first arrays."""
    w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    R = np.empty((q.shape[0], 3, 3))
    R[:, 0, 0] = 1 - 2 * (y * y + z * z)
    R[:, 0, 1] = 2 * (x * y - w * z)
    R[:, 0, 2] = 2 * (x * z + w * y)
    R[:, 1, 0] = 2 * (x * y + w * z)
    R[:, 1, 1] = 1 - 2 * (x * x + z * z)
    R[:, 1, 2] = 2 * (y * z - w * x)
    R[:, 2, 0] = 2 * (x * z - w * y)
    R[:, 2, 1] = 2 * (y * z + w * x)
    R[:, 2, 2] = 1 - 2 * (x * x + y * y)
    return R


def linear_trajectory(
    start: np.ndarray,
    end: np.ndarray,
    duration: float,
    n_poses: int = 100,
    rotation: Quaternion | None = None,
    t_start: float = 0.0,
) -> Trajectory:
    """Straight-line constant-velocity trajectory (the ``slider_*`` motion).

    The Event Camera Dataset's slider sequences move a DAVIS on a motorized
    linear slider with fixed orientation; this helper reproduces that motion
    profile exactly.
    """
    if n_poses < 2:
        raise ValueError("need at least two poses")
    rot = (rotation or Quaternion.identity()).to_matrix()
    start = np.asarray(start, dtype=float)
    end = np.asarray(end, dtype=float)
    times = t_start + np.linspace(0.0, duration, n_poses)
    alphas = np.linspace(0.0, 1.0, n_poses)
    poses = [SE3(rot, (1 - a) * start + a * end) for a in alphas]
    return Trajectory(times, poses)
