"""Pinhole camera model.

The DAVIS240C sensor used by the paper has a resolution of 240x180 pixels;
:func:`PinholeCamera.davis240c` builds the calibration shipped with the
Event Camera Dataset (Mueggler et al., IJRR 2017).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.distortion import Distortion, NoDistortion


@dataclass(frozen=True)
class PinholeCamera:
    """Pinhole camera with optional lens distortion.

    Attributes
    ----------
    width, height:
        Sensor resolution in pixels.
    fx, fy:
        Focal lengths in pixels.
    cx, cy:
        Principal point in pixels.
    distortion:
        Lens distortion model applied between the normalized image plane
        and the pixel grid.
    """

    width: int
    height: int
    fx: float
    fy: float
    cx: float
    cy: float
    distortion: Distortion = field(default_factory=NoDistortion)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("camera resolution must be positive")
        if self.fx <= 0 or self.fy <= 0:
            raise ValueError("focal length must be positive")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def davis240c(distorted: bool = False) -> "PinholeCamera":
        """Calibration of the DAVIS240C from the Event Camera Dataset.

        Parameters
        ----------
        distorted:
            When True, attach the radial-tangential distortion coefficients
            published with the ``slider_*`` sequences; the ideal (simulated)
            sequences use a distortion-free model.
        """
        from repro.geometry.distortion import RadialTangentialDistortion

        dist: Distortion = NoDistortion()
        if distorted:
            dist = RadialTangentialDistortion(
                k1=-0.368436, k2=0.150947, p1=-0.000296, p2=-0.000439
            )
        return PinholeCamera(
            width=240,
            height=180,
            fx=199.092,
            fy=198.828,
            cx=132.192,
            cy=110.712,
            distortion=dist,
        )

    @staticmethod
    def ideal(width: int, height: int, fov_deg: float = 60.0) -> "PinholeCamera":
        """Distortion-free camera with a given horizontal field of view."""
        fov = np.deg2rad(fov_deg)
        fx = (width / 2.0) / np.tan(fov / 2.0)
        return PinholeCamera(
            width=width,
            height=height,
            fx=fx,
            fy=fx,
            cx=(width - 1) / 2.0,
            cy=(height - 1) / 2.0,
        )

    # ------------------------------------------------------------------
    # Intrinsics
    # ------------------------------------------------------------------
    @property
    def K(self) -> np.ndarray:
        """3x3 intrinsic matrix."""
        return np.array(
            [[self.fx, 0.0, self.cx], [0.0, self.fy, self.cy], [0.0, 0.0, 1.0]]
        )

    @property
    def K_inv(self) -> np.ndarray:
        return np.array(
            [
                [1.0 / self.fx, 0.0, -self.cx / self.fx],
                [0.0, 1.0 / self.fy, -self.cy / self.fy],
                [0.0, 0.0, 1.0],
            ]
        )

    @property
    def resolution(self) -> tuple[int, int]:
        return (self.width, self.height)

    def scaled(self, factor: float) -> "PinholeCamera":
        """Camera for an image resampled by ``factor`` (e.g. 0.5 = half-res)."""
        return PinholeCamera(
            width=int(round(self.width * factor)),
            height=int(round(self.height * factor)),
            fx=self.fx * factor,
            fy=self.fy * factor,
            cx=self.cx * factor,
            cy=self.cy * factor,
            distortion=self.distortion,
        )

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def project(self, points: np.ndarray, apply_distortion: bool = True) -> np.ndarray:
        """Project camera-frame 3D points to pixels.

        Parameters
        ----------
        points:
            ``(N, 3)`` array of points in the camera frame (Z forward).
        apply_distortion:
            Apply the lens distortion model (True reproduces what the real
            sensor observes).

        Returns
        -------
        ``(N, 2)`` pixel coordinates.  Points with non-positive depth yield
        non-finite pixels.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        z = points[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            xn = np.where(z > 0, points[:, 0] / z, np.nan)
            yn = np.where(z > 0, points[:, 1] / z, np.nan)
        if apply_distortion:
            xn, yn = self.distortion.distort(xn, yn)
        return np.stack([self.fx * xn + self.cx, self.fy * yn + self.cy], axis=1)

    def back_project(self, pixels: np.ndarray, undistort: bool = True) -> np.ndarray:
        """Unit-depth rays for pixel coordinates.

        Returns ``(N, 3)`` points on the ``Z = 1`` plane in the camera frame;
        multiplying by a depth gives the 3D point.
        """
        pixels = np.atleast_2d(np.asarray(pixels, dtype=float))
        xn = (pixels[:, 0] - self.cx) / self.fx
        yn = (pixels[:, 1] - self.cy) / self.fy
        if undistort:
            xn, yn = self.distortion.undistort(xn, yn)
        return np.stack([xn, yn, np.ones_like(xn)], axis=1)

    def undistort_pixels(self, pixels: np.ndarray) -> np.ndarray:
        """Map raw (distorted) pixels to ideal pinhole pixels.

        This is the *Event Distortion Correction* stage of the paper; the
        reformulated dataflow runs it per event before aggregation.
        """
        rays = self.back_project(pixels, undistort=True)
        return np.stack(
            [self.fx * rays[:, 0] + self.cx, self.fy * rays[:, 1] + self.cy], axis=1
        )

    def contains(self, pixels: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Boolean mask of pixels inside the sensor (with optional margin)."""
        pixels = np.atleast_2d(np.asarray(pixels, dtype=float))
        x, y = pixels[:, 0], pixels[:, 1]
        ok = np.isfinite(x) & np.isfinite(y)
        return (
            ok
            & (x >= -0.5 + margin)
            & (x <= self.width - 0.5 - margin)
            & (y >= -0.5 + margin)
            & (y <= self.height - 0.5 - margin)
        )

    def pixel_grid(self) -> np.ndarray:
        """All pixel centres as an ``(H*W, 2)`` array, row-major."""
        xs, ys = np.meshgrid(np.arange(self.width), np.arange(self.height))
        return np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)
