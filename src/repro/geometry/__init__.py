"""Geometry substrate: rotations, rigid transforms, cameras and homographies.

Everything in :mod:`repro` that touches 3D geometry goes through this
package.  Conventions:

* Rotations are 3x3 orthonormal matrices or unit quaternions ``(w, x, y, z)``.
* Rigid transforms :class:`SE3` map points from one frame to another;
  ``T_wc`` maps camera-frame points into the world frame (i.e. it stores the
  camera pose).
* Image coordinates are ``(x, y)`` pixels with the origin at the centre of
  the top-left pixel, x to the right, y down.
"""

from repro.geometry.se3 import SO3, SE3, Quaternion
from repro.geometry.camera import PinholeCamera
from repro.geometry.distortion import RadialTangentialDistortion, NoDistortion
from repro.geometry.homography import (
    plane_homography,
    canonical_plane_homography,
    proportional_coefficients,
)
from repro.geometry.trajectory import Trajectory

__all__ = [
    "SO3",
    "SE3",
    "Quaternion",
    "PinholeCamera",
    "RadialTangentialDistortion",
    "NoDistortion",
    "plane_homography",
    "canonical_plane_homography",
    "proportional_coefficients",
    "Trajectory",
]
