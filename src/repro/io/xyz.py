"""Plain-text XYZ point-cloud IO (one ``x y z`` triple per line)."""

from __future__ import annotations

import numpy as np

from repro.core.pointcloud import PointCloud


def save_xyz(path: str, cloud: PointCloud | np.ndarray, precision: int = 6) -> None:
    """Write a cloud as whitespace-separated XYZ text."""
    points = cloud.points if isinstance(cloud, PointCloud) else np.asarray(cloud)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError("points must be (N, 3)")
    np.savetxt(path, points, fmt=f"%.{precision}f")


def load_xyz(path: str) -> PointCloud:
    """Read an XYZ text file into a :class:`PointCloud`."""
    import os

    if os.path.getsize(path) == 0:
        return PointCloud()
    data = np.loadtxt(path, dtype=float, ndmin=2)
    if data.size == 0:
        return PointCloud()
    if data.shape[1] != 3:
        raise ValueError(f"XYZ files have 3 columns, got {data.shape[1]}")
    return PointCloud(data)
