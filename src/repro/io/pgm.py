"""PGM / PFM image IO for depth and confidence maps.

PGM (8/16-bit greyscale) is the quick-look format; PFM stores the float
depth losslessly (including NaN for undetected pixels, encoded as the
conventional -1 sentinel on write).
"""

from __future__ import annotations

import numpy as np


def depth_to_image(
    depth: np.ndarray,
    z_range: tuple[float, float] | None = None,
    invalid_value: int = 0,
) -> np.ndarray:
    """Map a (possibly NaN-holed) depth map to a uint16 image.

    Near depths map bright, far dark (the usual depth-map convention);
    invalid pixels get ``invalid_value``.
    """
    depth = np.asarray(depth, dtype=float)
    valid = np.isfinite(depth)
    if z_range is None:
        if not valid.any():
            return np.full(depth.shape, invalid_value, dtype=np.uint16)
        z_range = (float(depth[valid].min()), float(depth[valid].max()))
    lo, hi = z_range
    span = max(hi - lo, 1e-12)
    norm = np.clip((np.nan_to_num(depth, nan=hi) - lo) / span, 0.0, 1.0)
    image = ((1.0 - norm) * 65534 + 1).astype(np.uint16)
    image[~valid] = invalid_value
    return image


def save_pgm(path: str, image: np.ndarray) -> None:
    """Write an 8- or 16-bit binary PGM (P5)."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError("PGM images are 2-D")
    if image.dtype == np.uint8:
        maxval = 255
        payload = image.tobytes()
    elif image.dtype == np.uint16:
        maxval = 65535
        payload = image.astype(">u2").tobytes()  # PGM is big-endian
    else:
        raise ValueError("PGM supports uint8/uint16 only")
    with open(path, "wb") as f:
        f.write(f"P5\n{image.shape[1]} {image.shape[0]}\n{maxval}\n".encode())
        f.write(payload)


def save_pfm(path: str, data: np.ndarray) -> None:
    """Write a float32 PFM (single channel, little-endian).

    NaNs (undetected pixels) are stored as -1, the common PFM sentinel.
    """
    data = np.asarray(data, dtype=np.float32)
    if data.ndim != 2:
        raise ValueError("PFM images are 2-D")
    out = np.where(np.isfinite(data), data, np.float32(-1.0))
    with open(path, "wb") as f:
        f.write(f"Pf\n{data.shape[1]} {data.shape[0]}\n-1.0\n".encode())
        # PFM stores rows bottom-up.
        f.write(np.ascontiguousarray(out[::-1], dtype="<f4").tobytes())


def load_pfm(path: str) -> np.ndarray:
    """Read a PFM written by :func:`save_pfm` (-1 decoded back to NaN)."""
    with open(path, "rb") as f:
        magic = f.readline().strip()
        if magic != b"Pf":
            raise ValueError("only single-channel PFM is supported")
        width, height = map(int, f.readline().split())
        scale = float(f.readline())
        dtype = "<f4" if scale < 0 else ">f4"
        data = np.frombuffer(f.read(), dtype=dtype, count=width * height)
    image = data.reshape(height, width)[::-1].astype(float)
    return np.where(image == -1.0, np.nan, image)
