"""File exporters/importers for reconstruction outputs.

Dependency-free writers for the formats downstream tools expect:
PLY point clouds (:mod:`repro.io.ply`), PGM/PFM depth and confidence
images (:mod:`repro.io.pgm`) and plain-text XYZ clouds
(:mod:`repro.io.xyz`).
"""

from repro.io.ply import save_ply, load_ply
from repro.io.pgm import save_pgm, save_pfm, load_pfm, depth_to_image
from repro.io.xyz import save_xyz, load_xyz

__all__ = [
    "save_ply",
    "load_ply",
    "save_pgm",
    "save_pfm",
    "load_pfm",
    "depth_to_image",
    "save_xyz",
    "load_xyz",
]
