"""Command-line interface.

Eight subcommands cover the common workflows end to end::

    python -m repro info                         # registries & configuration
    python -m repro simulate -s slider_close -o out/   # write a dataset dir
    python -m repro reconstruct -s simulation_3planes -o cloud.ply
    python -m repro serve --job slider_long --job corridor_sweep --status
    python -m repro gateway --shards 4 --port 8080
    python -m repro submit -s corridor_sweep --repeat 3
    python -m repro stream -s corridor_sweep --chunk-ms 20
    python -m repro models                       # Tables 2/3 from the models

``reconstruct`` accepts either a built-in sequence replica (``-s``) or a
directory in Event Camera Dataset layout (``-d``), runs the chosen
pipeline, reports metrics (when ground truth exists) and writes the cloud
and depth maps in standard formats.  ``serve`` / ``submit`` drive the
multi-session reconstruction service; ``stream`` feeds one sequence
through an incremental streaming session, printing a line per finalized
key frame as the map grows.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


def _cmd_info(args) -> int:
    import os

    from repro.core import BACKENDS, POLICIES
    from repro.events.datasets import (
        RIG_SCENARIO_NAMES,
        SCENARIO_NAMES,
        SEQUENCE_NAMES,
        SHORT_NAMES,
    )
    from repro.serve import CACHE_MODES, OVERFLOW_POLICIES, CacheConfig, FaultKind

    print("Eventor reproduction — available sequence replicas:")
    for name in SEQUENCE_NAMES:
        print(f"  {name}  (short: {SHORT_NAMES[name]})")
    print("scenario registry (extended multi-keyframe workloads):")
    for name in SCENARIO_NAMES:
        print(f"  {name}  (short: {SHORT_NAMES[name]})")
    print("rig scenarios (multi-camera stereo fusion; `reconstruct --rig`):")
    for name in RIG_SCENARIO_NAMES:
        print(f"  {name}  (short: {SHORT_NAMES[name]})")
    from repro.native import provider_status

    print(f"\nregistered backends: {', '.join(sorted(BACKENDS))}")
    print(f"native kernel provider: {provider_status()}")
    print(f"registered policies: {', '.join(sorted(POLICIES))}")
    print(f"serve overflow policies: {', '.join(OVERFLOW_POLICIES)}")
    print(
        "serve fault taxonomy (chaos testing): "
        + ", ".join(kind.value for kind in FaultKind)
    )
    defaults = CacheConfig()
    env_dir = os.environ.get("REPRO_CACHE_DIR") or None
    print(
        f"serve cache tiers: job LRU {defaults.job_entries} entries; "
        f"segment memory {defaults.mem_mb:.0f} MiB (0 = off), "
        f"segment disk {defaults.disk_mb:.0f} MiB"
    )
    print(
        "segment disk tier directory: "
        + (f"{env_dir} (from REPRO_CACHE_DIR)" if env_dir else
           "unset (pass --cache-dir or set REPRO_CACHE_DIR)")
    )
    print(f"per-job cache modes: {', '.join(CACHE_MODES)}")
    print("\nDefault configuration: 1024-event frames, Nz=100 planes,")
    print("nearest voting + Table 1 quantization (reformulated pipeline).")
    return 0


def _cmd_simulate(args) -> int:
    from repro.events.datasets import load_sequence
    from repro.events.davis_io import save_dataset_dir

    seq = load_sequence(args.sequence, quality=args.quality)
    save_dataset_dir(args.output, seq.events, seq.trajectory, seq.camera)
    print(
        f"wrote {len(seq.events)} events + trajectory + calibration to "
        f"{args.output} (Event Camera Dataset layout)"
    )
    return 0


def _load_input(args):
    """Returns (events, trajectory, camera, sequence_or_None)."""
    if args.sequence and args.dataset:
        raise SystemExit("use either --sequence or --dataset, not both")
    if args.sequence:
        from repro.events.datasets import load_sequence

        try:
            seq = load_sequence(args.sequence, quality=args.quality)
        except KeyError as e:
            # load_sequence's message already lists the available names.
            raise SystemExit(e.args[0]) from None
        return seq.events, seq.trajectory, seq.camera, seq
    if args.dataset:
        from repro.events.davis_io import load_dataset_dir

        events, trajectory, camera = load_dataset_dir(args.dataset)
        return events, trajectory, camera, None
    raise SystemExit("one of --sequence or --dataset is required")


def _resolve_backend(name: str):
    """Validate a backend name against the live registry (helpful error)."""
    from repro.core import BACKENDS

    if name not in BACKENDS:
        raise SystemExit(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(sorted(BACKENDS))}"
        )
    return name


def _resolve_policy(name: str):
    """Validate a policy name against the live registry (helpful error)."""
    from repro.core import POLICIES

    if name not in POLICIES:
        raise SystemExit(
            f"unknown policy {name!r}; registered policies: "
            f"{', '.join(sorted(POLICIES))}"
        )
    return POLICIES[name]


def _save_cloud(path: str, cloud) -> None:
    """Write a point cloud as .ply or (anything else) .xyz."""
    if path.endswith(".ply"):
        from repro.io.ply import save_ply

        save_ply(path, cloud)
    else:
        from repro.io.xyz import save_xyz

        save_xyz(path, cloud)
    print(f"wrote {len(cloud)} points to {path}")


def _cmd_reconstruct_rig(args) -> int:
    """The ``reconstruct --rig`` path: N cameras, one fused map."""
    from repro.core import CameraRig, EMVSConfig, RigOrchestrator
    from repro.eval.metrics import compare_rig_to_monocular
    from repro.events.datasets import load_rig_sequence

    if args.sequence or args.dataset:
        raise SystemExit("--rig names its own scenario; drop --sequence/--dataset")
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    _resolve_backend(args.backend)
    policy = _resolve_policy(args.policy or args.pipeline)
    try:
        seq = load_rig_sequence(args.rig, quality=args.quality)
    except KeyError as e:
        raise SystemExit(e.args[0]) from None
    n_events = sum(len(ev) for ev in seq.events.values())
    print(
        f"rig input: {seq.n_cameras} cameras "
        f"({', '.join(seq.camera_names)}), {n_events} events total"
    )

    config = EMVSConfig(
        n_depth_planes=args.planes,
        frame_size=args.frame_size,
        keyframe_distance=(
            args.keyframe_distance
            if args.keyframe_distance is not None
            else seq.keyframe_distance
        ),
    )
    rig = CameraRig.from_trajectory(
        seq.camera,
        seq.trajectory,
        config,
        extrinsics=seq.extrinsics,
        names=list(seq.camera_names),
        depth_range=seq.depth_range,
        policy=policy,
        backend=args.backend,
    )
    orchestrator = RigOrchestrator(
        rig,
        workers=args.workers,
        voxel_size=args.fuse_voxel,
        min_cameras=args.min_cameras,
    )
    result = orchestrator.run(seq.events)
    print(
        f"mapped {seq.n_cameras} cameras on {result.workers} worker(s) "
        f"in {result.wall_seconds:.2f} s "
        f"[policy={policy.name}, backend={args.backend}]"
    )
    print(
        f"rig-fused map: {result.n_points} points "
        f"(min_cameras={result.min_cameras}, "
        f"voxel {result.global_map.voxel_size * 1e3:.1f} mm)"
    )
    comparison = compare_rig_to_monocular(result, seq)
    for name in seq.camera_names:
        print(f"  {name} solo: {comparison.per_camera[name]}")
    print(f"  fused:  {comparison.fused}")
    print(
        f"fusion vs best single camera ({comparison.best_camera}): "
        f"{'-' if comparison.fusion_wins else '+'}"
        f"{abs(comparison.improvement):.4f} m mean surface distance"
    )

    if args.output:
        cloud = result.cloud
        if args.filter_radius > 0:
            cloud = cloud.radius_filter(args.filter_radius, min_neighbors=2)
        _save_cloud(args.output, cloud)
    return 0


def _cmd_reconstruct(args) -> int:
    from repro.core import EMVSConfig, MappingOrchestrator, ReconstructionEngine

    if args.rig:
        return _cmd_reconstruct_rig(args)
    if args.min_cameras is not None:
        raise SystemExit("--min-cameras requires --rig")
    _resolve_backend(args.backend)
    # --policy overrides the legacy --pipeline spelling; both name the same
    # dataflow presets.
    policy = _resolve_policy(args.policy or args.pipeline)
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.fuse_voxel is not None and args.fuse_voxel <= 0:
        raise SystemExit("--fuse-voxel must be positive")

    events, trajectory, camera, seq = _load_input(args)
    if args.t_start is not None or args.t_end is not None:
        t0 = events.t_start if args.t_start is None else args.t_start
        t1 = events.t_end if args.t_end is None else args.t_end
        events = events.time_slice(t0, t1)
    print(f"input: {len(events)} events over {events.duration:.2f} s")

    depth_range = (
        seq.depth_range if seq is not None else (args.z_min, args.z_max)
    )
    keyframe_distance = args.keyframe_distance
    if keyframe_distance is None and seq is not None:
        keyframe_distance = seq.keyframe_distance  # scenario recommendation
    config = EMVSConfig(
        n_depth_planes=args.planes,
        frame_size=args.frame_size,
        keyframe_distance=keyframe_distance,
    )
    if args.batch_frames is not None:
        import dataclasses

        if args.batch_frames < 1:
            raise SystemExit("--batch-frames must be >= 1")
        policy = dataclasses.replace(policy, batch_frames=args.batch_frames)
    if args.backend == "hardware-model" and not policy.schema.enabled:
        raise SystemExit(
            "the hardware-model backend is quantized by design; "
            "use --policy reformulated"
        )

    # An explicit fusion voxel is a request to fuse.
    fused = args.fuse or args.workers > 1 or args.fuse_voxel is not None
    if fused:
        if args.workers > 1 and keyframe_distance is None:
            print(
                "note: no key-frame distance set — the stream is a single "
                "segment, so extra workers cannot help; pass "
                "--keyframe-distance to shard it"
            )
        orchestrator = MappingOrchestrator(
            camera,
            trajectory,
            config,
            depth_range=depth_range,
            policy=policy,
            backend=args.backend,
            workers=args.workers,
            voxel_size=args.fuse_voxel,
        )
        result = orchestrator.run(events)
        print(
            f"mapped {len(result.segments)} segment(s) on "
            f"{result.workers} worker(s) in {result.wall_seconds:.2f} s"
        )
        print(
            f"fused global map: {result.n_points} points "
            f"({result.global_map.n_raw_points} observations, "
            f"voxel {result.global_map.voxel_size * 1e3:.1f} mm) "
            f"[policy={policy.name}, backend={args.backend}]"
        )
    else:
        engine = ReconstructionEngine(
            camera,
            trajectory,
            config,
            depth_range=depth_range,
            policy=policy,
            backend=args.backend,
        )
        result = engine.run(events)
        print(
            f"reconstructed {result.n_points} points across "
            f"{len(result.keyframes)} key frame(s) "
            f"[policy={policy.name}, backend={args.backend}]"
        )
    if result.profile.dropped_events:
        print(f"dropped events (misses + trailing partial frame): "
              f"{result.profile.dropped_events}")

    if seq is not None and result.keyframes:
        from repro.eval.metrics import evaluate_fused_map, evaluate_reconstruction

        print(f"accuracy vs. ground truth: {evaluate_reconstruction(result, seq)}")
        if fused and result.n_points:
            print(f"fused-map accuracy: {evaluate_fused_map(result.cloud, seq)}")

    if args.output:
        cloud = result.cloud
        if args.filter_radius > 0:
            cloud = cloud.radius_filter(args.filter_radius, min_neighbors=2)
        _save_cloud(args.output, cloud)

    if args.depth_map and result.keyframes:
        from repro.io.pgm import depth_to_image, save_pgm

        dm = result.keyframes[-1].depth_map
        save_pgm(args.depth_map, depth_to_image(dm.depth, depth_range))
        print(f"wrote depth map ({dm.n_points} px) to {args.depth_map}")
    return 0


def _validate_serve_limits(args) -> None:
    """Shared numeric validation of the serving knobs (registry-error style)."""
    from repro.serve import OVERFLOW_POLICIES

    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.queue_limit < 1:
        raise SystemExit("--queue-limit must be >= 1")
    if args.cache_size < 0:
        raise SystemExit("--cache-size must be >= 0 (0 disables the cache)")
    if args.overflow not in OVERFLOW_POLICIES:
        raise SystemExit(
            f"unknown overflow policy {args.overflow!r}; "
            f"known policies: {', '.join(OVERFLOW_POLICIES)}"
        )
    if getattr(args, "repeat", 1) < 1:
        raise SystemExit("--repeat must be >= 1")
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        raise SystemExit("--deadline-ms must be positive")
    if args.segment_deadline_ms is not None and args.segment_deadline_ms <= 0:
        raise SystemExit("--segment-deadline-ms must be positive")
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0")
    if args.retry_backoff_ms < 0:
        raise SystemExit("--retry-backoff-ms must be >= 0")
    if args.cache_mem_mb < 0:
        raise SystemExit("--cache-mem-mb must be >= 0 (0 disables the tier)")
    if args.cache_disk_mb < 0:
        raise SystemExit("--cache-disk-mb must be >= 0 (0 disables the tier)")


def _service_config(args):
    """Build the one :class:`ServiceConfig` every serve command runs on.

    The single construction point of the CLI's service configuration:
    engine-independent pool/admission knobs, the cache tiers, and the
    default per-job options all land in one value object that
    ``ReconstructionService.from_config`` consumes.
    """
    from repro.serve import CacheConfig, JobOptions, RetryPolicy, ServiceConfig

    retry = None
    if args.retries > 0:
        retry = RetryPolicy(
            max_attempts=args.retries + 1,
            backoff_s=args.retry_backoff_ms * 1e-3,
        )
    options = JobOptions(
        retry=retry,
        deadline_s=None if args.deadline_ms is None else args.deadline_ms * 1e-3,
        segment_deadline_s=(
            None
            if args.segment_deadline_ms is None
            else args.segment_deadline_ms * 1e-3
        ),
        allow_partial=args.allow_partial or None,
    )
    cache = CacheConfig(
        job_entries=args.cache_size,
        mem_mb=args.cache_mem_mb,
        disk_mb=args.cache_disk_mb,
        cache_dir=args.cache_dir,
    )
    return ServiceConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        overflow=args.overflow,
        cache=cache,
        defaults=options,
    )


def _sequence_job(args, name: str, policy):
    """Load a named sequence and build its (events, EngineSpec) pair."""
    from repro.core import EMVSConfig, EngineSpec
    from repro.events.datasets import load_sequence

    try:
        seq = load_sequence(name, quality=args.quality)
    except KeyError as e:
        raise SystemExit(e.args[0]) from None
    events = seq.events
    if args.t_start is not None or args.t_end is not None:
        t0 = events.t_start if args.t_start is None else args.t_start
        t1 = events.t_end if args.t_end is None else args.t_end
        events = events.time_slice(t0, t1)
    keyframe_distance = args.keyframe_distance
    if keyframe_distance is None:
        keyframe_distance = seq.keyframe_distance
    config = EMVSConfig(
        n_depth_planes=args.planes,
        frame_size=args.frame_size,
        keyframe_distance=keyframe_distance,
    )
    spec = EngineSpec(
        seq.camera,
        seq.trajectory,
        config,
        depth_range=seq.depth_range,
        policy=policy,
        backend=args.backend,
    )
    return seq, events, spec


def _print_service_report(service, job_ids) -> None:
    from repro.serve import JobState

    print(f"{'job':<22} {'session':<12} {'state':<8} "
          f"{'segs':>4} {'points':>8} {'ms':>8} cache")
    for job_id in job_ids:
        status = service.poll(job_id)
        job = service.jobs[job_id]
        points = job.result.n_points if job.result is not None else 0
        ms = (status.latency_seconds or 0.0) * 1e3
        via = "hit" if status.cache_hit else (
            "coalesced" if status.coalesced else "-"
        )
        print(
            f"{job_id:<22} {status.session:<12} {status.state.value:<8} "
            f"{status.segments_done:>2}/{status.segments_total:<2} "
            f"{points:>8} {ms:>8.1f} {via}"
        )
        if status.state is JobState.FAILED:
            print(f"  error: {status.error}")
        if status.missing_segments:
            print(
                f"  missing segments: "
                f"{', '.join(str(i) for i in status.missing_segments)}"
            )
    stats = service.stats()
    print(
        f"cache: {stats.cache.hits} hit(s) / {stats.cache.misses} miss(es), "
        f"{stats.cache.size}/{stats.cache.capacity} entries, "
        f"{stats.jobs_coalesced} coalesced; "
        f"refused {stats.jobs_refused}, dropped {stats.jobs_dropped}"
    )
    if service.segment_cache.enabled:
        print(
            f"segment cache: {stats.cache.segment_hits} hit(s) "
            f"({stats.cache.segment_disk_hits} from disk) / "
            f"{stats.cache.segment_misses} miss(es); "
            f"{stats.cache.segment_entries} in memory, "
            f"{stats.cache.segment_disk_entries} on disk"
        )
    if (
        stats.jobs_partial
        or stats.segments_retried
        or stats.segments_timed_out
        or stats.results_corrupted
    ):
        print(
            f"reliability: {stats.segments_retried} segment(s) retried, "
            f"{stats.segments_timed_out} timed out, "
            f"{stats.jobs_partial} partial job(s), "
            f"{stats.results_corrupted} corrupted payload(s) rejected"
        )
    if stats.segments_dispatched:
        shares = ", ".join(
            f"{name}={count}" for name, count in stats.segments_dispatched.items()
        )
        print(f"segments dispatched per session: {shares}")


def _cmd_serve(args) -> int:
    from repro.serve import ReconstructionService, SessionBacklogFull

    _resolve_backend(args.backend)
    policy = _resolve_policy(args.policy)
    _validate_serve_limits(args)
    job_tokens = args.job or ["slider_long", "corridor_sweep"]

    with ReconstructionService.from_config(_service_config(args)) as service:
        submitted = []
        for token in job_tokens:
            name, _, session = token.partition(":")
            _, events, spec = _sequence_job(args, name, policy)
            for _ in range(args.repeat):
                try:
                    submitted.append(
                        service.submit(events, spec, session=session or name)
                    )
                except SessionBacklogFull as e:
                    print(f"refused {name!r}: {e}")
        print(
            f"serving {len(submitted)} job(s) from {len(job_tokens)} stream(s) "
            f"on {service.workers} worker(s) [{service.executor}]"
        )
        service.drain()
        _print_service_report(service, submitted)
        if args.status:
            from repro.serve import format_status

            print()
            print(format_status({0: service.stats()}))
    return 0


def _cmd_gateway(args) -> int:
    """Run demo jobs through the sharded async gateway and report.

    The async twin of ``_cmd_serve``: the same ``--job`` tokens are
    submitted through a :class:`~repro.serve.Gateway` (sessions
    consistent-hashed across ``--shards`` services) with the HTTP
    surface live — the final ``/metrics`` and ``/status`` documents
    are scraped over the wire through the gateway's own HTTP server
    rather than read in-process, so the run exercises the full stack.
    """
    import asyncio

    from repro.serve import (
        Gateway,
        GatewayConfig,
        GatewayRefused,
        GatewayServer,
        format_status,
        http_request,
    )

    _resolve_backend(args.backend)
    policy = _resolve_policy(args.policy)
    _validate_serve_limits(args)
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    job_tokens = args.job or ["slider_long", "corridor_sweep"]
    config = GatewayConfig(
        shards=args.shards,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        max_inflight=args.max_inflight,
        port=args.port,
        service=_service_config(args),
    )

    async def run() -> int:
        async with Gateway(config) as gateway:
            async with GatewayServer(gateway) as server:
                print(
                    f"gateway: {config.shards} shard(s), HTTP on "
                    f"{server.host}:{server.port}"
                )
                submitted = []
                for token in job_tokens:
                    name, _, session = token.partition(":")
                    session = session or name
                    _, events, spec = _sequence_job(args, name, policy)
                    for _ in range(args.repeat):
                        try:
                            job_id = await gateway.submit(
                                events, spec, session=session
                            )
                        except GatewayRefused as e:
                            print(f"refused {name!r}: {e}")
                            continue
                        submitted.append(job_id)
                        print(
                            f"  {job_id} -> shard "
                            f"{gateway.shard_index(session)}"
                        )
                completed = await gateway.drain()
                for job_id in submitted:
                    status = await gateway.poll(job_id)
                    print(
                        f"{job_id:<22} {status.state.value:<8} "
                        f"{status.segments_done}/{status.segments_total} "
                        "segments"
                    )
                print(f"drained {completed} job(s) across the shards")
                _, metrics = await http_request(
                    server.host, server.port, "GET", "/metrics"
                )
                _, status_doc = await http_request(
                    server.host, server.port, "GET", "/status"
                )
                if args.metrics:
                    print()
                    print(metrics.decode("utf-8"))
                print()
                print(format_status(await gateway.stats()))
                totals = json.loads(status_doc)["gateway"]
                print(
                    f"gateway: {totals['requests']['submit']} submit(s), "
                    f"refusals {totals['refusals']}, "
                    f"in-flight {totals['inflight_jobs']}"
                )
        return 0

    return asyncio.run(run())


def _cmd_submit(args) -> int:
    from repro.serve import ReconstructionService

    _resolve_backend(args.backend)
    policy = _resolve_policy(args.policy)
    _validate_serve_limits(args)

    _, events, spec = _sequence_job(args, args.sequence, policy)
    print(f"input: {len(events)} events over {events.duration:.2f} s")
    with ReconstructionService.from_config(_service_config(args)) as service:
        from repro.serve import JobFailed, SessionBacklogFull

        job_ids = []
        for _ in range(args.repeat):
            try:
                job_ids.append(service.submit(events, spec, session=args.session))
            except SessionBacklogFull as e:
                raise SystemExit(str(e)) from None
        service.drain()
        try:
            result = service.result(job_ids[-1])
        except JobFailed as e:
            _print_service_report(service, job_ids)
            raise SystemExit(str(e)) from None
        _print_service_report(service, job_ids)

    if args.output:
        _save_cloud(args.output, result.cloud)
    return 0


def _cmd_stream(args) -> int:
    from repro.serve import ReconstructionService, StreamBacklogFull

    _resolve_backend(args.backend)
    policy = _resolve_policy(args.policy)
    _validate_serve_limits(args)
    if args.chunk_ms <= 0:
        raise SystemExit("--chunk-ms must be positive")
    if args.max_pending_chunks < 1:
        raise SystemExit("--max-pending-chunks must be >= 1")

    _, events, spec = _sequence_job(args, args.sequence, policy)
    chunk = args.chunk_ms * 1e-3
    print(
        f"input: {len(events)} events over {events.duration:.2f} s, "
        f"streamed in {args.chunk_ms:.0f} ms chunks"
    )
    with ReconstructionService.from_config(_service_config(args)) as service:
        with service.open_stream(
            spec, session=args.session, max_pending_chunks=args.max_pending_chunks
        ) as stream:
            n_chunks = 0
            # Adjacent chunks share the exact same float bound (and the
            # last one runs to +inf), so the half-open time slices cover
            # every event exactly once — the stream == batch identity
            # depends on it.
            edges = np.arange(events.t_start, events.t_end, chunk)
            for t0, t1 in zip(edges, np.append(edges[1:], np.inf)):
                try:
                    stream.feed(events.time_slice(t0, t1))
                except StreamBacklogFull as e:
                    raise SystemExit(str(e)) from None
                n_chunks += 1
                for update in stream.poll_updates():
                    _print_stream_update(update)
        result = stream.result()
        for update in stream.poll_updates():
            _print_stream_update(update)
        stats = service.stats()
        print(
            f"stream closed after {n_chunks} chunk(s): "
            f"{len(result.keyframes)} key frame(s), {result.n_points} fused "
            f"points on {service.workers} worker(s) [{service.executor}]"
        )
        print(
            f"updates emitted: {stats.updates_emitted}; chunks refused "
            f"{stats.chunks_refused}, dropped {stats.chunks_dropped}; "
            f"dropped events {result.profile.dropped_events}"
        )
        if service.segment_cache.enabled:
            print(
                f"segment cache: {stats.cache.segment_hits} hit(s) "
                f"({stats.cache.segment_disk_hits} from disk) / "
                f"{stats.cache.segment_misses} miss(es); "
                f"{stats.cache.segment_entries} in memory, "
                f"{stats.cache.segment_disk_entries} on disk"
            )
    if args.output:
        _save_cloud(args.output, result.cloud)
    return 0


def _print_stream_update(update) -> None:
    """One line per finalized key frame, as the stream emits it."""
    dm = update.keyframe.depth_map
    print(
        f"  key frame #{update.keyframe_index} (segment {update.segment_index}): "
        f"{dm.n_points} px -> map {len(update.cloud)} points "
        f"({update.map_voxels} voxels) after {update.latency_seconds * 1e3:.0f} ms"
    )


def _cmd_models(args) -> int:
    from repro.eval.experiments import (
        efficiency_gain,
        performance_summary,
        resource_summary,
    )
    from repro.hardware.config import EventorConfig

    cfg = EventorConfig(n_pe_zi=args.pe, n_planes=args.planes)
    r = resource_summary(cfg)
    print("Resources (Table 2):")
    print(f"  LUT {r['luts']} ({r['lut_util']:.2%})  FF {r['flip_flops']} "
          f"({r['ff_util']:.2%})  BRAM {r['bram_kb']:.0f} KB ({r['bram_util']:.2%})")
    s = performance_summary(cfg)
    print("Performance (Table 3):")
    for metric, values in s.items():
        print(f"  {metric:<22} cpu={values['cpu']:9.2f}  eventor={values['eventor']:9.2f}")
    print(f"Energy-efficiency gain: {efficiency_gain(cfg):.1f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Eventor (DAC 2022) reproduction: event-based multi-view stereo",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list built-in sequences").set_defaults(
        func=_cmd_info
    )

    p_sim = sub.add_parser("simulate", help="generate a dataset directory")
    p_sim.add_argument("--sequence", "-s", required=True)
    p_sim.add_argument("--output", "-o", required=True)
    p_sim.add_argument("--quality", choices=("full", "fast"), default="full")
    p_sim.set_defaults(func=_cmd_simulate)

    p_rec = sub.add_parser("reconstruct", help="run EMVS over an event stream")
    p_rec.add_argument("--sequence", "-s", help="built-in sequence replica")
    p_rec.add_argument("--dataset", "-d", help="dataset directory (events.txt...)")
    p_rec.add_argument(
        "--rig", metavar="NAME", default=None,
        help="reconstruct a multi-camera rig scenario (see `repro info`): "
             "runs every camera and fuses with cross-camera agreement",
    )
    p_rec.add_argument(
        "--min-cameras", type=int, default=None,
        help="distinct cameras that must agree on a fused voxel (--rig "
             "only; default 2 when the rig has at least two cameras)",
    )
    p_rec.add_argument("--quality", choices=("full", "fast"), default="full")
    p_rec.add_argument(
        "--pipeline", choices=("original", "reformulated"), default="reformulated",
        help="legacy alias of --policy",
    )
    # --policy/--backend are validated against the live registries at run
    # time (not argparse choices), so registered extensions are accepted
    # and unknown names get an error listing what exists.
    p_rec.add_argument(
        "--policy", default=None,
        help="dataflow policy preset (overrides --pipeline; see `repro info`)",
    )
    p_rec.add_argument(
        "--backend",
        default="numpy-reference",
        help="execution backend from the engine registry (see `repro info`)",
    )
    p_rec.add_argument(
        "--workers", type=int, default=1,
        help="worker-pool width for parallel multi-keyframe mapping; "
             ">1 shards the stream into key-frame segments (results are "
             "bit-identical for any width)",
    )
    p_rec.add_argument(
        "--fuse", action="store_true",
        help="fuse per-keyframe depth maps into one voxel-deduplicated, "
             "confidence-weighted global map (implied by --workers > 1)",
    )
    p_rec.add_argument(
        "--fuse-voxel", type=float, default=None,
        help="fusion voxel edge in metres (default: 1%% of the mean DSI depth)",
    )
    p_rec.add_argument(
        "--batch-frames", type=int, default=None,
        help="frames buffered per flush for batching backends "
             "(numpy-batch; results are bit-identical for any value)",
    )
    p_rec.add_argument("--planes", type=int, default=100, help="DSI depth planes")
    p_rec.add_argument("--frame-size", type=int, default=1024)
    p_rec.add_argument("--keyframe-distance", type=float, default=None)
    p_rec.add_argument("--z-min", type=float, default=0.5)
    p_rec.add_argument("--z-max", type=float, default=5.0)
    p_rec.add_argument("--t-start", type=float, default=None)
    p_rec.add_argument("--t-end", type=float, default=None)
    p_rec.add_argument("--filter-radius", type=float, default=0.0)
    p_rec.add_argument("--output", "-o", help="cloud output (.ply or .xyz)")
    p_rec.add_argument("--depth-map", help="last key frame depth map (.pgm)")
    p_rec.set_defaults(func=_cmd_reconstruct)

    def add_serve_options(p, *, default_backend="numpy-batch", repeat=True):
        """Engine + service knobs shared by `serve`, `submit` and `stream`."""
        p.add_argument("--quality", choices=("full", "fast"), default="full")
        p.add_argument(
            "--policy", default="reformulated",
            help="dataflow policy preset (see `repro info`)",
        )
        p.add_argument(
            "--backend", default=default_backend,
            help="execution backend from the engine registry (see `repro info`)",
        )
        p.add_argument("--planes", type=int, default=100, help="DSI depth planes")
        p.add_argument("--frame-size", type=int, default=1024)
        p.add_argument(
            "--keyframe-distance", type=float, default=None,
            help="key-frame translation threshold (default: the sequence's "
                 "recommendation)",
        )
        p.add_argument("--t-start", type=float, default=None)
        p.add_argument("--t-end", type=float, default=None)
        p.add_argument(
            "--workers", type=int, default=None,
            help="shared worker-pool width (default: one per CPU core)",
        )
        p.add_argument(
            "--queue-limit", type=int, default=8,
            help="max active jobs per session before backpressure applies",
        )
        p.add_argument(
            "--cache-size", type=int, default=32,
            help="job-level LRU result-cache capacity in entries (0 disables)",
        )
        p.add_argument(
            "--cache-dir", default=None,
            help="segment-cache disk-tier directory (persistent across "
                 "restarts; default: the REPRO_CACHE_DIR environment "
                 "variable, unset = disk tier off)",
        )
        p.add_argument(
            "--cache-mem-mb", type=float, default=0.0,
            help="segment-cache memory-tier bound in MiB (0 disables the "
                 "segment memory tier)",
        )
        p.add_argument(
            "--cache-disk-mb", type=float, default=256.0,
            help="segment-cache disk-tier bound in MiB (0 disables the "
                 "disk tier)",
        )
        p.add_argument(
            "--overflow", default="refuse",
            help="full-queue policy: refuse (reject the submission) or "
                 "drop-oldest (evict the session's oldest queued job)",
        )
        p.add_argument(
            "--deadline-ms", type=float, default=None,
            help="whole-job wall-clock budget; an expired job fails (or "
                 "degrades to a partial result with --allow-partial)",
        )
        p.add_argument(
            "--segment-deadline-ms", type=float, default=None,
            help="per-attempt budget of one segment on the pool; expired "
                 "attempts are abandoned by the watchdog and count as "
                 "failures toward the retry budget",
        )
        p.add_argument(
            "--retries", type=int, default=0,
            help="extra attempts per failed segment (0 = fail fast)",
        )
        p.add_argument(
            "--retry-backoff-ms", type=float, default=0.0,
            help="delay before the first retry, doubled per failure",
        )
        p.add_argument(
            "--allow-partial", action="store_true",
            help="degrade out-of-budget jobs to a PARTIAL result (fused "
                 "map of completed key frames + missing-segment manifest) "
                 "instead of failing them",
        )
        if repeat:
            p.add_argument(
                "--repeat", type=int, default=1,
                help="submit each job this many times (repeats hit the result "
                     "cache)",
            )

    p_srv = sub.add_parser(
        "serve",
        help="run a multi-session reconstruction service over demo jobs",
    )
    p_srv.add_argument(
        "--job", action="append", default=None, metavar="SEQUENCE[:SESSION]",
        help="submit this sequence as a job (repeatable; session defaults "
             "to the sequence name; default jobs: slider_long, corridor_sweep)",
    )
    p_srv.add_argument(
        "--status", action="store_true",
        help="print the operational status block (per-shard counters, "
             "retry/partial/cache-hit rates) after the run",
    )
    add_serve_options(p_srv)
    p_srv.set_defaults(func=_cmd_serve)

    p_gw = sub.add_parser(
        "gateway",
        help="run demo jobs through the sharded async gateway (with HTTP "
             "/metrics and /status live)",
    )
    p_gw.add_argument(
        "--job", action="append", default=None, metavar="SEQUENCE[:SESSION]",
        help="submit this sequence as a job (repeatable; session defaults "
             "to the sequence name; default jobs: slider_long, corridor_sweep)",
    )
    p_gw.add_argument(
        "--shards", type=int, default=2,
        help="reconstruction-service shards behind the gateway",
    )
    p_gw.add_argument(
        "--port", type=int, default=0,
        help="HTTP bind port of the gateway server (0 = ephemeral)",
    )
    p_gw.add_argument(
        "--tenant-rate", type=float, default=0.0,
        help="per-tenant token-bucket refill rate in requests/s "
             "(0 disables throttling)",
    )
    p_gw.add_argument(
        "--tenant-burst", type=int, default=8,
        help="per-tenant token-bucket burst capacity",
    )
    p_gw.add_argument(
        "--max-inflight", type=int, default=0,
        help="global cap on jobs in flight across all shards (0 = unbounded)",
    )
    p_gw.add_argument(
        "--metrics", action="store_true",
        help="dump the final /metrics document (Prometheus text) after "
             "the run",
    )
    add_serve_options(p_gw)
    p_gw.set_defaults(func=_cmd_gateway)

    p_sub2 = sub.add_parser(
        "submit", help="submit one sequence through the reconstruction service"
    )
    p_sub2.add_argument("--sequence", "-s", required=True)
    p_sub2.add_argument("--session", default="cli")
    p_sub2.add_argument("--output", "-o", help="fused cloud output (.ply or .xyz)")
    add_serve_options(p_sub2)
    p_sub2.set_defaults(func=_cmd_submit)

    p_str = sub.add_parser(
        "stream",
        help="stream one sequence through an incremental serving session",
    )
    p_str.add_argument("--sequence", "-s", required=True)
    p_str.add_argument("--session", default="stream")
    p_str.add_argument(
        "--chunk-ms", type=float, default=20.0,
        help="chunk duration fed per step (simulated driver cadence)",
    )
    p_str.add_argument(
        "--max-pending-chunks", type=int, default=64,
        help="bounded in-flight chunk buffer; a full buffer applies the "
             "--overflow policy at chunk granularity",
    )
    p_str.add_argument("--output", "-o", help="fused cloud output (.ply or .xyz)")
    add_serve_options(p_str, repeat=False)
    p_str.set_defaults(func=_cmd_stream)

    p_mod = sub.add_parser("models", help="print the hardware model tables")
    p_mod.add_argument("--pe", type=int, default=2, help="PE_Zi count")
    p_mod.add_argument("--planes", type=int, default=128, help="DSI planes")
    p_mod.set_defaults(func=_cmd_models)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
