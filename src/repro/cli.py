"""Command-line interface.

Four subcommands cover the common workflows end to end::

    python -m repro info                         # sequences & configuration
    python -m repro simulate -s slider_close -o out/   # write a dataset dir
    python -m repro reconstruct -s simulation_3planes -o cloud.ply
    python -m repro models                       # Tables 2/3 from the models

``reconstruct`` accepts either a built-in sequence replica (``-s``) or a
directory in Event Camera Dataset layout (``-d``), runs the chosen
pipeline, reports metrics (when ground truth exists) and writes the cloud
and depth maps in standard formats.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(args) -> int:
    from repro.core import BACKENDS, POLICIES
    from repro.events.datasets import SCENARIO_NAMES, SEQUENCE_NAMES, SHORT_NAMES

    print("Eventor reproduction — available sequence replicas:")
    for name in SEQUENCE_NAMES:
        print(f"  {name}  (short: {SHORT_NAMES[name]})")
    print("extended multi-keyframe scenarios (parallel mapping workloads):")
    for name in SCENARIO_NAMES:
        print(f"  {name}  (short: {SHORT_NAMES[name]})")
    print(f"\nregistered backends: {', '.join(sorted(BACKENDS))}")
    print(f"registered policies: {', '.join(sorted(POLICIES))}")
    print("\nDefault configuration: 1024-event frames, Nz=100 planes,")
    print("nearest voting + Table 1 quantization (reformulated pipeline).")
    return 0


def _cmd_simulate(args) -> int:
    from repro.events.datasets import load_sequence
    from repro.events.davis_io import save_dataset_dir

    seq = load_sequence(args.sequence, quality=args.quality)
    save_dataset_dir(args.output, seq.events, seq.trajectory, seq.camera)
    print(
        f"wrote {len(seq.events)} events + trajectory + calibration to "
        f"{args.output} (Event Camera Dataset layout)"
    )
    return 0


def _load_input(args):
    """Returns (events, trajectory, camera, sequence_or_None)."""
    if args.sequence and args.dataset:
        raise SystemExit("use either --sequence or --dataset, not both")
    if args.sequence:
        from repro.events.datasets import load_sequence

        try:
            seq = load_sequence(args.sequence, quality=args.quality)
        except KeyError as e:
            # load_sequence's message already lists the available names.
            raise SystemExit(e.args[0]) from None
        return seq.events, seq.trajectory, seq.camera, seq
    if args.dataset:
        from repro.events.davis_io import load_dataset_dir

        events, trajectory, camera = load_dataset_dir(args.dataset)
        return events, trajectory, camera, None
    raise SystemExit("one of --sequence or --dataset is required")


def _resolve_backend(name: str):
    """Validate a backend name against the live registry (helpful error)."""
    from repro.core import BACKENDS

    if name not in BACKENDS:
        raise SystemExit(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(sorted(BACKENDS))}"
        )
    return name


def _resolve_policy(name: str):
    """Validate a policy name against the live registry (helpful error)."""
    from repro.core import POLICIES

    if name not in POLICIES:
        raise SystemExit(
            f"unknown policy {name!r}; registered policies: "
            f"{', '.join(sorted(POLICIES))}"
        )
    return POLICIES[name]


def _cmd_reconstruct(args) -> int:
    from repro.core import EMVSConfig, MappingOrchestrator, ReconstructionEngine

    _resolve_backend(args.backend)
    # --policy overrides the legacy --pipeline spelling; both name the same
    # dataflow presets.
    policy = _resolve_policy(args.policy or args.pipeline)
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.fuse_voxel is not None and args.fuse_voxel <= 0:
        raise SystemExit("--fuse-voxel must be positive")

    events, trajectory, camera, seq = _load_input(args)
    if args.t_start is not None or args.t_end is not None:
        t0 = events.t_start if args.t_start is None else args.t_start
        t1 = events.t_end if args.t_end is None else args.t_end
        events = events.time_slice(t0, t1)
    print(f"input: {len(events)} events over {events.duration:.2f} s")

    depth_range = (
        seq.depth_range if seq is not None else (args.z_min, args.z_max)
    )
    keyframe_distance = args.keyframe_distance
    if keyframe_distance is None and seq is not None:
        keyframe_distance = seq.keyframe_distance  # scenario recommendation
    config = EMVSConfig(
        n_depth_planes=args.planes,
        frame_size=args.frame_size,
        keyframe_distance=keyframe_distance,
    )
    if args.batch_frames is not None:
        import dataclasses

        if args.batch_frames < 1:
            raise SystemExit("--batch-frames must be >= 1")
        policy = dataclasses.replace(policy, batch_frames=args.batch_frames)
    if args.backend == "hardware-model" and not policy.schema.enabled:
        raise SystemExit(
            "the hardware-model backend is quantized by design; "
            "use --policy reformulated"
        )

    # An explicit fusion voxel is a request to fuse.
    fused = args.fuse or args.workers > 1 or args.fuse_voxel is not None
    if fused:
        if args.workers > 1 and keyframe_distance is None:
            print(
                "note: no key-frame distance set — the stream is a single "
                "segment, so extra workers cannot help; pass "
                "--keyframe-distance to shard it"
            )
        orchestrator = MappingOrchestrator(
            camera,
            trajectory,
            config,
            depth_range=depth_range,
            policy=policy,
            backend=args.backend,
            workers=args.workers,
            voxel_size=args.fuse_voxel,
        )
        result = orchestrator.run(events)
        print(
            f"mapped {len(result.segments)} segment(s) on "
            f"{result.workers} worker(s) in {result.wall_seconds:.2f} s"
        )
        print(
            f"fused global map: {result.n_points} points "
            f"({result.global_map.n_raw_points} observations, "
            f"voxel {result.global_map.voxel_size * 1e3:.1f} mm) "
            f"[policy={policy.name}, backend={args.backend}]"
        )
    else:
        engine = ReconstructionEngine(
            camera,
            trajectory,
            config,
            depth_range=depth_range,
            policy=policy,
            backend=args.backend,
        )
        result = engine.run(events)
        print(
            f"reconstructed {result.n_points} points across "
            f"{len(result.keyframes)} key frame(s) "
            f"[policy={policy.name}, backend={args.backend}]"
        )
    if result.profile.dropped_events:
        print(f"dropped events (misses + trailing partial frame): "
              f"{result.profile.dropped_events}")

    if seq is not None and result.keyframes:
        from repro.eval.metrics import evaluate_fused_map, evaluate_reconstruction

        print(f"accuracy vs. ground truth: {evaluate_reconstruction(result, seq)}")
        if fused and result.n_points:
            print(f"fused-map accuracy: {evaluate_fused_map(result.cloud, seq)}")

    if args.output:
        cloud = result.cloud
        if args.filter_radius > 0:
            cloud = cloud.radius_filter(args.filter_radius, min_neighbors=2)
        if args.output.endswith(".ply"):
            from repro.io.ply import save_ply

            save_ply(args.output, cloud)
        else:
            from repro.io.xyz import save_xyz

            save_xyz(args.output, cloud)
        print(f"wrote {len(cloud)} points to {args.output}")

    if args.depth_map and result.keyframes:
        from repro.io.pgm import depth_to_image, save_pgm

        dm = result.keyframes[-1].depth_map
        save_pgm(args.depth_map, depth_to_image(dm.depth, depth_range))
        print(f"wrote depth map ({dm.n_points} px) to {args.depth_map}")
    return 0


def _cmd_models(args) -> int:
    from repro.eval.experiments import (
        efficiency_gain,
        performance_summary,
        resource_summary,
    )
    from repro.hardware.config import EventorConfig

    cfg = EventorConfig(n_pe_zi=args.pe, n_planes=args.planes)
    r = resource_summary(cfg)
    print("Resources (Table 2):")
    print(f"  LUT {r['luts']} ({r['lut_util']:.2%})  FF {r['flip_flops']} "
          f"({r['ff_util']:.2%})  BRAM {r['bram_kb']:.0f} KB ({r['bram_util']:.2%})")
    s = performance_summary(cfg)
    print("Performance (Table 3):")
    for metric, values in s.items():
        print(f"  {metric:<22} cpu={values['cpu']:9.2f}  eventor={values['eventor']:9.2f}")
    print(f"Energy-efficiency gain: {efficiency_gain(cfg):.1f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Eventor (DAC 2022) reproduction: event-based multi-view stereo",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list built-in sequences").set_defaults(
        func=_cmd_info
    )

    p_sim = sub.add_parser("simulate", help="generate a dataset directory")
    p_sim.add_argument("--sequence", "-s", required=True)
    p_sim.add_argument("--output", "-o", required=True)
    p_sim.add_argument("--quality", choices=("full", "fast"), default="full")
    p_sim.set_defaults(func=_cmd_simulate)

    p_rec = sub.add_parser("reconstruct", help="run EMVS over an event stream")
    p_rec.add_argument("--sequence", "-s", help="built-in sequence replica")
    p_rec.add_argument("--dataset", "-d", help="dataset directory (events.txt...)")
    p_rec.add_argument("--quality", choices=("full", "fast"), default="full")
    p_rec.add_argument(
        "--pipeline", choices=("original", "reformulated"), default="reformulated",
        help="legacy alias of --policy",
    )
    # --policy/--backend are validated against the live registries at run
    # time (not argparse choices), so registered extensions are accepted
    # and unknown names get an error listing what exists.
    p_rec.add_argument(
        "--policy", default=None,
        help="dataflow policy preset (overrides --pipeline; see `repro info`)",
    )
    p_rec.add_argument(
        "--backend",
        default="numpy-reference",
        help="execution backend from the engine registry (see `repro info`)",
    )
    p_rec.add_argument(
        "--workers", type=int, default=1,
        help="worker-pool width for parallel multi-keyframe mapping; "
             ">1 shards the stream into key-frame segments (results are "
             "bit-identical for any width)",
    )
    p_rec.add_argument(
        "--fuse", action="store_true",
        help="fuse per-keyframe depth maps into one voxel-deduplicated, "
             "confidence-weighted global map (implied by --workers > 1)",
    )
    p_rec.add_argument(
        "--fuse-voxel", type=float, default=None,
        help="fusion voxel edge in metres (default: 1%% of the mean DSI depth)",
    )
    p_rec.add_argument(
        "--batch-frames", type=int, default=None,
        help="frames buffered per flush for batching backends "
             "(numpy-batch; results are bit-identical for any value)",
    )
    p_rec.add_argument("--planes", type=int, default=100, help="DSI depth planes")
    p_rec.add_argument("--frame-size", type=int, default=1024)
    p_rec.add_argument("--keyframe-distance", type=float, default=None)
    p_rec.add_argument("--z-min", type=float, default=0.5)
    p_rec.add_argument("--z-max", type=float, default=5.0)
    p_rec.add_argument("--t-start", type=float, default=None)
    p_rec.add_argument("--t-end", type=float, default=None)
    p_rec.add_argument("--filter-radius", type=float, default=0.0)
    p_rec.add_argument("--output", "-o", help="cloud output (.ply or .xyz)")
    p_rec.add_argument("--depth-map", help="last key frame depth map (.pgm)")
    p_rec.set_defaults(func=_cmd_reconstruct)

    p_mod = sub.add_parser("models", help="print the hardware model tables")
    p_mod.add_argument("--pe", type=int, default=2, help="PE_Zi count")
    p_mod.add_argument("--planes", type=int, default=128, help="DSI planes")
    p_mod.set_defaults(func=_cmd_models)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
