"""Eventor reproduction: event-based monocular multi-view stereo + FPGA accelerator model.

Full-system Python reproduction of *"Eventor: An Efficient Event-Based
Monocular Multi-View Stereo Accelerator on FPGA Platform"* (DAC 2022).

Packages
--------
:mod:`repro.geometry`
    SE(3), cameras, distortion, plane homographies, trajectories.
:mod:`repro.events`
    Event containers, aggregation, dataset IO, the event-camera simulator
    and the four evaluation-sequence replicas.
:mod:`repro.fixedpoint`
    Q-format fixed point and the paper's Table 1 quantization schema.
:mod:`repro.core`
    The EMVS algorithm: original (bilinear, float) and reformulated
    (rescheduled, nearest voting, quantized) pipelines.
:mod:`repro.hardware`
    The Eventor accelerator model: bit-true PE datapaths, buffers, DRAM,
    the Fig. 6 frame scheduler, and timing/energy/resource models.
:mod:`repro.baseline`
    The Intel i5 CPU timing model Eventor is compared against.
:mod:`repro.eval`
    AbsRel metrics, experiment runners, table rendering.
:mod:`repro.serve`
    Multi-session reconstruction serving: shared worker pool, fair
    round-robin scheduling, backpressure, LRU result caching.

Quick start
-----------
>>> from repro.events.datasets import load_sequence
>>> from repro.core import ReformulatedPipeline, EMVSConfig
>>> seq = load_sequence("simulation_3planes", quality="fast")
>>> pipe = ReformulatedPipeline(seq.camera, EMVSConfig(), seq.depth_range)
>>> result = pipe.run(seq.events, seq.trajectory)
>>> len(result.cloud) > 0
True
"""

__version__ = "1.0.0"

__all__ = [
    "geometry",
    "events",
    "fixedpoint",
    "core",
    "hardware",
    "baseline",
    "eval",
    "serve",
]
