/* Eventor hot-stage kernels: compiled counterparts of the numpy hot path.
 *
 * The contract of every kernel here is *bit-compatibility* with the numpy
 * reference implementation (see docs/NATIVE.md for the ABI and the one
 * declared exception):
 *
 *   - eventor_phi_batch        == repro.geometry.homography
 *                                 .proportional_coefficients_batch (bit-exact:
 *                                 same elementwise operation order, no FMA)
 *   - eventor_canonical_batch  ~= apply_homography_with_scale_batch
 *                                 (epsilon-bounded: numpy routes the matmul
 *                                 through BLAS, whose accumulation order
 *                                 differs from the C loop)
 *   - eventor_vote_nearest_batch
 *                              == proportional map + nearest_vote_indices
 *                                 + integer scatter (bit-exact)
 *   - eventor_vote_bilinear_batch_{f64,i64}
 *                              == proportional map + bilinear_vote_terms
 *                                 + in-order scatter (bit-exact; the i64
 *                                 variant truncates each corner weight
 *                                 toward zero per addition, matching
 *                                 np.add.at into an int64 buffer)
 *
 * Bit-exactness relies on compiling WITHOUT floating-point contraction:
 * build with -ffp-contract=off (a fused multiply-add would round once
 * where numpy rounds twice).  No -ffast-math, ever.
 *
 * The library is pure C99 + libm with a flat extern "C" ABI (no Python.h),
 * so it can be loaded through ctypes, cffi, or linked from any other
 * provider (e.g. a future Rust crate re-exporting the same symbols).
 * All arrays are dense row-major (C-contiguous) float64 / int64 / uint8.
 */

#include <math.h>
#include <stdint.h>

#if defined(_MSC_VER)
#define EXPORT __declspec(dllexport)
#else
#define EXPORT __attribute__((visibility("default")))
#endif

typedef long long ll;

/* Per-frame proportional coefficient tables (paper sub-task "Compute
 * Proportional Back-Projection Parameters").
 *
 *   centers: (B, 3)  event camera centres in the virtual frame
 *   depths:  (nz,)   DSI depth planes
 *   phi:     (B, nz, 3) output rows (alpha_i, beta_i, gamma_i)
 *
 * Returns 1 when any |denom| < 1e-12 (degenerate geometry: camera centre
 * on the canonical plane) -- the caller raises, output is unspecified.
 * NaN inputs are NOT flagged (NaN < 1e-12 is false), matching numpy.
 */
EXPORT int eventor_phi_batch(
    const double *centers, const double *depths,
    ll B, ll nz,
    double z0, double fx, double fy, double cx, double cy,
    double *phi)
{
    int degenerate = 0;
    for (ll b = 0; b < B; ++b) {
        const double c0 = centers[3 * b];
        const double c1 = centers[3 * b + 1];
        const double c2 = centers[3 * b + 2];
        double *out = phi + b * nz * 3;
        for (ll z = 0; z < nz; ++z) {
            const double d = depths[z];
            const double denom = d * (z0 - c2);
            if (fabs(denom) < 1e-12)
                degenerate = 1;
            const double alpha = z0 * (d - c2) / denom;
            const double beta_n = c0 * (z0 - d) / denom;
            const double gamma_n = c1 * (z0 - d) / denom;
            out[3 * z] = alpha;
            out[3 * z + 1] = fx * beta_n + cx * (1.0 - alpha);
            out[3 * z + 2] = fy * gamma_n + cy * (1.0 - alpha);
        }
    }
    return degenerate;
}

/* Batched canonical projection P(Z0): homogeneous transform + perspective
 * division.  Division by a zero scale produces IEEE inf/nan, exactly like
 * the numpy path under errstate(ignore).
 *
 *   H:  (B, 3, 3) per-frame canonical homographies
 *   xy: (B, N, 2) event pixels
 *   uv: (B, N, 2) output canonical pixels
 *   w:  (B, N)    output homogeneous scales (<= 0 marks a behind-plane miss)
 */
EXPORT void eventor_canonical_batch(
    const double *H, const double *xy,
    ll B, ll N,
    double *uv, double *w)
{
    for (ll b = 0; b < B; ++b) {
        const double *h = H + 9 * b;
        const double *p = xy + b * N * 2;
        double *o = uv + b * N * 2;
        double *ow = w + b * N;
        for (ll i = 0; i < N; ++i) {
            const double x = p[2 * i];
            const double y = p[2 * i + 1];
            const double h0 = x * h[0] + y * h[1] + h[2];
            const double h1 = x * h[3] + y * h[4] + h[5];
            const double h2 = x * h[6] + y * h[7] + h[8];
            o[2 * i] = h0 / h2;
            o[2 * i + 1] = h1 / h2;
            ow[i] = h2;
        }
    }
}

/* Fused proportional back-projection + nearest voting over a frame batch.
 *
 * Per (event, plane) pair: u = u0*alpha + beta, v = v0*alpha + gamma,
 * round half-up (floor(x + 0.5)), bounds-check, count.  The bounds test
 * runs on doubles BEFORE any integer cast, so NaN/inf coordinates (which
 * numpy masks via its finiteness pass) simply fail the comparison -- no
 * undefined float->int casts.  Rows with valid == 0 are projection
 * misses and cast no votes.  Integer counts are order-independent, so
 * the plane-major loop (cache-resident count window) is bit-exact with
 * the reference's row-major scatter.
 *
 *   phi:    (B, nz, 3)
 *   uv0:    (B, N, 2) canonical pixels (miss rows zeroed, as produced)
 *   valid:  (B, N) uint8 projection-miss mask
 *   counts: (nz*h*w,) int32, accumulated in place
 *
 * int32 counts halve the scatter footprint (the cache-resident plane
 * window below); a cell's count is bounded by the events of one
 * reference segment, far below 2^31, and the caller widens on
 * materialization.  Returns the number of votes cast (in-bounds hits),
 * matching the reference vote accounting.
 */
EXPORT ll eventor_vote_nearest_batch(
    const double *phi, const double *uv0, const unsigned char *valid,
    ll B, ll N, ll nz, ll h, ll w,
    int32_t *counts)
{
    ll votes = 0;
    const double wD = (double)w;
    const double hD = (double)h;
    /* Plane-major over the whole batch: one plane's count window stays
     * cache-resident while every frame scatters into it (the batched
     * numpy voter walks planes for the same reason).  Counts are
     * integers, so the reordering cannot change the result. */
    for (ll z = 0; z < nz; ++z) {
        int32_t *cz = counts + z * h * w;
        for (ll b = 0; b < B; ++b) {
            const double *uvb = uv0 + b * N * 2;
            const unsigned char *vb = valid + b * N;
            const double *phib = phi + b * nz * 3;
            const double a = phib[3 * z];
            const double beta = phib[3 * z + 1];
            const double gamma = phib[3 * z + 2];
            for (ll i = 0; i < N; ++i) {
                if (!vb[i])
                    continue;
                const double u = uvb[2 * i] * a + beta;
                const double v = uvb[2 * i + 1] * a + gamma;
                /* floor(x+0.5) >= 0 iff x+0.5 >= 0; floor(x+0.5) < w iff
                 * x+0.5 < w (w integral).  NaN fails every comparison. */
                const double tu = u + 0.5;
                const double tv = v + 0.5;
                if (!(tu >= 0.0) || !(tu < wD) || !(tv >= 0.0) || !(tv < hD))
                    continue;
                /* truncation == floor for non-negative values */
                cz[(ll)tv * w + (ll)tu] += 1;
                ++votes;
            }
        }
    }
    return votes;
}

/* Shared bilinear corner machinery.  Exactly one of flat_f64 / flat_i64
 * is non-NULL and selects the accumulation mode.  Scratch buffers (all
 * (N*nz,), caller-provided so concurrent engines never share state):
 * su/sv hold floor(u)/floor(v), sfu/sfv the fractional parts, voted the
 * per-(event, plane) did-any-corner-land flags.
 *
 * Corner order is the reference's fixed (00, 10, 01, 11): all votes of a
 * corner scatter before the next corner, rows in (event-major, plane)
 * order within a corner, frames sequentially -- reproducing the float
 * accumulation order of numpy's concatenated scatter bit for bit.
 */
static ll bilinear_core(
    const double *phi, const double *uv0, const unsigned char *valid,
    ll B, ll N, ll nz, ll h, ll w,
    double *flat_f64, ll *flat_i64,
    double *su, double *sv, double *sfu, double *sfv, unsigned char *voted)
{
    const double wD = (double)w;
    const double hD = (double)h;
    static const double DU[4] = {0.0, 1.0, 0.0, 1.0};
    static const double DV[4] = {0.0, 0.0, 1.0, 1.0};
    ll n_points = 0;
    for (ll b = 0; b < B; ++b) {
        const double *uvb = uv0 + b * N * 2;
        const unsigned char *vb = valid + b * N;
        const double *phib = phi + b * nz * 3;
        /* stage 1: proportional map + floor/fraction decomposition */
        for (ll i = 0; i < N; ++i) {
            const double x0 = uvb[2 * i];
            const double y0 = uvb[2 * i + 1];
            const int ok = vb[i] != 0;
            for (ll z = 0; z < nz; ++z) {
                const ll k = i * nz + z;
                voted[k] = 0;
                if (!ok) {
                    /* miss row: NaN fails every corner test below */
                    su[k] = NAN;
                    sv[k] = NAN;
                    sfu[k] = NAN;
                    sfv[k] = NAN;
                    continue;
                }
                const double u = x0 * phib[3 * z] + phib[3 * z + 1];
                const double v = y0 * phib[3 * z] + phib[3 * z + 2];
                const double u0f = floor(u);
                const double v0f = floor(v);
                su[k] = u0f;
                sv[k] = v0f;
                sfu[k] = u - u0f;
                sfv[k] = v - v0f;
            }
        }
        /* stage 2: four corner passes in reference order */
        for (int c = 0; c < 4; ++c) {
            const double du = DU[c];
            const double dv = DV[c];
            for (ll k = 0; k < N * nz; ++k) {
                const double cu = su[k] + du;
                const double cv = sv[k] + dv;
                if (!(cu >= 0.0) || !(cu < wD) || !(cv >= 0.0) || !(cv < hD))
                    continue;
                const double fu = sfu[k];
                const double fv = sfv[k];
                double weight;
                switch (c) {
                case 0:
                    weight = (1.0 - fu) * (1.0 - fv);
                    break;
                case 1:
                    weight = fu * (1.0 - fv);
                    break;
                case 2:
                    weight = (1.0 - fu) * fv;
                    break;
                default:
                    weight = fu * fv;
                    break;
                }
                if (!(weight > 0.0))
                    continue;
                const ll z = k % nz;
                const ll idx = (z * h + (ll)cv) * w + (ll)cu;
                if (flat_f64)
                    flat_f64[idx] += weight;
                else
                    flat_i64[idx] += (ll)weight; /* per-add truncation */
                voted[k] = 1;
            }
        }
        for (ll k = 0; k < N * nz; ++k)
            n_points += voted[k];
    }
    return n_points;
}

/* Bilinear voting into a float64 DSI; returns the number of points that
 * cast a (full or partial) vote.  See bilinear_core for semantics. */
EXPORT ll eventor_vote_bilinear_batch_f64(
    const double *phi, const double *uv0, const unsigned char *valid,
    ll B, ll N, ll nz, ll h, ll w,
    double *flat,
    double *su, double *sv, double *sfu, double *sfv, unsigned char *voted)
{
    return bilinear_core(phi, uv0, valid, B, N, nz, h, w,
                         flat, (ll *)0, su, sv, sfu, sfv, voted);
}

/* Bilinear voting into an int64 DSI (integer-score policies): each
 * corner weight is truncated toward zero per addition, matching
 * np.add.at(int64_buffer, idx, float_weights). */
EXPORT ll eventor_vote_bilinear_batch_i64(
    const double *phi, const double *uv0, const unsigned char *valid,
    ll B, ll N, ll nz, ll h, ll w,
    ll *flat,
    double *su, double *sv, double *sfu, double *sfv, unsigned char *voted)
{
    return bilinear_core(phi, uv0, valid, B, N, nz, h, w,
                         (double *)0, flat, su, sv, sfu, sfv, voted);
}
