"""The ``cext`` kernel provider: ctypes bindings over the C hot-stage kernels.

The shared library is located in this order:

1. ``REPRO_NATIVE_LIB`` — an explicit library path (test seam / exotic
   deployments).  When set it is authoritative: no further candidates
   are tried.
2. A ``_ckernels*`` artifact next to this module — what ``pip install``
   leaves behind when the optional setuptools extension built (the
   extension is loaded through ctypes, never imported).
3. An on-demand build of ``_kernels.c`` into the user cache directory,
   keyed by a hash of the source and flags so rebuilds only happen when
   the kernels change.  Disabled with ``REPRO_NATIVE_BUILD=0``.

All kernels are compiled with ``-ffp-contract=off`` — fused multiply-adds
would break the bit-exactness contract with the numpy reference.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

#: The single C source file of the kernel library.
SOURCE = Path(__file__).with_name("_kernels.c")

#: Flags of the on-demand build.  ``-ffp-contract=off`` is load-bearing
#: (see module docstring); ``-fno-math-errno`` lets the compiler inline
#: ``floor``.
BUILD_FLAGS = ("-O3", "-shared", "-fPIC", "-ffp-contract=off", "-fno-math-errno")

_LIB_SUFFIXES = {".so", ".dylib", ".pyd", ".dll"}


def _cache_dir() -> Path:
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(root) / "repro-native"


def _find_compiler() -> str | None:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return shutil.which(candidate)
    return None


def build_shared_library() -> Path:
    """Compile ``_kernels.c`` into the user cache and return the path.

    The output name carries a hash of (flags, source), so the cached
    artifact is reused across processes and sessions until the kernels
    change.  Raises ``RuntimeError`` when no compiler is on PATH or the
    build fails (with the compiler's stderr tail).
    """
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError(
            "no C compiler on PATH (set CC, install gcc/clang, or use the "
            "numba provider)"
        )
    source = SOURCE.read_text()
    tag = hashlib.sha256(
        ("\x00".join(BUILD_FLAGS) + "\x00" + source).encode()
    ).hexdigest()[:16]
    out = _cache_dir() / f"repro_kernels_{tag}.so"
    if out.exists():
        return out
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(out.parent), suffix=".so")
    os.close(fd)
    try:
        proc = subprocess.run(
            [compiler, *BUILD_FLAGS, "-o", tmp, str(SOURCE), "-lm"],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"kernel build failed ({compiler}): {proc.stderr.strip()[-500:]}"
            )
        os.replace(tmp, out)  # atomic: concurrent builders race safely
        tmp = ""
    finally:
        if tmp and os.path.exists(tmp):
            os.unlink(tmp)
    return out


def _candidate_libraries() -> list[Path]:
    explicit = os.environ.get("REPRO_NATIVE_LIB")
    if explicit:
        return [Path(explicit)]
    candidates = [
        path
        for path in sorted(Path(__file__).parent.glob("_ckernels*"))
        if path.suffix in _LIB_SUFFIXES
    ]
    if os.environ.get("REPRO_NATIVE_BUILD", "1") != "0":
        candidates.append(build_shared_library())
    return candidates


def load_cext_kernels() -> "CExtensionKernels":
    """Locate (or build) the kernel library and return live bindings.

    Raises when no candidate loads — the provider-selection layer turns
    that into an ``unavailable`` status instead of an import error.
    """
    errors: list[str] = []
    for path in _candidate_libraries():
        try:
            return CExtensionKernels(path)
        except OSError as exc:
            errors.append(f"{path}: {exc}")
    raise RuntimeError(
        "no loadable kernel library: "
        + ("; ".join(errors) if errors else "no candidates (REPRO_NATIVE_BUILD=0?)")
    )


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


def _c_contiguous(array: np.ndarray, dtype) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=dtype)


class CExtensionKernels:
    """Stateless ctypes bindings over one loaded kernel library.

    One instance is shared by every ``native-batch`` backend in the
    process; all mutable buffers (DSI, counts, scratch) are owned by the
    callers, so concurrent engines (thread pools) are safe.  ctypes
    releases the GIL for the duration of each kernel call.
    """

    #: Provider registry name.
    name = "cext"

    def __init__(self, library_path: Path):
        self.origin = str(library_path)
        lib = ctypes.CDLL(str(library_path))
        ll, dbl, ptr = ctypes.c_longlong, ctypes.c_double, ctypes.c_void_p
        lib.eventor_phi_batch.argtypes = [ptr, ptr, ll, ll, dbl, dbl, dbl, dbl, dbl, ptr]
        lib.eventor_phi_batch.restype = ctypes.c_int
        lib.eventor_canonical_batch.argtypes = [ptr, ptr, ll, ll, ptr, ptr]
        lib.eventor_canonical_batch.restype = None
        lib.eventor_vote_nearest_batch.argtypes = [ptr, ptr, ptr, ll, ll, ll, ll, ll, ptr]
        lib.eventor_vote_nearest_batch.restype = ll
        for fn in (
            lib.eventor_vote_bilinear_batch_f64,
            lib.eventor_vote_bilinear_batch_i64,
        ):
            fn.argtypes = [ptr, ptr, ptr, ll, ll, ll, ll, ll, ptr, ptr, ptr, ptr, ptr, ptr]
            fn.restype = ll
        self._lib = lib

    # ------------------------------------------------------------------
    def phi_batch(
        self,
        centers: np.ndarray,
        z0: float,
        depths: np.ndarray,
        fx: float,
        fy: float,
        cx: float,
        cy: float,
    ) -> np.ndarray:
        """``(B, Nz, 3)`` proportional coefficient tables φ.

        Bit-exact with
        :func:`repro.geometry.homography.proportional_coefficients_batch`,
        including the degenerate-geometry ``ValueError``.
        """
        centers = _c_contiguous(centers, np.float64).reshape(-1, 3)
        depths = _c_contiguous(depths, np.float64)
        b, nz = centers.shape[0], depths.shape[0]
        phi = np.empty((b, nz, 3))
        degenerate = self._lib.eventor_phi_batch(
            _ptr(centers),
            _ptr(depths),
            b,
            nz,
            float(z0),
            float(fx),
            float(fy),
            float(cx),
            float(cy),
            _ptr(phi),
        )
        if degenerate:
            raise ValueError(
                "degenerate geometry: camera centre lies on the canonical plane"
            )
        return phi

    def canonical_batch(
        self, H: np.ndarray, xy: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(uv, w)`` of the batched canonical projection.

        Epsilon-bounded against
        :func:`repro.geometry.homography.apply_homography_with_scale_batch`
        (numpy's BLAS matmul accumulates in a different order); see
        ``repro.native.CANONICAL_RTOL`` for the declared tolerance.
        """
        H = _c_contiguous(H, np.float64)
        xy = _c_contiguous(xy, np.float64)
        b, n = xy.shape[0], xy.shape[1]
        uv = np.empty((b, n, 2))
        w = np.empty((b, n))
        self._lib.eventor_canonical_batch(_ptr(H), _ptr(xy), b, n, _ptr(uv), _ptr(w))
        return uv, w

    def vote_nearest_batch(
        self,
        phi: np.ndarray,
        uv0: np.ndarray,
        valid: np.ndarray,
        counts: np.ndarray,
        shape: tuple[int, int, int],
    ) -> int:
        """Fused proportional + nearest voting into ``counts``; returns votes.

        ``counts`` must be a C-contiguous int32 ``(Nz*H*W,)`` buffer owned
        by the caller; votes accumulate in place (int32 halves the scatter
        footprint; a cell's count is bounded by the events of one
        reference segment, and the caller widens on materialization).
        """
        nz, h, w = shape
        if counts.dtype != np.int32 or not counts.flags.c_contiguous:
            raise ValueError("counts must be a C-contiguous int32 buffer")
        phi = _c_contiguous(phi, np.float64)
        uv0 = _c_contiguous(uv0, np.float64)
        valid8 = _as_uint8(valid)
        b, n = uv0.shape[0], uv0.shape[1]
        return int(
            self._lib.eventor_vote_nearest_batch(
                _ptr(phi), _ptr(uv0), _ptr(valid8), b, n, nz, h, w, _ptr(counts)
            )
        )

    def vote_bilinear_batch(
        self,
        phi: np.ndarray,
        uv0: np.ndarray,
        valid: np.ndarray,
        flat: np.ndarray,
        shape: tuple[int, int, int],
        scratch: "BilinearScratch",
    ) -> int:
        """Fused proportional + bilinear voting into ``flat``; returns points.

        Dispatches on ``flat.dtype``: float64 accumulates exact corner
        weights in reference order; int64 truncates each weight toward
        zero per addition (the ``np.add.at`` integer-buffer semantics).
        """
        nz, h, w = shape
        if not flat.flags.c_contiguous:
            raise ValueError("flat DSI buffer must be C-contiguous")
        if flat.dtype == np.float64:
            fn = self._lib.eventor_vote_bilinear_batch_f64
        elif flat.dtype == np.int64:
            fn = self._lib.eventor_vote_bilinear_batch_i64
        else:
            raise ValueError(f"unsupported DSI dtype {flat.dtype}")
        phi = _c_contiguous(phi, np.float64)
        uv0 = _c_contiguous(uv0, np.float64)
        valid8 = _as_uint8(valid)
        b, n = uv0.shape[0], uv0.shape[1]
        scratch.check(n, nz)
        return int(
            fn(
                _ptr(phi),
                _ptr(uv0),
                _ptr(valid8),
                b,
                n,
                nz,
                h,
                w,
                _ptr(flat),
                _ptr(scratch.u0),
                _ptr(scratch.v0),
                _ptr(scratch.fu),
                _ptr(scratch.fv),
                _ptr(scratch.voted),
            )
        )


def _as_uint8(valid: np.ndarray) -> np.ndarray:
    if valid.dtype == np.bool_ and valid.flags.c_contiguous:
        return valid.view(np.uint8)
    return np.ascontiguousarray(valid, dtype=np.uint8)


class BilinearScratch:
    """Caller-owned scratch block of the bilinear kernels.

    Holds the floor/fraction decomposition (``u0``/``v0``/``fu``/``fv``,
    float64) and the per-(event, plane) ``voted`` flags (uint8), each of
    shape ``(N, Nz)``.  One instance per engine keeps concurrent engines
    from sharing mutable state.
    """

    def __init__(self, n: int, nz: int):
        self.n, self.nz = n, nz
        self.u0 = np.empty((n, nz))
        self.v0 = np.empty((n, nz))
        self.fu = np.empty((n, nz))
        self.fv = np.empty((n, nz))
        self.voted = np.empty((n, nz), dtype=np.uint8)

    def check(self, n: int, nz: int) -> None:
        """Validate the scratch matches the kernel call's geometry."""
        if (n, nz) != (self.n, self.nz):
            raise ValueError(
                f"scratch sized for (N={self.n}, Nz={self.nz}), "
                f"call needs (N={n}, Nz={nz})"
            )
