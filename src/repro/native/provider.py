"""Kernel-provider selection for the ``native-batch`` backend.

A *provider* is anything exposing the kernel ABI of docs/NATIVE.md as a
Python object (``phi_batch`` / ``canonical_batch`` / ``vote_nearest_batch``
/ ``vote_bilinear_batch`` plus ``name`` / ``origin``).  Two providers
ship:

``cext``
    ctypes bindings over the compiled C library (installed extension
    artifact or an on-demand ``cc`` build) — see :mod:`repro.native.cext`.
``numba``
    JIT-compiled mirrors of the same loops for hosts with numba but no C
    toolchain — see :mod:`repro.native.numba_provider`.

Selection probes ``cext`` then ``numba`` and caches the first that loads;
``REPRO_NATIVE_PROVIDER`` forces one by name (an unknown name is a
``SystemExit`` listing the known providers).  When nothing loads the
probe records *why* — surfaced by ``repro info`` — and the backend
registry simply omits ``native-batch``.
"""

from __future__ import annotations

import os

#: Known provider names, in probe order.
PROVIDERS = ("cext", "numba")

#: Declared relative tolerance of the ``canonical_batch`` kernel against
#: the numpy reference: numpy routes the homography matmul through BLAS,
#: whose accumulation order differs from the C loop by a few ULP (the
#: measured error is ~1e-13 relative; the declared bound leaves margin).
#: Every other kernel is bit-exact.  Pinned by tests/unit/test_native.py.
CANONICAL_RTOL = 1e-9

#: Matching absolute floor for canonical coordinates near zero.
CANONICAL_ATOL = 1e-9

_state: dict = {"probed": False, "kernels": None, "status": "unprobed"}


def validate_provider_name(name: str) -> str:
    """Reject unknown provider names with an actionable SystemExit."""
    if name not in PROVIDERS:
        raise SystemExit(
            f"unknown native kernel provider {name!r} "
            f"(REPRO_NATIVE_PROVIDER); known providers: {', '.join(PROVIDERS)}"
        )
    return name


def _load(name: str):
    """Instantiate one provider by name (exceptions mean unavailable)."""
    if name == "cext":
        from repro.native.cext import load_cext_kernels

        return load_cext_kernels()
    from repro.native.numba_provider import load_numba_kernels

    return load_numba_kernels()


def _probe() -> None:
    forced = os.environ.get("REPRO_NATIVE_PROVIDER") or None
    if forced is not None:
        validate_provider_name(forced)
    attempts = (forced,) if forced else PROVIDERS
    errors = []
    for name in attempts:
        try:
            kernels = _load(name)
        except Exception as exc:
            errors.append(f"{name}: {exc}")
            continue
        _state.update(
            probed=True, kernels=kernels, status=f"{kernels.name} ({kernels.origin})"
        )
        return
    _state.update(
        probed=True, kernels=None, status="unavailable (" + "; ".join(errors) + ")"
    )


def get_kernels():
    """The active kernel provider, or ``None`` when no provider loads.

    The first call probes (honouring ``REPRO_NATIVE_PROVIDER``) and the
    result is cached for the process; :func:`reset` clears the cache
    (test seam).
    """
    if not _state["probed"]:
        _probe()
    return _state["kernels"]


def active_provider() -> str | None:
    """Name of the active provider (``"cext"``/``"numba"``) or ``None``."""
    kernels = get_kernels()
    return None if kernels is None else kernels.name


def provider_status() -> str:
    """Human-readable provider line for ``repro info`` and error messages."""
    get_kernels()
    return _state["status"]


def reset() -> None:
    """Forget the probe result so the next :func:`get_kernels` re-probes."""
    _state.update(probed=False, kernels=None, status="unprobed")
