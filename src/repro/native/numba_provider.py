"""The ``numba`` kernel provider: JIT mirrors of the C hot-stage kernels.

A no-toolchain alternative for hosts without a C compiler: the loops
below transcribe ``_kernels.c`` statement for statement (same elementwise
operation order, double-comparison bounds guards before any integer
cast, per-addition truncation into integer DSIs), so the bit-exactness
contract of docs/NATIVE.md holds for either provider.  numba is never a
hard dependency — :func:`load_numba_kernels` raises ``ImportError`` when
it is absent and the provider-selection layer records the provider as
unavailable.
"""

from __future__ import annotations

import numpy as np

from repro.native.cext import BilinearScratch


def _phi_batch_loop(centers, depths, z0, fx, fy, cx, cy, phi):
    b_total, nz = centers.shape[0], depths.shape[0]
    degenerate = False
    for b in range(b_total):
        c0, c1, c2 = centers[b, 0], centers[b, 1], centers[b, 2]
        for z in range(nz):
            d = depths[z]
            denom = d * (z0 - c2)
            if abs(denom) < 1e-12:
                degenerate = True
            alpha = z0 * (d - c2) / denom
            beta_n = c0 * (z0 - d) / denom
            gamma_n = c1 * (z0 - d) / denom
            phi[b, z, 0] = alpha
            phi[b, z, 1] = fx * beta_n + cx * (1.0 - alpha)
            phi[b, z, 2] = fy * gamma_n + cy * (1.0 - alpha)
    return degenerate


def _canonical_batch_loop(H, xy, uv, w):
    b_total, n = xy.shape[0], xy.shape[1]
    for b in range(b_total):
        for i in range(n):
            x, y = xy[b, i, 0], xy[b, i, 1]
            h0 = x * H[b, 0, 0] + y * H[b, 0, 1] + H[b, 0, 2]
            h1 = x * H[b, 1, 0] + y * H[b, 1, 1] + H[b, 1, 2]
            h2 = x * H[b, 2, 0] + y * H[b, 2, 1] + H[b, 2, 2]
            uv[b, i, 0] = h0 / h2
            uv[b, i, 1] = h1 / h2
            w[b, i] = h2
    return 0


def _vote_nearest_loop(phi, uv0, valid, counts, nz, h, w):
    b_total, n = uv0.shape[0], uv0.shape[1]
    votes = 0
    w_f, h_f = float(w), float(h)
    for z in range(nz):
        base = z * h * w
        for b in range(b_total):
            a = phi[b, z, 0]
            beta = phi[b, z, 1]
            gamma = phi[b, z, 2]
            for i in range(n):
                if valid[b, i] == 0:
                    continue
                u = uv0[b, i, 0] * a + beta
                v = uv0[b, i, 1] * a + gamma
                tu = u + 0.5
                tv = v + 0.5
                if not (tu >= 0.0 and tu < w_f and tv >= 0.0 and tv < h_f):
                    continue
                counts[base + np.int64(tv) * w + np.int64(tu)] += 1
                votes += 1
    return votes


def _make_bilinear_loop(integer_scores: bool):
    """Build the f64/i64 bilinear loop body (numba specializes per dtype)."""

    def loop(phi, uv0, valid, flat, nz, h, w, su, sv, sfu, sfv, voted):
        b_total, n = uv0.shape[0], uv0.shape[1]
        w_f, h_f = float(w), float(h)
        n_points = 0
        for b in range(b_total):
            for i in range(n):
                x0, y0 = uv0[b, i, 0], uv0[b, i, 1]
                ok = valid[b, i] != 0
                for z in range(nz):
                    voted[i, z] = 0
                    if not ok:
                        su[i, z] = np.nan
                        sv[i, z] = np.nan
                        sfu[i, z] = np.nan
                        sfv[i, z] = np.nan
                        continue
                    u = x0 * phi[b, z, 0] + phi[b, z, 1]
                    v = y0 * phi[b, z, 0] + phi[b, z, 2]
                    u0f = np.floor(u)
                    v0f = np.floor(v)
                    su[i, z] = u0f
                    sv[i, z] = v0f
                    sfu[i, z] = u - u0f
                    sfv[i, z] = v - v0f
            for c in range(4):
                du = 1.0 if c == 1 or c == 3 else 0.0
                dv = 1.0 if c == 2 or c == 3 else 0.0
                for i in range(n):
                    for z in range(nz):
                        cu = su[i, z] + du
                        cv = sv[i, z] + dv
                        if not (cu >= 0.0 and cu < w_f and cv >= 0.0 and cv < h_f):
                            continue
                        fu = sfu[i, z]
                        fv = sfv[i, z]
                        if c == 0:
                            weight = (1.0 - fu) * (1.0 - fv)
                        elif c == 1:
                            weight = fu * (1.0 - fv)
                        elif c == 2:
                            weight = (1.0 - fu) * fv
                        else:
                            weight = fu * fv
                        if not (weight > 0.0):
                            continue
                        idx = (z * h + np.int64(cv)) * w + np.int64(cu)
                        if integer_scores:
                            flat[idx] += np.int64(weight)
                        else:
                            flat[idx] += weight
                        voted[i, z] = 1
            for i in range(n):
                for z in range(nz):
                    n_points += voted[i, z]
        return n_points

    return loop


def load_numba_kernels() -> "NumbaKernels":
    """Build the JIT provider; raises ``ImportError`` when numba is absent."""
    import numba

    return NumbaKernels(numba)


class NumbaKernels:
    """JIT provider exposing the docs/NATIVE.md kernel interface.

    Compilation is lazy (first call per signature); ``fastmath`` stays
    off so the generated code keeps IEEE semantics and operation order,
    and ``nogil`` lets thread pools overlap kernel execution like the
    ctypes provider does.
    """

    #: Provider registry name.
    name = "numba"

    def __init__(self, numba):
        self.origin = f"numba {numba.__version__}"
        jit = numba.njit(cache=False, fastmath=False, nogil=True)
        self._phi = jit(_phi_batch_loop)
        self._canonical = jit(_canonical_batch_loop)
        self._nearest = jit(_vote_nearest_loop)
        self._bilinear_f64 = jit(_make_bilinear_loop(False))
        self._bilinear_i64 = jit(_make_bilinear_loop(True))

    # ------------------------------------------------------------------
    def phi_batch(self, centers, z0, depths, fx, fy, cx, cy) -> np.ndarray:
        """``(B, Nz, 3)`` φ tables; bit-exact with the numpy reference."""
        centers = np.ascontiguousarray(centers, dtype=np.float64).reshape(-1, 3)
        depths = np.ascontiguousarray(depths, dtype=np.float64)
        phi = np.empty((centers.shape[0], depths.shape[0], 3))
        if self._phi(
            centers, depths, float(z0), float(fx), float(fy), float(cx), float(cy), phi
        ):
            raise ValueError(
                "degenerate geometry: camera centre lies on the canonical plane"
            )
        return phi

    def canonical_batch(self, H, xy):
        """``(uv, w)`` canonical projection (epsilon-bounded, see cext)."""
        H = np.ascontiguousarray(H, dtype=np.float64)
        xy = np.ascontiguousarray(xy, dtype=np.float64)
        uv = np.empty(xy.shape[:2] + (2,))
        w = np.empty(xy.shape[:2])
        self._canonical(H, xy, uv, w)
        return uv, w

    def vote_nearest_batch(self, phi, uv0, valid, counts, shape) -> int:
        """Fused proportional + nearest voting into ``counts`` (int32)."""
        nz, h, w = shape
        if counts.dtype != np.int32 or not counts.flags.c_contiguous:
            raise ValueError("counts must be a C-contiguous int32 buffer")
        phi = np.ascontiguousarray(phi, dtype=np.float64)
        uv0 = np.ascontiguousarray(uv0, dtype=np.float64)
        valid8 = np.ascontiguousarray(valid, dtype=np.uint8)
        return int(self._nearest(phi, uv0, valid8, counts, nz, h, w))

    def vote_bilinear_batch(
        self, phi, uv0, valid, flat, shape, scratch: BilinearScratch
    ) -> int:
        """Fused proportional + bilinear voting into ``flat``."""
        nz, h, w = shape
        if flat.dtype == np.float64:
            fn = self._bilinear_f64
        elif flat.dtype == np.int64:
            fn = self._bilinear_i64
        else:
            raise ValueError(f"unsupported DSI dtype {flat.dtype}")
        phi = np.ascontiguousarray(phi, dtype=np.float64)
        uv0 = np.ascontiguousarray(uv0, dtype=np.float64)
        valid8 = np.ascontiguousarray(valid, dtype=np.uint8)
        scratch.check(uv0.shape[1], nz)
        return int(
            fn(
                phi,
                uv0,
                valid8,
                flat,
                nz,
                h,
                w,
                scratch.u0,
                scratch.v0,
                scratch.fu,
                scratch.fv,
                scratch.voted,
            )
        )
