"""Compiled hot-stage kernels behind the ``native-batch`` backend.

The package splits into three layers:

* kernel providers — :mod:`repro.native.cext` (ctypes over the C library
  ``_kernels.c``) and :mod:`repro.native.numba_provider` (JIT mirrors of
  the same loops), both exposing the ABI documented in ``docs/NATIVE.md``;
* provider selection — :mod:`repro.native.provider` probes/caches the
  first loadable provider, honours ``REPRO_NATIVE_PROVIDER``, and reports
  status for ``repro info``;
* the backend — :mod:`repro.native.backend` registers ``native-batch``
  in the engine registry when (and only when) a provider loads.

This ``__init__`` deliberately does *not* import the backend module:
:mod:`repro.core.engine` imports ``repro.native.backend`` directly at
the end of its own definition, and importing it from here would recreate
the cycle that arrangement avoids.
"""

from repro.native.provider import (
    CANONICAL_ATOL,
    CANONICAL_RTOL,
    PROVIDERS,
    active_provider,
    get_kernels,
    provider_status,
    reset,
    validate_provider_name,
)

__all__ = [
    "CANONICAL_ATOL",
    "CANONICAL_RTOL",
    "PROVIDERS",
    "active_provider",
    "get_kernels",
    "provider_status",
    "reset",
    "validate_provider_name",
]
