"""The ``native-batch`` execution backend: compiled hot-stage kernels.

Same segment-batched dataflow as ``numpy-batch`` — the engine buffers
``DataflowPolicy.batch_frames`` event frames and the backend executes
each batch in fused passes — but the φ parameter stack and the fused
proportional + vote scatter run in compiled code (see
:mod:`repro.native.provider` for provider selection and
``docs/NATIVE.md`` for the kernel ABI).

The bit-exactness contract mirrors the other software backends: every
DSI count, vote total and miss total is identical to
``numpy-reference`` under all voting × correction policy corners.  The
``H_Z0`` stack and the canonical projection stay on numpy — their
LAPACK/BLAS kernels are the reference's own arithmetic, and re-running
the matmul in C would re-associate the accumulation (the one declared
epsilon in the native package, exercised only by the standalone
``canonical_batch`` kernel).

Importing this module registers the backend *iff* a kernel provider
loads; :mod:`repro.core.engine` imports it under ``try/except`` so the
registry simply omits ``native-batch`` on hosts with neither a C
toolchain nor numba.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.backprojection import BatchFrameParameters
from repro.core.engine import BACKENDS, _NumpyBackendBase
from repro.core.voting import VotingMethod
from repro.events.packetizer import EventFrame
from repro.geometry.homography import (
    canonical_plane_homography_batch,
    event_camera_centers_in_virtual,
)
from repro.geometry.se3 import SE3, stack_poses
from repro.native.cext import BilinearScratch
from repro.native.provider import get_kernels


class NativeBatchBackend(_NumpyBackendBase):
    """Segment-batched execution through the compiled kernel layer.

    Stage split per batch (timing mirrors ``numpy-batch``):

    1. ``P_Z0`` — stacked poses, numpy ``H_Z0`` batch (LAPACK inverse,
       bit-identical to the reference by construction), native
       ``phi_batch``, numpy batched canonical projection;
    2. ``P_Zi_R`` — one native fused proportional + vote call over the
       whole batch: ``vote_nearest_batch`` accumulates into a
       segment-lifetime int32 count buffer (materialized into the DSI
       per key frame), ``vote_bilinear_batch`` scatters straight into
       the DSI flat buffer in reference corner order, dispatching on the
       policy's score dtype.

    All mutable buffers (counts, bilinear scratch) are owned per
    instance; the shared kernel object is stateless, so concurrent
    engines — thread pools, process pools — never share state.
    """

    name = "native-batch"
    buffers_frames = True

    def __init__(self, engine):
        super().__init__(engine)
        kernels = get_kernels()
        if kernels is None:
            raise RuntimeError(
                "native-batch backend constructed with no kernel provider "
                "available; check repro.native.provider_status()"
            )
        self._kernels = kernels
        self._counts: np.ndarray | None = None
        self._scratch: BilinearScratch | None = None

    def start_reference(self, T_w_ref: SE3) -> None:
        """Seat the DSI and reset the segment-lifetime vote buffers."""
        super().start_reference(T_w_ref)
        self._dirty = False
        if self.engine.policy.voting is VotingMethod.NEAREST:
            nz, h, w = self._dsi.shape
            if self._counts is None or self._counts.shape[0] != nz * h * w:
                self._counts = np.zeros(nz * h * w, dtype=np.int32)
            else:
                self._counts[...] = 0
        else:
            self._counts = None

    def _frame_parameters_batch(
        self, rotations: np.ndarray, translations: np.ndarray
    ) -> BatchFrameParameters:
        """Stacked per-frame parameters with the φ table computed natively.

        ``H_Z0`` follows
        :meth:`~repro.core.backprojection.BackProjector.frame_parameters_batch`
        verbatim (same LAPACK inverse, same normalization); the φ stack
        comes from the provider's ``phi_batch`` kernel, which is
        bit-exact with
        :func:`~repro.geometry.homography.proportional_coefficients_batch`.
        """
        p = self._projector
        H = canonical_plane_homography_batch(
            p.T_w_ref, rotations, translations, p.camera, p.z0
        )
        H = H / np.abs(H).max(axis=(1, 2), keepdims=True)
        c = event_camera_centers_in_virtual(p.T_w_ref, translations)
        phi = self._kernels.phi_batch(
            c, p.z0, p.depths, p.camera.fx, p.camera.fy, p.camera.cx, p.camera.cy
        )
        return BatchFrameParameters(
            H_Z0=p.schema.quantize_homography(H),
            phi=p.schema.quantize_phi(phi),
        )

    def process_frame(self, frame: EventFrame) -> tuple[int, int]:
        """Single-frame fallback: a batch of one."""
        return self.process_batch([frame])

    def process_batch(self, frames: list[EventFrame]) -> tuple[int, int]:
        """Execute one buffered frame batch through the native kernels."""
        if self._projector is None:
            raise RuntimeError("start_reference() must be called before frames")
        sizes = {len(frame) for frame in frames}
        if len(sizes) > 1:
            # Mixed frame sizes cannot stack; fall back to singleton
            # batches (the engine's packetizer only emits fixed sizes, so
            # this path serves direct backend users).
            return super().process_batch(frames)

        t0 = time.perf_counter()
        rotations, translations = stack_poses([frame.T_wc for frame in frames])
        xy = np.stack([frame.events.xy for frame in frames])
        params = self._frame_parameters_batch(rotations, translations)
        uv0, valid = self._projector.canonical_batch(params, xy)
        self.engine.profile.add_time("P_Z0", time.perf_counter() - t0)

        t0 = time.perf_counter()
        phi = np.ascontiguousarray(params.phi)
        uv0 = np.ascontiguousarray(uv0)
        misses = int(np.count_nonzero(~valid))
        if self._counts is not None:
            votes = self._kernels.vote_nearest_batch(
                phi, uv0, valid, self._counts, self._dsi.shape
            )
            self._dirty = True
        else:
            n, nz = uv0.shape[1], self._dsi.shape[0]
            if self._scratch is None or (self._scratch.n, self._scratch.nz) != (n, nz):
                self._scratch = BilinearScratch(n, nz)
            votes = self._kernels.vote_bilinear_batch(
                phi, uv0, valid, self._dsi.flat_scores, self._dsi.shape, self._scratch
            )
        self.engine.profile.add_time("P_Zi_R", time.perf_counter() - t0)
        return votes, misses

    def read_dsi(self):
        """Materialize pending nearest-vote counts, then return the DSI."""
        if self._dirty:
            t0 = time.perf_counter()
            super().read_dsi().flat_scores[...] = self._counts
            self.engine.profile.add_time("P_Zi_R", time.perf_counter() - t0)
            self._dirty = False
        return super().read_dsi()


def register_native_backend(registry: dict | None = None) -> str | None:
    """(Re-)register ``native-batch`` according to provider availability.

    When a kernel provider loads, ``native-batch`` is installed in the
    backend registry and the provider name is returned; otherwise the
    entry is removed (the registry "stays clean") and ``None`` is
    returned.  Called once at import; tests re-invoke it around
    :func:`repro.native.provider.reset` to exercise the fallback matrix.
    """
    if registry is None:
        registry = BACKENDS
    kernels = get_kernels()
    if kernels is None:
        registry.pop(NativeBatchBackend.name, None)
        return None
    registry[NativeBatchBackend.name] = NativeBatchBackend
    return kernels.name


register_native_backend()
