"""Depth-estimation accuracy metrics.

The paper reports **AbsRel** (absolute relative error): the mean over
reconstructed points of ``|Z_est - Z_gt| / Z_gt``.  Companion metrics
(completeness, outlier ratio, RMSE) are provided for the extended analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import EMVSResult


def absrel(estimated: np.ndarray, ground_truth: np.ndarray) -> float:
    """Mean absolute relative depth error over valid ground-truth points."""
    estimated = np.asarray(estimated, dtype=float)
    ground_truth = np.asarray(ground_truth, dtype=float)
    if estimated.shape != ground_truth.shape:
        raise ValueError("estimate/ground-truth shape mismatch")
    valid = np.isfinite(estimated) & np.isfinite(ground_truth) & (ground_truth > 0)
    if not np.any(valid):
        raise ValueError("no valid points to evaluate")
    e = estimated[valid]
    g = ground_truth[valid]
    return float(np.mean(np.abs(e - g) / g))


@dataclass(frozen=True)
class DepthMetrics:
    """Bundle of depth-map quality measures.

    Attributes
    ----------
    absrel:
        Mean ``|dZ| / Z_gt`` (the paper's headline metric).
    rmse:
        Root-mean-square depth error in metres.
    outlier_ratio:
        Fraction of points with relative error above 15 %.
    n_points:
        Evaluated (reconstructed ∩ valid-GT) point count.
    density:
        Points per sensor pixel — semi-dense completeness proxy.
    """

    absrel: float
    rmse: float
    outlier_ratio: float
    n_points: int
    density: float

    def __str__(self) -> str:
        return (
            f"AbsRel={self.absrel:.4f} RMSE={self.rmse:.4f} "
            f"outliers={self.outlier_ratio:.3f} n={self.n_points}"
        )


def compute_metrics(
    estimated: np.ndarray,
    ground_truth: np.ndarray,
    sensor_pixels: int,
    outlier_threshold: float = 0.15,
) -> DepthMetrics:
    """Full metric bundle for aligned estimate/GT point depth arrays."""
    estimated = np.asarray(estimated, dtype=float)
    ground_truth = np.asarray(ground_truth, dtype=float)
    valid = np.isfinite(estimated) & np.isfinite(ground_truth) & (ground_truth > 0)
    if not np.any(valid):
        raise ValueError("no valid points to evaluate")
    e = estimated[valid]
    g = ground_truth[valid]
    rel = np.abs(e - g) / g
    return DepthMetrics(
        absrel=float(np.mean(rel)),
        rmse=float(np.sqrt(np.mean((e - g) ** 2))),
        outlier_ratio=float(np.mean(rel > outlier_threshold)),
        n_points=int(valid.sum()),
        density=float(valid.sum()) / sensor_pixels,
    )


def evaluate_reconstruction(result: EMVSResult, sequence) -> DepthMetrics:
    """Evaluate a pipeline result against a sequence's analytic ground truth.

    Every key-frame depth map is compared with the scene depth ray-cast at
    its own reference view; metrics are aggregated over all points of all
    key frames (weighted by point count, as a pooled mean).
    """
    if not result.keyframes:
        raise ValueError("result contains no keyframe reconstructions")
    est_parts: list[np.ndarray] = []
    gt_parts: list[np.ndarray] = []
    for kf in result.keyframes:
        pixels = kf.depth_map.pixels()
        if pixels.shape[0] == 0:
            continue
        est_parts.append(kf.depth_map.depths())
        gt_parts.append(sequence.gt_depth_at(kf.T_w_ref, pixels))
    if not est_parts:
        raise ValueError("no reconstructed points in any keyframe")
    camera = sequence.camera
    return compute_metrics(
        np.concatenate(est_parts),
        np.concatenate(gt_parts),
        sensor_pixels=camera.width * camera.height,
    )
