"""Depth-estimation accuracy metrics.

The paper reports **AbsRel** (absolute relative error): the mean over
reconstructed points of ``|Z_est - Z_gt| / Z_gt``.  Companion metrics
(completeness, outlier ratio, RMSE) are provided for the extended analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import EMVSResult


def absrel(estimated: np.ndarray, ground_truth: np.ndarray) -> float:
    """Mean absolute relative depth error over valid ground-truth points."""
    estimated = np.asarray(estimated, dtype=float)
    ground_truth = np.asarray(ground_truth, dtype=float)
    if estimated.shape != ground_truth.shape:
        raise ValueError("estimate/ground-truth shape mismatch")
    valid = np.isfinite(estimated) & np.isfinite(ground_truth) & (ground_truth > 0)
    if not np.any(valid):
        raise ValueError("no valid points to evaluate")
    e = estimated[valid]
    g = ground_truth[valid]
    return float(np.mean(np.abs(e - g) / g))


@dataclass(frozen=True)
class DepthMetrics:
    """Bundle of depth-map quality measures.

    Attributes
    ----------
    absrel:
        Mean ``|dZ| / Z_gt`` (the paper's headline metric).
    rmse:
        Root-mean-square depth error in metres.
    outlier_ratio:
        Fraction of points with relative error above 15 %.
    n_points:
        Evaluated (reconstructed ∩ valid-GT) point count.
    density:
        Points per sensor pixel — semi-dense completeness proxy.
    """

    absrel: float
    rmse: float
    outlier_ratio: float
    n_points: int
    density: float

    def __str__(self) -> str:
        return (
            f"AbsRel={self.absrel:.4f} RMSE={self.rmse:.4f} "
            f"outliers={self.outlier_ratio:.3f} n={self.n_points}"
        )


def compute_metrics(
    estimated: np.ndarray,
    ground_truth: np.ndarray,
    sensor_pixels: int,
    outlier_threshold: float = 0.15,
) -> DepthMetrics:
    """Full metric bundle for aligned estimate/GT point depth arrays."""
    estimated = np.asarray(estimated, dtype=float)
    ground_truth = np.asarray(ground_truth, dtype=float)
    valid = np.isfinite(estimated) & np.isfinite(ground_truth) & (ground_truth > 0)
    if not np.any(valid):
        raise ValueError("no valid points to evaluate")
    e = estimated[valid]
    g = ground_truth[valid]
    rel = np.abs(e - g) / g
    return DepthMetrics(
        absrel=float(np.mean(rel)),
        rmse=float(np.sqrt(np.mean((e - g) ** 2))),
        outlier_ratio=float(np.mean(rel > outlier_threshold)),
        n_points=int(valid.sum()),
        density=float(valid.sum()) / sensor_pixels,
    )


@dataclass(frozen=True)
class FusedMapMetrics:
    """Accuracy of a fused world-frame point map against scene geometry.

    Per-keyframe depth maps are evaluated along their own reference rays
    (:func:`evaluate_reconstruction`); a *fused* map has no single
    reference view, so its natural error measure is the distance from
    each fused point to the closest scene surface.

    Attributes
    ----------
    mean_distance:
        Mean point-to-surface distance in metres.
    rmse:
        Root-mean-square point-to-surface distance in metres.
    outlier_ratio:
        Fraction of points farther than ``outlier_distance`` from every
        surface.
    outlier_distance:
        The threshold the ratio was computed with.
    n_points:
        Fused points evaluated.
    """

    mean_distance: float
    rmse: float
    outlier_ratio: float
    outlier_distance: float
    n_points: int

    def __str__(self) -> str:
        return (
            f"surf-dist mean={self.mean_distance:.4f} m rmse={self.rmse:.4f} m "
            f"outliers={self.outlier_ratio:.3f} (>{self.outlier_distance:.3f} m) "
            f"n={self.n_points}"
        )


def point_to_scene_distance(scene, points: np.ndarray) -> np.ndarray:
    """Distance from world points to the nearest scene surface, per point.

    Uses the planar scenes' analytic geometry: for each finite textured
    rectangle, the closest point is the rectangle-clamped orthogonal
    projection, so the distance is exact (no sampling, no ray casting).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.shape[1] != 3:
        raise ValueError(f"points must be (N, 3), got {points.shape}")
    if not scene.planes:
        raise ValueError("scene has no surfaces to measure against")
    best = np.full(points.shape[0], np.inf)
    for plane in scene.planes:
        rel = points - plane.origin
        u = np.clip(rel @ plane.u_axis, -plane.half_u, plane.half_u)
        v = np.clip(rel @ plane.v_axis, -plane.half_v, plane.half_v)
        closest = plane.origin + u[:, None] * plane.u_axis + v[:, None] * plane.v_axis
        np.minimum(best, np.linalg.norm(points - closest, axis=1), out=best)
    return best


def evaluate_fused_map(
    cloud, sequence, outlier_distance: float | None = None
) -> FusedMapMetrics:
    """Evaluate a fused global map against a sequence's analytic scene.

    Parameters
    ----------
    cloud:
        A :class:`~repro.core.pointcloud.PointCloud` (or anything with a
        ``points`` array) — typically ``MappingResult.cloud``.
    sequence:
        The generating :class:`~repro.events.datasets.Sequence`.
    outlier_distance:
        Surface-distance threshold for the outlier ratio; defaults to 2 %
        of the sequence's mean DSI depth (depth-scale invariant).

    An empty cloud is a defined outcome, not an error: aggressive
    agreement filtering (``min_observations`` / rig ``min_cameras``) can
    legitimately reject every voxel, and a sweep over filter settings
    must be able to record that corner.  The report for it is NaN-free —
    zero error, zero outliers, ``n_points=0``.
    """
    points = np.asarray(getattr(cloud, "points", cloud), dtype=float)
    if outlier_distance is None:
        z_min, z_max = sequence.depth_range
        outlier_distance = 0.02 * 0.5 * (z_min + z_max)
    if points.size == 0:
        return FusedMapMetrics(
            mean_distance=0.0,
            rmse=0.0,
            outlier_ratio=0.0,
            outlier_distance=float(outlier_distance),
            n_points=0,
        )
    distances = point_to_scene_distance(sequence.scene, points)
    return FusedMapMetrics(
        mean_distance=float(np.mean(distances)),
        rmse=float(np.sqrt(np.mean(distances**2))),
        outlier_ratio=float(np.mean(distances > outlier_distance)),
        outlier_distance=float(outlier_distance),
        n_points=int(points.shape[0]),
    )


@dataclass(frozen=True)
class RigComparison:
    """Stereo-vs-monocular accuracy comparison for one rig reconstruction.

    ``fused`` evaluates the cross-camera fused cloud (``min_cameras``
    agreement applied); ``per_camera`` evaluates each camera's *solo*
    monocular cloud — bit-identical to a monocular run of that camera —
    against the same scene with the same outlier threshold, so the
    numbers are directly comparable.
    """

    fused: FusedMapMetrics
    per_camera: dict[str, FusedMapMetrics]

    @property
    def best_camera(self) -> str:
        """Name of the most accurate single camera (lowest mean distance)."""
        return min(self.per_camera, key=lambda n: self.per_camera[n].mean_distance)

    @property
    def best_monocular(self) -> FusedMapMetrics:
        """Metrics of the most accurate single camera."""
        return self.per_camera[self.best_camera]

    @property
    def improvement(self) -> float:
        """Mean-distance reduction of fusion over the best single camera."""
        return self.best_monocular.mean_distance - self.fused.mean_distance

    @property
    def fusion_wins(self) -> bool:
        """Whether the fused map is strictly more accurate than every camera."""
        return self.fused.mean_distance < self.best_monocular.mean_distance

    def __str__(self) -> str:
        return (
            f"fused {self.fused} | best mono ({self.best_camera}) "
            f"{self.best_monocular} | improvement {self.improvement:.4f} m"
        )


def compare_rig_to_monocular(
    result, sequence, outlier_distance: float | None = None
) -> RigComparison:
    """Evaluate a rig result's fused map against its own cameras' solo maps.

    Parameters
    ----------
    result:
        A :class:`~repro.core.rig.RigMappingResult` (anything with a
        ``cloud`` and a ``per_camera`` mapping of results with clouds).
    sequence:
        The generating :class:`~repro.events.datasets.RigSequence` (or
        any sequence-shaped object with ``scene`` and ``depth_range``).
    outlier_distance:
        Shared surface-distance threshold; defaults as in
        :func:`evaluate_fused_map`.
    """
    if outlier_distance is None:
        z_min, z_max = sequence.depth_range
        outlier_distance = 0.02 * 0.5 * (z_min + z_max)
    fused = evaluate_fused_map(result.cloud, sequence, outlier_distance)
    per_camera = {
        name: evaluate_fused_map(solo.cloud, sequence, outlier_distance)
        for name, solo in result.per_camera.items()
    }
    return RigComparison(fused=fused, per_camera=per_camera)


def evaluate_reconstruction(result: EMVSResult, sequence) -> DepthMetrics:
    """Evaluate a pipeline result against a sequence's analytic ground truth.

    Every key-frame depth map is compared with the scene depth ray-cast at
    its own reference view; metrics are aggregated over all points of all
    key frames (weighted by point count, as a pooled mean).
    """
    if not result.keyframes:
        raise ValueError("result contains no keyframe reconstructions")
    est_parts: list[np.ndarray] = []
    gt_parts: list[np.ndarray] = []
    for kf in result.keyframes:
        pixels = kf.depth_map.pixels()
        if pixels.shape[0] == 0:
            continue
        est_parts.append(kf.depth_map.depths())
        gt_parts.append(sequence.gt_depth_at(kf.T_w_ref, pixels))
    if not est_parts:
        raise ValueError("no reconstructed points in any keyframe")
    camera = sequence.camera
    return compute_metrics(
        np.concatenate(est_parts),
        np.concatenate(gt_parts),
        sensor_pixels=camera.width * camera.height,
    )
