"""Text rendering of tables and simple figures.

The benchmark harness prints every reproduced table/figure as an aligned
text table with a paper-value column where applicable, so runs are
self-documenting (and EXPERIMENTS.md is generated from the same output).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_percent(value: float, digits: int = 2) -> str:
    return f"{100.0 * value:.{digits}f}%"


def format_ratio(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}x"


@dataclass
class Table:
    """Aligned text table with a title, used by the bench harness."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        cells = [str(c) for c in cells]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [f"== {self.title} ==", line(self.columns), sep]
        parts.extend(line(row) for row in self.rows)
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)

    def show(self) -> None:
        print("\n" + self.render() + "\n")


def bar_chart(title: str, labels: list[str], series: dict[str, list[float]],
              unit: str = "%", width: int = 40) -> str:
    """ASCII grouped bar chart (stand-in for the paper's figure panels)."""
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        raise ValueError("no data")
    peak = max(all_values) or 1.0
    lines = [f"== {title} =="]
    label_w = max(len(l) for l in labels)
    name_w = max(len(n) for n in series)
    for i, label in enumerate(labels):
        for name, values in series.items():
            v = values[i]
            bar = "#" * max(1, int(round(width * v / peak)))
            lines.append(
                f"{label.ljust(label_w)}  {name.ljust(name_w)}  "
                f"{bar} {v:.2f}{unit}"
            )
        lines.append("")
    return "\n".join(lines)
