"""Reusable experiment runners for the paper's evaluation.

The benchmark harness (``benchmarks/``) and any downstream user regenerate
the paper's artifacts through these functions; each returns plain data
(dataclasses/dicts) that :mod:`repro.eval.reporting` can render.

====================  =====================================================
Function              Paper artifact
====================  =====================================================
``voting_experiment``        Fig. 4a (bilinear vs. nearest)
``quantization_experiment``  Fig. 4b (float vs. Table 1 quantization)
``reformulation_experiment`` Fig. 7a (original vs. fully reformulated)
``performance_summary``      Table 3 (CPU vs. Eventor models)
``resource_summary``         Table 2 (FPGA utilization)
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.cpu_model import CPUTimingModel
from repro.core import EMVSConfig, EMVSPipeline, ReformulatedPipeline
from repro.core.voting import VotingMethod
from repro.eval.metrics import DepthMetrics, evaluate_reconstruction
from repro.fixedpoint.quantize import EVENTOR_SCHEMA, FLOAT_SCHEMA
from repro.hardware.config import EventorConfig
from repro.hardware.energy import PowerModel
from repro.hardware.resources import ResourceModel
from repro.hardware.timing import TimingModel


@dataclass(frozen=True)
class VariantComparison:
    """AbsRel comparison between two pipeline variants on one sequence."""

    sequence: str
    baseline: DepthMetrics
    variant: DepthMetrics

    @property
    def gap(self) -> float:
        """Signed AbsRel difference (variant - baseline)."""
        return self.variant.absrel - self.baseline.absrel


def _run(seq, events, voting: VotingMethod, quantized: bool, config: EMVSConfig):
    """One pipeline variant; the fully-reformulated combination routes
    through :class:`ReformulatedPipeline` (streaming undistortion)."""
    if quantized and voting is VotingMethod.NEAREST:
        pipe = ReformulatedPipeline(seq.camera, config, depth_range=seq.depth_range)
    else:
        pipe = EMVSPipeline(
            seq.camera,
            config,
            depth_range=seq.depth_range,
            voting=voting,
            schema=EVENTOR_SCHEMA if quantized else FLOAT_SCHEMA,
        )
    return evaluate_reconstruction(pipe.run(events, seq.trajectory), seq)


def voting_experiment(seq, events, config: EMVSConfig | None = None) -> VariantComparison:
    """Fig. 4a: bilinear (baseline) vs. nearest voting, full precision."""
    config = config or EMVSConfig(n_depth_planes=100)
    return VariantComparison(
        sequence=seq.name,
        baseline=_run(seq, events, VotingMethod.BILINEAR, False, config),
        variant=_run(seq, events, VotingMethod.NEAREST, False, config),
    )


def quantization_experiment(seq, events, config: EMVSConfig | None = None) -> VariantComparison:
    """Fig. 4b: full precision (baseline) vs. Table 1 quantization."""
    config = config or EMVSConfig(n_depth_planes=100)
    return VariantComparison(
        sequence=seq.name,
        baseline=_run(seq, events, VotingMethod.BILINEAR, False, config),
        variant=_run(seq, events, VotingMethod.BILINEAR, True, config),
    )


def reformulation_experiment(seq, events, config: EMVSConfig | None = None) -> VariantComparison:
    """Fig. 7a: original EMVS vs. the fully reformulated pipeline."""
    config = config or EMVSConfig(n_depth_planes=100)
    return VariantComparison(
        sequence=seq.name,
        baseline=_run(seq, events, VotingMethod.BILINEAR, False, config),
        variant=_run(seq, events, VotingMethod.NEAREST, True, config),
    )


def performance_summary(
    hw_config: EventorConfig | None = None,
) -> dict[str, dict[str, float]]:
    """Table 3 as a nested dict: metric -> {'cpu': ..., 'eventor': ...}."""
    cfg = hw_config or EventorConfig()
    cpu = CPUTimingModel.calibrated(n_planes=cfg.n_planes)
    tm = TimingModel(cfg)
    pm = PowerModel()
    ts = tm.task_seconds()
    return {
        "canonical_us": {
            "cpu": cpu.time_canonical(cfg.frame_size) * 1e6,
            "eventor": ts["P_Z0"] * 1e6,
        },
        "proportional_vote_us": {
            "cpu": cpu.time_proportional_and_vote(cfg.frame_size) * 1e6,
            "eventor": ts["P_Zi_R"] * 1e6,
        },
        "normal_frame_us": {
            "cpu": cpu.time_frame(cfg.frame_size) * 1e6,
            "eventor": tm.frame_seconds(False) * 1e6,
        },
        "key_frame_us": {
            "cpu": cpu.time_frame(cfg.frame_size) * 1e6,
            "eventor": tm.frame_seconds(True) * 1e6,
        },
        "rate_normal_mev": {
            "cpu": cpu.event_rate(cfg.frame_size) / 1e6,
            "eventor": tm.event_rate(False) / 1e6,
        },
        "rate_key_mev": {
            "cpu": cpu.event_rate(cfg.frame_size) / 1e6,
            "eventor": tm.event_rate(True) / 1e6,
        },
        "power_w": {
            "cpu": cpu.power_watts,
            "eventor": pm.total_watts(cfg),
        },
    }


def efficiency_gain(hw_config: EventorConfig | None = None) -> float:
    """The 24x headline: CPU-to-Eventor power ratio at iso-throughput."""
    summary = performance_summary(hw_config)
    return summary["power_w"]["cpu"] / summary["power_w"]["eventor"]


def resource_summary(hw_config: EventorConfig | None = None) -> dict[str, float]:
    """Table 2 as a flat dict (counts + utilization fractions)."""
    model = ResourceModel(hw_config or EventorConfig())
    totals = model.totals()
    util = model.utilization()
    return {
        "luts": totals.luts,
        "flip_flops": totals.flip_flops,
        "bram_kb": totals.bram_bytes / 1024,
        "lut_util": util["lut"],
        "ff_util": util["ff"],
        "bram_util": util["bram"],
    }
