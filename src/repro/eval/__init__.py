"""Evaluation: depth metrics, experiment runners and table rendering.

The modules here regenerate every quantitative artifact of the paper:
:mod:`repro.eval.metrics` implements AbsRel and companions,
:mod:`repro.eval.experiments` runs the per-figure/per-table experiments,
and :mod:`repro.eval.reporting` renders aligned text tables next to the
paper's published values.
"""

from repro.eval.metrics import (
    DepthMetrics,
    FusedMapMetrics,
    RigComparison,
    absrel,
    compare_rig_to_monocular,
    evaluate_fused_map,
    evaluate_reconstruction,
    point_to_scene_distance,
)
from repro.eval.reporting import Table, format_percent

__all__ = [
    "DepthMetrics",
    "FusedMapMetrics",
    "RigComparison",
    "absrel",
    "compare_rig_to_monocular",
    "evaluate_fused_map",
    "evaluate_reconstruction",
    "point_to_scene_distance",
    "Table",
    "format_percent",
]
