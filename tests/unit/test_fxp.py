"""Unit tests for fixed-point array arithmetic."""

import numpy as np
import pytest

from repro.fixedpoint.fxp import FxpArray
from repro.fixedpoint.qformat import Overflow, QFormat, Rounding

UQ9_7 = QFormat(16, 7, signed=False)
SQ11_21 = QFormat(32, 21, signed=True)


class TestConstruction:
    def test_from_float_round_trip(self):
        a = FxpArray.from_float(np.array([1.5, 100.25]), UQ9_7)
        np.testing.assert_array_equal(a.to_float(), [1.5, 100.25])

    def test_raw_range_validated(self):
        with pytest.raises(ValueError):
            FxpArray(np.array([1 << 20]), UQ9_7)

    def test_immutable_raw(self):
        a = FxpArray.from_float(np.array([1.0]), UQ9_7)
        with pytest.raises(ValueError):
            a.raw[0] = 3

    def test_indexing(self):
        a = FxpArray.from_float(np.array([1.0, 2.0, 3.0]), UQ9_7)
        assert a[1].to_float()[0] == pytest.approx(2.0)
        assert len(a) == 3


class TestArithmetic:
    def test_add_exact(self):
        a = FxpArray.from_float(np.array([1.5]), UQ9_7)
        b = FxpArray.from_float(np.array([2.25]), UQ9_7)
        c = a + b
        assert c.to_float()[0] == pytest.approx(3.75)
        assert c.fmt.frac_bits == 7

    def test_add_aligns_binary_points(self):
        a = FxpArray.from_float(np.array([1.5]), UQ9_7)
        b = FxpArray.from_float(np.array([0.25]), SQ11_21)
        c = a + b
        assert c.to_float()[0] == pytest.approx(1.75)
        assert c.fmt.frac_bits == 21

    def test_sub_signed_result(self):
        a = FxpArray.from_float(np.array([1.0]), UQ9_7)
        b = FxpArray.from_float(np.array([2.5]), UQ9_7)
        c = a - b
        assert c.to_float()[0] == pytest.approx(-1.5)
        assert c.fmt.signed

    def test_mul_exact_and_bit_growth(self):
        a = FxpArray.from_float(np.array([3.5]), UQ9_7)
        b = FxpArray.from_float(np.array([-0.125]), SQ11_21)
        c = a * b
        assert c.to_float()[0] == pytest.approx(-0.4375)
        assert c.fmt.frac_bits == 28
        assert c.fmt.total_bits == 48

    def test_mul_overflow_guard(self):
        wide = QFormat(40, 20, signed=True)
        a = FxpArray.from_float(np.array([1.0]), wide)
        with pytest.raises(OverflowError):
            _ = a * a

    def test_mac_matches_float(self, rng):
        """A full multiply-accumulate chain agrees with float math exactly
        (all intermediates are exactly representable)."""
        x = FxpArray.from_float(rng.uniform(0, 500, 50), UQ9_7)
        a = FxpArray.from_float(rng.uniform(-2, 2, 50), SQ11_21)
        b = FxpArray.from_float(rng.uniform(-100, 100, 50), SQ11_21)
        result = (a * x) + b
        expected = a.to_float() * x.to_float() + b.to_float()
        np.testing.assert_array_equal(result.to_float(), expected)


class TestResize:
    def test_resize_nearest_half_away(self):
        src = QFormat(16, 4, signed=True)
        a = FxpArray(np.array([24, -24]), src)  # 1.5, -1.5 at Q4
        out = a.resize(QFormat(8, 0, signed=True))
        np.testing.assert_array_equal(out.raw, [2, -2])

    def test_resize_floor(self):
        src = QFormat(16, 4, signed=True)
        a = FxpArray(np.array([31]), src)  # 1.9375
        out = a.resize(QFormat(8, 0, signed=True), rounding=Rounding.FLOOR)
        assert out.raw[0] == 1

    def test_resize_saturates(self):
        a = FxpArray.from_float(np.array([511.0]), UQ9_7)
        out = a.resize(QFormat(8, 0, signed=False))
        assert out.raw[0] == 255

    def test_resize_wrap(self):
        a = FxpArray.from_float(np.array([257.0]), UQ9_7)
        out = a.resize(QFormat(8, 0, signed=False), overflow=Overflow.WRAP)
        assert out.raw[0] == 1

    def test_widening_is_lossless(self):
        a = FxpArray.from_float(np.array([3.125]), QFormat(16, 4, signed=True))
        wide = a.resize(SQ11_21)
        assert wide.to_float()[0] == pytest.approx(3.125)

    def test_overflow_mask(self):
        a = FxpArray.from_float(np.array([100.0, 300.0]), UQ9_7)
        mask = a.overflow_mask(QFormat(8, 0, signed=False))
        np.testing.assert_array_equal(mask, [False, True])
