"""Unit tests for the power and resource models (Table 2 + power claim)."""

import pytest

from repro.baseline.cpu_model import CPUTimingModel
from repro.hardware.config import EventorConfig, ZYNQ_7020
from repro.hardware.energy import PowerModel
from repro.hardware.resources import ResourceModel
from repro.hardware.timing import TimingModel


class TestPowerModel:
    def test_paper_total(self):
        assert PowerModel().total_watts(EventorConfig()) == pytest.approx(1.86)

    def test_breakdown_sums_to_total(self):
        pm = PowerModel()
        cfg = EventorConfig()
        b = pm.breakdown(cfg)
        assert b.total_watts == pytest.approx(pm.total_watts(cfg))

    def test_more_pes_more_power(self):
        pm = PowerModel()
        assert pm.total_watts(EventorConfig(n_pe_zi=4)) > pm.total_watts(
            EventorConfig(n_pe_zi=2)
        )

    def test_dynamic_scales_with_clock(self):
        pm = PowerModel()
        slow = pm.total_watts(EventorConfig(clock_hz=65e6))
        fast = pm.total_watts(EventorConfig(clock_hz=130e6))
        assert slow < fast
        # Static + PS parts do not scale.
        assert slow > pm.ps_watts

    def test_energy_per_event_vs_cpu(self):
        """The 24x energy-efficiency headline (power ratio at iso-rate)."""
        pm = PowerModel()
        cfg = EventorConfig()
        cpu = CPUTimingModel.calibrated()
        power_ratio = cpu.power_watts / pm.total_watts(cfg)
        assert power_ratio == pytest.approx(24.2, abs=0.3)

    def test_energy_accounting(self):
        pm = PowerModel()
        cfg = EventorConfig()
        e = pm.energy_per_frame(cfg, frame_seconds=551.58e-6)
        assert e == pytest.approx(1.86 * 551.58e-6)
        with pytest.raises(ValueError):
            pm.energy_per_event(cfg, 0.0)


class TestResourceModel:
    def test_paper_table2_totals(self):
        t = ResourceModel(EventorConfig()).totals()
        assert t.luts == 17538
        assert t.flip_flops == 22830
        assert t.bram_bytes == 64 * 1024

    def test_paper_table2_utilization(self):
        u = ResourceModel(EventorConfig()).utilization()
        assert u["lut"] == pytest.approx(0.3297, abs=0.0002)
        assert u["ff"] == pytest.approx(0.2146, abs=0.0002)
        assert u["bram"] == pytest.approx(0.1143, abs=0.0002)

    def test_fits_the_part(self):
        assert ResourceModel(EventorConfig()).fits()

    def test_scaling_with_pe_count(self):
        base = ResourceModel(EventorConfig(n_pe_zi=2)).totals()
        big = ResourceModel(EventorConfig(n_pe_zi=4)).totals()
        assert big.luts > base.luts
        assert big.bram_bytes > base.bram_bytes  # extra Buf_I banks

    def test_report_renders(self):
        text = ResourceModel(EventorConfig()).report()
        assert "PE_Z0" in text
        assert "utilization" in text

    def test_part_capacities(self):
        assert ZYNQ_7020.luts == 53200
        assert ZYNQ_7020.flip_flops == 106400


class TestTimingEnergyCrossCheck:
    def test_eventor_beats_cpu_energy_at_similar_rate(self):
        cfg = EventorConfig()
        tm = TimingModel(cfg)
        pm = PowerModel()
        cpu = CPUTimingModel.calibrated()
        gain = pm.efficiency_gain_vs(
            cfg, cpu.power_watts, tm.event_rate(), cpu.event_rate()
        )
        assert gain > 20.0
        # Throughput is on par (slightly higher), as Table 3 shows.
        assert tm.event_rate() / cpu.event_rate() == pytest.approx(1.055, abs=0.02)
