"""Unit tests for the module FSM controllers."""

import pytest

from repro.hardware.controller import (
    CanonicalProjectionController,
    CtrlState,
    FSMError,
    ProportionalProjectionController,
)


class TestCanonicalFSM:
    def test_nominal_frame_sequence(self):
        fsm = CanonicalProjectionController()
        fsm.configure(0)
        fsm.start_load(1)
        fsm.start_run(2)
        fsm.request_sync(3)
        fsm.complete(4)
        assert fsm.state is CtrlState.DONE
        assert fsm.frames_retired() == 1

    def test_back_to_back_frames(self):
        fsm = CanonicalProjectionController()
        for i in range(3):
            fsm.configure(i)
            fsm.start_load(i)
            fsm.start_run(i)
            fsm.request_sync(i)
            fsm.complete(i)
        assert fsm.frames_retired() == 3

    def test_run_before_load_rejected(self):
        fsm = CanonicalProjectionController()
        fsm.configure(0)
        with pytest.raises(FSMError):
            fsm.start_run(1)

    def test_sync_before_run_rejected(self):
        fsm = CanonicalProjectionController()
        fsm.configure(0)
        fsm.start_load(1)
        with pytest.raises(FSMError):
            fsm.request_sync(2)

    def test_park_only_from_done(self):
        fsm = CanonicalProjectionController()
        with pytest.raises(FSMError):
            fsm.park(0)

    def test_transition_log(self):
        fsm = CanonicalProjectionController()
        fsm.configure(5)
        assert fsm.log[0].cycle == 5
        assert fsm.log[0].source is CtrlState.IDLE
        assert fsm.log[0].target is CtrlState.CONFIG


class TestProportionalFSM:
    def test_nominal_sequence(self):
        fsm = ProportionalProjectionController()
        fsm.configure(0)
        fsm.wait_input(1)
        fsm.start_run(2)
        fsm.complete(3)
        assert fsm.state is CtrlState.DONE

    def test_pipelined_frames_skip_config(self):
        """After the first frame the module loops SYNC -> RUN -> DONE."""
        fsm = ProportionalProjectionController()
        fsm.configure(0)
        for i in range(3):
            fsm.wait_input(i)
            fsm.start_run(i)
            fsm.complete(i)
        assert fsm.frames_retired() == 3

    def test_run_without_sync_rejected(self):
        fsm = ProportionalProjectionController()
        fsm.configure(0)
        with pytest.raises(FSMError):
            fsm.start_run(1)

    def test_double_configure_rejected(self):
        fsm = ProportionalProjectionController()
        fsm.configure(0)
        with pytest.raises(FSMError):
            fsm.configure(1)
