"""Unit tests for the frame back-projector."""

import numpy as np
import pytest

from repro.core.backprojection import BackProjector
from repro.core.dsi import depth_planes
from repro.fixedpoint.quantize import EVENTOR_SCHEMA, FLOAT_SCHEMA
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3


@pytest.fixture
def camera():
    return PinholeCamera.davis240c()


@pytest.fixture
def depths():
    return depth_planes(0.8, 4.0, 16)


@pytest.fixture
def event_pose():
    return SE3(translation=[0.08, -0.02, 0.0])


class TestFrameParameters:
    def test_phi_shape_and_alpha_at_z0(self, camera, depths, event_pose):
        proj = BackProjector(camera, SE3.identity(), depths)
        params = proj.frame_parameters(event_pose)
        assert params.phi.shape == (16, 3)
        # First plane is the canonical plane: identity coefficients.
        assert params.phi[0, 0] == pytest.approx(1.0)
        assert params.phi[0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_homography_normalized(self, camera, depths, event_pose):
        proj = BackProjector(camera, SE3.identity(), depths)
        params = proj.frame_parameters(event_pose)
        assert np.abs(params.H_Z0).max() == pytest.approx(1.0, abs=1e-6)

    def test_quantized_parameters_on_grid(self, camera, depths, event_pose):
        proj = BackProjector(camera, SE3.identity(), depths, schema=EVENTOR_SCHEMA)
        params = proj.frame_parameters(event_pose)
        scale = 1 << 21
        np.testing.assert_array_equal(
            params.H_Z0 * scale, np.round(params.H_Z0 * scale)
        )
        np.testing.assert_array_equal(
            params.phi * scale, np.round(params.phi * scale)
        )


class TestCanonicalProjection:
    def test_identity_pose_identity_map(self, camera, depths):
        """Event camera at the virtual pose: events map to themselves."""
        proj = BackProjector(camera, SE3.identity(), depths)
        params = proj.frame_parameters(SE3.identity())
        xy = np.array([[10.0, 20.0], [120.0, 90.0], [230.0, 170.0]])
        uv0, valid = proj.canonical(params, xy)
        assert np.all(valid)
        np.testing.assert_allclose(uv0, xy, atol=1e-9)

    def test_translation_shifts_canonical_points(self, camera, depths, event_pose):
        proj = BackProjector(camera, SE3.identity(), depths)
        params = proj.frame_parameters(event_pose)
        xy = np.array([[120.0, 90.0]])
        uv0, valid = proj.canonical(params, xy)
        assert valid[0]
        # Camera moved +x: the scene (and the canonical image point) shifts +x.
        assert uv0[0, 0] > xy[0, 0]

    def test_far_out_events_flagged_invalid(self, camera, depths):
        """A large lateral displacement pushes border events off the
        canonical plane's unsigned coordinate range."""
        proj = BackProjector(
            camera, SE3.identity(), depths, schema=EVENTOR_SCHEMA
        )
        params = proj.frame_parameters(SE3(translation=[-3.0, 0.0, 0.0]))
        xy = np.array([[2.0, 90.0]])
        uv0, valid = proj.canonical(params, xy)
        assert not valid[0]
        np.testing.assert_allclose(uv0[~valid], 0.0)

    def test_quantized_output_on_grid(self, camera, depths, event_pose):
        proj = BackProjector(camera, SE3.identity(), depths, schema=EVENTOR_SCHEMA)
        params = proj.frame_parameters(event_pose)
        xy = np.array([[11.5, 23.25], [100.0, 50.0]])
        uv0, _ = proj.canonical(params, xy)
        np.testing.assert_array_equal(uv0 * 128, np.round(uv0 * 128))


class TestFullProjection:
    def test_project_frame_shapes(self, camera, depths, event_pose):
        proj = BackProjector(camera, SE3.identity(), depths)
        xy = np.array([[10.0, 20.0], [120.0, 90.0]])
        u, v, valid = proj.project_frame(event_pose, xy)
        assert u.shape == (2, 16)
        assert v.shape == (2, 16)
        assert valid.shape == (2,)

    def test_invalid_rows_are_nan(self, camera, depths):
        proj = BackProjector(camera, SE3.identity(), depths, schema=EVENTOR_SCHEMA)
        u, v, valid = proj.project_frame(
            SE3(translation=[-3.0, 0.0, 0.0]), np.array([[2.0, 90.0]])
        )
        assert not valid[0]
        assert np.all(np.isnan(u[0]))

    def test_epipolar_consistency(self, camera, depths, event_pose):
        """Back-projected points across planes lie on a line (the image of
        the viewing ray in the reference view)."""
        proj = BackProjector(camera, SE3.identity(), depths)
        u, v, valid = proj.project_frame(event_pose, np.array([[60.0, 120.0]]))
        assert valid[0]
        pts = np.stack([u[0], v[0]], axis=1)
        # Fit a line through the first/last and check middle points.
        d = pts[-1] - pts[0]
        d /= np.linalg.norm(d)
        rel = pts - pts[0]
        cross = rel[:, 0] * d[1] - rel[:, 1] * d[0]
        np.testing.assert_allclose(cross, 0.0, atol=1e-6)

    def test_zero_baseline_constant_across_planes(self, camera, depths):
        proj = BackProjector(camera, SE3.identity(), depths)
        u, v, _ = proj.project_frame(SE3.identity(), np.array([[77.0, 55.0]]))
        np.testing.assert_allclose(u[0], 77.0, atol=1e-9)
        np.testing.assert_allclose(v[0], 55.0, atol=1e-9)


class TestBatchedProjector:
    """Batched parameter/canonical stages == per-frame stages, bit for bit."""

    @pytest.fixture
    def poses(self):
        rng = np.random.default_rng(21)
        from repro.geometry.se3 import Quaternion

        out = []
        for _ in range(9):
            q = Quaternion.from_axis_angle(
                rng.standard_normal(3), rng.uniform(0.0, 0.3)
            )
            out.append(
                SE3.from_quaternion_translation(q, rng.uniform(-0.15, 0.15, 3))
            )
        return out

    @pytest.mark.parametrize("schema", [EVENTOR_SCHEMA, FLOAT_SCHEMA])
    def test_frame_parameters_batch_exact(self, camera, depths, poses, schema):
        from repro.geometry.se3 import stack_poses

        proj = BackProjector(camera, SE3.identity(), depths, schema=schema)
        rotations, translations = stack_poses(poses)
        batch = proj.frame_parameters_batch(rotations, translations)
        assert len(batch) == len(poses)
        for k, pose in enumerate(poses):
            scalar = proj.frame_parameters(pose)
            np.testing.assert_array_equal(batch.H_Z0[k], scalar.H_Z0)
            np.testing.assert_array_equal(batch.phi[k], scalar.phi)
            np.testing.assert_array_equal(batch.frame(k).H_Z0, scalar.H_Z0)

    @pytest.mark.parametrize("schema", [EVENTOR_SCHEMA, FLOAT_SCHEMA])
    def test_canonical_batch_exact(self, camera, depths, poses, schema):
        from repro.geometry.se3 import stack_poses

        rng = np.random.default_rng(22)
        proj = BackProjector(camera, SE3.identity(), depths, schema=schema)
        # Include far-out-of-sensor pixels so the miss path is exercised.
        xy = rng.uniform(-200, 600, (len(poses), 128, 2))
        rotations, translations = stack_poses(poses)
        params = proj.frame_parameters_batch(rotations, translations)
        uv0_b, valid_b = proj.canonical_batch(params, xy)
        any_miss = False
        for k, pose in enumerate(poses):
            scalar_params = proj.frame_parameters(pose)
            uv0, valid = proj.canonical(scalar_params, xy[k])
            np.testing.assert_array_equal(uv0_b[k], uv0)
            np.testing.assert_array_equal(valid_b[k], valid)
            any_miss |= bool((~valid).any())
        if schema.enabled:
            # Quantized canonical coordinates have a representable range,
            # so the far-out pixels must actually exercise the miss branch.
            assert any_miss
