"""Unit tests for the Fig. 6 frame scheduler and serve victim selection.

The first half covers the hardware :class:`FrameScheduler` (paper
Fig. 6 pipelining); the second half pins the serving layer's
``drop-oldest`` victim-selection order on :meth:`Session.oldest_queued`
— the overflow policy the gateway's admission path ultimately delegates
to.
"""

import pytest

from repro.core import EMVSConfig, EngineSpec
from repro.core.mapping import SegmentPlan
from repro.hardware.scheduler import FrameScheduler
from repro.hardware.timing import FrameTiming
from repro.serve import Job, JobState, Session
from repro.serve.session import new_job_id


def normal(c=1071.0, p=71708.0):
    return FrameTiming(canonical_cycles=c, proportional_cycles=p, dma_cycles=1040.0)


def keyframe(c=1071.0, p=71708.0):
    return FrameTiming(
        canonical_cycles=c, proportional_cycles=p, dma_cycles=1040.0, is_keyframe=True
    )


class TestNormalFramePipeline:
    def test_canonical_overlaps_previous_proportional(self):
        s = FrameScheduler()
        s.add_frame(normal())
        s.add_frame(normal())
        r = s.result()
        canon = [e for e in r.timeline if e.module == "canonical"]
        prop = [e for e in r.timeline if e.module == "proportional"]
        # Frame 1's canonical stage starts while frame 0's proportional runs.
        assert canon[1].start < prop[0].end

    def test_steady_state_period_is_proportional_time(self):
        s = FrameScheduler()
        for _ in range(5):
            s.add_frame(normal())
        r = s.result()
        assert r.frame_period(3) == pytest.approx(71708.0)

    def test_first_frame_serial(self):
        s = FrameScheduler()
        s.add_frame(normal())
        r = s.result()
        assert r.total_cycles == pytest.approx(1071.0 + 71708.0)

    def test_proportional_module_never_idles_in_steady_state(self):
        s = FrameScheduler()
        for _ in range(10):
            s.add_frame(normal())
        r = s.result()
        prop = [e for e in r.timeline if e.module == "proportional"]
        for a, b in zip(prop[1:], prop[:-1]):
            assert a.start == pytest.approx(b.end)


class TestKeyframeSerialization:
    def test_keyframe_waits_for_previous_frame(self):
        s = FrameScheduler()
        s.add_frame(normal())
        s.add_frame(keyframe())
        r = s.result()
        canon = [e for e in r.timeline if e.module == "canonical"]
        prop = [e for e in r.timeline if e.module == "proportional"]
        # Key frame's canonical stage starts only after frame 0 fully retires.
        assert canon[1].start == pytest.approx(prop[0].end)

    def test_keyframe_period_is_serial_sum(self):
        s = FrameScheduler()
        s.add_frame(normal())
        s.add_frame(keyframe())
        r = s.result()
        assert r.frame_period(1) == pytest.approx(1071.0 + 71708.0)

    def test_paper_runtimes(self):
        """Normal 551.58 us vs key 559.82 us at 130 MHz (Table 3)."""
        s = FrameScheduler()
        for _ in range(3):
            s.add_frame(normal())
        s.add_frame(keyframe())
        s.add_frame(normal())
        r = s.result()
        normal_us = r.frame_period(2) / 130e6 * 1e6
        key_us = r.frame_period(3) / 130e6 * 1e6
        assert normal_us == pytest.approx(551.6, abs=0.5)
        assert key_us == pytest.approx(559.8, abs=0.5)


class TestResultHelpers:
    def test_utilization_bounds(self):
        s = FrameScheduler()
        for _ in range(5):
            s.add_frame(normal())
        u = s.result().utilization()
        assert 0.9 < u["proportional"] <= 1.0
        assert u["canonical"] < 0.1  # P(Z0) is tiny relative to P(Zi)+R

    def test_frame_period_bounds_checked(self):
        s = FrameScheduler()
        s.add_frame(normal())
        with pytest.raises(IndexError):
            s.result().frame_period(0)

    def test_gantt_rendering(self):
        s = FrameScheduler()
        s.add_frame(normal())
        s.add_frame(keyframe())
        text = FrameScheduler.render_gantt(s.result(), clock_hz=130e6)
        assert "canonical" in text
        assert "K" in text

    def test_empty_schedule(self):
        assert "empty" in FrameScheduler.render_gantt(
            FrameScheduler().result(), 130e6
        )


# ----------------------------------------------------------------------
# Serve-layer drop-oldest victim selection
# ----------------------------------------------------------------------
def _serve_job(session: Session, spec, events, n_segments: int = 2) -> Job:
    """Admit a minimal batch job with ``n_segments`` planned segments."""
    plans = tuple(
        SegmentPlan(
            index=i, start_frame=i, end_frame=i + 1, frame_size=100,
            t_ref=float(i),
        )
        for i in range(n_segments)
    )
    job = Job(
        job_id=new_job_id(session.name),
        session=session.name,
        spec=spec,
        events=events,
        plans=plans,
        dropped_tail=0,
        voxel_size=0.01,
        min_observations=1,
        cache_key=None,
    )
    session.add(job)
    return job


@pytest.fixture
def serve_spec(davis_camera, simple_trajectory):
    return EngineSpec(davis_camera, simple_trajectory, EMVSConfig())


class TestDropOldestVictimSelection:
    """Pin :meth:`Session.oldest_queued` — the drop-oldest victim rule.

    The victim must be the session's oldest *untouched* queued batch
    job: never a job with dispatched segments, never a coalescing
    leader, never a coalesced follower, and never a streaming job.
    """

    def test_victim_is_oldest_untouched_job(self, serve_spec, make_stream):
        session = Session("s", queue_limit=8)
        events = make_stream(100)
        first = _serve_job(session, serve_spec, events)
        second = _serve_job(session, serve_spec, events)
        assert session.oldest_queued() is first
        # Once the first job has a segment on the pool it is exempt.
        first.take_next_index()
        first.state = JobState.RUNNING
        assert session.oldest_queued() is second

    def test_coalescing_leader_is_never_victim(self, serve_spec, make_stream):
        session = Session("s", queue_limit=8)
        events = make_stream(100)
        leader = _serve_job(session, serve_spec, events)
        follower = _serve_job(session, serve_spec, events)
        newcomer = _serve_job(session, serve_spec, events)
        leader.followers.append(follower)
        follower.coalesced_with = leader.job_id
        # Dropping the leader would fail its follower to admit one job.
        assert session.oldest_queued() is newcomer

    def test_coalesced_follower_is_never_victim(self, serve_spec, make_stream):
        """A follower of an *empty-plan* leader must still be exempt.

        The follower consumes no pool slots; evicting it frees no
        compute.  With an empty plan the cursor test alone cannot tell
        (``next_segment == 0 == n_segments``), so the explicit
        ``coalesced_with`` guard carries this case.
        """
        session = Session("s", queue_limit=8)
        events = make_stream(100)
        leader = _serve_job(session, serve_spec, events, n_segments=0)
        leader.state = JobState.RUNNING
        follower = _serve_job(session, serve_spec, events, n_segments=0)
        follower.coalesced_with = leader.job_id
        leader.followers.append(follower)
        newcomer = _serve_job(session, serve_spec, events)
        assert session.oldest_queued() is newcomer
        # With no eligible newcomer there is no victim at all — the
        # admission falls back to refusal rather than a pointless drop.
        newcomer.take_next_index()
        newcomer.state = JobState.RUNNING
        assert session.oldest_queued() is None

    def test_streaming_job_is_never_victim(self, serve_spec, make_stream):
        import types

        session = Session("s", queue_limit=8)
        events = make_stream(100)
        stream_job = _serve_job(session, serve_spec, events, n_segments=0)
        stream_job.stream = types.SimpleNamespace(open=True)
        batch = _serve_job(session, serve_spec, events)
        assert session.oldest_queued() is batch
        batch.take_next_index()
        batch.state = JobState.RUNNING
        assert session.oldest_queued() is None

    def test_pending_segments_accounting(self, serve_spec, make_stream):
        """``pending_segments`` (the queue-depth gauge) tracks the tail.

        Plan tail + requeues + backed-off retries, with coalesced
        followers excluded — they ride on their leader's segments.
        """
        session = Session("s", queue_limit=8)
        events = make_stream(100)
        job = _serve_job(session, serve_spec, events, n_segments=3)
        assert session.pending_segments == 3
        job.take_next_index()
        assert session.pending_segments == 2
        job.requeued.append(0)
        job.retry_backlog.append((123.0, 1))
        assert session.pending_segments == 4
        follower = _serve_job(session, serve_spec, events, n_segments=3)
        follower.coalesced_with = job.job_id
        assert session.pending_segments == 4  # follower contributes nothing
