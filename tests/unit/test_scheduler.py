"""Unit tests for the Fig. 6 frame scheduler."""

import pytest

from repro.hardware.scheduler import FrameScheduler
from repro.hardware.timing import FrameTiming


def normal(c=1071.0, p=71708.0):
    return FrameTiming(canonical_cycles=c, proportional_cycles=p, dma_cycles=1040.0)


def keyframe(c=1071.0, p=71708.0):
    return FrameTiming(
        canonical_cycles=c, proportional_cycles=p, dma_cycles=1040.0, is_keyframe=True
    )


class TestNormalFramePipeline:
    def test_canonical_overlaps_previous_proportional(self):
        s = FrameScheduler()
        s.add_frame(normal())
        s.add_frame(normal())
        r = s.result()
        canon = [e for e in r.timeline if e.module == "canonical"]
        prop = [e for e in r.timeline if e.module == "proportional"]
        # Frame 1's canonical stage starts while frame 0's proportional runs.
        assert canon[1].start < prop[0].end

    def test_steady_state_period_is_proportional_time(self):
        s = FrameScheduler()
        for _ in range(5):
            s.add_frame(normal())
        r = s.result()
        assert r.frame_period(3) == pytest.approx(71708.0)

    def test_first_frame_serial(self):
        s = FrameScheduler()
        s.add_frame(normal())
        r = s.result()
        assert r.total_cycles == pytest.approx(1071.0 + 71708.0)

    def test_proportional_module_never_idles_in_steady_state(self):
        s = FrameScheduler()
        for _ in range(10):
            s.add_frame(normal())
        r = s.result()
        prop = [e for e in r.timeline if e.module == "proportional"]
        for a, b in zip(prop[1:], prop[:-1]):
            assert a.start == pytest.approx(b.end)


class TestKeyframeSerialization:
    def test_keyframe_waits_for_previous_frame(self):
        s = FrameScheduler()
        s.add_frame(normal())
        s.add_frame(keyframe())
        r = s.result()
        canon = [e for e in r.timeline if e.module == "canonical"]
        prop = [e for e in r.timeline if e.module == "proportional"]
        # Key frame's canonical stage starts only after frame 0 fully retires.
        assert canon[1].start == pytest.approx(prop[0].end)

    def test_keyframe_period_is_serial_sum(self):
        s = FrameScheduler()
        s.add_frame(normal())
        s.add_frame(keyframe())
        r = s.result()
        assert r.frame_period(1) == pytest.approx(1071.0 + 71708.0)

    def test_paper_runtimes(self):
        """Normal 551.58 us vs key 559.82 us at 130 MHz (Table 3)."""
        s = FrameScheduler()
        for _ in range(3):
            s.add_frame(normal())
        s.add_frame(keyframe())
        s.add_frame(normal())
        r = s.result()
        normal_us = r.frame_period(2) / 130e6 * 1e6
        key_us = r.frame_period(3) / 130e6 * 1e6
        assert normal_us == pytest.approx(551.6, abs=0.5)
        assert key_us == pytest.approx(559.8, abs=0.5)


class TestResultHelpers:
    def test_utilization_bounds(self):
        s = FrameScheduler()
        for _ in range(5):
            s.add_frame(normal())
        u = s.result().utilization()
        assert 0.9 < u["proportional"] <= 1.0
        assert u["canonical"] < 0.1  # P(Z0) is tiny relative to P(Zi)+R

    def test_frame_period_bounds_checked(self):
        s = FrameScheduler()
        s.add_frame(normal())
        with pytest.raises(IndexError):
            s.result().frame_period(0)

    def test_gantt_rendering(self):
        s = FrameScheduler()
        s.add_frame(normal())
        s.add_frame(keyframe())
        text = FrameScheduler.render_gantt(s.result(), clock_hz=130e6)
        assert "canonical" in text
        assert "K" in text

    def test_empty_schedule(self):
        assert "empty" in FrameScheduler.render_gantt(
            FrameScheduler().result(), 130e6
        )
