"""Unit tests for the DRAM model."""

import numpy as np
import pytest

from repro.hardware.dram import DRAMModel


@pytest.fixture
def dram():
    d = DRAMModel(capacity_bytes=1 << 30, bus_bits=32, clock_hz=533e6)
    d.allocate_dsi((4, 6, 8), score_bits=16)
    return d


class TestAllocation:
    def test_peak_bandwidth_ddr(self):
        d = DRAMModel(bus_bits=32, clock_hz=533e6)
        assert d.peak_bandwidth_bytes_per_s == pytest.approx(2 * 533e6 * 4)

    def test_oversized_dsi_rejected(self):
        d = DRAMModel(capacity_bytes=1024)
        with pytest.raises(MemoryError):
            d.allocate_dsi((100, 100, 100))

    def test_vote_before_allocate_rejected(self):
        with pytest.raises(RuntimeError):
            DRAMModel().vote(np.array([0]))

    def test_dsi_starts_zero(self, dram):
        assert dram.read_dsi().sum() == 0


class TestVoting:
    def test_vote_increments(self, dram):
        dram.vote(np.array([0, 0, 5]))
        scores = dram.read_dsi()
        assert scores.reshape(-1)[0] == 2
        assert scores.reshape(-1)[5] == 1

    def test_vote_out_of_range_rejected(self, dram):
        with pytest.raises(IndexError):
            dram.vote(np.array([4 * 6 * 8]))
        with pytest.raises(IndexError):
            dram.vote(np.array([-1]))

    def test_saturation_at_16bit(self, dram):
        addr = np.zeros(70000, dtype=np.int64)
        dram.vote(addr)
        assert dram.read_dsi().reshape(-1)[0] == 0xFFFF

    def test_reset_clears(self, dram):
        dram.vote(np.array([1, 2, 3]))
        dram.reset_dsi()
        assert dram.read_dsi().sum() == 0

    def test_empty_vote_ok(self, dram):
        assert dram.vote(np.array([], dtype=np.int64)) == 0


class TestTrafficAccounting:
    def test_vote_traffic_rmw(self, dram):
        before = dram.stats.total_bytes
        dram.vote(np.arange(10))
        # 10 votes x (2-byte read + 2-byte write).
        assert dram.stats.total_bytes - before == 40
        assert dram.stats.vote_rmw_ops == 10

    def test_readout_traffic(self, dram):
        before = dram.stats.bytes_read
        dram.read_dsi()
        assert dram.stats.bytes_read - before == 4 * 6 * 8 * 2

    def test_stream_accounting(self, dram):
        dram.stream_read(100)
        dram.stream_write(50)
        assert dram.stats.bytes_read >= 100
        assert dram.stats.bytes_written >= 50
