"""Unit tests for the ray-cast planar scenes."""

import numpy as np
import pytest

from repro.events import texture as tex
from repro.events.scenes import (
    PlanarScene,
    TexturedPlane,
    slider_scene,
    three_planes_scene,
    three_walls_scene,
)
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3


@pytest.fixture
def camera():
    return PinholeCamera.ideal(64, 48, fov_deg=60.0)


@pytest.fixture
def wall_scene():
    plane = TexturedPlane(
        origin=[0.0, 0.0, 2.0],
        u_axis=[1, 0, 0],
        v_axis=[0, 1, 0],
        texture=tex.constant(0.8),
        name="wall",
    )
    return PlanarScene(planes=[plane], background=0.2)


class TestTexturedPlane:
    def test_normal_is_cross_product(self):
        plane = TexturedPlane([0, 0, 1], [1, 0, 0], [0, 1, 0])
        np.testing.assert_allclose(plane.normal, [0, 0, 1])

    def test_axes_orthonormalized(self):
        plane = TexturedPlane([0, 0, 1], [2, 0, 0], [1, 1, 0])
        assert np.linalg.norm(plane.u_axis) == pytest.approx(1.0)
        assert np.dot(plane.u_axis, plane.v_axis) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_parallel_axes(self):
        with pytest.raises(ValueError):
            TexturedPlane([0, 0, 1], [1, 0, 0], [2, 0, 0])

    def test_intersect_head_on(self):
        plane = TexturedPlane([0, 0, 2], [1, 0, 0], [0, 1, 0])
        t, u, v = plane.intersect(np.zeros((1, 3)), np.array([[0.0, 0.0, 1.0]]))
        assert t[0] == pytest.approx(2.0)
        assert u[0] == pytest.approx(0.0)

    def test_intersect_miss_behind(self):
        plane = TexturedPlane([0, 0, 2], [1, 0, 0], [0, 1, 0])
        t, _, _ = plane.intersect(np.zeros((1, 3)), np.array([[0.0, 0.0, -1.0]]))
        assert np.isinf(t[0])

    def test_intersect_outside_extent(self):
        plane = TexturedPlane([0, 0, 2], [1, 0, 0], [0, 1, 0], half_u=0.1, half_v=0.1)
        t, _, _ = plane.intersect(
            np.zeros((1, 3)), np.array([[0.5, 0.0, 1.0]])
        )  # hits plane at u = 1.0 > half_u
        assert np.isinf(t[0])

    def test_parallel_ray_misses(self):
        plane = TexturedPlane([0, 0, 2], [1, 0, 0], [0, 1, 0])
        t, _, _ = plane.intersect(np.zeros((1, 3)), np.array([[1.0, 0.0, 0.0]]))
        assert np.isinf(t[0])


class TestPlanarScene:
    def test_render_shape_and_values(self, camera, wall_scene):
        img = wall_scene.render(camera, SE3.identity())
        assert img.shape == (48, 64)
        # Centre pixel sees the wall, which is constant 0.8.
        assert img[24, 32] == pytest.approx(0.8)

    def test_depth_map_fronto_parallel(self, camera, wall_scene):
        depth = wall_scene.depth_map(camera, SE3.identity())
        # A fronto-parallel plane at z=2: every hit pixel has depth exactly 2.
        finite = depth[np.isfinite(depth)]
        np.testing.assert_allclose(finite, 2.0, atol=1e-9)

    def test_background_where_no_geometry(self, camera):
        empty = PlanarScene(planes=[], background=0.3)
        img = empty.render(camera, SE3.identity())
        np.testing.assert_allclose(img, 0.3)
        depth = empty.depth_map(camera, SE3.identity())
        assert np.all(np.isinf(depth))

    def test_nearest_plane_wins(self, camera):
        near = TexturedPlane([0, 0, 1], [1, 0, 0], [0, 1, 0],
                             texture=tex.constant(0.9))
        far = TexturedPlane([0, 0, 3], [1, 0, 0], [0, 1, 0],
                            texture=tex.constant(0.1))
        scene = PlanarScene(planes=[far, near])
        img = scene.render(camera, SE3.identity())
        assert img[24, 32] == pytest.approx(0.9)
        depth = scene.depth_map(camera, SE3.identity())
        assert depth[24, 32] == pytest.approx(1.0)

    def test_depth_at_pixels_matches_map(self, camera, wall_scene):
        depth_map = wall_scene.depth_map(camera, SE3.identity())
        pixels = np.array([[32.0, 24.0], [10.0, 40.0]])
        d = wall_scene.depth_at_pixels(camera, SE3.identity(), pixels)
        assert d[0] == pytest.approx(depth_map[24, 32])
        assert d[1] == pytest.approx(depth_map[40, 10])

    def test_depth_extent(self, camera):
        scene = PlanarScene(
            planes=[
                TexturedPlane([0, 0, 1.0], [1, 0, 0], [0, 1, 0], half_u=0.2, half_v=0.2),
                TexturedPlane([0, 0, 2.5], [1, 0, 0], [0, 1, 0]),
            ]
        )
        lo, hi = scene.depth_extent(camera, SE3.identity())
        assert lo == pytest.approx(1.0, abs=1e-6)
        assert hi >= 2.5

    def test_depth_extent_raises_on_empty_view(self, camera):
        empty = PlanarScene(planes=[])
        with pytest.raises(ValueError):
            empty.depth_extent(camera, SE3.identity())

    def test_translated_camera_sees_shifted_depth(self, camera, wall_scene):
        # Moving toward the wall reduces depth by the same amount.
        pose = SE3(translation=[0.0, 0.0, 0.5])
        depth = wall_scene.depth_map(camera, pose)
        assert depth[24, 32] == pytest.approx(1.5)


class TestSceneBuilders:
    def test_three_planes_has_three_depths(self, camera):
        scene = three_planes_scene()
        assert len(scene.planes) == 3
        depths = sorted(p.origin[2] for p in scene.planes)
        assert depths[0] < depths[1] < depths[2]

    def test_three_walls_geometry(self):
        scene = three_walls_scene()
        assert len(scene.planes) == 3
        # Walls should have distinct normals (a corner, not a stack).
        normals = [p.normal for p in scene.planes]
        assert abs(np.dot(normals[0], normals[1])) < 0.99

    def test_slider_scene_mean_depth_scales(self):
        close = slider_scene(0.4)
        far = slider_scene(1.5)
        assert close.planes[0].origin[2] == pytest.approx(0.4)
        assert far.planes[0].origin[2] == pytest.approx(1.5)

    def test_slider_scene_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            slider_scene(-1.0)

    def test_paper_scenes_render_with_davis(self):
        cam = PinholeCamera.davis240c()
        for scene in (three_planes_scene(), three_walls_scene(), slider_scene(0.5)):
            img = scene.render(cam, SE3.identity())
            assert img.shape == (180, 240)
            assert img.std() > 0.05  # textured, not flat
