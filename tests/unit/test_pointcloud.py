"""Unit tests for point clouds and map merging."""

import numpy as np
import pytest

from repro.core.depthmap import SemiDenseDepthMap
from repro.core.pointcloud import PointCloud
from repro.geometry.camera import PinholeCamera
from repro.geometry.se3 import SE3


@pytest.fixture
def camera():
    return PinholeCamera.ideal(64, 48, fov_deg=60.0)


def flat_depth_map(camera, depth=2.0):
    """Depth map of a fronto-parallel wall over the central patch."""
    d = np.full((camera.height, camera.width), np.nan)
    mask = np.zeros_like(d, dtype=bool)
    mask[10:40, 10:50] = True
    d[mask] = depth
    return SemiDenseDepthMap(depth=d, confidence=mask * 10.0, mask=mask)


class TestConstruction:
    def test_empty(self):
        assert len(PointCloud()) == 0

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((3, 2)))

    def test_from_depth_map_geometry(self, camera):
        dm = flat_depth_map(camera, depth=2.0)
        cloud = PointCloud.from_depth_map(dm, camera, SE3.identity())
        assert len(cloud) == dm.n_points
        # All points exactly on the z=2 plane in the camera/world frame.
        np.testing.assert_allclose(cloud.points[:, 2], 2.0, atol=1e-12)

    def test_from_depth_map_applies_pose(self, camera):
        dm = flat_depth_map(camera, depth=2.0)
        pose = SE3(translation=[1.0, 0.0, 0.5])
        cloud = PointCloud.from_depth_map(dm, camera, pose)
        np.testing.assert_allclose(cloud.points[:, 2], 2.5, atol=1e-12)

    def test_from_empty_depth_map(self, camera):
        dm = SemiDenseDepthMap(
            depth=np.full((48, 64), np.nan),
            confidence=np.zeros((48, 64)),
            mask=np.zeros((48, 64), dtype=bool),
        )
        assert len(PointCloud.from_depth_map(dm, camera, SE3.identity())) == 0


class TestOperations:
    def test_merge(self):
        a = PointCloud(np.zeros((3, 3)))
        b = PointCloud(np.ones((2, 3)))
        merged = a.merge(b)
        assert len(merged) == 5

    def test_merge_with_empty(self):
        a = PointCloud(np.zeros((3, 3)))
        assert len(a.merge(PointCloud())) == 3
        assert len(PointCloud().merge(a)) == 3

    def test_radius_filter_removes_isolated(self, rng):
        cluster = rng.normal(0, 0.01, (50, 3))
        outlier = np.array([[10.0, 10.0, 10.0]])
        cloud = PointCloud(np.vstack([cluster, outlier]))
        kept = cloud.radius_filter(radius=0.1, min_neighbors=3)
        assert len(kept) == 50

    def test_radius_filter_empty(self):
        assert len(PointCloud().radius_filter(0.1)) == 0

    def test_voxel_downsample(self, rng):
        points = rng.uniform(0, 1, (500, 3))
        down = PointCloud(points).voxel_downsample(0.5)
        assert len(down) <= 8
        assert len(down) > 0

    def test_voxel_downsample_validation(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((2, 3))).voxel_downsample(0.0)


class TestAnalysis:
    def test_bounding_box_and_centroid(self):
        cloud = PointCloud(np.array([[0, 0, 0], [2, 4, 6]], dtype=float))
        lo, hi = cloud.bounding_box()
        np.testing.assert_array_equal(lo, [0, 0, 0])
        np.testing.assert_array_equal(hi, [2, 4, 6])
        np.testing.assert_array_equal(cloud.centroid(), [1, 2, 3])

    def test_empty_analysis_raises(self):
        with pytest.raises(ValueError):
            PointCloud().bounding_box()
        with pytest.raises(ValueError):
            PointCloud().centroid()

    def test_plane_fit_residual_planar_points(self, rng):
        # Points exactly on a tilted plane: residual ~ 0.
        xy = rng.uniform(-1, 1, (100, 2))
        z = 0.3 * xy[:, 0] - 0.2 * xy[:, 1] + 1.0
        cloud = PointCloud(np.column_stack([xy, z]))
        assert cloud.plane_fit_residual() < 1e-10

    def test_plane_fit_residual_noisy(self, rng):
        xy = rng.uniform(-1, 1, (500, 2))
        z = 1.0 + rng.normal(0, 0.05, 500)
        cloud = PointCloud(np.column_stack([xy, z]))
        assert cloud.plane_fit_residual() == pytest.approx(0.05, rel=0.2)

    def test_plane_fit_needs_three_points(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((2, 3))).plane_fit_residual()

    def test_cluster_by_depth(self):
        cloud = PointCloud(
            np.array([[0, 0, 1.0], [0, 0, 1.1], [0, 0, 2.5]], dtype=float)
        )
        masks = cloud.cluster_by_depth(np.array([0.5, 1.5, 3.0]))
        assert masks[0].sum() == 2
        assert masks[1].sum() == 1
