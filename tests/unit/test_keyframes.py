"""Unit tests for key-frame selection."""

import pytest

from repro.core.keyframes import KeyframeSelector
from repro.geometry.se3 import SE3


def pose(x):
    return SE3(translation=[x, 0.0, 0.0])


class TestKeyframeSelector:
    def test_first_pose_is_keyframe(self):
        sel = KeyframeSelector(0.1)
        assert sel.is_new_keyframe(pose(0.0))

    def test_below_threshold_not_keyframe(self):
        sel = KeyframeSelector(0.1)
        sel.is_new_keyframe(pose(0.0))
        assert not sel.is_new_keyframe(pose(0.05))

    def test_beyond_threshold_triggers(self):
        sel = KeyframeSelector(0.1)
        sel.is_new_keyframe(pose(0.0))
        assert sel.is_new_keyframe(pose(0.15))

    def test_reference_updates_on_trigger(self):
        sel = KeyframeSelector(0.1)
        sel.is_new_keyframe(pose(0.0))
        sel.is_new_keyframe(pose(0.15))
        # Distance is now measured from 0.15, not 0.0.
        assert not sel.is_new_keyframe(pose(0.2))
        assert sel.is_new_keyframe(pose(0.3))

    def test_none_threshold_never_rekeys(self):
        sel = KeyframeSelector(None)
        assert sel.is_new_keyframe(pose(0.0))
        assert not sel.is_new_keyframe(pose(100.0))

    def test_reset(self):
        sel = KeyframeSelector(0.1)
        sel.is_new_keyframe(pose(0.0))
        sel.reset()
        assert sel.is_new_keyframe(pose(0.01))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            KeyframeSelector(0.0)

    def test_relative_threshold(self):
        assert KeyframeSelector.relative_threshold(2.0, 0.15) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            KeyframeSelector.relative_threshold(0.0)

    def test_accumulated_drift_without_trigger(self):
        """Many small steps trigger only when total displacement from the
        reference exceeds the threshold (not per-step distance)."""
        sel = KeyframeSelector(0.1)
        sel.is_new_keyframe(pose(0.0))
        fired_at = None
        for i in range(1, 20):
            if sel.is_new_keyframe(pose(0.01 * i)):
                fired_at = 0.01 * i
                break
        assert fired_at == pytest.approx(0.11)
