"""Unit tests for event aggregation into frames."""

import numpy as np
import pytest

from repro.events.containers import EventArray
from repro.events.packetizer import (
    ChunkBuffer,
    Packetizer,
    aggregate_frames,
    frame_midtimes,
    iter_frames,
    n_full_frames,
    segment_slice,
)


def stream(n, rate=1000.0, t0=0.0):
    t = t0 + np.arange(n) / rate
    return EventArray.from_arrays(t, np.zeros(n), np.zeros(n), np.ones(n, dtype=int))


class TestPacketizer:
    def test_emits_full_frames(self, simple_trajectory):
        p = Packetizer(simple_trajectory, frame_size=100)
        frames = p.push(stream(250))
        assert len(frames) == 2
        assert all(len(f) == 100 for f in frames)

    def test_keeps_remainder_pending(self, simple_trajectory):
        p = Packetizer(simple_trajectory, frame_size=100)
        p.push(stream(250))
        tail = p.flush()
        assert tail is not None
        assert len(tail) == 50

    def test_incremental_pushes_accumulate(self, simple_trajectory):
        p = Packetizer(simple_trajectory, frame_size=100)
        assert p.push(stream(60)) == []
        frames = p.push(stream(60, t0=0.1))
        assert len(frames) == 1

    def test_flush_empty_returns_none(self, simple_trajectory):
        p = Packetizer(simple_trajectory, frame_size=10)
        assert p.flush() is None

    def test_frame_indices_monotonic(self, simple_trajectory):
        p = Packetizer(simple_trajectory, frame_size=50)
        frames = p.push(stream(200))
        assert [f.index for f in frames] == [0, 1, 2, 3]

    def test_rejects_bad_frame_size(self, simple_trajectory):
        with pytest.raises(ValueError):
            Packetizer(simple_trajectory, frame_size=0)

    def test_pending_count_tracks_buffer(self, simple_trajectory):
        p = Packetizer(simple_trajectory, frame_size=100)
        assert p.pending_count == 0
        p.push(stream(250))
        assert p.pending_count == 50
        p.flush()
        assert p.pending_count == 0

    def test_drop_pending_reports_and_clears(self, simple_trajectory):
        p = Packetizer(simple_trajectory, frame_size=100)
        p.push(stream(250))
        assert p.drop_pending() == 50
        assert p.pending_count == 0
        assert p.drop_pending() == 0
        assert p.flush() is None

    def test_pose_sampled_at_midpoint(self, simple_trajectory):
        p = Packetizer(simple_trajectory, frame_size=100)
        # Events spanning t in [0, 2]: frame midpoint at t=1 -> x=0.
        n = 100
        t = np.linspace(0.0, 2.0, n)
        ev = EventArray.from_arrays(t, np.zeros(n), np.zeros(n), np.ones(n, int))
        frames = p.push(ev)
        np.testing.assert_allclose(frames[0].T_wc.translation, [0, 0, 0], atol=1e-9)


class TestAggregateFrames:
    def test_drop_partial_default(self, simple_trajectory):
        frames = aggregate_frames(stream(250), simple_trajectory, frame_size=100)
        assert len(frames) == 2

    def test_keep_partial(self, simple_trajectory):
        frames = aggregate_frames(
            stream(250), simple_trajectory, frame_size=100, drop_partial=False
        )
        assert len(frames) == 3
        assert len(frames[-1]) == 50

    def test_empty_stream(self, simple_trajectory):
        assert aggregate_frames(EventArray.empty(), simple_trajectory) == []

    def test_events_preserved_in_order(self, simple_trajectory):
        ev = stream(200)
        frames = aggregate_frames(ev, simple_trajectory, frame_size=100)
        reassembled = np.concatenate([f.events.t for f in frames])
        np.testing.assert_array_equal(reassembled, ev.t)

    def test_iter_frames_matches_batch(self, simple_trajectory):
        ev = stream(300)
        batch = aggregate_frames(ev, simple_trajectory, frame_size=100)
        streamed = list(iter_frames(ev, simple_trajectory, frame_size=100))
        assert len(batch) == len(streamed)
        for a, b in zip(batch, streamed):
            assert a.timestamp == pytest.approx(b.timestamp)


class TestDropAccounting:
    """The trailing partial frame is accounted, never silently lost."""

    def test_aggregate_frames_returns_dropped_count(self, simple_trajectory):
        frames, dropped = aggregate_frames(
            stream(250), simple_trajectory, frame_size=100, return_dropped=True
        )
        assert len(frames) == 2
        assert dropped == 50

    def test_aggregate_frames_keep_partial_drops_nothing(self, simple_trajectory):
        frames, dropped = aggregate_frames(
            stream(250),
            simple_trajectory,
            frame_size=100,
            drop_partial=False,
            return_dropped=True,
        )
        assert len(frames) == 3
        assert dropped == 0

    def test_aggregate_frames_default_shape_unchanged(self, simple_trajectory):
        frames = aggregate_frames(stream(250), simple_trajectory, frame_size=100)
        assert isinstance(frames, list)
        assert len(frames) == 2

    def test_iter_frames_matches_aggregate_drop_partial(self, simple_trajectory):
        agg = aggregate_frames(stream(430), simple_trajectory, frame_size=100)
        it = list(iter_frames(stream(430), simple_trajectory, frame_size=100))
        assert len(it) == len(agg) == 4
        for a, b in zip(agg, it):
            assert a.events == b.events
            assert a.index == b.index

    def test_iter_frames_returns_dropped_count(self, simple_trajectory):
        def drive():
            dropped = yield from iter_frames(
                stream(430), simple_trajectory, frame_size=100
            )
            return dropped

        gen = drive()
        frames = []
        try:
            while True:
                frames.append(next(gen))
        except StopIteration as stop:
            dropped = stop.value
        assert len(frames) == 4
        assert dropped == 30

    def test_iter_frames_no_tail(self, simple_trajectory):
        gen = iter_frames(stream(200), simple_trajectory, frame_size=100)
        frames = []
        try:
            while True:
                frames.append(next(gen))
        except StopIteration as stop:
            assert stop.value == 0
        assert len(frames) == 2


class TestSegmentHelpers:
    """The plan-time helpers mirror Packetizer output bit-for-bit."""

    def test_n_full_frames(self):
        assert n_full_frames(stream(430), 100) == 4
        assert n_full_frames(stream(99), 100) == 0
        with pytest.raises(ValueError):
            n_full_frames(stream(10), 0)

    def test_frame_midtimes_match_packetizer(self, simple_trajectory):
        events = stream(430)
        frames = aggregate_frames(events, simple_trajectory, frame_size=100)
        mids = frame_midtimes(events, 100)
        assert mids.shape == (4,)
        for frame, mid in zip(frames, mids):
            assert frame.timestamp == mid  # exact, not approx

    def test_frame_midtimes_empty(self):
        assert frame_midtimes(stream(50), 100).shape == (0,)

    def test_segment_slice_repacketizes_identically(self, simple_trajectory):
        events = stream(640)
        frames = aggregate_frames(events, simple_trajectory, frame_size=100)
        part = segment_slice(events, 2, 5, 100)
        assert len(part) == 300
        refrmd = aggregate_frames(part, simple_trajectory, frame_size=100)
        assert len(refrmd) == 3
        for a, b in zip(frames[2:5], refrmd):
            assert a.events == b.events
            assert a.timestamp == b.timestamp

    def test_segment_slice_validates(self):
        with pytest.raises(ValueError):
            segment_slice(stream(100), 3, 2, 10)
        with pytest.raises(ValueError):
            segment_slice(stream(100), -1, 2, 10)

    def test_segment_slice_rejects_overrun(self):
        # An out-of-range segment must error, not silently truncate.
        with pytest.raises(ValueError, match="stream has 500"):
            segment_slice(stream(500), 3, 8, 100)
        assert len(segment_slice(stream(500), 3, 5, 100)) == 200


class TestChunkBuffer:
    def test_split_prefix_equals_stream_slice(self):
        """Chunked pushes split bit-identically to slicing one stream."""
        events = stream(500)
        buffer = ChunkBuffer()
        for lo in range(0, 500, 130):
            buffer.push(events[lo : lo + 130])
        assert len(buffer) == 500
        head = buffer.split(220)
        np.testing.assert_array_equal(head.data, events[:220].data)
        np.testing.assert_array_equal(buffer.merged().data, events[220:].data)
        assert len(buffer) == 280

    def test_empty_pushes_are_noops(self):
        buffer = ChunkBuffer()
        buffer.push(EventArray.empty())
        assert len(buffer) == 0
        assert len(buffer.merged()) == 0
        assert len(buffer.split(0)) == 0

    def test_split_validates_bounds(self):
        buffer = ChunkBuffer()
        buffer.push(stream(10))
        with pytest.raises(ValueError, match="cannot split"):
            buffer.split(11)
        with pytest.raises(ValueError, match="cannot split"):
            buffer.split(-1)

    def test_split_everything_empties_the_buffer(self):
        buffer = ChunkBuffer()
        buffer.push(stream(50))
        assert len(buffer.split(50)) == 50
        assert len(buffer) == 0
        buffer.push(stream(20, t0=1.0))  # reusable after a full split
        assert len(buffer) == 20

    def test_clear_reports_dropped_count(self):
        buffer = ChunkBuffer()
        buffer.push(stream(30))
        assert buffer.clear() == 30
        assert len(buffer) == 0
        assert buffer.clear() == 0

    def test_merged_is_cached_between_pushes(self):
        buffer = ChunkBuffer()
        buffer.push(stream(100))
        buffer.push(stream(100, t0=1.0))
        assert buffer.merged() is buffer.merged()

    def test_timestamp_probes_without_merging(self):
        """timestamp(i) equals the merged array's value, across parts."""
        buffer = ChunkBuffer()
        events = stream(500)
        for lo in range(0, 500, 7):  # many tiny parts
            buffer.push(events[lo : lo + 7])
        for i in (0, 6, 7, 249, 499):
            assert buffer.timestamp(i) == float(events.t[i])
        assert buffer._merged is None  # probes did not force a merge
        with pytest.raises(IndexError):
            buffer.timestamp(500)
        with pytest.raises(IndexError):
            buffer.timestamp(-1)

    def test_timestamp_consistent_after_split(self):
        buffer = ChunkBuffer()
        events = stream(300)
        buffer.push(events[:200])
        buffer.push(events[200:])
        buffer.split(120)
        assert buffer.timestamp(0) == float(events.t[120])
        assert buffer.timestamp(179) == float(events.t[299])
