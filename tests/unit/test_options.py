"""The consolidated JobOptions / CacheConfig / ServiceConfig surface.

Covers the three value objects' validation, the single ``merged`` rule,
the deprecated-kwarg shims on ``ReconstructionService`` (legacy
spellings must keep working, warn, and resolve identically to the
``options=`` spelling), and ``from_config`` equivalence.
"""

import dataclasses
import warnings

import pytest

from repro.serve import (
    CACHE_MODES,
    CacheConfig,
    FaultKind,
    FaultPlan,
    JobOptions,
    ReconstructionService,
    RetryPolicy,
    ServiceConfig,
)


class TestJobOptions:
    def test_all_fields_default_to_inherit(self):
        options = JobOptions()
        for field in dataclasses.fields(options):
            assert getattr(options, field.name) is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            JobOptions().retry = RetryPolicy(max_attempts=2)

    @pytest.mark.parametrize(
        "kwargs, exc, match",
        [
            (dict(retry=3), TypeError, "RetryPolicy"),
            (dict(deadline_s=0.0), ValueError, "deadline_s must be positive"),
            (
                dict(segment_deadline_s=-1.0),
                ValueError,
                "segment_deadline_s must be positive",
            ),
            (dict(faults="nope"), TypeError, "FaultPlan"),
            (dict(voxel_size=0.0), ValueError, "voxel_size must be positive"),
            (dict(min_observations=0), ValueError, "min_observations must be >= 1"),
            (dict(cache="sometimes"), ValueError, "cache mode"),
        ],
    )
    def test_validation(self, kwargs, exc, match):
        with pytest.raises(exc, match=match):
            JobOptions(**kwargs)

    def test_cache_modes_accepted(self):
        for mode in CACHE_MODES:
            assert JobOptions(cache=mode).cache == mode

    def test_merged_none_inherits_set_overrides(self):
        defaults = JobOptions(
            deadline_s=10.0, allow_partial=False, cache="on", min_observations=1
        )
        override = JobOptions(deadline_s=2.0, allow_partial=True)
        merged = override.merged(defaults)
        assert merged.deadline_s == 2.0
        assert merged.allow_partial is True
        assert merged.cache == "on"  # inherited
        assert merged.min_observations == 1  # inherited
        # merging never mutates either side
        assert defaults.deadline_s == 10.0 and override.cache is None

    def test_merged_is_layered(self):
        """per_call.merged(options).merged(defaults) — strongest wins."""
        defaults = JobOptions(deadline_s=10.0, segment_deadline_s=5.0, cache="on")
        options = JobOptions(deadline_s=4.0, integrity=True)
        per_call = JobOptions(deadline_s=1.0)
        resolved = per_call.merged(options).merged(defaults)
        assert resolved.deadline_s == 1.0  # per-call beats options
        assert resolved.integrity is True  # options beats defaults
        assert resolved.segment_deadline_s == 5.0  # defaults fill the rest
        assert resolved.cache == "on"


class TestCacheConfig:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(job_entries=-1), "cache capacity must be >= 0"),
            (dict(mem_mb=-0.5), "mem_mb must be >= 0"),
            (dict(disk_mb=-1.0), "disk_mb must be >= 0"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            CacheConfig(**kwargs)

    def test_segment_tiers_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        config = CacheConfig()
        assert config.job_entries == 32
        assert config.mem_mb == 0.0
        assert config.resolved_dir() is None  # no dir, no env

    def test_resolved_dir_explicit(self, tmp_path):
        assert CacheConfig(cache_dir=str(tmp_path)).resolved_dir() == str(tmp_path)

    def test_resolved_dir_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert CacheConfig().resolved_dir() == str(tmp_path)
        # an explicit empty string suppresses the fallback
        assert CacheConfig(cache_dir="").resolved_dir() is None
        # a disabled disk tier never resolves a directory
        assert CacheConfig(disk_mb=0.0).resolved_dir() is None


class TestServiceShims:
    def test_legacy_constructor_kwargs_warn_and_apply(self):
        retry = RetryPolicy(max_attempts=3)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            service = ReconstructionService(
                workers=1, retry=retry, deadline_s=9.0, allow_partial=True
            )
        assert service.defaults.retry is retry
        assert service.deadline_s == 9.0  # legacy read-only view
        assert service.allow_partial is True
        service.close()

    def test_options_spelling_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service = ReconstructionService(
                workers=1,
                options=JobOptions(deadline_s=9.0, allow_partial=True),
            )
        assert service.deadline_s == 9.0 and service.allow_partial is True
        service.close()

    def test_legacy_and_options_spellings_resolve_identically(self):
        retry = RetryPolicy(max_attempts=2, backoff_s=0.01)
        with pytest.warns(DeprecationWarning):
            legacy = ReconstructionService(
                workers=1,
                retry=retry,
                deadline_s=5.0,
                segment_deadline_s=1.0,
                allow_partial=True,
                integrity=True,
            )
        modern = ReconstructionService(
            workers=1,
            options=JobOptions(
                retry=retry,
                deadline_s=5.0,
                segment_deadline_s=1.0,
                allow_partial=True,
                integrity=True,
            ),
        )
        assert legacy.defaults == modern.defaults
        legacy.close()
        modern.close()

    def test_legacy_kwargs_beat_options(self):
        with pytest.warns(DeprecationWarning):
            service = ReconstructionService(
                workers=1, deadline_s=1.0, options=JobOptions(deadline_s=9.0)
            )
        assert service.deadline_s == 1.0
        service.close()

    def test_cache_size_and_cache_config_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            ReconstructionService(workers=1, cache_size=4, cache=CacheConfig())

    def test_cache_size_maps_to_job_entries(self):
        service = ReconstructionService(workers=1, cache_size=7)
        assert service.cache_config.job_entries == 7
        assert service.cache.capacity == 7
        service.close()

    def test_legacy_validation_messages_survive(self):
        with pytest.raises(TypeError, match="retry must be a RetryPolicy"):
            with pytest.warns(DeprecationWarning):
                ReconstructionService(workers=1, retry=3)
        with pytest.raises(ValueError, match="deadline_s must be positive"):
            with pytest.warns(DeprecationWarning):
                ReconstructionService(workers=1, deadline_s=-1.0)
        with pytest.raises(ValueError, match="cache capacity must be >= 0"):
            ReconstructionService(workers=1, cache_size=-1)

    def test_hang_faults_rejected_on_inline_executor(self):
        plan = FaultPlan(FaultKind.HANG, seed=0, rate=1.0)
        with pytest.raises(ValueError, match="inline"):
            ReconstructionService(
                workers=1, executor="inline", options=JobOptions(faults=plan)
            )


class TestServiceConfig:
    def test_from_config_equivalent_to_kwargs(self):
        config = ServiceConfig(
            workers=1,
            executor="inline",
            queue_limit=3,
            overflow="drop-oldest",
            retain_jobs=5,
            cache=CacheConfig(job_entries=2),
            defaults=JobOptions(deadline_s=7.0),
        )
        built = ReconstructionService.from_config(config)
        spelled = ReconstructionService(
            workers=1,
            executor="inline",
            queue_limit=3,
            overflow="drop-oldest",
            retain_jobs=5,
            cache=CacheConfig(job_entries=2),
            options=JobOptions(deadline_s=7.0),
        )
        assert built.defaults == spelled.defaults
        assert built.cache_config == spelled.cache_config
        assert built.overflow == spelled.overflow
        assert built.retain_jobs == spelled.retain_jobs
        assert built.executor == spelled.executor
        built.close()
        spelled.close()

    def test_config_defaults_are_value_objects(self):
        config = ServiceConfig()
        assert config.cache == CacheConfig()
        assert config.defaults == JobOptions()
