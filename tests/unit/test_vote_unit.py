"""Unit tests for the Vote Execute Unit."""

import numpy as np
import pytest

from repro.hardware.dram import DRAMModel
from repro.hardware.vote_unit import VoteExecuteUnit


@pytest.fixture
def unit():
    dram = DRAMModel()
    dram.allocate_dsi((2, 4, 4))
    return VoteExecuteUnit(dram, n_ports=2, stall_fraction=0.094)


class TestFunctional:
    def test_votes_land_in_dram(self, unit):
        unit.execute(np.array([0, 0, 7]))
        scores = unit.dram.read_dsi().reshape(-1)
        assert scores[0] == 2
        assert scores[7] == 1
        assert unit.stats.votes_applied == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            VoteExecuteUnit(DRAMModel(), n_ports=0)
        with pytest.raises(ValueError):
            VoteExecuteUnit(DRAMModel(), stall_fraction=-0.1)


class TestTiming:
    def test_two_ports_halve_cycles(self):
        dram = DRAMModel()
        one = VoteExecuteUnit(dram, n_ports=1, stall_fraction=0.0)
        two = VoteExecuteUnit(dram, n_ports=2, stall_fraction=0.0)
        assert two.cycles(1000) == pytest.approx(one.cycles(1000) / 2)

    def test_stall_fraction_inflates(self, unit):
        base = unit.cycles(128) / (1 + unit.stall_fraction)
        assert unit.cycles(128) == pytest.approx(base * 1.094)

    def test_paper_calibration(self, unit):
        """128 votes/event, 1024 events, 2 ports, 9.4 % stalls -> ~70
        cycles/event -> 551.6 us at 130 MHz (Table 3)."""
        cycles = unit.cycles(1024 * 128)
        us = cycles / 130e6 * 1e6
        assert us == pytest.approx(551.6, abs=1.0)

    def test_zero_votes(self, unit):
        assert unit.cycles(0) == 0.0
