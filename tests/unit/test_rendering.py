"""Unit tests for event visualization utilities."""

import os

import numpy as np
import pytest

from repro.events.containers import EventArray
from repro.events.rendering import (
    accumulate_polarity,
    event_count_map,
    polarity_to_rgb,
    save_ppm,
    timestamp_surface,
)

W, H = 8, 6


@pytest.fixture
def events():
    return EventArray.from_arrays(
        t=[0.1, 0.2, 0.3, 0.4, 0.5],
        x=[1.0, 1.0, 2.4, 7.0, -3.0],  # last one is off-sensor
        y=[1.0, 1.0, 2.6, 5.0, 2.0],
        p=[1, 1, -1, 1, 1],
    )


class TestAccumulation:
    def test_polarity_sums(self, events):
        img = accumulate_polarity(events, W, H)
        assert img[1, 1] == 2.0          # two positive events
        assert img[3, 2] == -1.0         # 2.4 -> 2, 2.6 -> 3 (half-up)
        assert img[5, 7] == 1.0
        assert img.sum() == 2.0          # off-sensor event dropped

    def test_count_map(self, events):
        counts = event_count_map(events, W, H)
        assert counts[1, 1] == 2
        assert counts.sum() == 4

    def test_timestamp_surface_keeps_latest(self, events):
        surface = timestamp_surface(events, W, H)
        assert surface[1, 1] == pytest.approx(0.2)  # latest of the two
        assert np.isnan(surface[0, 0])

    def test_empty_stream(self):
        img = accumulate_polarity(EventArray.empty(), W, H)
        assert img.shape == (H, W)
        assert img.sum() == 0


class TestVisualization:
    def test_rgb_polarity_colors(self, events):
        rgb = polarity_to_rgb(accumulate_polarity(events, W, H))
        assert rgb.shape == (H, W, 3)
        # Positive pixel: red dominates; negative: blue dominates.
        assert rgb[1, 1, 0] > rgb[1, 1, 2]
        assert rgb[3, 2, 2] > rgb[3, 2, 0]
        # Untouched pixels stay white.
        assert tuple(rgb[0, 0]) == (255, 255, 255)

    def test_rgb_of_zero_image(self):
        rgb = polarity_to_rgb(np.zeros((4, 4)))
        assert np.all(rgb == 255)

    def test_save_ppm(self, tmp_path, events):
        rgb = polarity_to_rgb(accumulate_polarity(events, W, H))
        path = os.path.join(tmp_path, "frame.ppm")
        save_ppm(path, rgb)
        with open(path, "rb") as f:
            assert f.readline().strip() == b"P6"
            assert f.readline().split() == [str(W).encode(), str(H).encode()]
            f.readline()
            assert len(f.read()) == W * H * 3

    def test_save_ppm_validates_shape(self, tmp_path):
        with pytest.raises(ValueError):
            save_ppm(os.path.join(tmp_path, "x.ppm"), np.zeros((4, 4)))


class TestOnRealStream:
    def test_simulated_stream_renders(self, seq_3planes_fast):
        seq = seq_3planes_fast
        window = seq.events.time_slice(1.0, 1.02)
        img = accumulate_polarity(window, seq.camera.width, seq.camera.height)
        counts = event_count_map(window, seq.camera.width, seq.camera.height)
        assert counts.sum() == len(window)
        # Both polarities appear in a textured sweep.
        assert img.max() > 0 and img.min() < 0
