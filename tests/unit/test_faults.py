"""Unit tests for the reliability primitives: fault plans and retries.

The reliability layer's value rests on *determinism*: a
:class:`~repro.serve.faults.FaultPlan`'s schedule and a
:class:`~repro.serve.retry.RetryPolicy`'s backoff must be pure
functions of their fields — never of call order, wall clock or worker
count — so a chaos run replays bit-identically.  These tests pin that,
plus the worker-side guarded entry point and the integrity digest.
"""

import numpy as np
import pytest

from repro.core import EMVSConfig, EngineSpec, segment_tasks
from repro.core.engine import SegmentPlan
from repro.core.mapping import run_segment_task
from repro.serve import FaultKind, FaultPlan, RetryPolicy, outcome_digest
from repro.serve.faults import (
    FaultInjected,
    _HANG_GATES,
    new_hang_gate,
    release_all_hang_gates,
    release_hang_gate,
    run_guarded_segment,
)


@pytest.fixture
def segment_task(davis_camera, simple_trajectory, make_stream):
    """One small real segment task (200 events, 2 frames)."""
    spec = EngineSpec(
        davis_camera, simple_trajectory, EMVSConfig(frame_size=100, n_depth_planes=12)
    )
    plan = SegmentPlan(index=0, start_frame=0, end_frame=2, frame_size=100, t_ref=0.0)
    return segment_tasks([plan], make_stream(200), spec)[0]


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(TypeError):
            FaultPlan(kind="transient")
        with pytest.raises(ValueError):
            FaultPlan(FaultKind.TRANSIENT, rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(FaultKind.TRANSIENT, max_failures=0)
        with pytest.raises(ValueError):
            FaultPlan(FaultKind.SLOW, delay_s=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(FaultKind.TRANSIENT).directive(0, -1)

    def test_targets_restrict_eligibility(self):
        plan = FaultPlan(FaultKind.TRANSIENT, targets=(1, 3))
        assert not plan.targeted(0)
        assert plan.targeted(1)
        assert plan.directive(0, 0) is None
        assert plan.directive(3, 0) is not None

    def test_rate_draw_is_deterministic_and_order_free(self):
        plan = FaultPlan(FaultKind.TRANSIENT, seed=7, rate=0.5)
        forward = [plan.targeted(i) for i in range(64)]
        backward = [plan.targeted(i) for i in reversed(range(64))]
        assert forward == list(reversed(backward))
        # Not degenerate: a 0.5 rate faults some but not all segments.
        assert any(forward) and not all(forward)
        # A different seed draws a different subset.
        other = [FaultPlan(FaultKind.TRANSIENT, seed=8, rate=0.5).targeted(i)
                 for i in range(64)]
        assert other != forward

    def test_transient_heals_after_max_failures(self):
        plan = FaultPlan(FaultKind.TRANSIENT, max_failures=2)
        assert plan.directive(0, 0) is not None
        assert plan.directive(0, 1) is not None
        assert plan.directive(0, 2) is None

    def test_persistent_never_heals(self):
        plan = FaultPlan(FaultKind.PERSISTENT, max_failures=1)
        assert all(plan.directive(0, attempt) is not None for attempt in range(8))

    def test_directive_carries_plan_fields(self):
        plan = FaultPlan(FaultKind.SLOW, delay_s=0.25, max_failures=2)
        directive = plan.directive(4, 1)
        assert directive.kind is FaultKind.SLOW
        assert directive.index == 4
        assert directive.attempt == 1
        assert directive.delay_s == 0.25
        assert not directive.hard


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=3).delay(0, 0)

    def test_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.retryable(1)
        assert policy.retryable(2)
        assert not policy.retryable(3)
        # The default is fail-fast: one attempt, no retries.
        assert not RetryPolicy().retryable(1)

    def test_exponential_backoff(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1, backoff_factor=2.0)
        assert policy.delay(0, 1) == pytest.approx(0.1)
        assert policy.delay(0, 2) == pytest.approx(0.2)
        assert policy.delay(0, 3) == pytest.approx(0.4)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=3, backoff_s=0.1, jitter=0.5, seed=3
        )
        a = policy.delay(2, 1)
        assert a == policy.delay(2, 1)  # pure in (policy, index, failures)
        assert 0.1 <= a <= 0.15
        # Different (index, failures) draw different jitter.
        draws = {policy.delay(i, f) for i in range(4) for f in (1, 2)}
        assert len(draws) > 1


class TestGuardedSegment:
    def test_fault_free_path_is_bit_identical(self, segment_task):
        outcome, digest = run_guarded_segment(segment_task)
        direct = run_segment_task(segment_task)
        assert digest is None
        assert outcome_digest(outcome) == outcome_digest(direct)

    def test_digest_is_deterministic(self, segment_task):
        _, a = run_guarded_segment(segment_task, with_digest=True)
        _, b = run_guarded_segment(segment_task, with_digest=True)
        assert a == b and a is not None

    def test_transient_fault_raises(self, segment_task):
        directive = FaultPlan(FaultKind.TRANSIENT).directive(0, 0)
        with pytest.raises(FaultInjected, match="segment 0"):
            run_guarded_segment(segment_task, directive)

    def test_soft_crash_raises_instead_of_exiting(self, segment_task):
        directive = FaultPlan(FaultKind.CRASH).directive(0, 0)
        assert not directive.hard  # the service only hardens process pools
        with pytest.raises(FaultInjected, match="crash"):
            run_guarded_segment(segment_task, directive)

    def test_corrupt_tampers_after_digest(self, segment_task):
        directive = FaultPlan(FaultKind.CORRUPT).directive(0, 0)
        outcome, digest = run_guarded_segment(
            segment_task, directive, with_digest=True
        )
        # The digest was taken before the tamper: merge-time verification
        # must flag the payload.
        assert outcome_digest(outcome) != digest
        clean = run_segment_task(segment_task)
        assert digest == outcome_digest(clean)

    def test_corrupt_changes_payload_not_structure(self, segment_task):
        directive = FaultPlan(FaultKind.CORRUPT).directive(0, 0)
        outcome, _ = run_guarded_segment(segment_task, directive)
        clean = run_segment_task(segment_task)
        assert outcome[0] == clean[0]
        assert len(outcome[1]) == len(clean[1])
        if outcome[1]:
            tampered = outcome[1][0].depth_map.depth
            original = clean[1][0].depth_map.depth
            np.testing.assert_array_equal(
                np.isfinite(tampered), np.isfinite(original)
            )
            assert not np.array_equal(tampered, original)

    def test_slow_fault_still_succeeds(self, segment_task):
        directive = FaultPlan(FaultKind.SLOW, delay_s=0.0).directive(0, 0)
        outcome, _ = run_guarded_segment(segment_task, directive)
        assert outcome_digest(outcome) == outcome_digest(
            run_segment_task(segment_task)
        )


class TestHangGates:
    def test_release_unblocks_and_forgets(self):
        gate_id = new_hang_gate()
        assert gate_id in _HANG_GATES
        release_hang_gate(gate_id)
        assert gate_id not in _HANG_GATES
        release_hang_gate(gate_id)  # idempotent on unknown ids

    def test_release_all(self):
        ids = [new_hang_gate() for _ in range(3)]
        gates = [_HANG_GATES[i] for i in ids]
        release_all_hang_gates()
        assert all(g.is_set() for g in gates)
        assert not any(i in _HANG_GATES for i in ids)
