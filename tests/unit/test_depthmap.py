"""Unit tests for the semi-dense depth map container."""

import numpy as np
import pytest

from repro.core.depthmap import SemiDenseDepthMap


@pytest.fixture
def depth_map():
    depth = np.full((4, 5), np.nan)
    mask = np.zeros((4, 5), dtype=bool)
    confidence = np.zeros((4, 5))
    depth[1, 2] = 2.0
    depth[3, 4] = 4.0
    mask[1, 2] = True
    mask[3, 4] = True
    confidence[1, 2] = 10.0
    confidence[3, 4] = 5.0
    return SemiDenseDepthMap(depth=depth, confidence=confidence, mask=mask)


class TestSemiDenseDepthMap:
    def test_counts_and_density(self, depth_map):
        assert depth_map.n_points == 2
        assert depth_map.density == pytest.approx(2 / 20)

    def test_pixels_xy_order(self, depth_map):
        pixels = depth_map.pixels()
        # (x, y) ordering: first point at column 2, row 1.
        assert pixels.shape == (2, 2)
        np.testing.assert_array_equal(pixels[0], [2, 1])
        np.testing.assert_array_equal(pixels[1], [4, 3])

    def test_depths_aligned_with_pixels(self, depth_map):
        np.testing.assert_allclose(depth_map.depths(), [2.0, 4.0])

    def test_mean_depth(self, depth_map):
        assert depth_map.mean_depth() == pytest.approx(3.0)

    def test_empty_mean_raises(self):
        empty = SemiDenseDepthMap(
            depth=np.full((2, 2), np.nan),
            confidence=np.zeros((2, 2)),
            mask=np.zeros((2, 2), dtype=bool),
        )
        with pytest.raises(ValueError):
            empty.mean_depth()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SemiDenseDepthMap(
                depth=np.zeros((2, 2)),
                confidence=np.zeros((2, 3)),
                mask=np.zeros((2, 2), dtype=bool),
            )
