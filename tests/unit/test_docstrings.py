"""Docstring coverage gate for the public ``repro.core`` / ``repro.serve`` API.

The docs satellite of the streaming PR enables ruff's ``D`` rules for
these two packages in CI; this test enforces the same D1xx invariant
(every public module, class, function and method carries a docstring)
inside tier-1, so the guarantee holds even where ruff is unavailable —
and names the offenders precisely when it breaks.
"""

import ast
import pathlib

import pytest

import repro.core
import repro.serve

#: The packages whose public surface must stay fully documented.
DOCUMENTED_PACKAGES = {
    "repro.core": pathlib.Path(repro.core.__file__).parent,
    "repro.serve": pathlib.Path(repro.serve.__file__).parent,
}


def iter_public_defs(tree: ast.Module):
    """Yield ``(lineno, qualname, node)`` for every public def/class.

    Mirrors pydocstyle's D1xx notion of "public": a name (and every
    enclosing class) must not start with an underscore.  Functions
    nested inside other functions are included — ruff checks them too.
    """

    def walk(node, prefix, enclosing_private):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                private = enclosing_private or child.name.startswith("_")
                if not private:
                    yield child.lineno, prefix + child.name, child
                yield from walk(child, prefix + child.name + ".", private)

    yield from walk(tree, "", False)


@pytest.mark.parametrize("package", sorted(DOCUMENTED_PACKAGES))
def test_public_api_is_fully_documented(package):
    root = DOCUMENTED_PACKAGES[package]
    offenders = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            offenders.append(f"{path}:1 (module docstring)")
        for lineno, qualname, node in iter_public_defs(tree):
            if ast.get_docstring(node) is None:
                offenders.append(f"{path}:{lineno} ({qualname})")
    assert not offenders, (
        f"{package} public API missing docstrings:\n  " + "\n  ".join(offenders)
    )


def test_key_entry_points_have_substantial_docs():
    """The documented entry points carry real prose, not placeholders."""
    from repro.core import (
        EngineSpec,
        MappingOrchestrator,
        ReconstructionEngine,
    )
    from repro.serve import ReconstructionService, StreamingSession

    for entry_point in (
        ReconstructionService,
        StreamingSession,
        MappingOrchestrator,
        ReconstructionEngine,
        EngineSpec,
    ):
        doc = entry_point.__doc__
        assert doc is not None and len(doc.strip()) > 120, entry_point
