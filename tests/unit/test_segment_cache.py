"""The tiered segment-outcome cache (memory LRU over a disk store).

Everything here runs on synthetic payloads — ``(keyframes, profile)``
with placeholder key frames — because the cache is content-agnostic;
the integration suite (``test_cache_persistence``) exercises it with
real reconstructions.
"""

import os
import pickle

import pytest

from repro.core.results import PipelineProfile
from repro.serve import (
    SEGMENT_CACHE_SCHEMA,
    SegmentCache,
    payload_digest,
    segment_key,
)


def make_payload(tag: str, pad: int = 0):
    """A distinguishable picklable payload (optionally padded to size)."""
    profile = PipelineProfile()
    profile.n_events = len(tag)
    return ([tag, "x" * pad], profile)


def key_of(n: int) -> str:
    """A deterministic 64-hex key (the shape segment_key produces)."""
    return f"{n:064x}"


class TestMemoryTier:
    def test_disabled_by_default(self):
        cache = SegmentCache()
        assert not cache.enabled
        assert cache.get(key_of(1)) is None
        cache.put(key_of(1), make_payload("a"))
        assert len(cache) == 0 and cache.hits == cache.misses == 0

    def test_put_get_roundtrip(self):
        cache = SegmentCache(mem_mb=1.0)
        payload = make_payload("a")
        cache.put(key_of(1), payload)
        assert cache.get(key_of(1)) is payload  # no copy, no deserialization
        assert (cache.hits, cache.misses) == (1, 0)
        assert cache.get(key_of(2)) is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_count_miss_false_does_not_charge(self):
        cache = SegmentCache(mem_mb=1.0)
        assert cache.get(key_of(1), count_miss=False) is None
        assert cache.misses == 0

    def test_byte_bound_evicts_least_recently_used(self):
        pad = 64 * 1024
        cache = SegmentCache(mem_mb=3.5 * pad / 2**20)  # ~3 entries + overhead
        for n in range(3):
            cache.put(key_of(n), make_payload(str(n), pad=pad))
        assert len(cache) == 3
        cache.get(key_of(0))  # touch 0 so 1 is the LRU victim
        cache.put(key_of(3), make_payload("3", pad=pad))
        assert cache.get(key_of(1), count_miss=False) is None
        assert cache.get(key_of(0), count_miss=False) is not None
        assert cache.evictions >= 1

    def test_validation(self):
        with pytest.raises(ValueError, match="mem_mb"):
            SegmentCache(mem_mb=-1.0)
        with pytest.raises(ValueError, match="disk_mb"):
            SegmentCache(disk_mb=-1.0)


class TestDiskTier:
    def test_write_then_read_and_promotion(self, tmp_path):
        cache = SegmentCache(mem_mb=1.0, cache_dir=str(tmp_path))
        cache.put(key_of(7), make_payload("seven"))
        assert cache.disk_entries == 1
        # evict from memory only; the disk copy must answer
        cache._mem.clear()
        got = cache.get(key_of(7))
        assert got is not None and got[0][0] == "seven"
        assert cache.disk_hits == 1
        assert len(cache) == 1  # promoted back into the memory tier

    def test_entries_survive_restart(self, tmp_path):
        first = SegmentCache(mem_mb=1.0, cache_dir=str(tmp_path))
        first.put(key_of(1), make_payload("persisted"))
        second = SegmentCache(mem_mb=1.0, cache_dir=str(tmp_path))
        assert second.disk_entries == 1
        got = second.get(key_of(1))
        assert got is not None and got[0][0] == "persisted"
        assert second.disk_hits == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = SegmentCache(cache_dir=str(tmp_path))
        for n in range(4):
            cache.put(key_of(n), make_payload(str(n)))
        leftovers = [
            name
            for _, _, names in os.walk(tmp_path)
            for name in names
            if not name.endswith(".pkl")
        ]
        assert leftovers == []

    def test_entries_live_under_versioned_root(self, tmp_path):
        cache = SegmentCache(cache_dir=str(tmp_path))
        cache.put(key_of(1), make_payload("a"))
        assert (tmp_path / f"seg-v{SEGMENT_CACHE_SCHEMA}").is_dir()

    def test_truncated_entry_is_a_miss_and_deleted(self, tmp_path):
        cache = SegmentCache(cache_dir=str(tmp_path))
        cache.put(key_of(1), make_payload("a"))
        path = cache._disk[key_of(1)][0]
        with open(path, "wb") as f:
            f.write(b"\x80\x05damaged")
        assert cache.get(key_of(1)) is None
        assert not os.path.exists(path)
        assert cache.disk_entries == 0

    def test_wrong_schema_version_is_a_miss(self, tmp_path):
        cache = SegmentCache(cache_dir=str(tmp_path))
        cache.put(key_of(1), make_payload("a"))
        path = cache._disk[key_of(1)][0]
        with open(path, "rb") as f:
            record = pickle.load(f)
        record["version"] = SEGMENT_CACHE_SCHEMA + 1
        with open(path, "wb") as f:
            pickle.dump(record, f)
        assert cache.get(key_of(1)) is None

    def test_verify_rejects_digest_mismatch(self, tmp_path):
        cache = SegmentCache(cache_dir=str(tmp_path))
        cache.put(key_of(1), make_payload("a"))
        path = cache._disk[key_of(1)][0]
        with open(path, "rb") as f:
            record = pickle.load(f)
        record["payload"] = make_payload("tampered")
        with open(path, "wb") as f:
            pickle.dump(record, f)
        # an unverified load serves the tampered payload...
        assert cache.get(key_of(1))[0][0] == "tampered"
        # ...a verified one detects and evicts it
        cache._mem.clear()
        assert cache.get(key_of(1), verify=True) is None
        assert not os.path.exists(path)

    def test_disk_bound_evicts_oldest(self, tmp_path):
        pad = 32 * 1024
        cache = SegmentCache(disk_mb=3 * pad / 2**20, cache_dir=str(tmp_path))
        for n in range(5):
            cache.put(key_of(n), make_payload(str(n), pad=pad))
        assert cache.disk_entries < 5
        # the newest entry always survives
        assert key_of(4) in cache._disk

    def test_disk_mb_zero_disables_the_tier(self, tmp_path):
        cache = SegmentCache(mem_mb=1.0, disk_mb=0.0, cache_dir=str(tmp_path))
        cache.put(key_of(1), make_payload("a"))
        assert cache.disk_entries == 0
        assert list(tmp_path.iterdir()) == []


class TestKeys:
    def test_payload_digest_ignores_timings(self):
        a = make_payload("same")
        b = make_payload("same")
        b[1].add_time("backprojection", 123.0)
        assert payload_digest(a) == payload_digest(b)

    def test_payload_digest_covers_content(self):
        assert payload_digest(make_payload("a")) != payload_digest(
            make_payload("b")
        )

    def test_segment_key_covers_spec_and_slice(self, mapping_workload):
        seq, events, config = mapping_workload
        from repro.core import EngineSpec

        spec = EngineSpec(
            seq.camera,
            seq.trajectory,
            config,
            depth_range=seq.depth_range,
            backend="numpy-batch",
        )
        digest = events.content_digest(0, 1024)
        assert segment_key(spec, digest) == segment_key(spec, digest)
        assert segment_key(spec, digest) != segment_key(
            spec, events.content_digest(1024, 2048)
        )
        other = EngineSpec(
            seq.camera,
            seq.trajectory,
            config,
            depth_range=seq.depth_range,
            backend="numpy-reference",
        )
        assert segment_key(spec, digest) != segment_key(other, digest)

    def test_sliced_digest_equals_digest_of_slice(self, mapping_workload):
        _, events, _ = mapping_workload
        assert (
            events.content_digest(1024, 4096)
            == events[1024:4096].content_digest()
        )

    def test_sliced_digest_property_over_random_windows(self, mapping_workload):
        """Slice composition holds for arbitrary windows, not one corner.

        ``events.content_digest(a, b) == events[a:b].content_digest()``
        is the identity that lets admission-time cache probes hash event
        windows without materializing the slice; fuzz it over seeded
        random windows including empty and full-span ones.
        """
        import numpy as np

        _, events, _ = mapping_workload
        n = len(events)
        rng = np.random.default_rng(4242)
        windows = [(0, n), (0, 0), (n, n), (n // 2, n // 2)]
        windows += [
            tuple(sorted(rng.integers(0, n + 1, size=2))) for _ in range(12)
        ]
        for a, b in windows:
            a, b = int(a), int(b)
            assert (
                events.content_digest(a, b) == events[a:b].content_digest()
            ), (a, b)


class TestRigCacheKeys:
    """Rig workloads must share segment-cache entries with monocular runs."""

    @pytest.fixture()
    def rig_and_spec(self, mapping_workload):
        import numpy as np

        from repro.core import CameraRig, EngineSpec
        from repro.geometry.se3 import SE3

        seq, events, config = mapping_workload
        spec = EngineSpec(
            seq.camera,
            seq.trajectory,
            config,
            depth_range=seq.depth_range,
            backend="numpy-batch",
        )
        rig = CameraRig.from_trajectory(
            seq.camera,
            seq.trajectory,
            config,
            extrinsics=[
                SE3.identity(),
                SE3(np.eye(3), np.array([0.08, 0.0, 0.0])),
            ],
            depth_range=seq.depth_range,
            backend="numpy-batch",
        )
        return rig, spec, events

    def test_identity_camera_shares_keys_with_monocular_spec(self, rig_and_spec):
        """The identity-mounted rig camera IS the monocular engine.

        Composing ``SE3.identity()`` is bit-exact, so its spec tokenizes
        identically and every planned segment of a rig job hits the very
        cache entries a monocular job of the same stream wrote.
        """
        rig, spec, events = rig_and_spec
        cam0 = rig.camera("cam0").spec
        mono_plans, _ = spec.plan(events)
        rig_plans, _ = cam0.plan(events)
        assert [p.index for p in mono_plans] == [p.index for p in rig_plans]
        assert len(mono_plans) > 1
        for mono_plan, rig_plan in zip(mono_plans, rig_plans):
            mono_key = segment_key(
                spec, events.content_digest(mono_plan.start_event, mono_plan.end_event)
            )
            rig_key = segment_key(
                cam0, events.content_digest(rig_plan.start_event, rig_plan.end_event)
            )
            assert mono_key == rig_key

    def test_offset_camera_gets_distinct_keys(self, rig_and_spec):
        """A camera on a real baseline computes different segments."""
        rig, spec, events = rig_and_spec
        cam1 = rig.camera("cam1").spec
        digest = events.content_digest(0, 2048)
        assert segment_key(cam1, digest) != segment_key(spec, digest)

    def test_overlapping_rigs_share_per_camera_entries(self, rig_and_spec):
        """Two rigs sharing a camera share that camera's cache entries."""
        import numpy as np

        from repro.core import CameraRig
        from repro.geometry.se3 import SE3

        rig, spec, events = rig_and_spec
        offset = SE3(np.eye(3), np.array([0.08, 0.0, 0.0]))
        wider = CameraRig.from_trajectory(
            spec.camera,
            spec.trajectory,
            spec.config,
            extrinsics=[
                SE3.identity(),
                offset,
                SE3(np.eye(3), np.array([-0.08, 0.0, 0.0])),
            ],
            depth_range=spec.depth_range,
            backend="numpy-batch",
        )
        digest = events.content_digest(0, 2048)
        # Same mounting point, different rigs: identical keys.
        assert segment_key(rig.camera("cam1").spec, digest) == segment_key(
            wider.camera("cam1").spec, digest
        )
        # The rig's third camera is genuinely new work.
        assert segment_key(wider.camera("cam2").spec, digest) != segment_key(
            wider.camera("cam1").spec, digest
        )

    def test_camera_tag_never_enters_the_task_digest(self, rig_and_spec):
        """`SegmentTask.camera` is provenance, not identity."""
        from repro.core import SegmentTask

        rig, spec, events = rig_and_spec
        plans, _ = spec.plan(events)
        plan = plans[0]
        sliced = plan.slice(events)
        untagged = SegmentTask(plan.index, sliced, spec)
        tagged = SegmentTask(plan.index, sliced, spec, camera="cam0")
        assert untagged.content_digest() == tagged.content_digest()
