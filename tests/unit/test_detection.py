"""Unit tests for scene-structure detection."""

import numpy as np
import pytest

from repro.core.config import DetectionConfig
from repro.core.detection import adaptive_threshold_mask, detect_structure, median_reject
from repro.core.dsi import DSI, depth_planes
from repro.geometry.se3 import SE3


@pytest.fixture
def config():
    return DetectionConfig(gaussian_sigma=1.5, offset=3.0, median_size=3, min_votes=2.0)


class TestAdaptiveThreshold:
    def test_isolated_peak_detected(self, config):
        confidence = np.zeros((20, 20))
        confidence[10, 10] = 50.0
        mask = adaptive_threshold_mask(confidence, config)
        assert mask[10, 10]
        assert mask.sum() == 1

    def test_uniform_field_rejected(self, config):
        confidence = np.full((20, 20), 30.0)
        mask = adaptive_threshold_mask(confidence, config)
        assert mask.sum() == 0  # nothing beats the local mean + offset

    def test_min_votes_floor(self, config):
        confidence = np.zeros((20, 20))
        confidence[5, 5] = 1.0  # a peak, but below min_votes
        mask = adaptive_threshold_mask(confidence, config)
        assert mask.sum() == 0

    def test_ridge_detected_against_background(self, config):
        confidence = np.ones((20, 20))
        confidence[8, :] = 25.0
        mask = adaptive_threshold_mask(confidence, config)
        assert mask[8].sum() > 10
        assert mask[0].sum() == 0


class TestMedianReject:
    def test_outlier_depth_removed(self, config):
        depth = np.full((10, 10), 2.0)
        depth[5, 5] = 9.0  # disagrees with neighbourhood
        mask = np.zeros((10, 10), dtype=bool)
        mask[4:8, 4:8] = True
        out = median_reject(depth, mask, config)
        assert not out[5, 5]
        assert out[4, 4]

    def test_consistent_region_kept(self, config):
        depth = np.full((10, 10), 2.0)
        mask = np.zeros((10, 10), dtype=bool)
        mask[3:7, 3:7] = True
        out = median_reject(depth, mask, config)
        np.testing.assert_array_equal(out, mask)

    def test_isolated_point_survives(self, config):
        depth = np.full((10, 10), 2.0)
        mask = np.zeros((10, 10), dtype=bool)
        mask[5, 5] = True
        out = median_reject(depth, mask, config)
        assert out[5, 5]

    def test_size_one_is_identity(self):
        config = DetectionConfig(median_size=1)
        mask = np.random.default_rng(0).random((5, 5)) > 0.5
        depth = np.ones((5, 5))
        np.testing.assert_array_equal(median_reject(depth, mask, config), mask)


class TestDetectStructure:
    def test_end_to_end_peak(self, small_camera, config):
        dsi = DSI(small_camera, SE3.identity(), depth_planes(1.0, 3.0, 5))
        # A blob of votes at plane 2 around (y=20, x=30).
        dsi.scores[2, 18:23, 28:33] = 20.0
        dm = detect_structure(dsi, config)
        assert dm.n_points > 0
        assert dm.mask[20, 30]
        assert dm.depth[20, 30] == pytest.approx(dsi.depths[2])
        assert np.isnan(dm.depth[0, 0])

    def test_empty_dsi_detects_nothing(self, small_camera, config):
        dsi = DSI(small_camera, SE3.identity(), depth_planes(1.0, 3.0, 5))
        dm = detect_structure(dsi, config)
        assert dm.n_points == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectionConfig(gaussian_sigma=0.0)
        with pytest.raises(ValueError):
            DetectionConfig(median_size=4)


class TestMedianRejectRegression:
    """The in-place-filled shift stack reproduces the old implementation."""

    @staticmethod
    def _median_reject_reference(depth, mask, config):
        """The pre-optimization algorithm: per-shift NaN copies + np.stack."""
        import warnings

        if config.median_size <= 1:
            return mask
        k = config.median_size // 2
        h, w = depth.shape
        sparse = np.where(mask, depth, np.nan)
        shifts = []
        for dy in range(-k, k + 1):
            for dx in range(-k, k + 1):
                shifted = np.full((h, w), np.nan)
                ys_src = slice(max(0, -dy), min(h, h - dy))
                xs_src = slice(max(0, -dx), min(w, w - dx))
                ys_dst = slice(max(0, dy), min(h, h + dy))
                xs_dst = slice(max(0, dx), min(w, w + dx))
                shifted[ys_dst, xs_dst] = sparse[ys_src, xs_src]
                shifts.append(shifted)
        stack = np.stack(shifts)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            local_median = np.nanmedian(stack, axis=0)
        good = np.abs(depth - local_median) <= 0.15 * np.abs(local_median)
        return mask & np.where(np.isfinite(local_median), good, True)

    @pytest.mark.parametrize("median_size", [3, 5, 7])
    def test_masked_fixture_equality(self, median_size):
        rng = np.random.default_rng(17)
        depth = rng.uniform(0.5, 5.0, (40, 52))
        # Sparse mask with clusters, isolated points and empty regions.
        mask = rng.random((40, 52)) < 0.3
        mask[:8, :] = False
        mask[20:24, 10:30] = True
        depth[22, 15] = 50.0  # a gross outlier the median must reject
        config = DetectionConfig(median_size=median_size)
        new = median_reject(depth, mask, config)
        old = self._median_reject_reference(depth, mask, config)
        np.testing.assert_array_equal(new, old)
        assert new.sum() < mask.sum()  # the outlier (at least) was rejected

    def test_size_one_passthrough(self):
        depth = np.ones((5, 5))
        mask = np.eye(5, dtype=bool)
        config = DetectionConfig(median_size=1)
        assert median_reject(depth, mask, config) is mask
