"""Unit tests for procedural textures."""

import numpy as np
import pytest

from repro.events import texture as tex


GRID = np.meshgrid(np.linspace(-1, 1, 64), np.linspace(-1, 1, 64))


class TestRangesAndDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: tex.constant(0.5),
            lambda: tex.checkerboard(0.1),
            lambda: tex.stripes(0.08),
            lambda: tex.line_grid(0.12),
            lambda: tex.smooth_noise(seed=1),
            lambda: tex.quantized_noise(seed=1),
        ],
    )
    def test_output_in_unit_range(self, factory):
        u, v = GRID
        values = factory()(u, v)
        assert values.shape == u.shape
        assert np.all(values >= 0.0) and np.all(values <= 1.0)

    def test_noise_deterministic_per_seed(self):
        u, v = GRID
        a = tex.smooth_noise(seed=7)(u, v)
        b = tex.smooth_noise(seed=7)(u, v)
        c = tex.smooth_noise(seed=8)(u, v)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)


class TestStructure:
    def test_checkerboard_alternates(self):
        t = tex.checkerboard(period=1.0, low=0.0, high=1.0)
        assert t(np.array(0.5), np.array(0.5)) == pytest.approx(1.0)
        assert t(np.array(1.5), np.array(0.5)) == pytest.approx(0.0)
        assert t(np.array(1.5), np.array(1.5)) == pytest.approx(1.0)

    def test_stripes_axis(self):
        t0 = tex.stripes(period=1.0, axis=0, low=0.0, high=1.0)
        # Varies along u only.
        assert t0(np.array(0.5), np.array(0.0)) != t0(np.array(1.5), np.array(0.0))
        assert t0(np.array(0.5), np.array(0.0)) == t0(np.array(0.5), np.array(9.9))

    def test_line_grid_dark_on_lines(self):
        t = tex.line_grid(period=1.0, line_width=0.1, low=0.0, high=1.0)
        assert t(np.array(0.05), np.array(0.5)) == pytest.approx(0.0)
        assert t(np.array(0.5), np.array(0.5)) == pytest.approx(1.0)

    def test_quantized_noise_has_flat_regions(self):
        u, v = GRID
        values = tex.quantized_noise(seed=3, levels=4)(u, v)
        # Posterization: few distinct levels across a dense sampling.
        assert len(np.unique(np.round(values, 6))) <= 6

    def test_checkerboard_rejects_bad_period(self):
        with pytest.raises(ValueError):
            tex.checkerboard(period=0.0)

    def test_constant_produces_no_gradient(self):
        u, v = GRID
        values = tex.constant(0.3)(u, v)
        assert np.ptp(values) == 0.0
