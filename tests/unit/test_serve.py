"""Unit tests for the serving layer: cache, sessions, scheduler, service.

Integration-level determinism (service ≡ orchestrator) lives in
``tests/integration/test_serve_service.py``; here the pieces are tested
in isolation with synthetic jobs.
"""

import numpy as np
import pytest

from repro.core import EMVSConfig, EngineSpec
from repro.core.engine import SegmentPlan
from repro.serve import (
    OVERFLOW_POLICIES,
    JobState,
    ReconstructionService,
    ResultCache,
    RoundRobinScheduler,
    Session,
    job_key,
)
from repro.serve.session import Job, new_job_id


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(-1)

    def test_zero_capacity_disables(self):
        cache = ResultCache(0)
        assert not cache.enabled
        cache.put("k", "v")
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_hit_miss_counters(self):
        cache = ResultCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None  # evicted
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2


class TestJobKey:
    @pytest.fixture
    def spec(self, davis_camera, simple_trajectory):
        return EngineSpec(
            davis_camera,
            simple_trajectory,
            EMVSConfig(n_depth_planes=32),
            depth_range=(0.5, 2.0),
            backend="numpy-batch",
        )

    def test_deterministic(self, spec, make_stream):
        events = make_stream(500)
        assert job_key(spec, events, 0.01) == job_key(spec, events, 0.01)

    def test_sensitive_to_every_component(self, spec, make_stream):
        import dataclasses

        events = make_stream(500)
        base = job_key(spec, events, 0.01)
        assert job_key(spec, make_stream(501), 0.01) != base
        assert job_key(spec, events, 0.02) != base
        assert job_key(spec, events, 0.01, min_observations=2) != base
        other = dataclasses.replace(spec, backend="numpy-reference")
        assert job_key(other, events, 0.01) != base
        other = dataclasses.replace(spec, config=EMVSConfig(n_depth_planes=48))
        assert job_key(other, events, 0.01) != base
        other = dataclasses.replace(spec, policy="original")
        assert job_key(other, events, 0.01) != base

    def test_event_content_not_identity(self, spec, make_stream):
        """Two separately built but identical streams key identically."""
        assert job_key(spec, make_stream(500), 0.01) == job_key(
            spec, make_stream(500), 0.01
        )


# ----------------------------------------------------------------------
# Sessions and scheduling
# ----------------------------------------------------------------------
def make_job(session: str, n_segments: int, spec, events) -> Job:
    plans = tuple(
        SegmentPlan(
            index=i,
            start_frame=i,
            end_frame=i + 1,
            frame_size=100,
            t_ref=float(i),
        )
        for i in range(n_segments)
    )
    return Job(
        job_id=new_job_id(session),
        session=session,
        spec=spec,
        events=events,
        plans=plans,
        dropped_tail=0,
        voxel_size=0.01,
        min_observations=1,
        cache_key=None,
    )


@pytest.fixture
def spec(davis_camera, simple_trajectory):
    return EngineSpec(davis_camera, simple_trajectory, EMVSConfig())


@pytest.fixture
def events(make_stream):
    return make_stream(400)


class TestSession:
    def test_rejects_bad_queue_limit(self):
        with pytest.raises(ValueError, match="queue_limit"):
            Session("s", 0)

    def test_fifo_dispatch_within_session(self, spec, events):
        session = Session("s", 8)
        first = make_job("s", 2, spec, events)
        second = make_job("s", 2, spec, events)
        session.add(first)
        session.add(second)
        assert session.next_dispatch() is first
        first.next_segment = first.n_segments  # fully dispatched
        assert session.next_dispatch() is second

    def test_backlog_counts_active_jobs_only(self, spec, events):
        session = Session("s", 2)
        done = make_job("s", 1, spec, events)
        done.finish(JobState.DONE)
        session.add(done)
        session.add(make_job("s", 1, spec, events))
        assert not session.backlogged
        session.add(make_job("s", 1, spec, events))
        assert session.backlogged

    def test_drop_victim_is_oldest_undispatched(self, spec, events):
        session = Session("s", 8)
        running = make_job("s", 2, spec, events)
        running.next_segment = 1  # already on the pool: not droppable
        queued = make_job("s", 2, spec, events)
        session.add(running)
        session.add(queued)
        assert session.oldest_queued() is queued

    def test_leaders_with_followers_are_never_drop_victims(self, spec, events):
        session = Session("s", 8)
        leader = make_job("s", 2, spec, events)
        leader.followers.append(make_job("s", 2, spec, events))
        lone = make_job("s", 2, spec, events)
        session.add(leader)
        session.add(lone)
        # Dropping the leader would fail its followers to admit one job.
        assert session.oldest_queued() is lone
        session.jobs.remove(lone)
        assert session.oldest_queued() is None

    def test_coalesced_followers_do_not_count_toward_backlog(self, spec, events):
        session = Session("s", 1)
        leader = make_job("s", 2, spec, events)
        session.add(leader)
        assert session.backlogged
        follower = make_job("s", 2, spec, events)
        follower.coalesced_with = leader.job_id
        session.jobs.remove(leader)
        session.add(follower)
        # A queue of duplicates consumes no pool slots: not a backlog.
        assert not session.backlogged

    def test_terminal_jobs_release_their_events(self, spec, events):
        job = make_job("s", 2, spec, events)
        assert job.events is not None
        job.finish(JobState.DONE)
        assert job.events is None


class TestRoundRobinScheduler:
    def test_rejects_bad_queue_limit(self):
        with pytest.raises(ValueError, match="queue_limit"):
            RoundRobinScheduler(0)

    def test_round_robin_across_sessions(self, spec, events):
        scheduler = RoundRobinScheduler()
        a = make_job("alpha", 2, spec, events)
        b = make_job("beta", 2, spec, events)
        scheduler.admit(a)
        scheduler.admit(b)
        order = []
        while (decision := scheduler.next_dispatch()) is not None:
            order.append(decision.job.session)
        assert order == ["alpha", "beta", "alpha", "beta"]
        assert [entry[0] for entry in scheduler.dispatch_log] == order

    def test_idle_sessions_are_skipped(self, spec, events):
        scheduler = RoundRobinScheduler()
        scheduler.session("idle")  # registered but never submits
        job = make_job("busy", 3, spec, events)
        scheduler.admit(job)
        sessions = set()
        while (decision := scheduler.next_dispatch()) is not None:
            sessions.add(decision.job.session)
        assert sessions == {"busy"}

    def test_idle_sessions_keep_rotation_priority(self, spec, events):
        """A session that was idle re-enters at its old position, ahead
        of sessions that dispatched while it had nothing to do."""
        scheduler = RoundRobinScheduler()
        scheduler.session("early")  # registered first, idle for a while
        busy = make_job("busy", 2, spec, events)
        scheduler.admit(busy)
        assert scheduler.next_dispatch().job.session == "busy"
        # Now "early" submits: it is still ahead of "busy" in rotation.
        scheduler.admit(make_job("early", 1, spec, events))
        assert scheduler.next_dispatch().job.session == "early"

    def test_dispatch_marks_running_and_slices_segments(self, spec, events):
        scheduler = RoundRobinScheduler()
        job = make_job("s", 4, spec, events)
        scheduler.admit(job)
        decision = scheduler.next_dispatch()
        assert job.state is JobState.RUNNING
        assert decision.task.index == 0
        assert len(decision.task.events) == 100  # plan 0 = frames [0, 1)
        assert decision.task.spec is spec

    def test_cancel_stops_dispatch(self, spec, events):
        scheduler = RoundRobinScheduler()
        job = make_job("s", 4, spec, events)
        scheduler.admit(job)
        scheduler.next_dispatch()
        scheduler.cancel_job(job)
        assert scheduler.next_dispatch() is None


# ----------------------------------------------------------------------
# Service construction and validation
# ----------------------------------------------------------------------
class TestServiceValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ReconstructionService(workers=0)

    def test_rejects_bad_executor(self):
        with pytest.raises(ValueError, match="executor"):
            ReconstructionService(executor="greenlets")

    def test_rejects_bad_overflow(self):
        with pytest.raises(ValueError, match="overflow"):
            ReconstructionService(overflow="shed-random")
        assert OVERFLOW_POLICIES == ("refuse", "drop-oldest")

    def test_rejects_bad_cache_size(self):
        with pytest.raises(ValueError, match="capacity"):
            ReconstructionService(cache_size=-1)

    def test_submit_requires_spec(self, events):
        with ReconstructionService(workers=1) as service:
            with pytest.raises(TypeError, match="EngineSpec"):
                service.submit(events, object())

    def test_submit_validates_fuse_params(self, spec, events):
        with ReconstructionService(workers=1) as service:
            with pytest.raises(ValueError, match="voxel_size"):
                service.submit(events, spec, voxel_size=0.0)
            with pytest.raises(ValueError, match="min_observations"):
                service.submit(events, spec, min_observations=0)

    def test_unknown_job_id(self):
        with ReconstructionService(workers=1) as service:
            with pytest.raises(KeyError, match="unknown job"):
                service.poll("job-999@nowhere")

    def test_closed_service_refuses_submissions(self, spec, events):
        service = ReconstructionService(workers=1)
        service.close()
        with pytest.raises(Exception, match="closed"):
            service.submit(events, spec)

    def test_executor_defaults(self):
        assert ReconstructionService(workers=1).executor == "inline"
        assert ReconstructionService(workers=2).executor == "process"

    def test_rejects_bad_retain_jobs(self):
        with pytest.raises(ValueError, match="retain_jobs"):
            ReconstructionService(retain_jobs=0)

    def test_terminal_records_are_bounded(self, spec, make_stream):
        """Old finished jobs are evicted; the service does not grow forever."""
        with ReconstructionService(workers=1, retain_jobs=2) as service:
            ids = [service.submit(make_stream(10), spec) for _ in range(5)]
            # Each sub-frame job finishes instantly; pruning happens at
            # the next submission, keeping at most retain_jobs terminal
            # records plus the fresh one.
            assert len(service.jobs) <= 3
            assert ids[0] not in service.jobs
            with pytest.raises(KeyError, match="unknown job"):
                service.poll(ids[0])
            # Counters survive eviction (submitted stays monotonic).
            assert service.stats().jobs_done == 5
            assert service.stats().jobs_submitted == 5

    def test_closed_service_does_not_resurrect_the_pool(self, spec, make_stream):
        from repro.serve import ServeError

        service = ReconstructionService(workers=1)
        job_id = service.submit(make_stream(10), spec)  # completes inline
        service.close()
        # Status of finished jobs stays readable after close...
        assert service.poll(job_id).state is JobState.DONE
        # ...but nothing can recreate the pool.
        with pytest.raises(ServeError, match="closed"):
            _ = service.pool

    def test_empty_stream_job_finishes_immediately(self, spec, make_stream):
        """A stream too short for one frame completes with an empty map."""
        with ReconstructionService(workers=1) as service:
            job_id = service.submit(make_stream(10), spec)
            status = service.poll(job_id)
            assert status.state is JobState.DONE
            result = service.result(job_id)
            assert result.n_points == 0
            # The sub-frame tail is accounted, not silently discarded.
            assert result.profile.dropped_events == 10


class TestEngineSpec:
    def test_resolves_policy_names(self, davis_camera, simple_trajectory):
        from repro.core import REFORMULATED_POLICY

        spec = EngineSpec(
            davis_camera, simple_trajectory, EMVSConfig(), policy="reformulated"
        )
        assert spec.policy is REFORMULATED_POLICY

    def test_rejects_backend_instances(self, davis_camera, simple_trajectory):
        with pytest.raises(TypeError, match="registry name"):
            EngineSpec(
                davis_camera, simple_trajectory, EMVSConfig(), backend=object()
            )

    def test_none_config_defaults(self, davis_camera, simple_trajectory):
        spec = EngineSpec(davis_camera, simple_trajectory, None)
        assert spec.config == EMVSConfig()

    def test_build_constructs_matching_engine(
        self, davis_camera, simple_trajectory
    ):
        spec = EngineSpec(
            davis_camera,
            simple_trajectory,
            EMVSConfig(n_depth_planes=24),
            depth_range=(0.5, 2.0),
            backend="numpy-fast",
        )
        engine = spec.build()
        assert engine.camera is davis_camera
        assert engine.config.n_depth_planes == 24
        assert engine.backend.name == "numpy-fast"

    def test_specs_compare_equal_by_value(self, davis_camera, simple_trajectory):
        a = EngineSpec(davis_camera, simple_trajectory, EMVSConfig())
        b = EngineSpec(davis_camera, simple_trajectory, EMVSConfig())
        assert a == b


class TestContentDigest:
    def test_equal_content_equal_digest(self, make_stream):
        assert make_stream(100).content_digest() == make_stream(100).content_digest()

    def test_different_content_different_digest(self, make_stream):
        assert make_stream(100).content_digest() != make_stream(101).content_digest()

    def test_slices_digest_by_value(self, make_stream):
        events = make_stream(200)
        assert events[:100].content_digest() == make_stream(100).content_digest()

    def test_empty_digest_is_stable(self):
        from repro.events.containers import EventArray

        assert EventArray.empty().content_digest() == EventArray.empty().content_digest()
        assert np.unique([EventArray.empty().content_digest()]).size == 1
