"""Unit tests for Event Camera Dataset file IO (round trips)."""

import os

import numpy as np
import pytest

from repro.events.containers import EventArray
from repro.events.davis_io import (
    load_calib_txt,
    load_dataset_dir,
    load_events_txt,
    load_groundtruth_txt,
    save_calib_txt,
    save_dataset_dir,
    save_events_txt,
    save_groundtruth_txt,
)
from repro.geometry.camera import PinholeCamera
from repro.geometry.distortion import NoDistortion, RadialTangentialDistortion
from repro.geometry.se3 import SE3, Quaternion
from repro.geometry.trajectory import Trajectory


@pytest.fixture
def events():
    return EventArray.from_arrays(
        [0.001, 0.002, 0.0035],
        [12.0, 100.0, 239.0],
        [5.0, 90.0, 179.0],
        [1, -1, 1],
    )


@pytest.fixture
def trajectory():
    poses = [
        SE3.from_quaternion_translation(
            Quaternion.from_axis_angle([0, 0, 1], 0.02 * i), [0.1 * i, 0.0, 0.0]
        )
        for i in range(5)
    ]
    return Trajectory(np.linspace(0, 1, 5), poses)


class TestEventsIO:
    def test_round_trip(self, tmp_path, events):
        path = os.path.join(tmp_path, "events.txt")
        save_events_txt(path, events)
        loaded = load_events_txt(path)
        np.testing.assert_allclose(loaded.t, events.t, atol=1e-9)
        np.testing.assert_allclose(loaded.x, events.x, atol=1e-3)
        np.testing.assert_array_equal(loaded.p, events.p)

    def test_polarity_encoded_as_01(self, tmp_path, events):
        path = os.path.join(tmp_path, "events.txt")
        save_events_txt(path, events)
        raw = np.loadtxt(path)
        assert set(raw[:, 3].astype(int)) <= {0, 1}

    def test_load_rejects_wrong_columns(self, tmp_path):
        path = os.path.join(tmp_path, "bad.txt")
        with open(path, "w") as f:
            f.write("0.0 1.0 2.0\n")
        with pytest.raises(ValueError):
            load_events_txt(path)

    def test_load_sorts_unsorted_files(self, tmp_path):
        path = os.path.join(tmp_path, "events.txt")
        with open(path, "w") as f:
            f.write("0.2 1 1 1\n0.1 2 2 0\n")
        loaded = load_events_txt(path)
        assert loaded.t[0] == pytest.approx(0.1)


class TestGroundtruthIO:
    def test_round_trip(self, tmp_path, trajectory):
        path = os.path.join(tmp_path, "groundtruth.txt")
        save_groundtruth_txt(path, trajectory)
        loaded = load_groundtruth_txt(path)
        assert len(loaded) == len(trajectory)
        for (ta, pa), (tb, pb) in zip(trajectory, loaded):
            assert ta == pytest.approx(tb, abs=1e-9)
            np.testing.assert_allclose(pa.translation, pb.translation, atol=1e-8)
            np.testing.assert_allclose(pa.rotation, pb.rotation, atol=1e-7)

    def test_wrong_columns_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "gt.txt")
        with open(path, "w") as f:
            f.write("0.0 1.0 2.0 3.0\n")
        with pytest.raises(ValueError):
            load_groundtruth_txt(path)


class TestCalibIO:
    def test_round_trip_with_distortion(self, tmp_path):
        cam = PinholeCamera.davis240c(distorted=True)
        path = os.path.join(tmp_path, "calib.txt")
        save_calib_txt(path, cam)
        loaded = load_calib_txt(path)
        assert loaded.fx == pytest.approx(cam.fx, abs=1e-5)
        assert isinstance(loaded.distortion, RadialTangentialDistortion)
        assert loaded.distortion.k1 == pytest.approx(cam.distortion.k1, abs=1e-8)

    def test_round_trip_without_distortion(self, tmp_path):
        cam = PinholeCamera.davis240c(distorted=False)
        path = os.path.join(tmp_path, "calib.txt")
        save_calib_txt(path, cam)
        loaded = load_calib_txt(path)
        assert isinstance(loaded.distortion, NoDistortion)

    def test_too_few_values_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "calib.txt")
        with open(path, "w") as f:
            f.write("100.0 100.0\n")
        with pytest.raises(ValueError):
            load_calib_txt(path)


class TestDatasetDir:
    def test_full_round_trip(self, tmp_path, events, trajectory):
        cam = PinholeCamera.davis240c()
        root = os.path.join(tmp_path, "seq")
        save_dataset_dir(root, events, trajectory, cam)
        ev2, traj2, cam2 = load_dataset_dir(root)
        assert len(ev2) == len(events)
        assert len(traj2) == len(trajectory)
        assert cam2.fx == pytest.approx(cam.fx, abs=1e-5)
        assert sorted(os.listdir(root)) == ["calib.txt", "events.txt", "groundtruth.txt"]
