"""Unit tests for rotations and rigid transforms."""

import math

import numpy as np
import pytest

from repro.geometry.se3 import SE3, SO3, Quaternion


class TestQuaternion:
    def test_identity_rotates_nothing(self):
        q = Quaternion.identity()
        p = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(q.rotate(p), p)

    def test_normalizes_on_construction(self):
        q = Quaternion(2.0, 0.0, 0.0, 0.0)
        assert q.w == pytest.approx(1.0)

    def test_zero_quaternion_rejected(self):
        with pytest.raises(ValueError):
            Quaternion(0.0, 0.0, 0.0, 0.0)

    def test_axis_angle_90deg_about_z(self):
        q = Quaternion.from_axis_angle([0, 0, 1], math.pi / 2)
        rotated = q.rotate(np.array([1.0, 0.0, 0.0]))
        np.testing.assert_allclose(rotated, [0.0, 1.0, 0.0], atol=1e-12)

    def test_matrix_round_trip(self):
        q = Quaternion.from_axis_angle([1, 2, 3], 0.7)
        q2 = Quaternion.from_matrix(q.to_matrix())
        # q and -q are the same rotation; compare via the dot product.
        assert abs(np.dot(q.as_array(), q2.as_array())) == pytest.approx(1.0)

    def test_from_matrix_near_pi_rotation(self):
        q = Quaternion.from_axis_angle([0, 1, 0], math.pi - 1e-9)
        m = q.to_matrix()
        q2 = Quaternion.from_matrix(m)
        np.testing.assert_allclose(q2.to_matrix(), m, atol=1e-6)

    def test_multiplication_composes_rotations(self):
        qa = Quaternion.from_axis_angle([0, 0, 1], 0.3)
        qb = Quaternion.from_axis_angle([0, 1, 0], 0.4)
        p = np.array([0.5, -0.2, 0.9])
        np.testing.assert_allclose(
            (qa * qb).rotate(p), qa.rotate(qb.rotate(p)), atol=1e-12
        )

    def test_conjugate_inverts(self):
        q = Quaternion.from_axis_angle([1, 1, 0], 0.9)
        p = np.array([0.1, 0.2, 0.3])
        np.testing.assert_allclose(q.conjugate().rotate(q.rotate(p)), p, atol=1e-12)

    def test_slerp_endpoints(self):
        qa = Quaternion.from_axis_angle([0, 0, 1], 0.2)
        qb = Quaternion.from_axis_angle([0, 0, 1], 1.2)
        assert qa.slerp(qb, 0.0).angle_to(qa) == pytest.approx(0.0, abs=1e-9)
        assert qa.slerp(qb, 1.0).angle_to(qb) == pytest.approx(0.0, abs=1e-9)

    def test_slerp_halfway_angle(self):
        qa = Quaternion.identity()
        qb = Quaternion.from_axis_angle([0, 0, 1], 1.0)
        mid = qa.slerp(qb, 0.5)
        assert mid.angle_to(qa) == pytest.approx(0.5, abs=1e-9)

    def test_slerp_takes_short_arc(self):
        qa = Quaternion.from_axis_angle([0, 0, 1], 0.1)
        qb_long = Quaternion(*(-qb_arr for qb_arr in
                               Quaternion.from_axis_angle([0, 0, 1], 0.3).as_array()))
        mid = qa.slerp(qb_long, 0.5)
        assert mid.angle_to(qa) < 0.2

    def test_angle_to_self_is_zero(self):
        q = Quaternion.from_axis_angle([1, 0, 0], 0.4)
        assert q.angle_to(q) == pytest.approx(0.0, abs=1e-7)


class TestSO3:
    def test_exp_log_round_trip(self):
        omega = np.array([0.1, -0.4, 0.25])
        np.testing.assert_allclose(SO3.exp(omega).log(), omega, atol=1e-10)

    def test_exp_zero_is_identity(self):
        np.testing.assert_allclose(SO3.exp(np.zeros(3)).matrix, np.eye(3))

    def test_log_near_pi(self):
        omega = np.array([0.0, math.pi - 1e-8, 0.0])
        r = SO3.exp(omega)
        recovered = r.log()
        np.testing.assert_allclose(np.abs(recovered), np.abs(omega), atol=1e-5)

    def test_hat_antisymmetry(self):
        v = np.array([1.0, 2.0, 3.0])
        h = SO3.hat(v)
        np.testing.assert_allclose(h.T, -h)

    def test_hat_cross_product(self):
        v = np.array([1.0, 2.0, 3.0])
        w = np.array([-0.5, 0.1, 0.7])
        np.testing.assert_allclose(SO3.hat(v) @ w, np.cross(v, w))

    def test_inverse_is_transpose(self):
        r = SO3.exp([0.3, 0.1, -0.2])
        np.testing.assert_allclose((r @ r.inverse()).matrix, np.eye(3), atol=1e-12)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            SO3(np.eye(4))


class TestSE3:
    def test_identity_transform(self):
        p = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(SE3.identity().transform(p), p)

    def test_compose_and_inverse(self, random_pose):
        t = random_pose @ random_pose.inverse()
        np.testing.assert_allclose(t.rotation, np.eye(3), atol=1e-12)
        np.testing.assert_allclose(t.translation, np.zeros(3), atol=1e-12)

    def test_transform_matches_matrix(self, random_pose):
        p = np.array([0.3, -0.7, 1.1])
        hom = random_pose.matrix() @ np.append(p, 1.0)
        np.testing.assert_allclose(random_pose.transform(p), hom[:3], atol=1e-12)

    def test_exp_log_round_trip(self):
        xi = np.array([0.1, 0.2, -0.3, 0.05, -0.1, 0.2])
        np.testing.assert_allclose(SE3.exp(xi).log(), xi, atol=1e-9)

    def test_exp_pure_translation(self):
        xi = np.array([1.0, 2.0, 3.0, 0.0, 0.0, 0.0])
        t = SE3.exp(xi)
        np.testing.assert_allclose(t.rotation, np.eye(3))
        np.testing.assert_allclose(t.translation, [1.0, 2.0, 3.0])

    def test_from_matrix_round_trip(self, random_pose):
        t = SE3.from_matrix(random_pose.matrix())
        np.testing.assert_allclose(t.matrix(), random_pose.matrix())

    def test_distance_to(self):
        a = SE3(translation=[0.0, 0.0, 0.0])
        b = SE3(translation=[3.0, 4.0, 0.0])
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_interpolate_endpoints_and_midpoint(self):
        a = SE3(translation=[0.0, 0.0, 0.0])
        b = SE3(
            Quaternion.from_axis_angle([0, 0, 1], 1.0).to_matrix(),
            [2.0, 0.0, 0.0],
        )
        np.testing.assert_allclose(a.interpolate(b, 0.0).translation, a.translation)
        np.testing.assert_allclose(a.interpolate(b, 1.0).translation, b.translation)
        mid = a.interpolate(b, 0.5)
        np.testing.assert_allclose(mid.translation, [1.0, 0.0, 0.0])
        assert mid.quaternion().angle_to(a.quaternion()) == pytest.approx(0.5, abs=1e-9)

    def test_compose_rejects_points(self):
        with pytest.raises(TypeError):
            SE3.identity() @ np.zeros(3)

    def test_rotation_shape_validated(self):
        with pytest.raises(ValueError):
            SE3(rotation=np.eye(2))


class TestStackPoses:
    def test_stacks_rotations_and_translations(self):
        from repro.geometry.se3 import stack_poses

        poses = [
            SE3(translation=[1.0, 2.0, 3.0]),
            SE3(Quaternion.from_axis_angle([0, 0, 1], 0.3), [0.5, 0.0, -1.0]),
        ]
        rotations, translations = stack_poses(poses)
        assert rotations.shape == (2, 3, 3)
        assert translations.shape == (2, 3)
        for k, pose in enumerate(poses):
            np.testing.assert_array_equal(rotations[k], pose.rotation)
            np.testing.assert_array_equal(translations[k], pose.translation)

    def test_empty(self):
        from repro.geometry.se3 import stack_poses

        rotations, translations = stack_poses([])
        assert rotations.shape == (0, 3, 3)
        assert translations.shape == (0, 3)
