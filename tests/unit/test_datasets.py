"""Unit tests for the evaluation-sequence replicas."""

import numpy as np
import pytest

from repro.events.datasets import (
    ALL_SEQUENCE_NAMES,
    SCENARIO_NAMES,
    SEQUENCE_NAMES,
    SHORT_NAMES,
    load_sequence,
)


class TestRegistry:
    def test_four_paper_sequences(self):
        assert SEQUENCE_NAMES == (
            "simulation_3planes",
            "simulation_3walls",
            "slider_close",
            "slider_far",
        )

    def test_scenario_sequences_extend_not_replace(self):
        assert SCENARIO_NAMES == ("slider_long", "corridor_sweep")
        assert ALL_SEQUENCE_NAMES == SEQUENCE_NAMES + SCENARIO_NAMES
        for name in ALL_SEQUENCE_NAMES:
            assert name in SHORT_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_sequence("nope")

    def test_unknown_quality_rejected(self):
        with pytest.raises(ValueError):
            load_sequence("simulation_3planes", quality="ultra")

    def test_short_names(self):
        assert SHORT_NAMES["slider_close"] == "close"


class TestSequenceContents:
    def test_3planes_fast(self, seq_3planes_fast):
        seq = seq_3planes_fast
        assert seq.camera.resolution == (240, 180)
        assert len(seq.events) > 50_000
        assert seq.events.t_start >= seq.trajectory.t_start - 1e-9
        assert seq.events.t_end <= seq.trajectory.t_end + 1e-9

    def test_depth_range_brackets_scene(self, seq_3planes_fast):
        seq = seq_3planes_fast
        mid_pose = seq.trajectory.sample(
            0.5 * (seq.trajectory.t_start + seq.trajectory.t_end)
        )
        lo, hi = seq.scene.depth_extent(seq.camera, mid_pose)
        assert seq.depth_range[0] <= lo
        assert seq.depth_range[1] >= hi

    def test_gt_depth_at_center(self, seq_3planes_fast):
        seq = seq_3planes_fast
        pose = seq.trajectory.sample(1.0)
        d = seq.gt_depth_at(pose, np.array([[120.0, 90.0]]))
        assert np.isfinite(d[0])
        assert seq.depth_range[0] < d[0] < seq.depth_range[1]

    def test_caching_returns_same_object(self):
        a = load_sequence("simulation_3planes", quality="fast")
        b = load_sequence("simulation_3planes", quality="fast")
        assert a is b

    def test_slider_has_sensor_noise(self, seq_slider_close_fast):
        # The slider replicas model threshold mismatch + background noise;
        # a tiny fraction of events lands on texture-free background pixels.
        seq = seq_slider_close_fast
        assert len(seq.events) > 50_000

    def test_event_coordinates_integral(self, seq_3planes_fast):
        # Raw sensor events have integer pixel coordinates.
        x = seq_3planes_fast.events.x
        np.testing.assert_array_equal(x, np.round(x))

    def test_paper_sequences_have_no_keyframe_recommendation(
        self, seq_3planes_fast
    ):
        assert seq_3planes_fast.keyframe_distance is None


class TestScenarioSequences:
    """The long multi-keyframe workloads behind parallel mapping."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_multi_keyframe_structure(self, name):
        from repro.core import EMVSConfig, plan_segments

        seq = load_sequence(name, quality="fast")
        assert seq.keyframe_distance is not None
        assert len(seq.events) > 200_000
        config = EMVSConfig(
            n_depth_planes=32, keyframe_distance=seq.keyframe_distance
        )
        plans, _ = plan_segments(seq.events, seq.trajectory, config)
        assert len(plans) >= 4  # genuinely multi-keyframe

    def test_slider_long_sweeps_wide_baseline(self):
        seq = load_sequence("slider_long", quality="fast")
        assert seq.trajectory.path_length() == pytest.approx(0.9, rel=1e-6)

    def test_corridor_sweep_moves_forward(self):
        seq = load_sequence("corridor_sweep", quality="fast")
        start = seq.trajectory.sample(seq.trajectory.t_start).translation
        end = seq.trajectory.sample(seq.trajectory.t_end).translation
        assert end[2] - start[2] == pytest.approx(2.4, rel=1e-6)

    def test_corridor_depth_range_brackets_scene(self):
        seq = load_sequence("corridor_sweep", quality="fast")
        pose = seq.trajectory.sample(seq.trajectory.t_start)
        lo, hi = seq.scene.depth_extent(seq.camera, pose)
        assert seq.depth_range[0] <= lo
        assert seq.depth_range[1] >= hi
