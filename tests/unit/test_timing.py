"""Unit tests for the per-frame timing model (Table 3 calibration)."""

import pytest

from repro.hardware.config import EventorConfig
from repro.hardware.timing import TimingModel


@pytest.fixture
def model():
    return TimingModel(EventorConfig())


class TestTable3Calibration:
    def test_canonical_task_runtime(self, model):
        assert model.task_seconds()["P_Z0"] * 1e6 == pytest.approx(8.24, abs=0.01)

    def test_proportional_task_runtime(self, model):
        assert model.task_seconds()["P_Zi_R"] * 1e6 == pytest.approx(551.58, abs=0.1)

    def test_normal_frame_runtime(self, model):
        assert model.frame_seconds(False) * 1e6 == pytest.approx(551.58, abs=0.1)

    def test_key_frame_runtime(self, model):
        assert model.frame_seconds(True) * 1e6 == pytest.approx(559.82, abs=0.1)

    def test_event_rates(self, model):
        assert model.event_rate(False) / 1e6 == pytest.approx(1.86, abs=0.01)
        assert model.event_rate(True) / 1e6 == pytest.approx(1.83, abs=0.01)


class TestScalingBehaviour:
    def test_more_pe_zi_faster_generation(self):
        two = TimingModel(EventorConfig(n_pe_zi=2))
        four = TimingModel(EventorConfig(n_pe_zi=4, n_vote_ports=4))
        assert four.frame_seconds() < two.frame_seconds()

    def test_generation_bound_when_ports_abundant(self):
        # 4 ports, 2 PEs: generation (64 cyc/event) dominates voting (~35).
        model = TimingModel(EventorConfig(n_pe_zi=2, n_vote_ports=4))
        per_event = model.proportional_cycles(1024) / 1024
        assert per_event == pytest.approx(64.0, abs=0.1)

    def test_vote_bound_at_default(self, model):
        assert model.voting_cycles_per_event() > model.generation_cycles_per_event()

    def test_fewer_votes_faster(self, model):
        # Projection misses reduce vote traffic; generation becomes the floor.
        sparse = model.proportional_cycles(1024, votes_per_event=32.0)
        dense = model.proportional_cycles(1024, votes_per_event=128.0)
        assert sparse < dense
        assert sparse / 1024 >= model.generation_cycles_per_event()

    def test_dma_hidden_under_compute(self, model):
        t = model.frame_timing()
        assert t.dma_cycles < t.proportional_cycles / 10

    def test_exposed_cycles_keyframe_serializes(self, model):
        normal = model.frame_timing(is_keyframe=False)
        key = model.frame_timing(is_keyframe=True)
        assert key.exposed_cycles == pytest.approx(
            normal.canonical_cycles + normal.proportional_cycles
        )

    def test_zero_events(self, model):
        assert model.canonical_cycles(0) == 0.0
        assert model.proportional_cycles(0) == 0.0


class TestConfigValidation:
    def test_planes_must_divide(self):
        with pytest.raises(ValueError):
            EventorConfig(n_planes=100, n_pe_zi=3)

    def test_cycles_seconds_round_trip(self):
        cfg = EventorConfig()
        assert cfg.seconds_to_cycles(cfg.cycles_to_seconds(12345.0)) == pytest.approx(
            12345.0
        )
