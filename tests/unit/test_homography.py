"""Unit tests for plane homographies and proportional coefficients.

The key invariant (the basis of the whole Eventor dataflow): transferring
an event through the canonical plane and sliding it with the proportional
coefficients must agree with direct ray/plane intersection geometry.
"""

import numpy as np
import pytest

from repro.geometry.camera import PinholeCamera
from repro.geometry.homography import (
    apply_homography,
    apply_homography_with_scale,
    apply_proportional,
    canonical_plane_homography,
    event_camera_center_in_virtual,
    plane_homography,
    proportional_coefficients,
)
from repro.geometry.se3 import SE3, Quaternion


@pytest.fixture
def camera():
    return PinholeCamera.davis240c()


@pytest.fixture
def event_pose():
    """Event camera displaced and slightly rotated w.r.t. the world."""
    q = Quaternion.from_axis_angle([0.0, 1.0, 0.0], 0.05)
    return SE3.from_quaternion_translation(q, [0.08, -0.03, 0.02])


def direct_transfer(camera, T_w_virtual, T_w_event, pixels, depth):
    """Ground-truth transfer: back-project, intersect Z=depth, re-project."""
    rays_e = camera.back_project(pixels, undistort=False)
    T_ve = T_w_virtual.inverse() @ T_w_event
    origins = np.broadcast_to(T_ve.translation, rays_e.shape)
    dirs = rays_e @ T_ve.rotation.T
    t = (depth - origins[:, 2]) / dirs[:, 2]
    points_v = origins + t[:, None] * dirs
    return camera.project(points_v, apply_distortion=False)


class TestPlaneHomography:
    def test_identity_transform_identity_homography(self, camera):
        H = plane_homography(SE3.identity(), [0, 0, 1], 2.0, camera.K, camera.K)
        np.testing.assert_allclose(H, np.eye(3), atol=1e-12)

    def test_rejects_plane_through_center(self, camera):
        with pytest.raises(ValueError):
            plane_homography(SE3.identity(), [0, 0, 1], 0.0, camera.K, camera.K)

    def test_matches_direct_geometry(self, camera, event_pose):
        z0 = 1.5
        H = canonical_plane_homography(SE3.identity(), event_pose, camera, z0)
        pixels = np.array([[50.0, 40.0], [120.0, 90.0], [200.0, 150.0]])
        via_h = apply_homography(H, pixels)
        direct = direct_transfer(camera, SE3.identity(), event_pose, pixels, z0)
        np.testing.assert_allclose(via_h, direct, atol=1e-8)

    def test_rejects_nonpositive_z0(self, camera, event_pose):
        with pytest.raises(ValueError):
            canonical_plane_homography(SE3.identity(), event_pose, camera, 0.0)

    def test_scale_positive_for_forward_plane(self, camera, event_pose):
        H = canonical_plane_homography(SE3.identity(), event_pose, camera, 1.5)
        _, w = apply_homography_with_scale(H / np.abs(H).max(),
                                           np.array([[120.0, 90.0]]))
        assert w[0] > 0


class TestProportionalCoefficients:
    def test_alpha_is_one_at_z0(self, camera):
        c = np.array([0.1, -0.05, 0.02])
        phi = proportional_coefficients(c, 1.0, np.array([1.0, 2.0]), camera)
        assert phi[0, 0] == pytest.approx(1.0)
        assert phi[0, 1] == pytest.approx(0.0)
        assert phi[0, 2] == pytest.approx(0.0)

    def test_matches_direct_geometry_across_planes(self, camera, event_pose):
        """The affine-in-x0 identity against brute-force ray casting."""
        z0 = 0.8
        depths = np.array([0.8, 1.2, 1.9, 3.1, 5.0])
        T_w_virtual = SE3.identity()
        H = canonical_plane_homography(T_w_virtual, event_pose, camera, z0)
        c = event_camera_center_in_virtual(T_w_virtual, event_pose)
        phi = proportional_coefficients(c, z0, depths, camera)

        pixels = np.array([[30.0, 20.0], [120.0, 90.0], [210.0, 160.0]])
        uv0 = apply_homography(H, pixels)
        u, v = apply_proportional(phi, uv0)
        for i, z in enumerate(depths):
            direct = direct_transfer(camera, T_w_virtual, event_pose, pixels, z)
            np.testing.assert_allclose(u[:, i], direct[:, 0], atol=1e-6)
            np.testing.assert_allclose(v[:, i], direct[:, 1], atol=1e-6)

    def test_zero_baseline_keeps_points_fixed(self, camera):
        """With the event camera at the virtual centre, rays are identical:
        the image point must not move across depth planes."""
        c = np.zeros(3)
        depths = np.array([1.0, 2.0, 4.0])
        phi = proportional_coefficients(c, 1.0, depths, camera)
        uv0 = np.array([[100.0, 80.0], [10.0, 170.0]])
        u, v = apply_proportional(phi, uv0)
        for i in range(len(depths)):
            np.testing.assert_allclose(u[:, i], uv0[:, 0], atol=1e-9)
            np.testing.assert_allclose(v[:, i], uv0[:, 1], atol=1e-9)

    def test_degenerate_camera_on_plane_rejected(self, camera):
        c = np.array([0.0, 0.0, 1.0])  # centre exactly on the canonical plane
        with pytest.raises(ValueError):
            proportional_coefficients(c, 1.0, np.array([1.0, 2.0]), camera)

    def test_phi_shape(self, camera):
        phi = proportional_coefficients(
            np.array([0.1, 0.0, 0.0]), 1.0, np.linspace(1, 4, 32), camera
        )
        assert phi.shape == (32, 3)


class TestApplyHomography:
    def test_scale_sign_flips_behind_plane(self, camera):
        # A homography whose third row makes w negative for some pixels.
        H = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, -0.02, 1.0]])
        _, w = apply_homography_with_scale(H, np.array([[0.0, 100.0], [0.0, 10.0]]))
        assert w[0] < 0 < w[1]

    def test_identity(self):
        pixels = np.array([[3.0, 4.0]])
        np.testing.assert_allclose(apply_homography(np.eye(3), pixels), pixels)


class TestBatchedKernels:
    """Batched geometry == scalar geometry, bit for bit.

    The ``numpy-batch`` backend's bit-exactness guarantee rests on stacked
    matmul/inverse executing the same per-slice kernels as the 2-D forms;
    these tests pin that equality (exact, not approximate) on random poses.
    """

    @pytest.fixture
    def poses(self):
        rng = np.random.default_rng(7)
        poses = []
        for _ in range(23):
            q = Quaternion.from_axis_angle(
                rng.standard_normal(3), rng.uniform(0.0, 1.2)
            )
            poses.append(
                SE3.from_quaternion_translation(q, rng.uniform(-0.8, 0.8, 3))
            )
        return poses

    def test_canonical_plane_homography_batch_exact(self, camera, poses):
        from repro.geometry.homography import canonical_plane_homography_batch
        from repro.geometry.se3 import stack_poses

        T_w_virtual = poses[0]
        rotations, translations = stack_poses(poses)
        batched = canonical_plane_homography_batch(
            T_w_virtual, rotations, translations, camera, z0=1.5
        )
        for k, pose in enumerate(poses):
            scalar = canonical_plane_homography(T_w_virtual, pose, camera, 1.5)
            np.testing.assert_array_equal(batched[k], scalar)

    def test_apply_homography_with_scale_batch_exact(self, poses, camera):
        from repro.geometry.homography import apply_homography_with_scale_batch

        rng = np.random.default_rng(11)
        H = rng.standard_normal((5, 3, 3))
        pixels = rng.uniform(-20, 260, (5, 64, 2))
        uv_b, w_b = apply_homography_with_scale_batch(H, pixels)
        for k in range(5):
            uv, w = apply_homography_with_scale(H[k], pixels[k])
            np.testing.assert_array_equal(uv_b[k], uv)
            np.testing.assert_array_equal(w_b[k], w)

    def test_camera_centers_batch_exact(self, poses):
        from repro.geometry.homography import event_camera_centers_in_virtual
        from repro.geometry.se3 import stack_poses

        T_w_virtual = poses[0]
        _, translations = stack_poses(poses)
        batched = event_camera_centers_in_virtual(T_w_virtual, translations)
        for k, pose in enumerate(poses):
            scalar = event_camera_center_in_virtual(T_w_virtual, pose)
            np.testing.assert_array_equal(batched[k], scalar)

    def test_proportional_coefficients_batch_exact(self, camera):
        from repro.geometry.homography import proportional_coefficients_batch

        rng = np.random.default_rng(3)
        depths = 1.0 / np.linspace(1.0 / 0.5, 1.0 / 5.0, 40)
        centers = rng.uniform(-0.3, 0.3, (17, 3))
        batched = proportional_coefficients_batch(centers, 0.5, depths, camera)
        for k in range(len(centers)):
            scalar = proportional_coefficients(centers[k], 0.5, depths, camera)
            np.testing.assert_array_equal(batched[k], scalar)

    def test_proportional_coefficients_batch_degenerate_raises(self, camera):
        from repro.geometry.homography import proportional_coefficients_batch

        depths = np.array([0.5, 1.0, 2.0])
        centers = np.array([[0.1, 0.0, 0.2], [0.0, 0.0, 0.5]])  # second on plane
        with pytest.raises(ValueError, match="degenerate"):
            proportional_coefficients_batch(centers, 0.5, depths, camera)

    def test_apply_proportional_out_exact(self):
        rng = np.random.default_rng(5)
        phi = rng.standard_normal((30, 3))
        uv0 = rng.uniform(0, 240, (100, 2))
        u_ref, v_ref = apply_proportional(phi, uv0)
        scratch = (np.empty((100, 30)), np.empty((100, 30)))
        u_out, v_out = apply_proportional(phi, uv0, out=scratch)
        assert u_out is scratch[0] and v_out is scratch[1]
        np.testing.assert_array_equal(u_out, u_ref)
        np.testing.assert_array_equal(v_out, v_ref)
