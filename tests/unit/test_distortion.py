"""Unit tests for lens distortion models."""

import numpy as np
import pytest

from repro.geometry.distortion import NoDistortion, RadialTangentialDistortion


DAVIS_COEFFS = dict(k1=-0.368436, k2=0.150947, p1=-0.000296, p2=-0.000439)


class TestNoDistortion:
    def test_identity_both_ways(self, rng):
        model = NoDistortion()
        x = rng.uniform(-0.5, 0.5, 100)
        y = rng.uniform(-0.5, 0.5, 100)
        xd, yd = model.distort(x, y)
        np.testing.assert_array_equal(xd, x)
        xu, yu = model.undistort(x, y)
        np.testing.assert_array_equal(yu, y)


class TestRadialTangential:
    def test_center_is_fixed_point(self):
        model = RadialTangentialDistortion(**DAVIS_COEFFS)
        xd, yd = model.distort(np.array([0.0]), np.array([0.0]))
        assert xd[0] == pytest.approx(0.0)
        assert yd[0] == pytest.approx(0.0)

    def test_round_trip_accuracy(self, rng):
        model = RadialTangentialDistortion(**DAVIS_COEFFS)
        x = rng.uniform(-0.5, 0.5, 500)
        y = rng.uniform(-0.4, 0.4, 500)
        assert model.max_residual(x, y) < 1e-8

    def test_barrel_distortion_pulls_inward(self):
        # Negative k1 (barrel): distorted radius shrinks for off-axis points.
        model = RadialTangentialDistortion(k1=-0.3)
        xd, yd = model.distort(np.array([0.5]), np.array([0.0]))
        assert abs(xd[0]) < 0.5

    def test_pure_radial_preserves_angle(self):
        model = RadialTangentialDistortion(k1=-0.2, k2=0.05)
        x, y = np.array([0.3]), np.array([0.4])
        xd, yd = model.distort(x, y)
        assert np.arctan2(yd, xd)[0] == pytest.approx(np.arctan2(y, x)[0], abs=1e-12)

    def test_tangential_term_breaks_symmetry(self):
        model = RadialTangentialDistortion(p1=0.01)
        xd_pos, yd_pos = model.distort(np.array([0.3]), np.array([0.3]))
        xd_neg, yd_neg = model.distort(np.array([0.3]), np.array([-0.3]))
        assert yd_pos[0] != pytest.approx(-yd_neg[0])

    def test_undistort_inverts_distort_davis_range(self, rng):
        model = RadialTangentialDistortion(**DAVIS_COEFFS)
        # Normalized coordinates spanning the DAVIS sensor footprint.
        x = rng.uniform(-0.67, 0.55, 200)  # (0-132)/199 .. (240-132)/199
        y = rng.uniform(-0.56, 0.35, 200)
        xd, yd = model.distort(x, y)
        xu, yu = model.undistort(xd, yd)
        np.testing.assert_allclose(xu, x, atol=1e-7)
        np.testing.assert_allclose(yu, y, atol=1e-7)
