"""Unit tests for on-chip buffers and double-buffering protocol."""

import numpy as np
import pytest

from repro.hardware.buffers import (
    BufferError,
    DoubleBuffer,
    RegisterFile,
    make_eventor_buffers,
)


class TestDoubleBuffer:
    def test_write_swap_read(self):
        buf = DoubleBuffer("b", capacity_words=8, word_bytes=4)
        buf.write(np.arange(5))
        buf.swap()
        np.testing.assert_array_equal(buf.read_all(), np.arange(5))

    def test_read_before_swap_rejected(self):
        buf = DoubleBuffer("b", 8, 4)
        buf.write(np.arange(3))
        with pytest.raises(BufferError):
            buf.read_all()

    def test_swap_empty_rejected(self):
        buf = DoubleBuffer("b", 8, 4)
        with pytest.raises(BufferError):
            buf.swap()

    def test_overfill_rejected(self):
        buf = DoubleBuffer("b", 4, 4)
        with pytest.raises(BufferError):
            buf.write(np.arange(5))

    def test_overfill_across_writes_rejected(self):
        buf = DoubleBuffer("b", 4, 4)
        buf.write(np.arange(3))
        with pytest.raises(BufferError):
            buf.write(np.arange(2))

    def test_ping_pong_overlap(self):
        """Producer fills bank B while consumer drains bank A."""
        buf = DoubleBuffer("b", 8, 4)
        buf.write(np.array([1, 2]))
        buf.swap()
        buf.write(np.array([3, 4]))  # load new data before draining old
        np.testing.assert_array_equal(buf.read_all(), [1, 2])
        buf.swap()
        np.testing.assert_array_equal(buf.read_all(), [3, 4])

    def test_double_drain_rejected(self):
        buf = DoubleBuffer("b", 8, 4)
        buf.write(np.array([1]))
        buf.swap()
        buf.read_all()
        with pytest.raises(BufferError):
            buf.read_all()

    def test_total_bytes_counts_both_banks(self):
        buf = DoubleBuffer("b", 1024, 4)
        assert buf.total_bytes == 2 * 1024 * 4

    def test_stats(self):
        buf = DoubleBuffer("b", 8, 4)
        buf.write(np.arange(5))
        buf.swap()
        buf.read_all()
        assert buf.stats.writes == 5
        assert buf.stats.reads == 5
        assert buf.stats.swaps == 1
        assert buf.stats.peak_words == 5

    def test_reset(self):
        buf = DoubleBuffer("b", 8, 4)
        buf.write(np.arange(5))
        buf.reset()
        assert buf.load_occupancy == 0
        assert not buf.process_ready


class TestRegisterFile:
    def test_load_read(self):
        regs = RegisterFile("Buf_H", 9)
        h = np.arange(9)
        regs.load(h)
        np.testing.assert_array_equal(regs.read(), h)

    def test_read_before_load_rejected(self):
        with pytest.raises(BufferError):
            RegisterFile("Buf_H", 9).read()

    def test_capacity_enforced(self):
        with pytest.raises(BufferError):
            RegisterFile("Buf_H", 4).load(np.arange(9))


class TestEventorBufferComplement:
    def test_fig5_buffers_present(self):
        bufs = make_eventor_buffers(1024, 128)
        assert set(bufs) == {"Buf_E", "Buf_P", "Buf_I", "Buf_V", "Buf_H"}

    def test_sizes_follow_configuration(self):
        bufs = make_eventor_buffers(1024, 128)
        assert bufs["Buf_E"].capacity_words == 1024
        assert bufs["Buf_P"].capacity_words == 3 * 128
        assert bufs["Buf_V"].capacity_words == 2048
        assert bufs["Buf_H"].n_words == 9
