"""Unit tests for the literature-comparison data."""

import pytest

from repro.baseline.literature import (
    EMVS_1CORE,
    EMVS_4CORE,
    EVENTOR,
    GALLEGO_CM,
    LANDSCAPE,
    efficiency_ranking,
)


class TestPublishedNumbers:
    def test_paper_cited_throughputs(self):
        """The figures quoted in the paper's introduction."""
        assert EMVS_1CORE.events_per_second == pytest.approx(1.2e6)
        assert EMVS_4CORE.events_per_second == pytest.approx(4.7e6)
        assert EVENTOR.events_per_second == pytest.approx(1.86e6)
        assert EVENTOR.power_watts == pytest.approx(1.86)

    def test_unpublished_numbers_stay_none(self):
        assert GALLEGO_CM.events_per_second is None
        assert GALLEGO_CM.events_per_joule is None

    def test_landscape_order(self):
        assert LANDSCAPE[0] is EMVS_1CORE
        assert LANDSCAPE[-1] is EVENTOR

    def test_events_per_joule(self):
        assert EVENTOR.events_per_joule == pytest.approx(1e6, rel=0.01)
        assert EMVS_1CORE.events_per_joule == pytest.approx(1.2e6 / 45)


class TestRanking:
    def test_eventor_first(self):
        ranking = efficiency_ranking()
        assert ranking[0] is EVENTOR

    def test_only_known_systems_ranked(self):
        ranking = efficiency_ranking()
        assert GALLEGO_CM not in ranking
        assert all(s.events_per_joule is not None for s in ranking)

    def test_descending(self):
        values = [s.events_per_joule for s in efficiency_ranking()]
        assert values == sorted(values, reverse=True)
