"""StreamSegmentPlanner ≡ plan_segments, for any chunking of the stream.

The streaming serve layer rests on one invariant: cutting key-frame
segments *incrementally* (chunk by chunk, no look-ahead) produces
exactly the plan a one-shot pose-only pass over the concatenated stream
would — same :class:`~repro.core.engine.SegmentPlan` values, same
frame-aligned event slices, same dropped-tail count.  These tests pin it
across chunk sizes, including sub-frame chunks and single-event feeds.
"""

import numpy as np
import pytest

from repro.core import EMVSConfig, EngineSpec, plan_segments
from repro.core.engine import StreamSegmentPlanner


@pytest.fixture(scope="module")
def workload(seq_3planes_fast):
    """``(events, trajectory, config)`` cutting into several segments."""
    seq = seq_3planes_fast
    events = seq.events.time_slice(0.4, 1.6)
    config = EMVSConfig(n_depth_planes=48, frame_size=1024, keyframe_distance=0.06)
    return events, seq.trajectory, config


def drive(events, trajectory, config, chunk_size):
    """Feed ``events`` in fixed-size chunks; return (pairs, dropped)."""
    planner = StreamSegmentPlanner(trajectory, config)
    pairs = []
    for lo in range(0, len(events), chunk_size):
        pairs.extend(planner.push(events[lo : lo + chunk_size]))
    tail, dropped = planner.finish()
    pairs.extend(tail)
    return pairs, dropped


class TestPlanEquivalence:
    @pytest.mark.parametrize("chunk_size", [257, 1024, 5000, 10**9])
    def test_matches_one_shot_plan(self, workload, chunk_size):
        events, trajectory, config = workload
        plans, dropped = plan_segments(events, trajectory, config)
        assert len(plans) >= 3  # the workload is genuinely multi-segment
        pairs, got_dropped = drive(events, trajectory, config, chunk_size)
        # SegmentPlan is a frozen dataclass: == pins every field (global
        # frame indices, t_ref) bit-exactly.
        assert [plan for plan, _ in pairs] == plans
        assert got_dropped == dropped
        for plan, segment_events in pairs:
            np.testing.assert_array_equal(
                segment_events.data, plan.slice(events).data
            )

    def test_single_event_chunks_on_synthetic_stream(self, make_stream):
        """The degenerate chunking (1 event per feed) still plans exactly."""
        from repro.geometry.trajectory import linear_trajectory

        trajectory = linear_trajectory(
            start=[-0.3, 0.0, 0.0], end=[0.3, 0.0, 0.0], duration=1.0, n_poses=21
        )
        events = make_stream(950, rate=1000.0)
        config = EMVSConfig(frame_size=100, keyframe_distance=0.1)
        plans, dropped = plan_segments(events, trajectory, config)
        assert len(plans) >= 2
        pairs, got_dropped = drive(events, trajectory, config, 1)
        assert [plan for plan, _ in pairs] == plans
        assert got_dropped == dropped


class TestPlannerLifecycle:
    def test_empty_stream_plans_nothing(self, workload):
        _, trajectory, config = workload
        planner = StreamSegmentPlanner(trajectory, config)
        tail, dropped = planner.finish()
        assert tail == []
        assert dropped == 0

    def test_subframe_stream_is_all_dropped_tail(self, workload, make_stream):
        _, trajectory, config = workload
        planner = StreamSegmentPlanner(trajectory, config)
        assert planner.push(make_stream(config.frame_size - 1)) == []
        tail, dropped = planner.finish()
        assert tail == []
        assert dropped == config.frame_size - 1

    def test_finished_planner_rejects_further_use(self, workload, make_stream):
        _, trajectory, config = workload
        planner = StreamSegmentPlanner(trajectory, config)
        planner.finish()
        with pytest.raises(RuntimeError, match="finished"):
            planner.push(make_stream(10))
        with pytest.raises(RuntimeError, match="finished"):
            planner.finish()

    def test_progress_properties(self, workload):
        events, trajectory, config = workload
        planner = StreamSegmentPlanner(trajectory, config)
        assert planner.next_index == 0
        assert planner.frames_planned == 0
        planner.push(events)
        assert planner.frames_planned == len(events) // config.frame_size
        assert planner.pending_events < len(events)
        assert planner.next_index >= 3

    def test_spec_stream_planner_factory(self, workload, seq_3planes_fast):
        events, trajectory, config = workload
        seq = seq_3planes_fast
        spec = EngineSpec(seq.camera, trajectory, config)
        planner = spec.stream_planner()
        assert isinstance(planner, StreamSegmentPlanner)
        plans, _ = spec.plan(events)
        pairs = planner.push(events)
        tail, _ = planner.finish()
        assert [plan for plan, _ in pairs + tail] == plans
