"""Unit tests for trajectories and pose interpolation."""

import numpy as np
import pytest

from repro.geometry.se3 import SE3, Quaternion
from repro.geometry.trajectory import Trajectory, linear_trajectory


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Trajectory([0.0, 1.0], [SE3.identity()])

    def test_rejects_non_increasing_timestamps(self):
        with pytest.raises(ValueError):
            Trajectory([0.0, 0.0], [SE3.identity(), SE3.identity()])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Trajectory([], [])

    def test_len_and_iter(self, simple_trajectory):
        assert len(simple_trajectory) == 41
        items = list(simple_trajectory)
        assert items[0][0] == pytest.approx(0.0)


class TestSampling:
    def test_sample_at_knots(self, simple_trajectory):
        pose = simple_trajectory.sample(0.0)
        np.testing.assert_allclose(pose.translation, [-0.2, 0.0, 0.0])

    def test_sample_midpoint_translation(self, simple_trajectory):
        pose = simple_trajectory.sample(1.0)
        np.testing.assert_allclose(pose.translation, [0.0, 0.0, 0.0], atol=1e-12)

    def test_clamps_outside_range(self, simple_trajectory):
        before = simple_trajectory.sample(-5.0)
        after = simple_trajectory.sample(99.0)
        np.testing.assert_allclose(before.translation, [-0.2, 0.0, 0.0])
        np.testing.assert_allclose(after.translation, [0.2, 0.0, 0.0])

    def test_sample_many_matches_scalar(self, rng):
        # Trajectory with rotation to exercise the vectorized slerp.
        times = np.linspace(0.0, 1.0, 11)
        poses = [
            SE3.from_quaternion_translation(
                Quaternion.from_axis_angle([0, 0, 1], 0.1 * i),
                [0.05 * i, -0.02 * i, 0.0],
            )
            for i in range(11)
        ]
        traj = Trajectory(times, poses)
        queries = rng.uniform(-0.1, 1.1, 50)
        R, t = traj.sample_many(queries)
        for k, tq in enumerate(queries):
            ref = traj.sample(float(tq))
            np.testing.assert_allclose(R[k], ref.rotation, atol=1e-9)
            np.testing.assert_allclose(t[k], ref.translation, atol=1e-12)

    def test_sample_many_shapes(self, simple_trajectory):
        R, t = simple_trajectory.sample_many(np.array([0.1, 0.5]))
        assert R.shape == (2, 3, 3)
        assert t.shape == (2, 3)


class TestHelpers:
    def test_path_length(self, simple_trajectory):
        assert simple_trajectory.path_length() == pytest.approx(0.4)

    def test_subsampled_keeps_endpoints(self, simple_trajectory):
        sub = simple_trajectory.subsampled(10)
        assert sub.t_start == simple_trajectory.t_start
        assert sub.t_end == simple_trajectory.t_end

    def test_subsampled_rejects_bad_step(self, simple_trajectory):
        with pytest.raises(ValueError):
            simple_trajectory.subsampled(0)

    def test_linear_trajectory_constant_velocity(self):
        traj = linear_trajectory([0, 0, 0], [1, 0, 0], duration=1.0, n_poses=11)
        v1 = traj.sample(0.35).translation
        v2 = traj.sample(0.65).translation
        np.testing.assert_allclose(v2 - v1, [0.3, 0.0, 0.0], atol=1e-12)

    def test_linear_trajectory_needs_two_poses(self):
        with pytest.raises(ValueError):
            linear_trajectory([0, 0, 0], [1, 0, 0], 1.0, n_poses=1)


class TestSampleBatch:
    def test_matches_scalar_sampling(self, simple_trajectory):
        times = np.linspace(-0.5, 2.5, 37)  # includes out-of-span clamping
        batched = simple_trajectory.sample_batch(times)
        assert len(batched) == len(times)
        for t, pose in zip(times, batched):
            scalar = simple_trajectory.sample(float(t))
            np.testing.assert_allclose(pose.rotation, scalar.rotation, atol=1e-12)
            np.testing.assert_allclose(
                pose.translation, scalar.translation, atol=1e-12
            )

    def test_empty_times(self, simple_trajectory):
        assert simple_trajectory.sample_batch(np.empty(0)) == []
