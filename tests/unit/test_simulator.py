"""Unit tests for the event-camera simulator."""

import numpy as np
import pytest

from repro.events import texture as tex
from repro.events.scenes import PlanarScene, TexturedPlane
from repro.events.simulator import EventCameraSimulator, SimulatorConfig
from repro.geometry.camera import PinholeCamera
from repro.geometry.trajectory import linear_trajectory


@pytest.fixture
def camera():
    return PinholeCamera.ideal(48, 36, fov_deg=60.0)


@pytest.fixture
def moving_edge_scene():
    """A single vertical brightness edge that sweeps the view on motion."""
    plane = TexturedPlane(
        origin=[0.0, 0.0, 1.0],
        u_axis=[1, 0, 0],
        v_axis=[0, 1, 0],
        texture=tex.stripes(period=0.4, axis=0, low=0.1, high=0.9),
    )
    return PlanarScene(planes=[plane], background=0.5)


@pytest.fixture
def trajectory():
    return linear_trajectory([-0.1, 0, 0], [0.1, 0, 0], duration=1.0, n_poses=21)


def simulate(scene, camera, trajectory, **kwargs):
    cfg = SimulatorConfig(n_render_steps=kwargs.pop("n_render_steps", 60), **kwargs)
    return EventCameraSimulator(scene, camera, trajectory, cfg).run()


class TestEventGeneration:
    def test_moving_camera_produces_events(self, moving_edge_scene, camera, trajectory):
        events = simulate(moving_edge_scene, camera, trajectory)
        assert len(events) > 100

    def test_static_camera_produces_no_events(self, moving_edge_scene, camera):
        still = linear_trajectory([0, 0, 0], [1e-9, 0, 0], duration=1.0, n_poses=5)
        events = simulate(moving_edge_scene, camera, still)
        assert len(events) == 0

    def test_uniform_scene_produces_no_events(self, camera, trajectory):
        flat = PlanarScene(
            planes=[
                TexturedPlane([0, 0, 1], [1, 0, 0], [0, 1, 0],
                              texture=tex.constant(0.5))
            ],
            background=0.5,
        )
        assert len(simulate(flat, camera, trajectory)) == 0

    def test_timestamps_sorted_and_in_range(self, moving_edge_scene, camera, trajectory):
        events = simulate(moving_edge_scene, camera, trajectory)
        assert np.all(np.diff(events.t) >= 0)
        assert events.t_start >= 0.0
        assert events.t_end <= 1.0

    def test_coordinates_on_sensor(self, moving_edge_scene, camera, trajectory):
        events = simulate(moving_edge_scene, camera, trajectory)
        assert np.all(events.x >= 0) and np.all(events.x < camera.width)
        assert np.all(events.y >= 0) and np.all(events.y < camera.height)

    def test_polarities_balanced_for_periodic_texture(
        self, moving_edge_scene, camera, trajectory
    ):
        events = simulate(moving_edge_scene, camera, trajectory)
        pos, neg = events.polarity_split()
        # Stripes sweeping by produce alternating edges: both polarities occur.
        assert len(pos) > 0 and len(neg) > 0

    def test_deterministic_without_noise(self, moving_edge_scene, camera, trajectory):
        a = simulate(moving_edge_scene, camera, trajectory)
        b = simulate(moving_edge_scene, camera, trajectory)
        assert a == b

    def test_lower_threshold_more_events(self, moving_edge_scene, camera, trajectory):
        few = simulate(moving_edge_scene, camera, trajectory, contrast_threshold=0.4)
        many = simulate(moving_edge_scene, camera, trajectory, contrast_threshold=0.1)
        assert len(many) > len(few)

    def test_more_steps_refine_timestamps_not_counts(
        self, moving_edge_scene, camera, trajectory
    ):
        coarse = simulate(moving_edge_scene, camera, trajectory, n_render_steps=30)
        fine = simulate(moving_edge_scene, camera, trajectory, n_render_steps=120)
        # The total log-intensity excursion is fixed by the motion, so the
        # event count should be roughly independent of step count.
        assert len(fine) == pytest.approx(len(coarse), rel=0.2)


class TestNoiseModels:
    def test_noise_rate_adds_events(self, camera, trajectory):
        flat = PlanarScene(
            planes=[
                TexturedPlane([0, 0, 1], [1, 0, 0], [0, 1, 0],
                              texture=tex.constant(0.5))
            ],
            background=0.5,
        )
        noisy = simulate(flat, camera, trajectory, noise_rate=1.0, seed=5)
        expected = 1.0 * camera.width * camera.height  # rate * pixels * 1 s
        assert len(noisy) == pytest.approx(expected, rel=0.3)

    def test_threshold_mismatch_changes_stream(
        self, moving_edge_scene, camera, trajectory
    ):
        clean = simulate(moving_edge_scene, camera, trajectory)
        mismatched = simulate(
            moving_edge_scene, camera, trajectory, threshold_mismatch=0.1, seed=2
        )
        assert not (clean == mismatched)


class TestConfigValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            SimulatorConfig(contrast_threshold=0.0)

    def test_rejects_single_step(self):
        with pytest.raises(ValueError):
            SimulatorConfig(n_render_steps=1)

    def test_run_rejects_bad_window(self, moving_edge_scene, camera, trajectory):
        sim = EventCameraSimulator(
            moving_edge_scene, camera, trajectory, SimulatorConfig(n_render_steps=10)
        )
        with pytest.raises(ValueError):
            sim.run(t0=0.5, t1=0.5)
