"""Unit tests for the Table 1 quantization schema."""

import numpy as np
import pytest

from repro.fixedpoint.quantize import (
    CANONICAL_COORD_FORMAT,
    DSI_SCORE_FORMAT,
    EVENT_COORD_FORMAT,
    EVENTOR_SCHEMA,
    FLOAT_SCHEMA,
    HOMOGRAPHY_FORMAT,
    PHI_FORMAT,
    PLANE_COORD_FORMAT,
    pack_event_word,
    unpack_event_word,
)


class TestTable1Formats:
    """The exact word lengths of the paper's Table 1."""

    @pytest.mark.parametrize(
        "fmt,total,int_incl_sign,frac",
        [
            (EVENT_COORD_FORMAT, 16, 9, 7),
            (CANONICAL_COORD_FORMAT, 16, 9, 7),
            (PLANE_COORD_FORMAT, 8, 8, 0),
            (HOMOGRAPHY_FORMAT, 32, 11, 21),
            (PHI_FORMAT, 32, 11, 21),
            (DSI_SCORE_FORMAT, 16, 16, 0),
        ],
    )
    def test_bit_allocations(self, fmt, total, int_incl_sign, frac):
        assert fmt.total_bits == total
        assert fmt.frac_bits == frac
        counted_int = fmt.int_bits + (1 if fmt.signed else 0)
        assert counted_int == int_incl_sign

    def test_davis_coordinates_fit_event_format(self):
        # 9 integer bits cover the 240x180 sensor (and up to 511).
        assert EVENT_COORD_FORMAT.max_value > 239.0
        assert PLANE_COORD_FORMAT.max_value >= 239


class TestSchema:
    def test_float_schema_is_identity(self, rng):
        xy = rng.uniform(0, 240, (50, 2))
        np.testing.assert_array_equal(FLOAT_SCHEMA.quantize_event_coords(xy), xy)
        H = rng.standard_normal((3, 3))
        np.testing.assert_array_equal(FLOAT_SCHEMA.quantize_homography(H), H)

    def test_eventor_schema_quantizes(self, rng):
        xy = rng.uniform(0, 240, (50, 2))
        q = EVENTOR_SCHEMA.quantize_event_coords(xy)
        # All values on the Q9.7 grid.
        np.testing.assert_array_equal(q * 128, np.round(q * 128))
        assert np.max(np.abs(q - xy)) <= 1.0 / 256.0

    def test_canonical_overflow_detection(self):
        vals = np.array([-1.0, 100.0, 600.0, np.nan])
        mask = EVENTOR_SCHEMA.canonical_overflow(vals)
        np.testing.assert_array_equal(mask, [True, False, True, True])

    def test_float_schema_overflow_only_nonfinite(self):
        vals = np.array([-1e9, np.inf, 3.0])
        mask = FLOAT_SCHEMA.canonical_overflow(vals)
        np.testing.assert_array_equal(mask, [False, True, False])

    def test_event_word_bits(self):
        assert EVENTOR_SCHEMA.event_word_bits() == 32
        assert FLOAT_SCHEMA.event_word_bits() == 64

    def test_memory_saving_about_half(self):
        # The paper claims up to 50 % memory/bandwidth saving.
        saving = EVENTOR_SCHEMA.memory_saving_vs_float(
            n_events=1_000_000, dsi_voxels=240 * 180 * 128
        )
        assert saving == pytest.approx(0.5, abs=0.01)


class TestEventWordPacking:
    def test_round_trip(self, rng):
        xy_raw = rng.integers(0, 0xFFFF, size=(100, 2))
        words = pack_event_word(xy_raw)
        np.testing.assert_array_equal(unpack_event_word(words), xy_raw)

    def test_x_in_high_halfword(self):
        word = pack_event_word(np.array([[0x1234, 0x5678]]))
        assert word[0] == 0x12345678

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_event_word(np.array([[0x10000, 0]]))
        with pytest.raises(ValueError):
            pack_event_word(np.array([[-1, 0]]))

    def test_words_fit_32bit_bus(self, rng):
        xy_raw = rng.integers(0, 0xFFFF, size=(10, 2))
        words = pack_event_word(xy_raw)
        assert np.all(words >= 0) and np.all(words <= 0xFFFFFFFF)
