"""Unit tests for depth metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    absrel,
    compute_metrics,
    evaluate_fused_map,
    point_to_scene_distance,
)
from repro.events.scenes import PlanarScene, TexturedPlane


class TestAbsRel:
    def test_perfect_estimate_zero_error(self):
        gt = np.array([1.0, 2.0, 3.0])
        assert absrel(gt, gt) == 0.0

    def test_known_value(self):
        est = np.array([1.1, 2.0])
        gt = np.array([1.0, 2.0])
        assert absrel(est, gt) == pytest.approx(0.05)

    def test_symmetric_in_sign_of_error(self):
        gt = np.array([2.0, 2.0])
        over = np.array([2.2, 2.2])
        under = np.array([1.8, 1.8])
        assert absrel(over, gt) == pytest.approx(absrel(under, gt))

    def test_ignores_invalid_gt(self):
        est = np.array([1.0, 5.0, 1.0])
        gt = np.array([1.0, np.inf, np.nan])
        assert absrel(est, gt) == 0.0

    def test_all_invalid_raises(self):
        with pytest.raises(ValueError):
            absrel(np.array([1.0]), np.array([np.nan]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            absrel(np.zeros(3), np.zeros(4))


class TestComputeMetrics:
    def test_bundle_values(self):
        est = np.array([1.0, 2.2, 3.0, 10.0])
        gt = np.array([1.0, 2.0, 3.0, 5.0])
        m = compute_metrics(est, gt, sensor_pixels=100)
        assert m.n_points == 4
        assert m.density == pytest.approx(0.04)
        assert m.absrel == pytest.approx((0 + 0.1 + 0 + 1.0) / 4)
        # One of four points has > 15 % relative error.
        assert m.outlier_ratio == pytest.approx(0.25)

    def test_rmse(self):
        est = np.array([2.0, 4.0])
        gt = np.array([1.0, 2.0])
        m = compute_metrics(est, gt, sensor_pixels=10)
        assert m.rmse == pytest.approx(np.sqrt((1 + 4) / 2))

    def test_str_contains_absrel(self):
        m = compute_metrics(np.array([1.0]), np.array([1.0]), sensor_pixels=10)
        assert "AbsRel" in str(m)


def square_plane_scene():
    """One 2x2 m plane at z = 2, axis-aligned."""
    plane = TexturedPlane(
        origin=[0.0, 0.0, 2.0],
        u_axis=[1.0, 0.0, 0.0],
        v_axis=[0.0, 1.0, 0.0],
        half_u=1.0,
        half_v=1.0,
    )
    return PlanarScene(planes=[plane])


class TestPointToSceneDistance:
    def test_on_surface_is_zero(self):
        scene = square_plane_scene()
        d = point_to_scene_distance(scene, np.array([[0.5, -0.5, 2.0]]))
        assert d[0] == pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_offset(self):
        scene = square_plane_scene()
        d = point_to_scene_distance(scene, np.array([[0.0, 0.0, 1.5]]))
        assert d[0] == pytest.approx(0.5)

    def test_beyond_edge_clamps_to_rectangle(self):
        scene = square_plane_scene()
        # 0.5 m past the +u edge, on the plane: distance is to the edge.
        d = point_to_scene_distance(scene, np.array([[1.5, 0.0, 2.0]]))
        assert d[0] == pytest.approx(0.5)
        # Diagonal: past the corner in u and off the plane in z.
        d = point_to_scene_distance(scene, np.array([[1.3, 0.0, 1.6]]))
        assert d[0] == pytest.approx(np.hypot(0.3, 0.4))

    def test_nearest_of_many_planes_wins(self):
        scene = square_plane_scene()
        scene.planes.append(
            TexturedPlane(
                origin=[0.0, 0.0, 1.0],
                u_axis=[1.0, 0.0, 0.0],
                v_axis=[0.0, 1.0, 0.0],
                half_u=1.0,
                half_v=1.0,
            )
        )
        d = point_to_scene_distance(scene, np.array([[0.0, 0.0, 1.2]]))
        assert d[0] == pytest.approx(0.2)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            point_to_scene_distance(square_plane_scene(), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            point_to_scene_distance(PlanarScene(planes=[]), np.zeros((1, 3)))


class FakeSequence:
    """Duck-typed Sequence stub for fused-map metric tests."""

    def __init__(self, scene, depth_range):
        self.scene = scene
        self.depth_range = depth_range


class TestEvaluateFusedMap:
    def test_perfect_map(self):
        seq = FakeSequence(square_plane_scene(), (1.0, 3.0))
        points = np.stack(
            [
                np.linspace(-0.9, 0.9, 20),
                np.zeros(20),
                np.full(20, 2.0),
            ],
            axis=1,
        )
        m = evaluate_fused_map(points, seq)
        assert m.n_points == 20
        assert m.mean_distance == pytest.approx(0.0, abs=1e-12)
        assert m.outlier_ratio == 0.0
        # Default threshold: 2 % of the mean DSI depth.
        assert m.outlier_distance == pytest.approx(0.04)

    def test_outliers_counted(self):
        seq = FakeSequence(square_plane_scene(), (1.0, 3.0))
        points = np.array([[0.0, 0.0, 2.0], [0.0, 0.0, 1.0]])
        m = evaluate_fused_map(points, seq, outlier_distance=0.5)
        assert m.outlier_ratio == pytest.approx(0.5)
        assert m.rmse == pytest.approx(np.sqrt(0.5 * 1.0**2))
        assert "surf-dist" in str(m)

    def test_empty_map_is_a_defined_nan_free_report(self):
        """An all-filtered map evaluates to zeros, not an exception.

        ``min_observations`` / ``min_cameras`` sweeps can legitimately
        reject every voxel; the report for that corner must be NaN-free
        and carry the threshold that was (or would have been) applied.
        """
        seq = FakeSequence(square_plane_scene(), (1.0, 3.0))
        m = evaluate_fused_map(np.empty((0, 3)), seq)
        assert m.n_points == 0
        assert m.mean_distance == 0.0
        assert m.rmse == 0.0
        assert m.outlier_ratio == 0.0
        assert m.outlier_distance == pytest.approx(0.04)
        assert np.isfinite(
            [m.mean_distance, m.rmse, m.outlier_ratio, m.outlier_distance]
        ).all()
        # An explicit threshold is echoed back unchanged.
        assert evaluate_fused_map(
            np.empty((0, 3)), seq, outlier_distance=0.5
        ).outlier_distance == 0.5

    def test_accepts_point_clouds(self):
        from repro.core.pointcloud import PointCloud

        seq = FakeSequence(square_plane_scene(), (1.0, 3.0))
        cloud = PointCloud(np.array([[0.0, 0.0, 2.1]]))
        m = evaluate_fused_map(cloud, seq)
        assert m.mean_distance == pytest.approx(0.1)
