"""Unit tests for depth metrics."""

import numpy as np
import pytest

from repro.eval.metrics import absrel, compute_metrics


class TestAbsRel:
    def test_perfect_estimate_zero_error(self):
        gt = np.array([1.0, 2.0, 3.0])
        assert absrel(gt, gt) == 0.0

    def test_known_value(self):
        est = np.array([1.1, 2.0])
        gt = np.array([1.0, 2.0])
        assert absrel(est, gt) == pytest.approx(0.05)

    def test_symmetric_in_sign_of_error(self):
        gt = np.array([2.0, 2.0])
        over = np.array([2.2, 2.2])
        under = np.array([1.8, 1.8])
        assert absrel(over, gt) == pytest.approx(absrel(under, gt))

    def test_ignores_invalid_gt(self):
        est = np.array([1.0, 5.0, 1.0])
        gt = np.array([1.0, np.inf, np.nan])
        assert absrel(est, gt) == 0.0

    def test_all_invalid_raises(self):
        with pytest.raises(ValueError):
            absrel(np.array([1.0]), np.array([np.nan]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            absrel(np.zeros(3), np.zeros(4))


class TestComputeMetrics:
    def test_bundle_values(self):
        est = np.array([1.0, 2.2, 3.0, 10.0])
        gt = np.array([1.0, 2.0, 3.0, 5.0])
        m = compute_metrics(est, gt, sensor_pixels=100)
        assert m.n_points == 4
        assert m.density == pytest.approx(0.04)
        assert m.absrel == pytest.approx((0 + 0.1 + 0 + 1.0) / 4)
        # One of four points has > 15 % relative error.
        assert m.outlier_ratio == pytest.approx(0.25)

    def test_rmse(self):
        est = np.array([2.0, 4.0])
        gt = np.array([1.0, 2.0])
        m = compute_metrics(est, gt, sensor_pixels=10)
        assert m.rmse == pytest.approx(np.sqrt((1 + 4) / 2))

    def test_str_contains_absrel(self):
        m = compute_metrics(np.array([1.0]), np.array([1.0]), sensor_pixels=10)
        assert "AbsRel" in str(m)
