"""Unit tests for table/figure text rendering."""

import pytest

from repro.eval.reporting import Table, bar_chart, format_percent, format_ratio


class TestFormatting:
    def test_percent(self):
        assert format_percent(0.1234) == "12.34%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_ratio(self):
        assert format_ratio(24.19) == "24.2x"


class TestTable:
    def test_render_alignment(self):
        t = Table("Demo", ["name", "value"])
        t.add_row("alpha", 1)
        t.add_row("beta-long", 22)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "== Demo =="
        assert "alpha" in text and "beta-long" in text

    def test_row_width_validated(self):
        t = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")

    def test_notes_rendered(self):
        t = Table("Demo", ["a"])
        t.add_row("x")
        t.add_note("calibrated")
        assert "note: calibrated" in t.render()


class TestBarChart:
    def test_renders_all_series(self):
        text = bar_chart(
            "Fig", ["3planes", "3walls"], {"orig": [1.0, 2.0], "ours": [1.5, 2.5]}
        )
        assert "3planes" in text
        assert "orig" in text and "ours" in text
        assert "#" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("Fig", [], {})
